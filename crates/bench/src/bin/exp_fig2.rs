//! Regenerates Fig. 2 (defense score under random attack).
fn main() {
    aneci_bench::exp::fig2::run(&aneci_bench::ExpArgs::parse());
}
