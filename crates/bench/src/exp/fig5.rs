//! Fig. 5 — test-set accuracy under non-targeted random attack.
//!
//! Noise ratio (fake edges / clean edges) sweeps 0–50% in 10% steps; every
//! victim is retrained on the poisoned graph (poisoning protocol) and
//! evaluated on the full test split.

use crate::{classify, print_table, write_csv, ExpArgs};
use aneci_attacks::random_attack;
use aneci_baselines::{
    Dgi, DgiConfig, Gae, GaeConfig, GcnClassifier, GcnConfig, RobustGcn, RobustGcnConfig,
};
use aneci_core::{aneci_plus, train_aneci, AneciConfig, DenoiseConfig, StopStrategy};
use aneci_linalg::rng::derive_seed;
use aneci_linalg::stats::mean;

const METHODS: [&str; 6] = ["GCN", "DropEdge", "GAE", "DGI", "AnECI", "AnECI+"];

/// Runs the Fig. 5 experiment.
pub fn run(args: &ExpArgs) {
    let ratios = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];
    for &dataset in &args.datasets {
        let mut rows = Vec::new();
        let mut csv_rows = Vec::new();
        for &ratio in &ratios {
            let mut per_method: Vec<Vec<f64>> = vec![Vec::new(); METHODS.len()];
            for round in 0..args.rounds {
                let seed = derive_seed(args.seed, (ratio * 1000.0) as u64 + round as u64);
                let graph = dataset.generate(args.scale, seed);
                let poisoned = random_attack(&graph, ratio, seed)
                    .apply(&graph)
                    .expect("random attack delta");
                eprintln!(
                    "[fig5] {} ratio {:.1} round {}",
                    dataset.name(),
                    ratio,
                    round
                );

                let gcn = GcnClassifier::fit(
                    &poisoned,
                    &GcnConfig {
                        seed,
                        ..Default::default()
                    },
                );
                per_method[0].push(gcn.accuracy_on(&poisoned, &poisoned.split.test));

                let rgcn = RobustGcn::fit(
                    &poisoned,
                    &RobustGcnConfig {
                        seed,
                        ..Default::default()
                    },
                );
                per_method[1].push(rgcn.accuracy_on(&poisoned, &poisoned.split.test));

                let gae = Gae::fit(
                    &poisoned,
                    &GaeConfig {
                        seed,
                        ..Default::default()
                    },
                );
                per_method[2].push(classify(&poisoned, gae.embedding(), seed));

                let dgi = Dgi::fit(
                    &poisoned,
                    &DgiConfig {
                        seed,
                        ..Default::default()
                    },
                );
                per_method[3].push(classify(&poisoned, dgi.embedding(), seed));

                let config = AneciConfig {
                    epochs: 150,
                    stop: StopStrategy::FixedEpochs,
                    seed,
                    ..Default::default()
                };
                let (aneci, _) = train_aneci(&poisoned, &config).unwrap();
                per_method[4].push(classify(&poisoned, aneci.embedding(), seed));

                let plus = aneci_plus(&poisoned, &config, &DenoiseConfig::default(), None)
                    .expect("AnECI+ failed");
                per_method[5].push(classify(&poisoned, plus.model.embedding(), seed));
            }
            let means: Vec<f64> = per_method.iter().map(|s| mean(s)).collect();
            rows.push({
                let mut r = vec![format!("{:.0}%", ratio * 100.0)];
                r.extend(means.iter().map(|m| format!("{m:.3}")));
                r
            });
            for (name, m) in METHODS.iter().zip(&means) {
                csv_rows.push(vec![
                    name.to_string(),
                    format!("{ratio:.1}"),
                    format!("{m:.4}"),
                ]);
            }
        }
        print_table(
            &format!(
                "Fig. 5 — test accuracy under random attack ({})",
                dataset.name()
            ),
            &["noise", "GCN", "DropEdge", "GAE", "DGI", "AnECI", "AnECI+"],
            &rows,
        );
        let path = write_csv(
            &args.out_dir,
            &format!("fig5_{}.csv", dataset.name()),
            "method,noise_ratio,accuracy",
            &csv_rows,
        )
        .expect("write csv");
        println!("wrote {}", path.display());
    }
}
