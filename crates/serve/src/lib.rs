//! # aneci-serve
//!
//! The serving subsystem: everything needed to take a trained AnECI model
//! from a `.aneci` checkpoint to answering embedding queries online.
//!
//! * [`store`] — [`store::EmbeddingStore`]: exact (brute-force, pooled)
//!   top-k cosine/dot neighbors, community lookups, and edge scores that
//!   reuse the `aneci-eval` link-prediction scorer verbatim;
//! * [`hnsw`] — [`hnsw::HnswIndex`]: a from-scratch, deterministic HNSW
//!   approximate-nearest-neighbor index over the embedding matrix;
//! * [`cache`] — [`cache::LruCache`]: O(1) LRU response cache with hit/miss
//!   counters;
//! * [`engine`] — [`engine::QueryEngine`]: JSONL in, JSONL out, batched
//!   concurrently on the persistent pool with deterministic output order;
//! * [`snapshot`] — [`snapshot::SnapshotHandle`]: generation-counted
//!   `Arc<Snapshot>` epoch swaps, so embedding updates publish atomically
//!   while readers keep answering without blocking, plus the
//!   [`snapshot::SnapshotUpdate`] delta vocabulary and its on-disk log;
//! * [`http`] — [`http::HttpServer`]: a from-scratch, zero-dependency
//!   HTTP/1.1 front end over the engine (bounded-queue worker dispatch,
//!   keep-alive, load shedding, graceful shutdown), serving the versioned
//!   `/v1` API.
//!
//! Two binaries wire these together behind CLIs: `aneci_serve`
//! (`src/bin/aneci_serve.rs`) answers JSONL queries from a file or stdin;
//! `aneci_http` (`src/bin/aneci_http.rs`) serves the same queries over a
//! TCP socket (`GET /v1/healthz`, `GET /v1/metrics`, `POST /v1/query`,
//! `POST /v1/query_batch`, `POST /v1/admin/reindex`,
//! `POST /v1/admin/shutdown`; the unversioned legacy paths answer 301).
//!
//! ```no_run
//! use aneci_core::model::AneciModel;
//! use aneci_serve::engine::{EngineConfig, QueryEngine};
//! use aneci_serve::store::EmbeddingStore;
//!
//! let ckpt = AneciModel::load_checkpoint("model.aneci").unwrap();
//! let engine = QueryEngine::new(EmbeddingStore::from_checkpoint(&ckpt), EngineConfig::default());
//! println!("{}", engine.run_line(r#"{"op":"top_k","node":0,"k":5}"#));
//! ```

pub mod cache;
pub mod engine;
pub mod hnsw;
pub mod http;
pub mod snapshot;
pub mod store;

pub use cache::LruCache;
pub use engine::{
    EngineConfig, EngineConfigBuilder, ErrorCode, Neighbor, Query, QueryEngine, QueryRequest,
    QueryResponse, Response,
};
pub use hnsw::{recall_at_k, HnswConfig, HnswIndex};
pub use http::{HttpConfig, HttpConfigBuilder, HttpServer, ServerHandle};
pub use snapshot::{Snapshot, SnapshotHandle, SnapshotUpdate, VectorUpsert};
pub use store::{EmbeddingStore, Metric, Scored};
