//! Descriptive graph statistics.
//!
//! Used to validate that the synthetic benchmark generators actually
//! reproduce the structural properties the substitution argument relies on
//! (degree heavy-tails, clustering, connectivity), and exported for
//! examples and experiment logging.

use crate::attributed::AttributedGraph;

/// Summary statistics of a graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Node count.
    pub nodes: usize,
    /// Undirected edge count.
    pub edges: usize,
    /// Mean degree.
    pub mean_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Global clustering coefficient (transitivity).
    pub transitivity: f64,
    /// Number of connected components.
    pub components: usize,
    /// Size of the largest component.
    pub largest_component: usize,
    /// Edge homophily (same-label edge fraction), when labelled.
    pub homophily: Option<f64>,
}

/// Connected components via iterative DFS. Returns a component id per node.
pub fn connected_components(graph: &AttributedGraph) -> Vec<usize> {
    let n = graph.num_nodes();
    let mut component = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut stack = Vec::new();
    for start in 0..n {
        if component[start] != usize::MAX {
            continue;
        }
        stack.push(start);
        component[start] = next;
        while let Some(u) = stack.pop() {
            for v in graph.neighbors(u) {
                if component[v] == usize::MAX {
                    component[v] = next;
                    stack.push(v);
                }
            }
        }
        next += 1;
    }
    component
}

/// Global clustering coefficient: `3 × triangles / connected triples`.
pub fn transitivity(graph: &AttributedGraph) -> f64 {
    let n = graph.num_nodes();
    let neighbor_sets: Vec<std::collections::BTreeSet<usize>> = (0..n)
        .map(|u| graph.neighbors(u).into_iter().collect())
        .collect();
    let mut triangles = 0usize; // each counted 3 times (once per corner pair)
    let mut triples = 0usize;
    for u in 0..n {
        let d = neighbor_sets[u].len();
        triples += d * d.saturating_sub(1) / 2;
        let nbrs: Vec<usize> = neighbor_sets[u].iter().copied().collect();
        for (i, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[i + 1..] {
                if neighbor_sets[a].contains(&b) {
                    triangles += 1;
                }
            }
        }
    }
    if triples == 0 {
        0.0
    } else {
        triangles as f64 / triples as f64
    }
}

/// Computes the full summary.
pub fn graph_stats(graph: &AttributedGraph) -> GraphStats {
    let degrees = graph.degrees();
    let comps = connected_components(graph);
    let num_comps = comps.iter().copied().max().map_or(0, |m| m + 1);
    let mut sizes = vec![0usize; num_comps];
    for &c in &comps {
        sizes[c] += 1;
    }
    GraphStats {
        nodes: graph.num_nodes(),
        edges: graph.num_edges(),
        mean_degree: graph.average_degree(),
        max_degree: degrees.iter().copied().max().unwrap_or(0),
        transitivity: transitivity(graph),
        components: num_comps,
        largest_component: sizes.iter().copied().max().unwrap_or(0),
        homophily: graph.edge_homophily(),
    }
}

/// Degree histogram as `(degree, count)` pairs in ascending degree order.
pub fn degree_histogram(graph: &AttributedGraph) -> Vec<(usize, usize)> {
    let mut counts = std::collections::BTreeMap::new();
    for d in graph.degrees() {
        *counts.entry(d).or_insert(0usize) += 1;
    }
    counts.into_iter().collect()
}

/// A crude power-law tail indicator: the ratio of the 99th-percentile
/// degree to the median degree. Heavy-tailed (scale-free-ish) graphs score
/// well above light-tailed ones — enough to discriminate dc-SBM from plain
/// SBM in tests without a full maximum-likelihood fit.
pub fn tail_ratio(graph: &AttributedGraph) -> f64 {
    let mut degrees = graph.degrees();
    if degrees.is_empty() {
        return 0.0;
    }
    degrees.sort_unstable();
    let p = |q: f64| degrees[((degrees.len() - 1) as f64 * q) as usize] as f64;
    let median = p(0.5).max(1.0);
    p(0.99) / median
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{generate_sbm, SbmConfig};
    use crate::karate::karate_club;
    use crate::AttributedGraph;

    #[test]
    fn karate_statistics() {
        let s = graph_stats(&karate_club());
        assert_eq!(s.nodes, 34);
        assert_eq!(s.edges, 78);
        assert_eq!(s.components, 1);
        assert_eq!(s.largest_component, 34);
        assert_eq!(s.max_degree, 17);
        // Known transitivity of karate ≈ 0.2557.
        assert!(
            (s.transitivity - 0.2557).abs() < 0.01,
            "T = {}",
            s.transitivity
        );
    }

    #[test]
    fn components_of_disconnected_graph() {
        let g = AttributedGraph::from_edges_plain(6, &[(0, 1), (1, 2), (3, 4)], None);
        let c = connected_components(&g);
        assert_eq!(c[0], c[1]);
        assert_eq!(c[1], c[2]);
        assert_eq!(c[3], c[4]);
        assert_ne!(c[0], c[3]);
        assert_ne!(c[5], c[0]);
        assert_ne!(c[5], c[3]);
        let s = graph_stats(&g);
        assert_eq!(s.components, 3);
        assert_eq!(s.largest_component, 3);
    }

    #[test]
    fn transitivity_of_triangle_and_star() {
        let triangle = AttributedGraph::from_edges_plain(3, &[(0, 1), (1, 2), (2, 0)], None);
        assert!((transitivity(&triangle) - 1.0).abs() < 1e-12);
        let star = AttributedGraph::from_edges_plain(4, &[(0, 1), (0, 2), (0, 3)], None);
        assert_eq!(transitivity(&star), 0.0);
    }

    #[test]
    fn degree_histogram_sums_to_n() {
        let g = karate_club();
        let hist = degree_histogram(&g);
        let total: usize = hist.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 34);
        // Histogram is sorted by degree.
        for w in hist.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn degree_correction_shows_in_tail_ratio() {
        let mut cfg = SbmConfig::small();
        cfg.degree_exponent = None;
        let flat = generate_sbm(&cfg, 3);
        cfg.degree_exponent = Some(2.2);
        let heavy = generate_sbm(&cfg, 3);
        assert!(
            tail_ratio(&heavy) > tail_ratio(&flat),
            "heavy {} vs flat {}",
            tail_ratio(&heavy),
            tail_ratio(&flat)
        );
    }

    #[test]
    fn empty_graph_degrades() {
        let g = AttributedGraph::from_edges_plain(0, &[], None);
        let s = graph_stats(&g);
        assert_eq!(s.nodes, 0);
        assert_eq!(s.components, 0);
        assert_eq!(tail_ratio(&g), 0.0);
    }
}
