//! Spectral embedding (Laplacian eigenmaps, Belkin & Niyogi 2003) — the
//! "traditional graph embedding [3]" lineage the paper cites, and a useful
//! deterministic reference point.
//!
//! Computes the top eigenvectors of the symmetric-normalized adjacency
//! `D^-1/2 (A+I) D^-1/2` by orthogonal (subspace) iteration with
//! Gram–Schmidt re-orthonormalization, then drops the trivial leading
//! eigenvector.

use aneci_graph::AttributedGraph;
use aneci_linalg::rng::{derive_seed, gaussian_matrix, seeded_rng};
use aneci_linalg::{CsrMatrix, DenseMatrix};

/// Spectral-embedding hyperparameters.
#[derive(Clone, Debug)]
pub struct SpectralConfig {
    /// Embedding dimensionality (eigenvectors kept after dropping the
    /// trivial one).
    pub dim: usize,
    /// Subspace-iteration sweeps.
    pub iterations: usize,
    /// RNG seed for the starting subspace.
    pub seed: u64,
}

impl Default for SpectralConfig {
    fn default() -> Self {
        Self {
            dim: 16,
            iterations: 100,
            seed: 0,
        }
    }
}

/// Modified Gram–Schmidt, in place: orthonormalizes the columns of `m`.
/// Columns that collapse numerically are re-randomized deterministically.
fn orthonormalize(m: &mut DenseMatrix, seed: u64) {
    let (n, k) = m.shape();
    let mut rng = seeded_rng(seed);
    for c in 0..k {
        // Subtract projections onto previous columns.
        for prev in 0..c {
            let dot: f64 = (0..n).map(|r| m.get(r, c) * m.get(r, prev)).sum();
            for r in 0..n {
                let v = m.get(r, c) - dot * m.get(r, prev);
                m.set(r, c, v);
            }
        }
        let norm: f64 = (0..n)
            .map(|r| m.get(r, c) * m.get(r, c))
            .sum::<f64>()
            .sqrt();
        if norm < 1e-12 {
            for r in 0..n {
                m.set(r, c, aneci_linalg::rng::standard_normal(&mut rng));
            }
            // One more orthogonalization pass for the fresh column.
            for prev in 0..c {
                let dot: f64 = (0..n).map(|r| m.get(r, c) * m.get(r, prev)).sum();
                for r in 0..n {
                    let v = m.get(r, c) - dot * m.get(r, prev);
                    m.set(r, c, v);
                }
            }
            let norm2: f64 = (0..n)
                .map(|r| m.get(r, c) * m.get(r, c))
                .sum::<f64>()
                .sqrt();
            for r in 0..n {
                m.set(r, c, m.get(r, c) / norm2.max(1e-12));
            }
        } else {
            for r in 0..n {
                m.set(r, c, m.get(r, c) / norm);
            }
        }
    }
}

/// Top-`k` eigenvectors (by |λ|) of a symmetric sparse operator, via
/// orthogonal iteration. Returns `(eigenvalues, eigenvectors)` with
/// eigenvectors as columns, ordered by descending eigenvalue.
pub fn top_eigenvectors(
    op: &CsrMatrix,
    k: usize,
    iterations: usize,
    seed: u64,
) -> (Vec<f64>, DenseMatrix) {
    let n = op.rows();
    assert!(
        k <= n,
        "cannot extract more eigenvectors than the dimension"
    );
    let mut rng = seeded_rng(derive_seed(seed, 0x51D));
    let mut q = gaussian_matrix(n, k, 1.0, &mut rng);
    orthonormalize(&mut q, derive_seed(seed, 1));
    for it in 0..iterations {
        q = aneci_linalg::par::spmm_dense(op, &q);
        orthonormalize(&mut q, derive_seed(seed, 2 + it as u64));
    }
    // Rayleigh quotients as eigenvalue estimates.
    let aq = aneci_linalg::par::spmm_dense(op, &q);
    let mut pairs: Vec<(f64, usize)> = (0..k)
        .map(|c| {
            let lambda: f64 = (0..n).map(|r| q.get(r, c) * aq.get(r, c)).sum();
            (lambda, c)
        })
        .collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    let eigenvalues: Vec<f64> = pairs.iter().map(|p| p.0).collect();
    let eigenvectors = DenseMatrix::from_fn(n, k, |r, c| q.get(r, pairs[c].1));
    (eigenvalues, eigenvectors)
}

/// Spectral node embedding: eigenvectors 2..dim+1 of the normalized
/// adjacency (the leading one is trivial/constant-like and dropped).
pub fn spectral_embedding(graph: &AttributedGraph, config: &SpectralConfig) -> DenseMatrix {
    let op = graph.norm_adjacency();
    let k = (config.dim + 1).min(graph.num_nodes());
    let (_, vecs) = top_eigenvectors(&op, k, config.iterations, config.seed);
    // Drop the first (largest-eigenvalue) column.
    DenseMatrix::from_fn(graph.num_nodes(), k.saturating_sub(1), |r, c| {
        vecs.get(r, c + 1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aneci_graph::karate_club;
    use aneci_linalg::CsrMatrix;

    #[test]
    fn eigen_of_diagonal_matrix() {
        // diag(3, 2, 1): eigenvalues in order, eigenvectors the axes.
        let d = CsrMatrix::from_triplets(3, 3, &[(0, 0, 3.0), (1, 1, 2.0), (2, 2, 1.0)]);
        let (vals, vecs) = top_eigenvectors(&d, 2, 200, 1);
        assert!((vals[0] - 3.0).abs() < 1e-6, "λ₀ = {}", vals[0]);
        assert!((vals[1] - 2.0).abs() < 1e-6, "λ₁ = {}", vals[1]);
        assert!(vecs.get(0, 0).abs() > 0.99);
        assert!(vecs.get(1, 1).abs() > 0.99);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let g = karate_club();
        let op = g.norm_adjacency();
        let (_, vecs) = top_eigenvectors(&op, 4, 150, 2);
        for a in 0..4 {
            for b in 0..4 {
                let dot: f64 = (0..34).map(|r| vecs.get(r, a) * vecs.get(r, b)).sum();
                let want = if a == b { 1.0 } else { 0.0 };
                assert!((dot - want).abs() < 1e-6, "({a},{b}) dot = {dot}");
            }
        }
    }

    #[test]
    fn leading_eigenvalue_of_norm_adjacency_is_one() {
        let g = karate_club();
        let op = g.norm_adjacency();
        let (vals, _) = top_eigenvectors(&op, 1, 200, 3);
        assert!((vals[0] - 1.0).abs() < 1e-6, "λ₀ = {}", vals[0]);
    }

    #[test]
    fn fiedler_like_vector_separates_karate_factions() {
        // The second eigenvector of the normalized adjacency is the classic
        // spectral-bisection signal on karate.
        let g = karate_club();
        let emb = spectral_embedding(
            &g,
            &SpectralConfig {
                dim: 1,
                iterations: 300,
                seed: 4,
            },
        );
        let labels = g.labels.as_ref().unwrap();
        let pred: Vec<usize> = (0..34).map(|i| usize::from(emb.get(i, 0) > 0.0)).collect();
        let acc = pred.iter().zip(labels).filter(|(a, b)| a == b).count() as f64 / 34.0;
        let acc = acc.max(1.0 - acc); // sign is arbitrary
        assert!(acc > 0.9, "spectral bisection accuracy {acc}");
    }

    #[test]
    fn embedding_shape_and_determinism() {
        let g = karate_club();
        let cfg = SpectralConfig {
            dim: 8,
            iterations: 50,
            seed: 5,
        };
        let a = spectral_embedding(&g, &cfg);
        assert_eq!(a.shape(), (34, 8));
        assert_eq!(a, spectral_embedding(&g, &cfg));
    }
}
