//! Parity suite: every pooled kernel must match its serial counterpart to
//! 1e-10 (bit-identical where the docs promise it) across adversarial
//! shapes — 1×N, N×1, empty rows, prime row counts, all-zero sparse rows.
//!
//! `force_pool` drops the pool threshold to 1 and guarantees ≥4 threads, so
//! every kernel here genuinely takes the pooled path even on small inputs
//! and single-core CI runners.

use aneci_linalg::pool;
use aneci_linalg::rng::{gaussian_matrix, seeded_rng};
use aneci_linalg::{CsrMatrix, DenseMatrix};

const TOL: f64 = 1e-10;

/// Deterministic dense test matrix with a sprinkling of exact zeros (so the
/// zero-skip branches of the kernels are exercised).
fn dense(rows: usize, cols: usize, seed: usize) -> DenseMatrix {
    DenseMatrix::from_fn(rows, cols, |r, c| {
        let x = (r * 31 + c * 7 + seed * 13) % 17;
        if x == 0 {
            0.0
        } else {
            x as f64 * 0.25 - 2.0
        }
    })
}

/// Sparse matrix with structurally empty rows (every third row) and a row
/// whose entries would cancel in products.
fn sparse(rows: usize, cols: usize, seed: usize) -> CsrMatrix {
    let mut trips = Vec::new();
    for r in 0..rows {
        if r % 3 == 1 {
            continue; // empty row
        }
        for j in 0..4 {
            let c = (r * 7 + j * 11 + seed) % cols;
            trips.push((r, c, ((r + j + seed) % 5) as f64 - 2.0));
        }
    }
    CsrMatrix::from_triplets(rows, cols, &trips)
}

/// Naive serial dense product, independent of the library kernels.
fn matmul_ref(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    DenseMatrix::from_fn(a.rows(), b.cols(), |r, c| {
        (0..a.cols()).map(|k| a.get(r, k) * b.get(k, c)).sum()
    })
}

#[test]
fn matmul_parity_adversarial_shapes() {
    pool::force_pool();
    // (m, k, n): 1×N, N×1, prime row counts, tile remainders, tiny.
    for &(m, k, n) in &[
        (1usize, 300usize, 64usize),
        (300, 300, 1),
        (257, 131, 67),
        (64, 64, 64),
        (3, 2, 5),
        (97, 17, 8),
    ] {
        let a = dense(m, k, 1);
        let b = dense(k, n, 2);
        let pooled = aneci_linalg::par::matmul(&a, &b);
        let serial = matmul_ref(&a, &b);
        assert!(
            pooled.sub(&serial).max_abs() < TOL,
            "matmul parity failed at {m}x{k}x{n}"
        );
    }
}

#[test]
fn matmul_tn_parity() {
    pool::force_pool();
    for &(m, k, n) in &[(1usize, 5usize, 7usize), (257, 31, 19), (500, 64, 64)] {
        let a = dense(m, k, 3);
        let b = dense(m, n, 4);
        let pooled = aneci_linalg::par::matmul_tn(&a, &b);
        let serial = matmul_ref(&a.transpose(), &b);
        assert!(
            pooled.sub(&serial).max_abs() < TOL,
            "matmul_tn parity failed at ({m}){k}x{n}"
        );
    }
}

#[test]
fn spmm_dense_parity_with_empty_rows() {
    pool::force_pool();
    for &(m, n, d) in &[(1usize, 40usize, 8usize), (257, 101, 33), (90, 90, 1)] {
        let s = sparse(m, n, 5);
        let x = dense(n, d, 6);
        let pooled = aneci_linalg::par::spmm_dense(&s, &x);
        let serial = matmul_ref(&s.to_dense(), &x);
        assert!(
            pooled.sub(&serial).max_abs() < TOL,
            "spmm_dense parity failed at {m}x{n}x{d}"
        );
        // Structurally empty input rows must yield exactly-zero output rows.
        for r in 0..m {
            if s.row_nnz(r) == 0 {
                assert!(pooled.row(r).iter().all(|&v| v == 0.0), "row {r} not zero");
            }
        }
    }
}

#[test]
fn sparse_spmm_parity() {
    pool::force_pool();
    for &(m, k, n) in &[(1usize, 50usize, 50usize), (211, 103, 157), (60, 60, 60)] {
        let a = sparse(m, k, 7);
        let b = sparse(k, n, 8);
        let pooled = a.spmm(&b);
        let serial = matmul_ref(&a.to_dense(), &b.to_dense());
        assert!(
            pooled.to_dense().sub(&serial).max_abs() < TOL,
            "sparse spmm parity failed at {m}x{k}x{n}"
        );
    }
}

#[test]
fn sparse_transpose_parity_is_exact() {
    pool::force_pool();
    for &(m, n) in &[(1usize, 80usize), (257, 61), (96, 1), (100, 100)] {
        let s = sparse(m, n, 9);
        let t = s.transpose();
        assert_eq!(t.to_dense(), s.to_dense().transpose(), "transpose {m}x{n}");
        assert_eq!(t.transpose(), s, "double transpose {m}x{n}");
    }
}

#[test]
fn prune_top_k_parity_is_exact() {
    pool::force_pool();
    let s = sparse(257, 91, 10);
    for k in [0usize, 1, 2, 10] {
        let pruned = s.prune_top_k_per_row(k);
        for r in 0..s.rows() {
            assert!(pruned.row_nnz(r) <= k, "row {r} k={k}");
        }
        // Every surviving entry must exist in the original with equal value.
        for (r, c, v) in pruned.iter() {
            assert_eq!(s.get(r, c), v, "entry ({r},{c}) changed");
        }
    }
    // k larger than any row: identity.
    assert_eq!(s.prune_top_k_per_row(1000), s);
}

#[test]
fn normalize_parity_is_exact() {
    pool::force_pool();
    let s = sparse(257, 257, 11);
    let rn = s.row_normalize();
    for r in 0..s.rows() {
        let orig: f64 = s.row_entries(r).map(|(_, v)| v).sum();
        if s.row_nnz(r) > 0 && orig != 0.0 {
            let sum: f64 = rn.row_entries(r).map(|(_, v)| v).sum();
            assert!((sum - 1.0).abs() < TOL, "row {r} sums to {sum}");
        } else {
            // Empty rows and exactly-cancelling rows pass through unchanged.
            let unchanged: Vec<_> = s.row_entries(r).collect();
            assert_eq!(rn.row_entries(r).collect::<Vec<_>>(), unchanged);
        }
    }
    // Symmetric normalization against a dense reference.
    let sym = s.sym_normalize();
    let deg: Vec<f64> = s.to_dense().row_sums();
    let dense_ref = DenseMatrix::from_fn(s.rows(), s.cols(), |i, j| {
        let (di, dj) = (deg[i], deg[j]);
        if di > 0.0 && dj > 0.0 {
            s.get(i, j) / (di.sqrt() * dj.sqrt())
        } else {
            0.0
        }
    });
    assert!(sym.to_dense().sub(&dense_ref).max_abs() < TOL);
}

#[test]
fn dense_elementwise_and_reductions_parity() {
    pool::force_pool();
    // Big enough to clear the elementwise floor (1<<12 entries).
    let a = dense(257, 67, 12);
    let b = dense(257, 67, 13);

    let mapped = a.map(|v| v * 2.0 - 1.0);
    let zipped = a.zip(&b, |x, y| x * y + 0.5);
    for i in 0..a.len() {
        let (x, y) = (a.as_slice()[i], b.as_slice()[i]);
        assert_eq!(mapped.as_slice()[i], x * 2.0 - 1.0);
        assert_eq!(zipped.as_slice()[i], x * y + 0.5);
    }

    let serial_sum: f64 = a.as_slice().iter().sum();
    assert!((a.sum() - serial_sum).abs() < TOL * serial_sum.abs().max(1.0));
    let serial_dot: f64 = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| x * y)
        .sum();
    assert!((a.dot(&b) - serial_dot).abs() < TOL * serial_dot.abs().max(1.0));

    assert_eq!(a.transpose().transpose(), a);

    let mut soft = a.clone();
    soft.softmax_rows_inplace();
    for row in soft.rows_iter() {
        let sum: f64 = row.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }
}

#[test]
fn pooled_results_stable_across_thread_caps() {
    pool::force_pool();
    let mut rng = seeded_rng(99);
    let a = gaussian_matrix(129, 65, 1.0, &mut rng);
    let b = gaussian_matrix(65, 33, 1.0, &mut rng);
    let wide = aneci_linalg::par::matmul(&a, &b);
    // Capping participation must not change a single bit: the chunk
    // decomposition depends only on the problem shape.
    pool::set_num_threads(2);
    let narrow = aneci_linalg::par::matmul(&a, &b);
    pool::set_num_threads(4);
    assert_eq!(wide, narrow);
}

#[test]
fn nested_parallel_for_does_not_deadlock() {
    pool::force_pool();
    use std::sync::atomic::{AtomicUsize, Ordering};
    let total = AtomicUsize::new(0);
    pool::parallel_for(16, 1, |lo, hi| {
        for _ in lo..hi {
            pool::parallel_for(32, 4, |ilo, ihi| {
                // Two levels down: still must run (inline) and terminate.
                pool::parallel_for(8, 2, |jlo, jhi| {
                    total.fetch_add((ihi - ilo) * (jhi - jlo), Ordering::Relaxed);
                });
            });
        }
    });
    // 16 outer × (sum over inner chunks of chunk_len) pairs…: every inner
    // element pairs with every innermost element: 16 * 32 * 8 with the
    // chunk-product decomposition summing to the same total.
    assert_eq!(total.load(Ordering::Relaxed), 16 * 32 * 8);
}
