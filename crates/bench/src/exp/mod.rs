//! One module per reproduced table/figure; every module exposes
//! `run(&ExpArgs)`. The `src/bin/exp_*` binaries are thin wrappers.

pub mod fig2;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod targeted;
