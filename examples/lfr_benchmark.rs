//! LFR stress test: sweep the mixing parameter μ on an LFR-style benchmark
//! (power-law degrees *and* community sizes — much harder than a balanced
//! SBM) and watch community detection degrade gracefully for AnECI, Louvain
//! and HOPE+k-means as communities blur.
//!
//! ```sh
//! cargo run --release --example lfr_benchmark
//! ```

use aneci::baselines::{hope_embedding, louvain, HopeConfig};
use aneci::graph::graph_stats;
use aneci::prelude::*;

fn main() {
    let seed = 13;
    println!(
        "{:<6}{:>22}{:>22}{:>22}",
        "μ", "Louvain (Q / NMI)", "HOPE+KM (Q / NMI)", "AnECI (Q / NMI)"
    );
    for mu in [0.1, 0.2, 0.3, 0.4, 0.5] {
        let config = LfrConfig {
            num_nodes: 400,
            mean_degree: 10.0,
            mu,
            feature_dim: 64,
            ..Default::default()
        };
        let g = generate_lfr(&config, seed);
        let truth = g.labels.clone().unwrap();
        let k = g.num_classes();

        let lv = louvain(&g, seed);
        let (q_lv, n_lv) = (modularity(&g, &lv), nmi(&lv, &truth));

        let z = hope_embedding(
            &g,
            &HopeConfig {
                dim: k.max(4),
                seed,
                ..Default::default()
            },
        );
        let km = kmeans_best_of(&z, k, 100, 5, seed).assignments;
        let (q_km, n_km) = (modularity(&g, &km), nmi(&km, &truth));

        let (model, _) = train_aneci(&g, &AneciConfig::for_community_detection(k, seed))
            .expect("training failed");
        let an = model.communities();
        let (q_an, n_an) = (modularity(&g, &an), nmi(&an, &truth));

        println!(
            "{mu:<6.1}{:>11.3} /{:>7.3}{:>12.3} /{:>7.3}{:>12.3} /{:>7.3}",
            q_lv, n_lv, q_km, n_km, q_an, n_an
        );
    }

    // Show what the generator actually produced at the hardest setting.
    let g = generate_lfr(
        &LfrConfig {
            num_nodes: 400,
            mu: 0.5,
            ..Default::default()
        },
        seed,
    );
    let s = graph_stats(&g);
    println!(
        "\nμ=0.5 graph: {} nodes, {} edges, mean degree {:.1}, max degree {}, \
         {} components, transitivity {:.3}, homophily {:.2}",
        s.nodes,
        s.edges,
        s.mean_degree,
        s.max_degree,
        s.components,
        s.transitivity,
        s.homophily.unwrap_or(0.0)
    );
}
