//! Finite-difference gradient checking.
//!
//! Used by this crate's own tests and re-exported so downstream crates
//! (models, attacks) can verify their composed losses too.

use aneci_linalg::DenseMatrix;

/// Result of a gradient check.
#[derive(Clone, Debug)]
pub struct GradCheck {
    /// Largest absolute difference between analytic and numeric gradients.
    pub max_abs_err: f64,
    /// Largest relative difference (|a-n| / max(1, |a|, |n|)).
    pub max_rel_err: f64,
}

impl GradCheck {
    /// True if both errors are below `tol`.
    pub fn passes(&self, tol: f64) -> bool {
        self.max_abs_err < tol || self.max_rel_err < tol
    }
}

/// Central-difference check of an analytic gradient.
///
/// `f` maps a parameter matrix to a scalar loss; `x` is the point to check
/// at; `analytic` is the gradient produced by backprop at `x`; `eps` is the
/// probe step (1e-5 is a good default for f64).
pub fn check_gradient(
    f: impl Fn(&DenseMatrix) -> f64,
    x: &DenseMatrix,
    analytic: &DenseMatrix,
    eps: f64,
) -> GradCheck {
    assert_eq!(
        x.shape(),
        analytic.shape(),
        "check_gradient: shape mismatch"
    );
    let mut max_abs = 0.0f64;
    let mut max_rel = 0.0f64;
    let mut probe = x.clone();
    for idx in 0..x.len() {
        let orig = probe.as_slice()[idx];
        probe.as_mut_slice()[idx] = orig + eps;
        let up = f(&probe);
        probe.as_mut_slice()[idx] = orig - eps;
        let down = f(&probe);
        probe.as_mut_slice()[idx] = orig;
        let numeric = (up - down) / (2.0 * eps);
        let a = analytic.as_slice()[idx];
        let abs = (a - numeric).abs();
        let rel = abs / a.abs().max(numeric.abs()).max(1.0);
        max_abs = max_abs.max(abs);
        max_rel = max_rel.max(rel);
    }
    GradCheck {
        max_abs_err: max_abs,
        max_rel_err: max_rel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;
    use aneci_linalg::rng::{gaussian_matrix, seeded_rng};
    use aneci_linalg::CsrMatrix;
    use std::sync::Arc;

    /// Helper: evaluate loss & grad for a 1-parameter tape program.
    fn eval<F>(build: &F, x: &DenseMatrix) -> (f64, DenseMatrix)
    where
        F: Fn(&mut Tape, crate::tape::Var) -> crate::tape::Var,
    {
        let mut t = Tape::new();
        let xv = t.leaf(x.clone());
        let loss = build(&mut t, xv);
        t.backward(loss);
        (t.scalar(loss), t.grad(xv))
    }

    fn check<F>(build: F, x: &DenseMatrix, tol: f64)
    where
        F: Fn(&mut Tape, crate::tape::Var) -> crate::tape::Var,
    {
        let (_, g) = eval(&build, x);
        let gc = check_gradient(|m| eval(&build, m).0, x, &g, 1e-5);
        assert!(
            gc.passes(tol),
            "gradcheck failed: abs={} rel={}",
            gc.max_abs_err,
            gc.max_rel_err
        );
    }

    #[test]
    fn gradcheck_activations() {
        let mut rng = seeded_rng(31);
        let x = gaussian_matrix(4, 3, 1.0, &mut rng);
        check(
            |t, v| {
                let y = t.sigmoid(v);
                t.sum(y)
            },
            &x,
            1e-7,
        );
        check(
            |t, v| {
                let y = t.tanh(v);
                t.sum(y)
            },
            &x,
            1e-7,
        );
        check(
            |t, v| {
                let y = t.leaky_relu(v, 0.01);
                let z = t.hadamard(y, y);
                t.sum(z)
            },
            &x,
            1e-6,
        );
    }

    #[test]
    fn gradcheck_softmax_composition() {
        let mut rng = seeded_rng(32);
        let x = gaussian_matrix(5, 4, 1.0, &mut rng);
        // Non-trivial downstream: sum of squares of softmax.
        check(
            |t, v| {
                let p = t.softmax_rows(v);
                let sq = t.hadamard(p, p);
                t.sum(sq)
            },
            &x,
            1e-6,
        );
    }

    #[test]
    fn gradcheck_matmul_chain() {
        let mut rng = seeded_rng(33);
        let x = gaussian_matrix(4, 3, 1.0, &mut rng);
        let w = gaussian_matrix(3, 2, 1.0, &mut rng);
        let wc = w.clone();
        check(
            move |t, v| {
                let wv = t.constant(wc.clone());
                let y = t.matmul(v, wv);
                let a = t.leaky_relu(y, 0.01);
                t.frob_sq(a)
            },
            &x,
            1e-5,
        );
    }

    #[test]
    fn gradcheck_matmul_tn() {
        let mut rng = seeded_rng(34);
        let x = gaussian_matrix(6, 3, 1.0, &mut rng);
        let k = gaussian_matrix(6, 1, 1.0, &mut rng);
        let kc = k.clone();
        // ||Xᵀk||² — exactly the second modularity term.
        check(
            move |t, v| {
                let kv = t.constant(kc.clone());
                let y = t.matmul_tn(v, kv);
                t.frob_sq(y)
            },
            &x,
            1e-5,
        );
    }

    #[test]
    fn gradcheck_spmm_modularity_term() {
        let mut rng = seeded_rng(35);
        let s = Arc::new(CsrMatrix::from_triplets(
            5,
            5,
            &[
                (0, 1, 0.5),
                (1, 0, 0.5),
                (1, 2, 0.3),
                (2, 1, 0.3),
                (3, 4, 0.9),
                (4, 3, 0.9),
                (2, 2, 0.2),
            ],
        ));
        let x = gaussian_matrix(5, 3, 1.0, &mut rng);
        let sc = Arc::clone(&s);
        // sum(P ⊙ (S P)) with P = softmax(X): the first modularity term.
        check(
            move |t, v| {
                let p = t.softmax_rows(v);
                let sp = t.spmm(&sc, p);
                let prod = t.hadamard(p, sp);
                t.sum(prod)
            },
            &x,
            1e-6,
        );
    }

    #[test]
    fn gradcheck_dense_recon_bce() {
        let mut rng = seeded_rng(36);
        let x = gaussian_matrix(5, 3, 0.7, &mut rng);
        let target = Arc::new(DenseMatrix::from_fn(5, 5, |r, c| {
            if (r + 2 * c) % 3 == 0 {
                0.8
            } else {
                0.1
            }
        }));
        let tc = Arc::clone(&target);
        check(move |t, v| t.dense_recon_bce(v, &tc, 1.0), &x, 1e-5);
        // And with a non-unit positive weight.
        let tc2 = Arc::clone(&target);
        check(move |t, v| t.dense_recon_bce(v, &tc2, 3.5), &x, 1e-5);
    }

    #[test]
    fn gradcheck_pair_bce() {
        let mut rng = seeded_rng(37);
        let x = gaussian_matrix(6, 3, 0.7, &mut rng);
        let pairs: Arc<[(u32, u32, f64)]> = vec![
            (0, 1, 1.0),
            (2, 3, 0.0),
            (4, 5, 1.0),
            (0, 5, 0.25),
            (1, 1, 1.0),
        ]
        .into();
        let pc = Arc::clone(&pairs);
        check(move |t, v| t.pair_bce(v, &pc), &x, 1e-5);
    }

    #[test]
    fn gradcheck_cross_entropy() {
        let mut rng = seeded_rng(38);
        let x = gaussian_matrix(6, 4, 1.0, &mut rng);
        let labels = vec![0, 3, 1, 2, 0, 1];
        let rows = vec![0, 1, 4, 5];
        let (lc, rc) = (labels.clone(), rows.clone());
        check(move |t, v| t.softmax_cross_entropy(v, &lc, &rc), &x, 1e-6);
        let _ = (labels, rows);
    }

    #[test]
    fn gradcheck_full_two_layer_gcn_style_loss() {
        // End-to-end: softmax(S·lrelu(S·X·W1)·W2) through both AnECI loss
        // terms, differentiating through X held fixed, W1 as the parameter.
        let mut rng = seeded_rng(39);
        let n = 6;
        let s = Arc::new(
            CsrMatrix::from_triplets(
                n,
                n,
                &[
                    (0, 1, 1.0),
                    (1, 0, 1.0),
                    (1, 2, 1.0),
                    (2, 1, 1.0),
                    (3, 4, 1.0),
                    (4, 3, 1.0),
                    (4, 5, 1.0),
                    (5, 4, 1.0),
                    (2, 3, 1.0),
                    (3, 2, 1.0),
                ],
            )
            .add_identity()
            .sym_normalize(),
        );
        let xf = gaussian_matrix(n, 4, 1.0, &mut rng);
        let w1 = gaussian_matrix(4, 3, 0.8, &mut rng);
        let w2 = gaussian_matrix(3, 2, 0.8, &mut rng);
        let k = gaussian_matrix(n, 1, 0.5, &mut rng).map(f64::abs);
        let target = Arc::new(DenseMatrix::from_fn(n, n, |r, c| {
            if r.abs_diff(c) <= 1 {
                0.5
            } else {
                0.0
            }
        }));

        let (sc, xc, w2c, kc, tc) = (s, xf, w2, k, target);
        check(
            move |t, w1v| {
                let x = t.constant(xc.clone());
                let w2 = t.constant(w2c.clone());
                let kv = t.constant(kc.clone());
                let xw = t.matmul(x, w1v);
                let h1 = t.spmm(&sc, xw);
                let a1 = t.leaky_relu(h1, 0.01);
                let hw = t.matmul(a1, w2);
                let z = t.spmm(&sc, hw);
                let p = t.softmax_rows(z);
                // modularity pieces
                let sp = t.spmm(&sc, p);
                let term1 = {
                    let h = t.hadamard(p, sp);
                    t.sum(h)
                };
                let y = t.matmul_tn(p, kv);
                let term2 = t.frob_sq(y);
                let q = {
                    let t2 = t.scale(term2, 0.25);
                    t.sub(term1, t2)
                };
                let recon = t.dense_recon_bce(p, &tc, 1.0);
                let negq = t.neg(q);
                let nq = t.scale(negq, 0.7);
                let rc = t.scale(recon, 0.3);
                t.add(nq, rc)
            },
            &w1,
            1e-5,
        );
    }
}
