//! Regenerates Fig. 5 (accuracy under non-targeted random attack).
fn main() {
    aneci_bench::exp::fig5::run(&aneci_bench::ExpArgs::parse());
}
