//! Regenerates Table IV (ablation study).
fn main() {
    aneci_bench::exp::table4::run(&aneci_bench::ExpArgs::parse());
}
