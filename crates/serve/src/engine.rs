//! The JSONL query engine: parse → execute → serialize, batched and
//! concurrent, with an optional LRU response cache.
//!
//! One query per line, one JSON response per line, output order always
//! matching input order. Example session:
//!
//! ```json
//! {"op":"top_k","node":7,"k":5}
//! {"op":"top_k","vector":[0.1,-0.3,...],"k":3,"metric":"dot"}
//! {"op":"community","node":12}
//! {"op":"edge_score","u":3,"v":40}
//! ```
//!
//! Malformed lines produce a typed `{"kind":"error","code":...,...}`
//! response on the corresponding output line — they never panic and never
//! shift the alignment between inputs and outputs. The [`ErrorCode`] on
//! every error response is shared with the HTTP front end (`crate::http`),
//! which maps it onto a 4xx/5xx status line.
//!
//! Batches run on the persistent pool (`aneci_linalg::pool`) in fixed
//! chunks; since every query handler is deterministic, responses are
//! byte-identical regardless of thread count or cache state.

use std::sync::Mutex;

use aneci_linalg::pool;
use serde::{Deserialize, Serialize};

use crate::cache::LruCache;
use crate::hnsw::{HnswConfig, HnswIndex};
use crate::store::{EmbeddingStore, Metric};

/// A single query, tagged by `"op"`.
#[derive(Serialize, Deserialize, Debug, Clone, PartialEq)]
#[serde(tag = "op", rename_all = "snake_case")]
pub enum Query {
    /// Top-k nearest neighbors of a stored node (`node`) or a free vector
    /// (`vector`). Optional: `k`, `metric` ("cosine"/"dot"), `ann`.
    TopK {
        node: Option<usize>,
        vector: Option<Vec<f64>>,
        k: Option<usize>,
        metric: Option<String>,
        ann: Option<bool>,
    },
    /// Community assignment + soft membership of a node.
    Community { node: usize },
    /// Link-prediction score for a node pair (the eval scorer).
    EdgeScore { u: usize, v: usize },
}

/// Machine-readable classification of an error response, shared by the
/// JSONL and HTTP serving paths. Serialized in `snake_case` (for example
/// `{"kind":"error","code":"not_found",...}`); [`ErrorCode::http_status`]
/// is the HTTP front end's status-line mapping.
#[derive(Serialize, Deserialize, Debug, Clone, Copy, PartialEq, Eq)]
#[serde(rename_all = "snake_case")]
pub enum ErrorCode {
    /// The request was syntactically or semantically malformed.
    BadRequest,
    /// The request was well-formed but names something that doesn't exist
    /// (node out of range, membership on a store without one, no route).
    NotFound,
    /// The HTTP method isn't supported on this route.
    MethodNotAllowed,
    /// The peer stalled or the request arrived truncated.
    Timeout,
    /// The request body exceeds the configured limit.
    PayloadTooLarge,
    /// The request line + headers exceed the configured limit.
    HeadersTooLarge,
    /// A required protocol feature isn't implemented (e.g. a
    /// `Transfer-Encoding` other than `chunked`).
    Unsupported,
    /// The server shed the request under load (bounded queue full).
    Overloaded,
    /// Unexpected server-side failure.
    Internal,
}

impl ErrorCode {
    /// The HTTP status code this error class maps to.
    pub fn http_status(self) -> u16 {
        match self {
            ErrorCode::BadRequest => 400,
            ErrorCode::NotFound => 404,
            ErrorCode::MethodNotAllowed => 405,
            ErrorCode::Timeout => 408,
            ErrorCode::PayloadTooLarge => 413,
            ErrorCode::HeadersTooLarge => 431,
            ErrorCode::Unsupported => 501,
            ErrorCode::Overloaded => 503,
            ErrorCode::Internal => 500,
        }
    }
}

/// A scored neighbor in a [`Response::Neighbors`].
#[derive(Serialize, Deserialize, Debug, Clone, PartialEq)]
pub struct Neighbor {
    pub node: usize,
    pub score: f64,
}

/// A single response, tagged by `"kind"`.
#[derive(Serialize, Deserialize, Debug, Clone, PartialEq)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum Response {
    Neighbors {
        neighbors: Vec<Neighbor>,
        metric: String,
        /// `true` when answered by the exact brute-force path, `false` when
        /// answered by the ANN index.
        exact: bool,
    },
    Community {
        node: usize,
        community: usize,
        membership: Vec<f64>,
    },
    EdgeScore {
        u: usize,
        v: usize,
        score: f64,
    },
    Error {
        code: ErrorCode,
        error: String,
    },
}

impl Response {
    /// The error classification, when this is an error response.
    pub fn error_code(&self) -> Option<ErrorCode> {
        match self {
            Response::Error { code, .. } => Some(*code),
            _ => None,
        }
    }
}

/// Engine construction parameters.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// `k` when a top-k query omits it.
    pub default_k: usize,
    /// Metric when a top-k query omits it.
    pub default_metric: Metric,
    /// Build the ANN index and use it for top-k queries by default
    /// (per-query `"ann"` overrides).
    pub use_ann: bool,
    /// Layer-0 beam width for ANN searches.
    pub ef_search: usize,
    /// ANN construction parameters.
    pub hnsw: HnswConfig,
    /// LRU response-cache capacity; 0 disables caching.
    pub cache_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            default_k: 10,
            default_metric: Metric::Cosine,
            use_ann: false,
            ef_search: 64,
            hnsw: HnswConfig::default(),
            cache_capacity: 0,
        }
    }
}

/// Cached registry handles for the serving hot path (one lookup per engine,
/// not per query).
struct EngineMetrics {
    queries: aneci_obs::Counter,
    query_ns: aneci_obs::Histogram,
    cache_hits: aneci_obs::Counter,
    cache_misses: aneci_obs::Counter,
}

impl EngineMetrics {
    fn new() -> Self {
        Self {
            queries: aneci_obs::counter("serve.queries"),
            query_ns: aneci_obs::histogram_time_ns("serve.query_ns"),
            cache_hits: aneci_obs::counter("serve.cache.hits"),
            cache_misses: aneci_obs::counter("serve.cache.misses"),
        }
    }
}

/// The serving engine: store + optional ANN index + optional response cache.
pub struct QueryEngine {
    store: EmbeddingStore,
    ann: Option<HnswIndex>,
    config: EngineConfig,
    /// Keyed by the raw (trimmed) query line; values are response lines.
    /// Correct because every handler is deterministic in the query text.
    cache: Option<Mutex<LruCache<String, String>>>,
    metrics: EngineMetrics,
}

impl QueryEngine {
    /// Builds an engine over `store`. When `config.use_ann` is set, the HNSW
    /// index is built here, over `config.default_metric`.
    pub fn new(store: EmbeddingStore, config: EngineConfig) -> Self {
        let ann = config
            .use_ann
            .then(|| HnswIndex::build(store.embedding(), config.default_metric, &config.hnsw));
        let cache =
            (config.cache_capacity > 0).then(|| Mutex::new(LruCache::new(config.cache_capacity)));
        Self {
            store,
            ann,
            config,
            cache,
            metrics: EngineMetrics::new(),
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &EmbeddingStore {
        &self.store
    }

    /// `(hits, misses)` of the response cache (zeros when disabled).
    pub fn cache_stats(&self) -> (u64, u64) {
        match &self.cache {
            Some(c) => {
                let c = c.lock().unwrap();
                (c.hits(), c.misses())
            }
            None => (0, 0),
        }
    }

    /// Executes one parsed query.
    pub fn run(&self, query: &Query) -> Response {
        match query {
            Query::TopK {
                node,
                vector,
                k,
                metric,
                ann,
            } => self.run_top_k(*node, vector.as_deref(), *k, metric.as_deref(), *ann),
            Query::Community { node } => self.run_community(*node),
            Query::EdgeScore { u, v } => self.run_edge_score(*u, *v),
        }
    }

    fn run_top_k(
        &self,
        node: Option<usize>,
        vector: Option<&[f64]>,
        k: Option<usize>,
        metric: Option<&str>,
        ann: Option<bool>,
    ) -> Response {
        let k = k.unwrap_or(self.config.default_k);
        let metric = match metric {
            None => self.config.default_metric,
            Some(name) => match Metric::parse(name) {
                Some(m) => m,
                None => {
                    return err(
                        ErrorCode::BadRequest,
                        format!("unknown metric {name:?} (cosine|dot)"),
                    )
                }
            },
        };
        let owned;
        let (query, exclude): (&[f64], Option<usize>) = match (node, vector) {
            (Some(_), Some(_)) => {
                return err(
                    ErrorCode::BadRequest,
                    "top_k takes either \"node\" or \"vector\", not both",
                )
            }
            (None, None) => {
                return err(
                    ErrorCode::BadRequest,
                    "top_k needs a \"node\" or a \"vector\"",
                )
            }
            (Some(n), None) => {
                if n >= self.store.num_nodes() {
                    return err(
                        ErrorCode::NotFound,
                        format!(
                            "node {n} out of range (store has {} nodes)",
                            self.store.num_nodes()
                        ),
                    );
                }
                owned = self.store.vector_of(n).to_vec();
                (&owned, Some(n))
            }
            (None, Some(v)) => {
                if v.len() != self.store.dim() {
                    return err(
                        ErrorCode::BadRequest,
                        format!(
                            "vector has {} dims, store embeds in {}",
                            v.len(),
                            self.store.dim()
                        ),
                    );
                }
                (v, None)
            }
        };

        // ANN only answers the metric it was built for; anything else falls
        // back to the exact path (correctness over speed).
        let want_ann = ann.unwrap_or(self.config.use_ann);
        let index = self
            .ann
            .as_ref()
            .filter(|idx| want_ann && idx.metric() == metric);
        let (hits, exact) = match index {
            Some(idx) => (idx.search(query, k, self.config.ef_search, exclude), false),
            None => (self.store.top_k(query, k, metric, exclude), true),
        };
        Response::Neighbors {
            neighbors: hits
                .into_iter()
                .map(|(node, score)| Neighbor { node, score })
                .collect(),
            metric: metric.name().to_string(),
            exact,
        }
    }

    fn run_community(&self, node: usize) -> Response {
        if node >= self.store.num_nodes() {
            return err(
                ErrorCode::NotFound,
                format!(
                    "node {node} out of range (store has {} nodes)",
                    self.store.num_nodes()
                ),
            );
        }
        match (self.store.community(node), self.store.membership_row(node)) {
            (Some(community), Some(row)) => Response::Community {
                node,
                community,
                membership: row.to_vec(),
            },
            _ => err(
                ErrorCode::NotFound,
                "store was built without community membership",
            ),
        }
    }

    fn run_edge_score(&self, u: usize, v: usize) -> Response {
        let n = self.store.num_nodes();
        if u >= n || v >= n {
            return err(
                ErrorCode::NotFound,
                format!("edge ({u}, {v}) out of range (store has {n} nodes)"),
            );
        }
        Response::EdgeScore {
            u,
            v,
            score: self.store.edge_score(u, v),
        }
    }

    /// Parses and executes one JSONL line, returning the serialized
    /// response line. Never panics on malformed input. Consults the LRU
    /// cache first when enabled.
    pub fn run_line(&self, line: &str) -> String {
        let start = std::time::Instant::now();
        self.metrics.queries.inc();
        let key = line.trim();
        if let Some(cache) = &self.cache {
            if let Some(hit) = cache.lock().unwrap().get(&key.to_string()).cloned() {
                self.metrics.cache_hits.inc();
                self.metrics
                    .query_ns
                    .observe(start.elapsed().as_nanos() as f64);
                return hit;
            }
            self.metrics.cache_misses.inc();
        }
        let response = match serde_json::from_str::<Query>(key) {
            Ok(q) => self.run(&q),
            Err(e) => err(ErrorCode::BadRequest, format!("bad query: {e}")),
        };
        let out = serde_json::to_string(&response).expect("response serialization cannot fail");
        if let Some(cache) = &self.cache {
            cache.lock().unwrap().put(key.to_string(), out.clone());
        }
        self.metrics
            .query_ns
            .observe(start.elapsed().as_nanos() as f64);
        out
    }

    /// Executes a batch of JSONL lines concurrently on the persistent pool.
    /// Responses come back in input order, and — because every handler is
    /// deterministic — are byte-identical for any thread count.
    pub fn run_batch<S: AsRef<str> + Sync>(&self, lines: &[S]) -> Vec<String> {
        let n = lines.len();
        if n == 0 {
            return Vec::new();
        }
        let grain = pool::row_grain(n, 8);
        let chunks = pool::parallel_map_chunks(n, grain, |lo, hi| {
            lines[lo..hi]
                .iter()
                .map(|l| self.run_line(l.as_ref()))
                .collect::<Vec<String>>()
        });
        chunks.into_iter().flatten().collect()
    }
}

fn err(code: ErrorCode, message: impl Into<String>) -> Response {
    Response::Error {
        code,
        error: message.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aneci_linalg::rng::{gaussian_matrix, seeded_rng};

    fn engine(config: EngineConfig) -> QueryEngine {
        let mut rng = seeded_rng(11);
        let z = gaussian_matrix(120, 8, 1.0, &mut rng);
        let p = z.softmax_rows();
        QueryEngine::new(EmbeddingStore::new(z, Some(p)), config)
    }

    #[test]
    fn top_k_round_trip() {
        let e = engine(EngineConfig::default());
        let out = e.run_line(r#"{"op":"top_k","node":7,"k":3}"#);
        let resp: Response = serde_json::from_str(&out).unwrap();
        match resp {
            Response::Neighbors {
                neighbors,
                metric,
                exact,
            } => {
                assert_eq!(neighbors.len(), 3);
                assert_eq!(metric, "cosine");
                assert!(exact);
                assert!(neighbors.iter().all(|n| n.node != 7));
                // Engine answer equals a direct store call.
                let direct = e.store().top_k_node(7, 3, Metric::Cosine);
                for (nb, (id, score)) in neighbors.iter().zip(direct) {
                    assert_eq!(nb.node, id);
                    assert_eq!(nb.score, score);
                }
            }
            other => panic!("expected neighbors, got {other:?}"),
        }
    }

    #[test]
    fn free_vector_and_metric_override() {
        let e = engine(EngineConfig::default());
        let v: Vec<f64> = e.store().vector_of(0).to_vec();
        let line = format!(
            r#"{{"op":"top_k","vector":{},"k":2,"metric":"dot"}}"#,
            serde_json::to_string(&v).unwrap()
        );
        let resp: Response = serde_json::from_str(&e.run_line(&line)).unwrap();
        match resp {
            Response::Neighbors { metric, .. } => assert_eq!(metric, "dot"),
            other => panic!("expected neighbors, got {other:?}"),
        }
    }

    #[test]
    fn malformed_lines_yield_error_responses_in_place() {
        let e = engine(EngineConfig::default());
        let lines = [
            r#"{"op":"top_k","node":7}"#,
            "not json at all",
            r#"{"op":"unknown_op"}"#,
            r#"{"op":"top_k"}"#,
            r#"{"op":"top_k","node":7,"vector":[1.0]}"#,
            r#"{"op":"top_k","node":100000}"#,
            r#"{"op":"top_k","vector":[1.0,2.0]}"#,
            r#"{"op":"top_k","node":1,"metric":"hamming"}"#,
            r#"{"op":"community","node":99999}"#,
            r#"{"op":"edge_score","u":0,"v":99999}"#,
            "",
        ];
        let out = e.run_batch(&lines);
        assert_eq!(out.len(), lines.len());
        // First line is fine, everything after is a structured error.
        assert!(out[0].contains("\"kind\":\"neighbors\""));
        for (line, resp) in lines.iter().zip(&out).skip(1) {
            assert!(
                resp.contains("\"kind\":\"error\""),
                "line {line:?} gave {resp}"
            );
        }
    }

    #[test]
    fn community_and_edge_score_queries() {
        let e = engine(EngineConfig::default());
        let resp: Response =
            serde_json::from_str(&e.run_line(r#"{"op":"community","node":4}"#)).unwrap();
        match resp {
            Response::Community {
                node, membership, ..
            } => {
                assert_eq!(node, 4);
                assert!((membership.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            }
            other => panic!("expected community, got {other:?}"),
        }

        let resp: Response =
            serde_json::from_str(&e.run_line(r#"{"op":"edge_score","u":3,"v":9}"#)).unwrap();
        match resp {
            Response::EdgeScore { score, .. } => {
                assert_eq!(
                    score,
                    aneci_eval::linkpred::edge_score(e.store().embedding(), 3, 9),
                    "serve-time edge score must equal the eval scorer"
                );
            }
            other => panic!("expected edge_score, got {other:?}"),
        }
    }

    #[test]
    fn ann_engine_answers_and_reports_inexact_path() {
        let e = engine(EngineConfig {
            use_ann: true,
            ..EngineConfig::default()
        });
        let resp: Response =
            serde_json::from_str(&e.run_line(r#"{"op":"top_k","node":7,"k":5}"#)).unwrap();
        match resp {
            Response::Neighbors {
                neighbors, exact, ..
            } => {
                assert_eq!(neighbors.len(), 5);
                assert!(!exact, "ann engine should use the index by default");
            }
            other => panic!("expected neighbors, got {other:?}"),
        }
        // Per-query opt-out returns to the exact path.
        let resp: Response =
            serde_json::from_str(&e.run_line(r#"{"op":"top_k","node":7,"k":5,"ann":false}"#))
                .unwrap();
        match resp {
            Response::Neighbors { exact, .. } => assert!(exact),
            other => panic!("expected neighbors, got {other:?}"),
        }
        // Metric the index wasn't built for → exact fallback, not wrong data.
        let resp: Response =
            serde_json::from_str(&e.run_line(r#"{"op":"top_k","node":7,"k":5,"metric":"dot"}"#))
                .unwrap();
        match resp {
            Response::Neighbors { exact, metric, .. } => {
                assert!(exact);
                assert_eq!(metric, "dot");
            }
            other => panic!("expected neighbors, got {other:?}"),
        }
    }

    #[test]
    fn cache_serves_identical_bytes_and_counts_hits() {
        let e = engine(EngineConfig {
            cache_capacity: 16,
            ..EngineConfig::default()
        });
        let line = r#"{"op":"top_k","node":3,"k":4}"#;
        let first = e.run_line(line);
        let second = e.run_line(line);
        assert_eq!(first, second);
        let (hits, misses) = e.cache_stats();
        assert_eq!(hits, 1);
        assert_eq!(misses, 1);
        // Cached and uncached engines agree byte-for-byte.
        let plain = engine(EngineConfig::default());
        assert_eq!(plain.run_line(line), first);
    }

    #[test]
    fn batch_output_bit_identical_across_thread_counts() {
        use aneci_linalg::pool;
        pool::force_pool();
        let e = engine(EngineConfig::default());
        let lines: Vec<String> = (0..200)
            .map(|i| match i % 3 {
                0 => format!(r#"{{"op":"top_k","node":{},"k":5}}"#, i % 120),
                1 => format!(r#"{{"op":"community","node":{}}}"#, i % 120),
                _ => format!(
                    r#"{{"op":"edge_score","u":{},"v":{}}}"#,
                    i % 120,
                    (i * 7) % 120
                ),
            })
            .collect();

        let multi = e.run_batch(&lines);
        pool::set_num_threads(1);
        let single = e.run_batch(&lines);
        pool::set_num_threads(4);

        assert_eq!(multi, single);
        // Batch equals line-by-line serial execution, in order.
        for (line, resp) in lines.iter().zip(&multi) {
            assert_eq!(&e.run_line(line), resp);
        }
    }
}
