//! Fig. 7 — community detection measured by modularity (Eq. 4).
//!
//! The paper's fairness protocol: attributes are replaced by the identity
//! matrix (vGraph/ComE use structure only). AnECI assigns each node to
//! `argmax_k p_i^k`; embedding baselines are clustered with k-means++; the
//! Louvain row is the classical direct-maximization reference.

use crate::{print_table, write_csv, ExpArgs};
use aneci_baselines::{deepwalk, louvain, DeepWalkConfig, Dgi, DgiConfig, Gae, GaeConfig};
use aneci_core::{train_aneci, AneciConfig};
use aneci_eval::{kmeans_best_of, modularity};
use aneci_linalg::rng::derive_seed;
use aneci_linalg::stats::mean;
use aneci_linalg::DenseMatrix;

const METHODS: [&str; 5] = ["DeepWalk+KM", "GAE+KM", "DGI+KM", "Louvain", "AnECI"];

/// Runs the Fig. 7 experiment.
pub fn run(args: &ExpArgs) {
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for &dataset in &args.datasets {
        let mut per_method: Vec<Vec<f64>> = vec![Vec::new(); METHODS.len()];
        for round in 0..args.rounds {
            let seed = derive_seed(args.seed, round as u64 + 777);
            let mut graph = dataset.generate(args.scale, seed);
            // Identity attributes for fairness (Sec. VI-D).
            graph.set_features(DenseMatrix::identity(graph.num_nodes()));
            let k = graph.num_classes().max(2);
            eprintln!("[fig7] {} round {} (k = {k})", dataset.name(), round);

            let cluster = |z: &DenseMatrix, seed: u64| -> Vec<usize> {
                kmeans_best_of(z, k, 100, 5, seed).assignments
            };

            let z = deepwalk(
                &graph,
                &DeepWalkConfig {
                    seed,
                    ..Default::default()
                },
            );
            per_method[0].push(modularity(&graph, &cluster(&z, seed)));

            let gae = Gae::fit(
                &graph,
                &GaeConfig {
                    seed,
                    ..Default::default()
                },
            );
            per_method[1].push(modularity(&graph, &cluster(gae.embedding(), seed)));

            let dgi = Dgi::fit(
                &graph,
                &DgiConfig {
                    seed,
                    ..Default::default()
                },
            );
            per_method[2].push(modularity(&graph, &cluster(dgi.embedding(), seed)));

            per_method[3].push(modularity(&graph, &louvain(&graph, seed)));

            let config = AneciConfig::for_community_detection(k, seed);
            let (model, _) = train_aneci(&graph, &config).unwrap();
            per_method[4].push(modularity(&graph, &model.communities()));
        }
        let means: Vec<f64> = per_method.iter().map(|s| mean(s)).collect();
        rows.push({
            let mut r = vec![dataset.name().to_string()];
            r.extend(means.iter().map(|m| format!("{m:.3}")));
            r
        });
        for (name, m) in METHODS.iter().zip(&means) {
            csv_rows.push(vec![
                name.to_string(),
                dataset.name().to_string(),
                format!("{m:.4}"),
            ]);
        }
    }
    print_table(
        "Fig. 7 — community detection modularity (identity attributes)",
        &[
            "dataset",
            "DeepWalk+KM",
            "GAE+KM",
            "DGI+KM",
            "Louvain",
            "AnECI",
        ],
        &rows,
    );
    let path = write_csv(
        &args.out_dir,
        "fig7.csv",
        "method,dataset,modularity",
        &csv_rows,
    )
    .expect("write csv");
    println!("wrote {}", path.display());
}
