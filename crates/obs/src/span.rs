//! Hierarchical span timers.
//!
//! A span is a named region of work. Spans nest per-thread: opening a span
//! inside another dot-joins the names, so
//!
//! ```
//! use aneci_obs::span;
//! {
//!     let _train = span("demo.train");
//!     let _enc = span("encode"); // records as "demo.train.encode"
//! }
//! let snap = aneci_obs::global().snapshot();
//! assert_eq!(snap.counter("span.demo.train.encode.calls"), Some(1));
//! ```
//!
//! On exit (guard drop) a span records into the global registry:
//!
//! * `span.<path>_ns` — wall-time histogram (exponential ns buckets);
//! * `span.<path>.calls` — invocation counter.
//!
//! The `_ns` histogram is excluded from [`crate::Snapshot::deterministic`];
//! the `.calls` counter is not, so the *shape* of a run (which phases ran,
//! how many times) is part of the deterministic view even though the
//! timings are not. If a JSONL sink is installed, each exit additionally
//! emits a `{"type":"span",...}` event line.

use std::cell::RefCell;
use std::time::Instant;

use crate::sink::{self, json};

thread_local! {
    /// Dot-joined path of currently open spans on this thread.
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Opens a span named `name` nested under this thread's currently open
/// spans. The returned guard records the span on drop. While recording is
/// globally disabled ([`crate::set_enabled`]) the guard is inert.
pub fn span(name: &str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard {
            path: None,
            start: Instant::now(),
        };
    }
    let path = STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = match stack.last() {
            Some(parent) => format!("{parent}.{name}"),
            None => name.to_string(),
        };
        stack.push(path.clone());
        path
    });
    SpanGuard {
        path: Some(path),
        start: Instant::now(),
    }
}

/// RAII guard for an open span; records timing and call count on drop.
#[must_use = "a span measures the scope it lives in; bind it to a variable"]
pub struct SpanGuard {
    /// Full dot-joined path, or `None` for an inert guard.
    path: Option<String>,
    start: Instant,
}

impl SpanGuard {
    /// The span's full dot-joined path (`None` if recording was disabled
    /// when the span opened).
    pub fn path(&self) -> Option<&str> {
        self.path.as_deref()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(path) = self.path.take() else { return };
        let wall_ns = self.start.elapsed().as_nanos() as u64;
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Pop our own frame. Out-of-order drops (guards stored and
            // dropped in a different order) pop whatever is on top; paths
            // were fixed at open time so metrics stay correct.
            stack.pop();
        });
        crate::global()
            .histogram_time_ns(&format!("span.{path}_ns"))
            .observe(wall_ns as f64);
        crate::global().counter(&format!("span.{path}.calls")).inc();
        if sink::sink_active() {
            sink::emit_line(&format!(
                "{{\"type\":\"span\",\"path\":{},\"wall_ns\":{wall_ns}}}",
                json::string(&path)
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_dot_join_paths() {
        crate::set_enabled(true);
        {
            let outer = span("spantest.outer");
            assert_eq!(outer.path(), Some("spantest.outer"));
            let inner = span("inner");
            assert_eq!(inner.path(), Some("spantest.outer.inner"));
        }
        // Siblings after the nest see the correct parent again.
        {
            let _outer = span("spantest.outer");
            let second = span("second");
            assert_eq!(second.path(), Some("spantest.outer.second"));
        }
        let snap = crate::global().snapshot();
        assert_eq!(snap.counter("span.spantest.outer.calls"), Some(2));
        assert_eq!(snap.counter("span.spantest.outer.inner.calls"), Some(1));
        assert_eq!(snap.counter("span.spantest.outer.second.calls"), Some(1));
        let h = snap.histogram("span.spantest.outer_ns").unwrap();
        assert_eq!(h.count, 2);
        assert!(h.min >= 0.0);
    }

    #[test]
    fn disabled_spans_are_inert() {
        let was = crate::enabled();
        crate::set_enabled(false);
        {
            let g = span("spantest.disabled");
            assert_eq!(g.path(), None);
        }
        crate::set_enabled(was);
        let snap = crate::global().snapshot();
        assert_eq!(snap.counter("span.spantest.disabled.calls"), None);
    }

    #[test]
    fn span_stack_is_per_thread() {
        crate::set_enabled(true);
        let _outer = span("spantest.main");
        let handle = std::thread::spawn(|| {
            // A fresh thread has an empty stack — no inherited parent.
            let g = span("spantest.worker");
            g.path().map(str::to_string)
        });
        assert_eq!(handle.join().unwrap().as_deref(), Some("spantest.worker"));
    }
}
