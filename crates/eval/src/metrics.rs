//! Evaluation metrics used across the paper's experiments:
//! accuracy / macro-F1 (node classification), AUC (anomaly detection),
//! modularity (community detection, Eq. 4), NMI and ARI (clustering
//! agreement).

use aneci_graph::AttributedGraph;

/// Classification accuracy.
pub fn accuracy(pred: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "accuracy: length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    let correct = pred.iter().zip(truth).filter(|(a, b)| a == b).count();
    correct as f64 / pred.len() as f64
}

/// Macro-averaged F1 over the classes present in the ground truth.
pub fn macro_f1(pred: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "macro_f1: length mismatch");
    if truth.is_empty() {
        return 0.0;
    }
    let k = truth.iter().chain(pred).copied().max().unwrap_or(0) + 1;
    let mut tp = vec![0usize; k];
    let mut fp = vec![0usize; k];
    let mut fn_ = vec![0usize; k];
    for (&p, &t) in pred.iter().zip(truth) {
        if p == t {
            tp[p] += 1;
        } else {
            fp[p] += 1;
            fn_[t] += 1;
        }
    }
    let mut classes = 0usize;
    let mut total = 0.0;
    for c in 0..k {
        if tp[c] + fn_[c] == 0 {
            continue; // class absent from the ground truth
        }
        classes += 1;
        let prec = if tp[c] + fp[c] == 0 {
            0.0
        } else {
            tp[c] as f64 / (tp[c] + fp[c]) as f64
        };
        let rec = tp[c] as f64 / (tp[c] + fn_[c]) as f64;
        if prec + rec > 0.0 {
            total += 2.0 * prec * rec / (prec + rec);
        }
    }
    if classes == 0 {
        0.0
    } else {
        total / classes as f64
    }
}

/// Area under the ROC curve via the Mann–Whitney statistic with midrank tie
/// handling. `labels[i]` is true for positives; `scores[i]` is the anomaly /
/// confidence score (higher = more positive).
pub fn auc(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "auc: length mismatch");
    let n_pos = labels.iter().filter(|&&l| l).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Rank the scores (average ranks over ties).
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).unwrap());
    let mut ranks = vec![0.0; scores.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &id in &idx[i..=j] {
            ranks[id] = avg_rank;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 = ranks
        .iter()
        .zip(labels)
        .filter(|(_, &l)| l)
        .map(|(&r, _)| r)
        .sum();
    let u = rank_sum_pos - n_pos as f64 * (n_pos as f64 + 1.0) / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

/// Classic Newman–Girvan modularity (Eq. 4 of the paper) of a hard
/// partition, computed with the standard per-community decomposition
/// `Q = Σ_c [ m_c/M − (d_c/2M)² ]` where `m_c` is the number of intra-`c`
/// edges and `d_c` the total degree of `c`.
///
/// Note: per the classic definition this uses the *hollow* adjacency (no
/// self-loops) and the undirected edge count `M`.
pub fn modularity(graph: &AttributedGraph, partition: &[usize]) -> f64 {
    assert_eq!(
        partition.len(),
        graph.num_nodes(),
        "modularity: partition length mismatch"
    );
    let m = graph.num_edges();
    if m == 0 {
        return 0.0;
    }
    let k = partition.iter().copied().max().unwrap_or(0) + 1;
    let mut intra = vec![0usize; k];
    let mut degree = vec![0usize; k];
    for (u, v) in graph.edge_list() {
        if partition[u] == partition[v] {
            intra[partition[u]] += 1;
        }
    }
    for u in 0..graph.num_nodes() {
        degree[partition[u]] += graph.degree(u);
    }
    let m = m as f64;
    (0..k)
        .map(|c| intra[c] as f64 / m - (degree[c] as f64 / (2.0 * m)).powi(2))
        .sum()
}

/// Brute-force modularity straight from Eq. 4 — O(N²); exists so tests can
/// pin the fast implementation to the definition.
pub fn modularity_bruteforce(graph: &AttributedGraph, partition: &[usize]) -> f64 {
    let n = graph.num_nodes();
    let m = graph.num_edges() as f64;
    if m == 0.0 {
        return 0.0;
    }
    let deg = graph.degrees();
    let mut q = 0.0;
    for i in 0..n {
        for j in 0..n {
            if partition[i] != partition[j] {
                continue;
            }
            let a = if graph.has_edge(i, j) { 1.0 } else { 0.0 };
            q += a - deg[i] as f64 * deg[j] as f64 / (2.0 * m);
        }
    }
    q / (2.0 * m)
}

/// Normalized mutual information between two labelings (arithmetic-mean
/// normalization). Returns 1 for identical partitions up to relabeling, 0
/// for independent ones.
pub fn nmi(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len(), "nmi: length mismatch");
    let n = a.len();
    if n == 0 {
        return 0.0;
    }
    let ka = a.iter().copied().max().unwrap_or(0) + 1;
    let kb = b.iter().copied().max().unwrap_or(0) + 1;
    let mut joint = vec![vec![0usize; kb]; ka];
    let mut ma = vec![0usize; ka];
    let mut mb = vec![0usize; kb];
    for (&x, &y) in a.iter().zip(b) {
        joint[x][y] += 1;
        ma[x] += 1;
        mb[y] += 1;
    }
    let n = n as f64;
    let mut mi = 0.0;
    for x in 0..ka {
        for y in 0..kb {
            let nxy = joint[x][y] as f64;
            if nxy == 0.0 {
                continue;
            }
            mi += nxy / n * ((nxy * n) / (ma[x] as f64 * mb[y] as f64)).ln();
        }
    }
    let entropy = |counts: &[usize]| -> f64 {
        counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / n;
                -p * p.ln()
            })
            .sum()
    };
    let (ha, hb) = (entropy(&ma), entropy(&mb));
    if ha == 0.0 && hb == 0.0 {
        return 1.0; // both trivial single-cluster partitions
    }
    let denom = 0.5 * (ha + hb);
    if denom == 0.0 {
        0.0
    } else {
        (mi / denom).clamp(0.0, 1.0)
    }
}

/// Adjusted Rand index between two labelings.
pub fn ari(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len(), "ari: length mismatch");
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let ka = a.iter().copied().max().unwrap_or(0) + 1;
    let kb = b.iter().copied().max().unwrap_or(0) + 1;
    let mut joint = vec![vec![0usize; kb]; ka];
    let mut ma = vec![0usize; ka];
    let mut mb = vec![0usize; kb];
    for (&x, &y) in a.iter().zip(b) {
        joint[x][y] += 1;
        ma[x] += 1;
        mb[y] += 1;
    }
    let c2 = |x: usize| (x * x.saturating_sub(1)) as f64 / 2.0;
    let sum_joint: f64 = joint.iter().flatten().map(|&x| c2(x)).sum();
    let sum_a: f64 = ma.iter().map(|&x| c2(x)).sum();
    let sum_b: f64 = mb.iter().map(|&x| c2(x)).sum();
    let total = c2(n);
    let expected = sum_a * sum_b / total;
    let max = 0.5 * (sum_a + sum_b);
    if (max - expected).abs() < 1e-12 {
        return if (sum_joint - expected).abs() < 1e-12 {
            1.0
        } else {
            0.0
        };
    }
    (sum_joint - expected) / (max - expected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aneci_graph::karate_club;
    use aneci_graph::AttributedGraph;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[0, 1, 2], &[0, 1, 2]), 1.0);
        assert_eq!(accuracy(&[0, 0, 0], &[0, 1, 2]), 1.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn macro_f1_balanced_case() {
        // Perfect prediction → F1 = 1.
        assert!((macro_f1(&[0, 1, 0, 1], &[0, 1, 0, 1]) - 1.0).abs() < 1e-12);
        // Everything class 0 against balanced truth: class0 P=0.5 R=1
        // F1=2/3; class1 F1=0 → macro 1/3.
        assert!((macro_f1(&[0, 0, 0, 0], &[0, 1, 0, 1]) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn auc_perfect_and_random() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        assert!((auc(&scores, &labels) - 1.0).abs() < 1e-12);
        let inverted = [false, false, true, true];
        assert!((auc(&scores, &inverted) - 0.0).abs() < 1e-12);
        // All-ties → 0.5.
        assert!((auc(&[0.5, 0.5, 0.5, 0.5], &labels) - 0.5).abs() < 1e-12);
        // Degenerate single-class input → defined as 0.5.
        assert_eq!(auc(&scores, &[true, true, true, true]), 0.5);
    }

    #[test]
    fn auc_with_partial_overlap() {
        // scores: pos {3, 1}, neg {2, 0}: pairs (3>2),(3>0),(1<2),(1>0) → 3/4.
        let scores = [3.0, 1.0, 2.0, 0.0];
        let labels = [true, true, false, false];
        assert!((auc(&scores, &labels) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn modularity_matches_bruteforce_on_karate() {
        let g = karate_club();
        let partition = g.labels.clone().unwrap();
        let fast = modularity(&g, &partition);
        let slow = modularity_bruteforce(&g, &partition);
        assert!((fast - slow).abs() < 1e-12);
        // The known faction modularity of karate is ≈ 0.3582.
        assert!((fast - 0.3582).abs() < 0.01, "Q = {fast}");
    }

    #[test]
    fn modularity_of_single_community_is_zero() {
        let g = karate_club();
        let partition = vec![0; g.num_nodes()];
        assert!(modularity(&g, &partition).abs() < 1e-12);
    }

    #[test]
    fn modularity_prefers_true_communities() {
        let g = karate_club();
        let truth = g.labels.clone().unwrap();
        let mut rng = aneci_linalg::rng::seeded_rng(5);
        let mut random = truth.clone();
        aneci_linalg::rng::shuffle(&mut random, &mut rng);
        assert!(modularity(&g, &truth) > modularity(&g, &random) + 0.2);
    }

    #[test]
    fn modularity_two_cliques() {
        // Two disjoint triangles: perfect 2-community split.
        let g = AttributedGraph::from_edges_plain(
            6,
            &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)],
            None,
        );
        let q = modularity(&g, &[0, 0, 0, 1, 1, 1]);
        // Q = 2 * (3/6 - (6/12)²) = 2 * (0.5 - 0.25) = 0.5.
        assert!((q - 0.5).abs() < 1e-12);
    }

    #[test]
    fn nmi_identical_and_relabelled() {
        let a = vec![0, 0, 1, 1, 2, 2];
        assert!((nmi(&a, &a) - 1.0).abs() < 1e-12);
        let relabel = vec![2, 2, 0, 0, 1, 1];
        assert!((nmi(&a, &relabel) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nmi_independent_is_low() {
        let a: Vec<usize> = (0..200).map(|i| i % 2).collect();
        let b: Vec<usize> = (0..200).map(|i| (i / 2) % 2).collect();
        assert!(nmi(&a, &b) < 0.05);
    }

    #[test]
    fn ari_identical_and_random() {
        let a = vec![0, 0, 1, 1, 2, 2];
        assert!((ari(&a, &a) - 1.0).abs() < 1e-12);
        let relabel = vec![1, 1, 2, 2, 0, 0];
        assert!((ari(&a, &relabel) - 1.0).abs() < 1e-12);
        let b: Vec<usize> = (0..200).map(|i| i % 2).collect();
        let c: Vec<usize> = (0..200).map(|i| (i / 2) % 2).collect();
        assert!(ari(&b, &c).abs() < 0.05);
    }
}
