//! Generation-counted, atomically swappable serving snapshots.
//!
//! A [`Snapshot`] bundles everything one query needs — the
//! [`EmbeddingStore`], the optional ANN index, and a monotonically
//! increasing generation number — into a single immutable unit behind an
//! `Arc`. The [`SnapshotHandle`] is the swap point: readers take a brief
//! read lock only long enough to clone the `Arc` (no allocation, no copy),
//! then run the whole query against that pinned snapshot, so a query can
//! never observe half of one generation and half of the next. Publishing
//! builds the replacement entirely off to the side and swaps the pointer
//! under a write lock — the pause readers can observe is one pointer
//! assignment, not a rebuild.
//!
//! [`SnapshotUpdate`] is the serializable delta vocabulary (upserts +
//! deletes) shared by the `/v1/admin/reindex` route and the on-disk delta
//! log (one JSON object per line), so a crashed server replays exactly the
//! updates it acknowledged.

use std::sync::{Arc, RwLock};

use serde::{Deserialize, Serialize};

use crate::hnsw::HnswIndex;
use crate::store::EmbeddingStore;

/// One immutable serving state: store + ANN + generation.
pub struct Snapshot {
    /// The exact-scan store (tombstones included).
    pub store: EmbeddingStore,
    /// The ANN index, when the engine was configured with one.
    pub ann: Option<HnswIndex>,
    /// Monotonic generation counter; 0 is the initially loaded state and
    /// every publish increments it by one.
    pub generation: u64,
}

/// The atomically swappable handle readers and the reindex path share.
pub struct SnapshotHandle {
    inner: RwLock<Arc<Snapshot>>,
}

impl SnapshotHandle {
    /// Wraps an initial state as generation 0.
    pub fn new(store: EmbeddingStore, ann: Option<HnswIndex>) -> Self {
        aneci_obs::gauge("serve.snapshot.generation").set(0.0);
        Self {
            inner: RwLock::new(Arc::new(Snapshot {
                store,
                ann,
                generation: 0,
            })),
        }
    }

    /// Pins the current snapshot: one `Arc` clone under a read lock. The
    /// caller holds a consistent view for as long as it keeps the `Arc`,
    /// regardless of how many generations are published meanwhile.
    pub fn load(&self) -> Arc<Snapshot> {
        Arc::clone(&lock_read(&self.inner))
    }

    /// The current generation number.
    pub fn generation(&self) -> u64 {
        lock_read(&self.inner).generation
    }

    /// Publishes a replacement state as the next generation and returns
    /// its number. In-flight readers keep their pinned snapshot; new loads
    /// see the replacement immediately.
    pub fn publish(&self, store: EmbeddingStore, ann: Option<HnswIndex>) -> u64 {
        let mut slot = self
            .inner
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let generation = slot.generation + 1;
        *slot = Arc::new(Snapshot {
            store,
            ann,
            generation,
        });
        aneci_obs::gauge("serve.snapshot.generation").set(generation as f64);
        generation
    }
}

fn lock_read<T>(l: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// One vector write in a [`SnapshotUpdate`]: replaces `node`'s vector when
/// the id exists, appends when `node` equals the current node count.
#[derive(Serialize, Deserialize, Clone, Debug, Default, PartialEq)]
pub struct VectorUpsert {
    /// Target node id. Appends must be contiguous: the first appended node
    /// is exactly `num_nodes()`, the next one `num_nodes() + 1`, and so on.
    pub node: usize,
    /// The new embedding vector (must match the store dimension).
    pub vector: Vec<f64>,
}

/// A batch of embedding mutations applied as one atomic generation bump.
/// Upserts run first (in order), then deletes, so an update that both
/// rewrites and deletes an id deletes it.
#[derive(Serialize, Deserialize, Clone, Debug, Default, PartialEq)]
pub struct SnapshotUpdate {
    /// Vector replacements and contiguous appends.
    pub upserts: Vec<VectorUpsert>,
    /// Node ids to tombstone.
    pub deletes: Vec<usize>,
}

impl SnapshotUpdate {
    /// An empty update (applying it still bumps the generation).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one upsert.
    pub fn upsert(mut self, node: usize, vector: Vec<f64>) -> Self {
        self.upserts.push(VectorUpsert { node, vector });
        self
    }

    /// Adds one delete.
    pub fn delete(mut self, node: usize) -> Self {
        self.deletes.push(node);
        self
    }

    /// Whether the update carries no mutations.
    pub fn is_empty(&self) -> bool {
        self.upserts.is_empty() && self.deletes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aneci_linalg::DenseMatrix;

    fn store(n: usize) -> EmbeddingStore {
        EmbeddingStore::new(DenseMatrix::from_fn(n, 2, |r, c| (r * 2 + c) as f64), None)
    }

    #[test]
    fn publish_bumps_generation_and_readers_keep_pins() {
        let handle = SnapshotHandle::new(store(3), None);
        assert_eq!(handle.generation(), 0);
        let pinned = handle.load();
        let g1 = handle.publish(store(4), None);
        assert_eq!(g1, 1);
        assert_eq!(handle.generation(), 1);
        // The pinned snapshot still answers from generation 0.
        assert_eq!(pinned.generation, 0);
        assert_eq!(pinned.store.num_nodes(), 3);
        assert_eq!(handle.load().store.num_nodes(), 4);
    }

    #[test]
    fn update_round_trips_through_json() {
        let u = SnapshotUpdate::new()
            .upsert(2, vec![0.5, -1.0])
            .upsert(10, vec![1.0, 2.0])
            .delete(7);
        let line = serde_json::to_string(&u).unwrap();
        let back: SnapshotUpdate = serde_json::from_str(&line).unwrap();
        assert_eq!(back, u);
        assert!(!u.is_empty());
        assert!(SnapshotUpdate::new().is_empty());
    }
}
