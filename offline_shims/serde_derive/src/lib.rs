//! Minimal offline stand-in for `serde_derive` — see
//! `offline_shims/README.md`.
//!
//! Hand-rolled token parsing (no `syn`/`quote`): supports non-generic
//! structs with named fields, enums with unit and struct variants
//! (externally tagged by default), and the type-level attributes
//! `#[serde(tag = "...")]` and `#[serde(rename_all = "snake_case")]`.
//! Anything else panics at compile time with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    emit(gen_serialize(&item))
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    emit(gen_deserialize(&item))
}

fn emit(code: String) -> TokenStream {
    code.parse()
        .unwrap_or_else(|e| panic!("serde_derive shim generated invalid code: {e}\n{code}"))
}

struct Item {
    name: String,
    kind: Kind,
    /// `#[serde(tag = "...")]` — internally-tagged enum representation.
    tag: Option<String>,
    /// `#[serde(rename_all = "snake_case")]` on the type.
    snake_variants: bool,
}

enum Kind {
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    /// `None` = unit variant, `Some(fields)` = struct variant.
    fields: Option<Vec<String>>,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut tag = None;
    let mut snake_variants = false;

    // Leading attributes (doc comments, #[serde(...)], ...).
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    parse_attr(&g.stream(), &mut tag, &mut snake_variants);
                    i += 2;
                } else {
                    panic!("serde_derive shim: malformed attribute");
                }
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let is_enum = match &tokens[i] {
        TokenTree::Ident(id) if id.to_string() == "struct" => false,
        TokenTree::Ident(id) if id.to_string() == "enum" => true,
        other => panic!("serde_derive shim: expected struct/enum, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic types are not supported ({name})");
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => panic!("serde_derive shim: {name} must have a braced body (no tuple/unit structs)"),
    };

    let kind = if is_enum {
        Kind::Enum(parse_variants(body, &name))
    } else {
        Kind::Struct(parse_fields(body, &name))
    };
    Item {
        name,
        kind,
        tag,
        snake_variants,
    }
}

/// Inspects one `#[...]` attribute body; records serde tag / rename_all.
fn parse_attr(stream: &TokenStream, tag: &mut Option<String>, snake: &mut bool) {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return, // doc comment or unrelated attribute
    }
    let inner = match tokens.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return,
    };
    // Parse `key = "value"` pairs separated by commas.
    let toks: Vec<TokenTree> = inner.into_iter().collect();
    let mut j = 0;
    while j < toks.len() {
        let key = match &toks[j] {
            TokenTree::Ident(id) => id.to_string(),
            _ => panic!("serde_derive shim: unsupported #[serde] syntax"),
        };
        match (toks.get(j + 1), toks.get(j + 2)) {
            (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) if eq.as_char() == '=' => {
                let val = lit.to_string();
                let val = val.trim_matches('"').to_string();
                match key.as_str() {
                    "tag" => *tag = Some(val),
                    "rename_all" => {
                        assert!(
                            val == "snake_case",
                            "serde_derive shim: only rename_all = \"snake_case\" is supported"
                        );
                        *snake = true;
                    }
                    other => panic!("serde_derive shim: unsupported #[serde({other} = ...)]"),
                }
                j += 3;
            }
            _ => panic!("serde_derive shim: unsupported #[serde({key})] form"),
        }
        if matches!(toks.get(j), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            j += 1;
        }
    }
}

/// Extracts field names from a braced struct/variant body, skipping types.
fn parse_fields(stream: TokenStream, ctx: &str) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes and visibility.
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
                continue;
            }
            _ => {}
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected field name in {ctx}, found {other}"),
        };
        fields.push(name);
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive shim: expected `:` in {ctx}, found {other}"),
        }
        // Skip the type: everything until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn parse_variants(stream: TokenStream, ctx: &str) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            _ => {}
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected variant name in {ctx}, found {other}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Some(parse_fields(g.stream(), &format!("{ctx}::{name}")))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde_derive shim: tuple variants are not supported ({ctx}::{name})")
            }
            _ => None,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

/// serde's `snake_case` rename rule.
fn snake_case(name: &str) -> String {
    let mut out = String::new();
    for (i, ch) in name.chars().enumerate() {
        if ch.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(ch.to_ascii_lowercase());
        } else {
            out.push(ch);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn variant_key(item: &Item, variant: &str) -> String {
    if item.snake_variants {
        snake_case(variant)
    } else {
        variant.to_string()
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let mut s = String::from("let mut __o = ::serde::Object::new();\n");
            for f in fields {
                s += &format!("__o.insert(\"{f}\", ::serde::Serialize::to_value(&self.{f}));\n");
            }
            s += "::serde::Value::Object(__o)";
            s
        }
        Kind::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for v in variants {
                let key = variant_key(item, &v.name);
                let vn = &v.name;
                match (&item.tag, &v.fields) {
                    // Externally tagged unit: just the variant name string.
                    (None, None) => {
                        s += &format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{key}\".to_string()),\n"
                        );
                    }
                    // Externally tagged struct variant: {"Name": {fields}}.
                    (None, Some(fields)) => {
                        let pat = fields.join(", ");
                        s += &format!("{name}::{vn} {{ {pat} }} => {{\n");
                        s += "let mut __inner = ::serde::Object::new();\n";
                        for f in fields {
                            s += &format!(
                                "__inner.insert(\"{f}\", ::serde::Serialize::to_value({f}));\n"
                            );
                        }
                        s += "let mut __o = ::serde::Object::new();\n";
                        s += &format!("__o.insert(\"{key}\", ::serde::Value::Object(__inner));\n");
                        s += "::serde::Value::Object(__o)\n}\n";
                    }
                    // Internally tagged: tag key first, then the fields.
                    (Some(tag), None) => {
                        s += &format!("{name}::{vn} => {{\n");
                        s += "let mut __o = ::serde::Object::new();\n";
                        s += &format!(
                            "__o.insert(\"{tag}\", ::serde::Value::Str(\"{key}\".to_string()));\n"
                        );
                        s += "::serde::Value::Object(__o)\n}\n";
                    }
                    (Some(tag), Some(fields)) => {
                        let pat = fields.join(", ");
                        s += &format!("{name}::{vn} {{ {pat} }} => {{\n");
                        s += "let mut __o = ::serde::Object::new();\n";
                        s += &format!(
                            "__o.insert(\"{tag}\", ::serde::Value::Str(\"{key}\".to_string()));\n"
                        );
                        for f in fields {
                            s += &format!(
                                "__o.insert(\"{f}\", ::serde::Serialize::to_value({f}));\n"
                            );
                        }
                        s += "::serde::Value::Object(__o)\n}\n";
                    }
                }
            }
            s += "}";
            s
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let mut s = format!(
                "let __o = __v.as_object().ok_or_else(|| \
                 ::serde::Error::custom(\"expected object for {name}\"))?;\n"
            );
            s += &format!("::std::result::Result::Ok({name} {{\n");
            for f in fields {
                s += &format!("{f}: ::serde::__field(__o, \"{f}\")?,\n");
            }
            s += "})";
            s
        }
        Kind::Enum(variants) => match &item.tag {
            Some(tag) => {
                let mut s = format!(
                    "let __o = __v.as_object().ok_or_else(|| \
                     ::serde::Error::custom(\"expected object for {name}\"))?;\n\
                     let __tag = __o.get(\"{tag}\").and_then(::serde::Value::as_str)\
                     .ok_or_else(|| ::serde::Error::custom(\"missing tag `{tag}` for {name}\"))?;\n\
                     match __tag {{\n"
                );
                for v in variants {
                    let key = variant_key(item, &v.name);
                    let vn = &v.name;
                    match &v.fields {
                        None => s += &format!("\"{key}\" => ::std::result::Result::Ok({name}::{vn}),\n"),
                        Some(fields) => {
                            s += &format!("\"{key}\" => ::std::result::Result::Ok({name}::{vn} {{\n");
                            for f in fields {
                                s += &format!("{f}: ::serde::__field(__o, \"{f}\")?,\n");
                            }
                            s += "}),\n";
                        }
                    }
                }
                s += &format!(
                    "__other => ::std::result::Result::Err(::serde::Error::custom(\
                     format!(\"unknown {name} variant `{{}}`\", __other))),\n}}"
                );
                s
            }
            None => {
                let mut s = String::from("if let ::std::option::Option::Some(__s) = __v.as_str() {\nreturn match __s {\n");
                for v in variants.iter().filter(|v| v.fields.is_none()) {
                    let key = variant_key(item, &v.name);
                    s += &format!("\"{key}\" => ::std::result::Result::Ok({name}::{}),\n", v.name);
                }
                s += &format!(
                    "__other => ::std::result::Result::Err(::serde::Error::custom(\
                     format!(\"unknown {name} variant `{{}}`\", __other))),\n}};\n}}\n"
                );
                s += &format!(
                    "let __o = __v.as_object().ok_or_else(|| \
                     ::serde::Error::custom(\"expected object or string for {name}\"))?;\n"
                );
                for v in variants.iter() {
                    let key = variant_key(item, &v.name);
                    let vn = &v.name;
                    match &v.fields {
                        None => {
                            // Also accept {"Unit": null}.
                            s += &format!(
                                "if __o.get(\"{key}\").is_some() {{\n\
                                 return ::std::result::Result::Ok({name}::{vn});\n}}\n"
                            );
                        }
                        Some(fields) => {
                            s += &format!(
                                "if let ::std::option::Option::Some(__inner) = __o.get(\"{key}\") {{\n\
                                 let __io = __inner.as_object().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected object for {name}::{vn}\"))?;\n\
                                 return ::std::result::Result::Ok({name}::{vn} {{\n"
                            );
                            for f in fields {
                                s += &format!("{f}: ::serde::__field(__io, \"{f}\")?,\n");
                            }
                            s += "});\n}\n";
                        }
                    }
                }
                s += &format!(
                    "::std::result::Result::Err(::serde::Error::custom(\
                     \"unknown {name} variant\"))"
                );
                s
            }
        },
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}
