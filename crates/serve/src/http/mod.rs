//! A from-scratch HTTP/1.1 serving front end over the
//! [`QueryEngine`](crate::engine::QueryEngine) —
//! `std::net` only, zero external dependencies.
//!
//! Until this module existed the serving subsystem answered queries only
//! over stdin/stdout JSONL; this is the network listener that makes the
//! engine load-testable under concurrent traffic. The full architecture is
//! documented in DESIGN.md §4.7; the short version:
//!
//! * **Parsing** ([`parse`]) — a hand-rolled request parser (request line,
//!   headers, `Content-Length` and chunked bodies, explicit size limits)
//!   and a `Content-Length`-framed response writer. Malformed input maps to
//!   typed 4xx/5xx JSON bodies (the engine's
//!   [`ErrorCode`](crate::engine::ErrorCode) vocabulary),
//!   never to a panic or a hang.
//! * **Threading** ([`server`]) — one acceptor thread feeds accepted
//!   connections into a **bounded queue**; a fixed set of worker threads
//!   (sized by the `aneci-linalg::pool` convention,
//!   `pool::hardware_parallelism()`) pops connections and serves their
//!   keep-alive request loop. When the queue is full the acceptor answers
//!   `503` immediately and closes — **load shedding with backpressure**
//!   instead of unbounded buffering.
//! * **Keep-alive** — HTTP/1.1 persistent connections with pipelining
//!   support, an idle timeout between requests, and a per-request stall
//!   cap. Idle waits poll in short ticks so shutdown is never held hostage
//!   by a silent connection.
//! * **Graceful shutdown** — triggered by [`ServerHandle::shutdown`] or the
//!   `POST /v1/admin/shutdown` route: the acceptor stops, in-flight
//!   requests finish, queued connections are drained (served with
//!   `Connection: close`), and all threads join.
//! * **Routes (versioned under `/v1`)** — `GET /v1/healthz` (status, node
//!   counts, snapshot generation, reindex flag), `GET /v1/metrics` (an
//!   `aneci-obs` snapshot), `POST /v1/query` (one JSON query, the JSONL
//!   line shape), `POST /v1/query_batch` (newline-delimited queries in,
//!   newline-delimited responses out, per-line errors in place), `POST
//!   /v1/admin/reindex` (a [`SnapshotUpdate`](crate::snapshot::SnapshotUpdate)
//!   body, applied as one atomic generation bump), `POST
//!   /v1/admin/shutdown`. The unversioned legacy paths answer `301 Moved
//!   Permanently` with a `location` header pointing at their `/v1` homes.
//! * **Observability** — per-route `serve.http.route.*` counters, total
//!   request/connection/shed/status-class counters (3xx redirects
//!   included), and a `serve.http.request_ns` latency histogram, all in the
//!   global `aneci-obs` registry (and therefore visible through
//!   `GET /v1/metrics` itself).
//!
//! ```no_run
//! use std::sync::Arc;
//! use aneci_serve::engine::{EngineConfig, QueryEngine};
//! use aneci_serve::http::{client, HttpConfig, HttpServer};
//! use aneci_serve::store::EmbeddingStore;
//! # let store: EmbeddingStore = unimplemented!();
//!
//! let engine = Arc::new(QueryEngine::new(store, EngineConfig::default()));
//! let handle = HttpServer::start(engine, HttpConfig::default(), "127.0.0.1:0").unwrap();
//! let response = client::post(
//!     handle.addr(),
//!     "/v1/query",
//!     r#"{"op":"top_k","node":0,"k":5}"#,
//! ).unwrap();
//! assert_eq!(response.status, 200);
//! handle.shutdown();
//! ```

pub mod client;
pub mod parse;
pub mod server;

pub use client::{ClientResponse, HttpClient};
pub use parse::{ParseError, ParseLimits, Request};
pub use server::{HttpConfig, HttpConfigBuilder, HttpServer, ServerHandle};
