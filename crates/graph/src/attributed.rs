//! The attributed network type (Definition 1 of the paper).
//!
//! An [`AttributedGraph`] couples an undirected, unweighted topology with a
//! node-feature matrix and optional ground-truth labels and data splits.
//! Invariants maintained by every constructor and mutator:
//!
//! * the adjacency matrix is **symmetric**, **binary** and **hollow** (no
//!   stored self-loops — self-connections are added where the paper needs
//!   them, i.e. inside the GCN normalization);
//! * `features.rows() == n`, `labels.len() == n` when present.

use crate::delta::{apply_to_csr, apply_to_features, DeltaReport, GraphDelta, GraphError};
use aneci_linalg::{CsrMatrix, DenseMatrix};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Train/validation/test node-index split.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Split {
    /// Labelled training nodes.
    pub train: Vec<usize>,
    /// Validation nodes.
    pub val: Vec<usize>,
    /// Test nodes.
    pub test: Vec<usize>,
}

impl Split {
    /// Total number of nodes across all three sets.
    pub fn len(&self) -> usize {
        self.train.len() + self.val.len() + self.test.len()
    }

    /// True when every set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Checks that the three sets are pairwise disjoint and within `0..n`.
    pub fn validate(&self, n: usize) -> Result<(), String> {
        let mut seen = vec![false; n];
        for (name, set) in [
            ("train", &self.train),
            ("val", &self.val),
            ("test", &self.test),
        ] {
            for &i in set {
                if i >= n {
                    return Err(format!("{name} index {i} out of range 0..{n}"));
                }
                if seen[i] {
                    return Err(format!("node {i} appears in more than one split set"));
                }
                seen[i] = true;
            }
        }
        Ok(())
    }
}

/// An undirected attributed network `G = (V, E, X)`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AttributedGraph {
    adjacency: CsrMatrix,
    features: DenseMatrix,
    /// Ground-truth class / community labels, when known.
    pub labels: Option<Vec<usize>>,
    /// Train/val/test split, when defined.
    pub split: Split,
    /// Human-readable dataset name.
    pub name: String,
    /// Per-node missing-attribute flags; `None` ⇔ every node is fully
    /// attributed. Only delta application sets this (old serialized graphs
    /// deserialize with `None`).
    missing_mask: Option<Vec<bool>>,
}

impl AttributedGraph {
    /// Builds a graph from an undirected edge list. Self-loops and duplicate
    /// edges in the input are ignored. `features` may be the identity for
    /// plain networks (as the paper does for Polblogs).
    pub fn from_edges(
        n: usize,
        edges: &[(usize, usize)],
        features: DenseMatrix,
        labels: Option<Vec<usize>>,
    ) -> Self {
        assert_eq!(features.rows(), n, "features must have one row per node");
        if let Some(l) = &labels {
            assert_eq!(l.len(), n, "labels must have one entry per node");
        }
        let mut trips = Vec::with_capacity(edges.len() * 2);
        let mut seen = BTreeSet::new();
        for &(u, v) in edges {
            assert!(u < n && v < n, "edge ({u},{v}) out of range 0..{n}");
            if u == v {
                continue;
            }
            let key = (u.min(v), u.max(v));
            if seen.insert(key) {
                trips.push((key.0, key.1, 1.0));
                trips.push((key.1, key.0, 1.0));
            }
        }
        let adjacency = CsrMatrix::from_triplets(n, n, &trips);
        Self {
            adjacency,
            features,
            labels,
            split: Split::default(),
            name: String::new(),
            missing_mask: None,
        }
    }

    /// Builds a graph with identity features (for plain networks).
    pub fn from_edges_plain(
        n: usize,
        edges: &[(usize, usize)],
        labels: Option<Vec<usize>>,
    ) -> Self {
        Self::from_edges(n, edges, DenseMatrix::identity(n), labels)
    }

    /// Number of nodes `N`.
    pub fn num_nodes(&self) -> usize {
        self.adjacency.rows()
    }

    /// Number of undirected edges `M`.
    pub fn num_edges(&self) -> usize {
        self.adjacency.nnz() / 2
    }

    /// Attribute dimensionality `d`.
    pub fn num_features(&self) -> usize {
        self.features.cols()
    }

    /// Number of distinct labels (0 when unlabelled).
    pub fn num_classes(&self) -> usize {
        self.labels
            .as_ref()
            .map_or(0, |l| l.iter().copied().max().map_or(0, |m| m + 1))
    }

    /// The (symmetric, binary, hollow) adjacency matrix.
    pub fn adjacency(&self) -> &CsrMatrix {
        &self.adjacency
    }

    /// The node-feature matrix `X`.
    pub fn features(&self) -> &DenseMatrix {
        &self.features
    }

    /// Replaces the feature matrix (e.g. to swap in identity features for the
    /// community-detection protocol of Sec. VI-D).
    pub fn set_features(&mut self, features: DenseMatrix) {
        assert_eq!(
            features.rows(),
            self.num_nodes(),
            "feature row count mismatch"
        );
        self.features = features;
    }

    /// Degree of node `u` (number of neighbours).
    pub fn degree(&self, u: usize) -> usize {
        self.adjacency.row_nnz(u)
    }

    /// All degrees.
    pub fn degrees(&self) -> Vec<usize> {
        (0..self.num_nodes()).map(|u| self.degree(u)).collect()
    }

    /// Neighbours of `u`.
    pub fn neighbors(&self, u: usize) -> Vec<usize> {
        self.adjacency.row_entries(u).map(|(c, _)| c).collect()
    }

    /// True if the undirected edge `{u, v}` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adjacency.get(u, v) != 0.0
    }

    /// The undirected edge list with `u < v`.
    pub fn edge_list(&self) -> Vec<(usize, usize)> {
        self.adjacency
            .iter()
            .filter(|&(u, v, _)| u < v)
            .map(|(u, v, _)| (u, v))
            .collect()
    }

    /// Returns a new graph with `added` edges inserted and `removed` edges
    /// deleted (both undirected; redundant operations are ignored).
    pub fn with_edits(&self, added: &[(usize, usize)], removed: &[(usize, usize)]) -> Self {
        let mut edges: BTreeSet<(usize, usize)> = self.edge_list().into_iter().collect();
        for &(u, v) in removed {
            edges.remove(&(u.min(v), u.max(v)));
        }
        for &(u, v) in added {
            if u != v {
                edges.insert((u.min(v), u.max(v)));
            }
        }
        let list: Vec<(usize, usize)> = edges.into_iter().collect();
        let mut g = Self::from_edges(
            self.num_nodes(),
            &list,
            self.features.clone(),
            self.labels.clone(),
        );
        g.split = self.split.clone();
        g.name = self.name.clone();
        g
    }

    /// GCN propagation operator `D^-1/2 (A + I) D^-1/2` (Eq. 2 uses the
    /// self-connection convention of Definition 2).
    pub fn norm_adjacency(&self) -> CsrMatrix {
        self.adjacency.add_identity().sym_normalize()
    }

    /// Per-node missing-attribute flags, set by delta application; `None`
    /// when every node is fully attributed.
    pub fn missing_mask(&self) -> Option<&[bool]> {
        self.missing_mask.as_deref()
    }

    /// True when node `u`'s attributes are flagged missing.
    pub fn is_attribute_missing(&self, u: usize) -> bool {
        self.missing_mask.as_ref().is_some_and(|m| m[u])
    }

    /// Applies a [`GraphDelta`] in place: CSR patch-and-compact for the
    /// topology ops, feature append/set/clear with the missing-attribute
    /// mask, stable node ids throughout (removed nodes are isolated, not
    /// renumbered — see the [`delta`](crate::delta) module docs). Appending
    /// nodes to a labelled graph is a typed error: there is no honest label
    /// to invent, so callers must drop `labels` first.
    ///
    /// On error the graph is untouched. On success returns the
    /// [`DeltaReport`] that seeds
    /// [`HighOrder::refresh`](crate::proximity::HighOrder::refresh), and
    /// records the wall time in the `delta.apply_ns` histogram.
    pub fn apply_delta(&mut self, delta: &GraphDelta) -> Result<DeltaReport, GraphError> {
        let start = std::time::Instant::now();
        if !delta.add_nodes.is_empty() && self.labels.is_some() {
            return Err(GraphError::Delta(
                "cannot append nodes to a labelled graph (no label to assign); \
                 clear `labels` first"
                    .into(),
            ));
        }
        let (adjacency, report) = apply_to_csr(&self.adjacency, delta)?;
        let (features, missing_mask) =
            apply_to_features(&self.features, self.missing_mask.as_deref(), delta)?;
        self.adjacency = adjacency;
        self.features = features;
        self.missing_mask = missing_mask;
        aneci_obs::histogram_time_ns("delta.apply_ns").observe(start.elapsed().as_nanos() as f64);
        Ok(report)
    }

    /// Sets the split after validating it.
    pub fn set_split(&mut self, split: Split) {
        split.validate(self.num_nodes()).expect("invalid split");
        self.split = split;
    }

    /// Checks all structural invariants; returns a description of the first
    /// violation. Used by tests and by the attack code after edits.
    pub fn validate(&self) -> Result<(), String> {
        let a = &self.adjacency;
        // Structural CSR invariants first: deserialized matrices bypass the
        // constructors, and iterating a malformed CSR would panic instead of
        // returning the Err the load paths promise.
        a.check_invariants()
            .map_err(|e| format!("adjacency CSR invalid: {e}"))?;
        self.features
            .check_invariants()
            .map_err(|e| format!("features invalid: {e}"))?;
        if a.rows() != a.cols() {
            return Err("adjacency not square".into());
        }
        if self.features.rows() != a.rows() {
            return Err("feature rows != node count".into());
        }
        for (u, v, val) in a.iter() {
            if u == v {
                return Err(format!("self-loop stored at node {u}"));
            }
            if val != 1.0 {
                return Err(format!("non-binary adjacency value {val} at ({u},{v})"));
            }
            if a.get(v, u) != 1.0 {
                return Err(format!("asymmetric edge ({u},{v})"));
            }
        }
        if let Some(l) = &self.labels {
            if l.len() != a.rows() {
                return Err("label count != node count".into());
            }
        }
        if let Some(m) = &self.missing_mask {
            if m.len() != a.rows() {
                return Err("missing-attribute mask length != node count".into());
            }
        }
        self.split.validate(a.rows())
    }

    /// Average degree `2M / N`.
    pub fn average_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            2.0 * self.num_edges() as f64 / self.num_nodes() as f64
        }
    }

    /// Fraction of edges joining same-label endpoints (edge homophily).
    /// Returns `None` when the graph is unlabelled or empty.
    pub fn edge_homophily(&self) -> Option<f64> {
        let labels = self.labels.as_ref()?;
        let edges = self.edge_list();
        if edges.is_empty() {
            return None;
        }
        let same = edges
            .iter()
            .filter(|&&(u, v)| labels[u] == labels[v])
            .count();
        Some(same as f64 / edges.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> AttributedGraph {
        // 0-1-2 triangle, 2-3 tail.
        AttributedGraph::from_edges_plain(
            4,
            &[(0, 1), (1, 2), (2, 0), (2, 3)],
            Some(vec![0, 0, 0, 1]),
        )
    }

    #[test]
    fn basic_counts() {
        let g = triangle_plus_tail();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.num_classes(), 2);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(3), 1);
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
        g.validate().unwrap();
    }

    #[test]
    fn duplicate_and_self_edges_ignored() {
        let g = AttributedGraph::from_edges_plain(3, &[(0, 1), (1, 0), (0, 1), (2, 2)], None);
        assert_eq!(g.num_edges(), 1);
        assert!(!g.has_edge(2, 2));
        g.validate().unwrap();
    }

    #[test]
    fn edge_list_is_canonical() {
        let g = triangle_plus_tail();
        assert_eq!(g.edge_list(), vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn with_edits_adds_and_removes() {
        let g = triangle_plus_tail();
        let g2 = g.with_edits(&[(0, 3), (3, 0)], &[(1, 2)]);
        assert!(g2.has_edge(0, 3));
        assert!(!g2.has_edge(1, 2));
        assert_eq!(g2.num_edges(), 4);
        g2.validate().unwrap();
        // Original untouched.
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn norm_adjacency_rows_consistent() {
        let g = triangle_plus_tail();
        let s = g.norm_adjacency();
        assert!(s.is_symmetric());
        // Diagonal entry for node 3 (degree 1 → degree+1 = 2): 1/2.
        assert!((s.get(3, 3) - 0.5).abs() < 1e-12);
        // Off-diagonal entry (0,1): both have degree 2, so degree+1 = 3 and
        // the normalized weight is 1/3.
        assert!((s.get(0, 1) - 1.0 / 3.0).abs() < 1e-12);
        // All stored entries are positive and bounded by 1.
        for (_, _, v) in s.iter() {
            assert!(v > 0.0 && v <= 1.0);
        }
    }

    #[test]
    fn homophily_of_labelled_graph() {
        let g = triangle_plus_tail();
        // 3 of 4 edges connect label 0 to label 0.
        assert!((g.edge_homophily().unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn split_validation_rejects_overlap() {
        let mut s = Split {
            train: vec![0, 1],
            val: vec![1],
            ..Default::default()
        };
        assert!(s.validate(4).is_err());
        s.val = vec![2];
        assert!(s.validate(4).is_ok());
        s.test = vec![9];
        assert!(s.validate(4).is_err());
    }

    #[test]
    fn set_split_accepts_valid() {
        let mut g = triangle_plus_tail();
        g.set_split(Split {
            train: vec![0],
            val: vec![1],
            test: vec![2, 3],
        });
        assert_eq!(g.split.len(), 4);
    }

    #[test]
    fn apply_delta_matches_with_edits() {
        let mut g = triangle_plus_tail();
        let expect = g.with_edits(&[(0, 3)], &[(1, 2)]);
        let report = g
            .apply_delta(&GraphDelta::new().add_edge(0, 3).remove_edge(1, 2))
            .unwrap();
        assert_eq!(g.adjacency(), expect.adjacency());
        assert_eq!(report.edges_added, 1);
        assert_eq!(report.edges_removed, 1);
        g.validate().unwrap();
    }

    #[test]
    fn apply_delta_appends_and_isolates_nodes() {
        let mut g = triangle_plus_tail();
        g.labels = None;
        let delta = GraphDelta::new()
            .add_node(vec![1.0, 0.0, 0.0, 0.0])
            .add_node_missing()
            .add_edge(4, 0)
            .remove_node(2);
        let report = g.apply_delta(&delta).unwrap();
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(report.nodes_after, 6);
        assert!(g.has_edge(4, 0));
        assert_eq!(g.degree(2), 0);
        assert!(g.is_attribute_missing(5));
        assert!(g.is_attribute_missing(2), "removed node attributes cleared");
        assert!(!g.is_attribute_missing(4));
        g.validate().unwrap();
    }

    #[test]
    fn apply_delta_rejects_appending_to_labelled_graph() {
        let mut g = triangle_plus_tail();
        let before = g.clone();
        let err = g.apply_delta(&GraphDelta::new().add_node_missing());
        assert!(matches!(err, Err(GraphError::Delta(_))));
        // Error leaves the graph untouched.
        assert_eq!(g.adjacency(), before.adjacency());
        assert_eq!(g.features(), before.features());
    }

    #[test]
    #[should_panic(expected = "invalid split")]
    fn set_split_panics_on_invalid() {
        let mut g = triangle_plus_tail();
        g.set_split(Split {
            train: vec![0, 0],
            ..Default::default()
        });
    }
}
