//! The unified attack interface: every attack *plans* a [`GraphDelta`].
//!
//! Attacks used to return four bespoke result structs, each carrying its
//! own pre-built poisoned graph. Since PR 9 the rest of the workspace —
//! [`apply_to_csr`](aneci_graph::apply_to_csr),
//! [`HighOrder::refresh`](aneci_graph::HighOrder::refresh), the serving
//! snapshot pipeline — speaks [`GraphDelta`], so an attack now emits one
//! delta plus typed metadata ([`AttackOutcome`]) and the caller decides
//! what to do with it: materialize a poisoned graph
//! ([`AttackOutcome::apply`], which validates CSR invariants), patch a CSR
//! in place, or feed an incremental proximity refresh.
//!
//! The planning internals are untouched: each attack still runs its
//! original sequential simulation on its original RNG stream, so planned
//! perturbations are bit-identical to the pre-refactor poisoned graphs.

use aneci_graph::{AttributedGraph, GraphDelta, GraphError};
use std::collections::BTreeSet;

use crate::fga::EdgeFlip;
use crate::outliers::OutlierType;

/// What an attack did, in the workspace's shared delta vocabulary.
///
/// `delta` holds the net perturbation (fake edges in `add_edges`, deleted
/// edges in `remove_edges`, swapped attribute rows in `set_attributes`);
/// the remaining fields are typed metadata the evaluation harnesses need.
#[derive(Clone, Debug, Default)]
pub struct AttackOutcome {
    /// The net perturbation, ready for `apply_delta` / `apply_to_csr`.
    pub delta: GraphDelta,
    /// Unit perturbations actually spent (edge flips for the edge attacks,
    /// corrupted nodes for outlier seeding) — at most the requested budget.
    pub budget_spent: usize,
    /// The nodes the attack aimed at (empty for non-targeted attacks).
    pub targets: Vec<usize>,
    /// Every edge flip in application order (targeted and random attacks).
    pub flips: Vec<EdgeFlip>,
    /// Corrupted nodes and the outlier type planted at each (seeding only).
    pub outliers: Vec<(usize, OutlierType)>,
}

impl AttackOutcome {
    /// The injected fake edges `E*` (canonical `u < v` for the random
    /// attack; endpoint order as planned otherwise).
    pub fn fake_edges(&self) -> &[(usize, usize)] {
        &self.delta.add_edges
    }

    /// The clean edges the attack deleted.
    pub fn removed_edges(&self) -> &[(usize, usize)] {
        &self.delta.remove_edges
    }

    /// Per-node outlier mask (`true` where a node was corrupted).
    pub fn outlier_mask(&self, num_nodes: usize) -> Vec<bool> {
        let mut mask = vec![false; num_nodes];
        for &(node, _) in &self.outliers {
            mask[node] = true;
        }
        mask
    }

    /// Per-node planted outlier type (`None` at clean nodes).
    pub fn outlier_types(&self, num_nodes: usize) -> Vec<Option<OutlierType>> {
        let mut types = vec![None; num_nodes];
        for &(node, ty) in &self.outliers {
            types[node] = Some(ty);
        }
        types
    }

    /// Materializes the poisoned graph: applies the delta and then runs the
    /// full CSR/feature invariant check (`AttributedGraph::validate`), so a
    /// malformed perturbation fails with a typed [`GraphError`] instead of
    /// corrupting downstream kernels.
    pub fn apply(&self, graph: &AttributedGraph) -> Result<AttributedGraph, GraphError> {
        let mut attacked = graph.clone();
        attacked.apply_delta(&self.delta)?;
        attacked
            .validate()
            .map_err(|msg| GraphError::Delta(format!("post-attack invariant violated: {msg}")))?;
        Ok(attacked)
    }
}

/// An adversarial perturbation strategy. `plan` computes the delta without
/// touching the input graph; the provided [`Attack::attack`] materializes
/// the validated poisoned graph alongside the outcome.
pub trait Attack {
    /// Short stable identifier (used in benchmark reports).
    fn name(&self) -> &'static str;

    /// Plans the perturbation for `graph`.
    fn plan(&self, graph: &AttributedGraph) -> AttackOutcome;

    /// Plans and applies in one step, validating the result.
    fn attack(
        &self,
        graph: &AttributedGraph,
    ) -> Result<(AttributedGraph, AttackOutcome), GraphError> {
        let outcome = self.plan(graph);
        let attacked = outcome.apply(graph)?;
        Ok((attacked, outcome))
    }
}

/// The net [`GraphDelta`] between two same-size graphs: edge-set difference
/// plus every attribute row that changed. Used by attacks that simulate
/// sequentially (where later flips can undo earlier ones) to report the net
/// effect.
pub(crate) fn delta_between(original: &AttributedGraph, mutated: &AttributedGraph) -> GraphDelta {
    assert_eq!(
        original.num_nodes(),
        mutated.num_nodes(),
        "attacks never add or remove nodes"
    );
    let before: BTreeSet<(usize, usize)> = original.edge_list().into_iter().collect();
    let after: BTreeSet<(usize, usize)> = mutated.edge_list().into_iter().collect();
    let mut delta = GraphDelta {
        add_edges: after.difference(&before).copied().collect(),
        remove_edges: before.difference(&after).copied().collect(),
        ..Default::default()
    };
    let (xa, xb) = (original.features(), mutated.features());
    for node in 0..original.num_nodes() {
        if xa.row(node) != xb.row(node) {
            delta = delta.set_attribute(node, xb.row(node).to_vec());
        }
    }
    delta
}

/// Non-targeted random edge injection as an [`Attack`].
#[derive(Clone, Copy, Debug)]
pub struct RandomAttack {
    /// Perturbation rate δ: injects `⌊δ·|E|⌋` fake edges.
    pub rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Attack for RandomAttack {
    fn name(&self) -> &'static str {
        "random"
    }

    fn plan(&self, graph: &AttributedGraph) -> AttackOutcome {
        crate::random::random_attack(graph, self.rate, self.seed)
    }
}

/// FGA gradient attack as an [`Attack`].
#[derive(Clone, Debug)]
pub struct FgaAttack {
    /// Target nodes.
    pub targets: Vec<usize>,
    /// FGA hyperparameters.
    pub config: crate::fga::FgaConfig,
}

impl Attack for FgaAttack {
    fn name(&self) -> &'static str {
        "fga"
    }

    fn plan(&self, graph: &AttributedGraph) -> AttackOutcome {
        crate::fga::fga_attack(graph, &self.targets, &self.config)
    }
}

/// NETTACK-style greedy margin attack as an [`Attack`].
#[derive(Clone, Debug)]
pub struct NettackAttack {
    /// Target nodes.
    pub targets: Vec<usize>,
    /// NETTACK hyperparameters.
    pub config: crate::nettack::NettackConfig,
}

impl Attack for NettackAttack {
    fn name(&self) -> &'static str {
        "nettack"
    }

    fn plan(&self, graph: &AttributedGraph) -> AttackOutcome {
        crate::nettack::nettack_attack(graph, &self.targets, &self.config)
    }
}

/// Community-outlier seeding as an [`Attack`].
#[derive(Clone, Debug)]
pub struct OutlierAttack {
    /// Fraction of nodes to corrupt, in `[0, 0.5]`.
    pub fraction: f64,
    /// Outlier types to cycle through.
    pub types: Vec<OutlierType>,
    /// RNG seed.
    pub seed: u64,
}

impl Attack for OutlierAttack {
    fn name(&self) -> &'static str {
        "outliers"
    }

    fn plan(&self, graph: &AttributedGraph) -> AttackOutcome {
        crate::outliers::seed_outliers(graph, self.fraction, &self.types, self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aneci_graph::karate_club;

    #[test]
    fn malformed_flip_fails_typed_not_corrupting() {
        let g = karate_club();
        // Out-of-range endpoint: apply must reject with a typed Delta error
        // and leave the input graph untouched.
        let outcome = AttackOutcome {
            delta: GraphDelta::new().add_edge(0, 999),
            budget_spent: 1,
            ..Default::default()
        };
        let err = outcome.apply(&g).unwrap_err();
        assert!(matches!(err, GraphError::Delta(_)), "got {err:?}");
        assert_eq!(g.num_edges(), 78, "input graph must be untouched");

        // Self-loop flip: same typed failure.
        let loops = AttackOutcome {
            delta: GraphDelta::new().add_edge(3, 3),
            budget_spent: 1,
            ..Default::default()
        };
        assert!(matches!(loops.apply(&g), Err(GraphError::Delta(_))));

        // Wrong-width attribute row: typed failure, no panic.
        let bad_attrs = AttackOutcome {
            delta: GraphDelta::new().set_attribute(0, vec![1.0]),
            budget_spent: 1,
            ..Default::default()
        };
        assert!(matches!(bad_attrs.apply(&g), Err(GraphError::Delta(_))));
    }

    #[test]
    fn trait_object_attacks_compose() {
        let g = karate_club();
        let attacks: Vec<Box<dyn Attack>> = vec![Box::new(RandomAttack { rate: 0.1, seed: 5 })];
        for atk in &attacks {
            let (attacked, outcome) = atk.attack(&g).unwrap();
            assert_eq!(atk.name(), "random");
            assert_eq!(
                attacked.num_edges(),
                g.num_edges() + outcome.fake_edges().len()
            );
            assert_eq!(outcome.budget_spent, outcome.fake_edges().len());
        }
    }

    #[test]
    fn delta_between_reports_net_edit() {
        let g = karate_club();
        let edited = g.with_edits(&[(0, 9)], &[(0, 1)]);
        let delta = delta_between(&g, &edited);
        assert_eq!(delta.add_edges, vec![(0, 9)]);
        assert_eq!(delta.remove_edges, vec![(0, 1)]);
        assert!(delta.set_attributes.is_empty());
        // Round-trips back onto the original.
        let mut replayed = g.clone();
        replayed.apply_delta(&delta).unwrap();
        assert_eq!(replayed.edge_list(), edited.edge_list());
    }
}
