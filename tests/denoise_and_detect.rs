//! Integration tests for the AnECI+ denoising pipeline and the anomaly /
//! outlier detection pipeline, spanning `aneci-attacks`, `aneci-core`,
//! `aneci-baselines` and `aneci-eval`.

use aneci::attacks::{random_attack, seed_outliers, OutlierType};
use aneci::baselines::{Dominant, DominantConfig};
use aneci::core::{
    aneci_plus, node_anomaly_scores, train_aneci, AneciConfig, DenoiseConfig, StopStrategy,
};
use aneci::eval::auc;
use aneci::graph::{generate_sbm, FeatureKind, SbmConfig};

fn base_graph(seed: u64) -> aneci::graph::AttributedGraph {
    let config = SbmConfig {
        num_nodes: 250,
        num_classes: 4,
        target_edges: 1400,
        homophily: 0.9,
        degree_exponent: None,
        feature_dim: 80,
        features: FeatureKind::BagOfWords {
            p_signal: 0.3,
            p_noise: 0.01,
        },
    };
    generate_sbm(&config, seed)
}

fn quick_cfg(seed: u64) -> AneciConfig {
    AneciConfig {
        hidden_dim: 32,
        embed_dim: 4,
        epochs: 80,
        stop: StopStrategy::FixedEpochs,
        seed,
        ..Default::default()
    }
}

/// AnECI+ removes injected fake edges at a rate well above chance.
#[test]
fn denoising_enriches_fake_edge_removal() {
    let g = base_graph(1);
    let attack = random_attack(&g, 0.3, 1);
    let poisoned = attack.apply(&g).unwrap();
    let fake_edges = attack.fake_edges();
    let result = aneci_plus(
        &poisoned,
        &quick_cfg(1),
        &DenoiseConfig {
            alpha: 6.0,
            beta: 0.4,
            gamma: 0.75,
        },
        None,
    )
    .unwrap();
    assert!(!result.removed_edges.is_empty());
    let removed_fakes = result
        .removed_edges
        .iter()
        .filter(|e| fake_edges.contains(e) || fake_edges.contains(&(e.1, e.0)))
        .count();
    let removal_rate = removed_fakes as f64 / result.removed_edges.len() as f64;
    let base_rate = fake_edges.len() as f64 / poisoned.num_edges() as f64;
    assert!(
        removal_rate > 1.3 * base_rate,
        "enrichment too weak: removed {removal_rate:.3} vs base {base_rate:.3}"
    );
    result.denoised_graph.validate().unwrap();
}

/// The denoised graph is closer (in fake-edge count) to the clean graph
/// than the attacked one.
#[test]
fn denoising_reduces_fake_edge_count() {
    let g = base_graph(2);
    let attack = random_attack(&g, 0.25, 2);
    let poisoned = attack.apply(&g).unwrap();
    let result = aneci_plus(&poisoned, &quick_cfg(2), &DenoiseConfig::default(), None).unwrap();
    let surviving_fakes = attack
        .fake_edges()
        .iter()
        .filter(|&&(u, v)| result.denoised_graph.has_edge(u, v))
        .count();
    assert!(
        surviving_fakes < attack.fake_edges().len(),
        "denoising removed no fake edges at all"
    );
}

/// Structural outliers are detectable by AnECI's membership entropy at
/// better-than-chance AUC, and Dominant agrees the graph contains signal.
#[test]
fn outlier_detection_beats_chance() {
    let g = base_graph(3);
    let outcome = seed_outliers(&g, 0.06, &[OutlierType::Structural], 3);
    let seeded = outcome.apply(&g).unwrap();
    let is_outlier = outcome.outlier_mask(g.num_nodes());

    let mut cfg = quick_cfg(3);
    cfg.epochs = 60;
    let (model, _) = train_aneci(&seeded, &cfg).unwrap();
    let scores = node_anomaly_scores(&model.membership());
    let auc_aneci = auc(&scores, &is_outlier);
    assert!(auc_aneci > 0.6, "AnECI outlier AUC only {auc_aneci:.3}");

    let dom = Dominant::fit(
        &seeded,
        &DominantConfig {
            epochs: 50,
            seed: 3,
            ..Default::default()
        },
    );
    let auc_dom = auc(dom.anomaly_scores(), &is_outlier);
    assert!(auc_dom > 0.5, "Dominant outlier AUC only {auc_dom:.3}");
}

/// Deterministic reproducibility across the whole pipeline: identical
/// seeds give identical graphs, attacks, trainings and scores.
#[test]
fn full_pipeline_is_reproducible() {
    let run = || {
        let g = base_graph(9);
        let attack = random_attack(&g, 0.2, 9);
        let poisoned = attack.apply(&g).unwrap();
        let result = aneci_plus(&poisoned, &quick_cfg(9), &DenoiseConfig::default(), None).unwrap();
        (
            attack.fake_edges().to_vec(),
            result.removed_edges.clone(),
            result.model.embedding().clone(),
        )
    };
    let (f1, r1, z1) = run();
    let (f2, r2, z2) = run();
    assert_eq!(f1, f2);
    assert_eq!(r1, r2);
    assert_eq!(z1, z2);
}
