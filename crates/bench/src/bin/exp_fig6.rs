//! Regenerates Fig. 6 (anomaly-detection AUC with seeded outliers).
fn main() {
    aneci_bench::exp::fig6::run(&aneci_bench::ExpArgs::parse());
}
