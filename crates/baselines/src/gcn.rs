//! Semi-supervised GCN node classifier (Kipf & Welling 2017).
//!
//! One of the semi-supervised comparison rows of Table III, and the
//! surrogate model that the NETTACK-style attack scores against.
//! Architecture and training follow the reference implementation: two
//! spectral convolution layers with ReLU, softmax cross-entropy on the
//! labelled training nodes, Adam with weight decay, early stopping on the
//! validation loss.

use aneci_autograd::train::{
    Objective, OptimizerKind, StepOutput, StopRule, TrainError, TrainStep, Trainer,
};
use aneci_autograd::{ParamSet, Tape, Var};
use aneci_graph::AttributedGraph;
use aneci_linalg::rng::{derive_seed, seeded_rng, xavier_uniform};
use aneci_linalg::{CsrMatrix, DenseMatrix};
use aneci_obs::span;
use rand::rngs::StdRng;
use std::sync::Arc;

/// GCN hyperparameters.
#[derive(Clone, Debug)]
pub struct GcnConfig {
    /// Hidden layer width.
    pub hidden_dim: usize,
    /// Learning rate (Adam).
    pub lr: f64,
    /// Decoupled weight decay.
    pub weight_decay: f64,
    /// Maximum epochs.
    pub epochs: usize,
    /// Early-stopping patience on the validation loss (0 disables).
    pub patience: usize,
    /// Dropout rate applied to the input features and hidden activations
    /// during training (the reference GCN uses 0.5; 0 disables — the
    /// default here, so small-graph experiments stay deterministic-simple).
    pub dropout: f64,
    /// Which optimizer drives the weight updates. Both Adam (the reference
    /// setup, the default) and SGD(+momentum) apply `weight_decay`
    /// uniformly through the shared `Optimizer` trait.
    pub optimizer: OptimizerKind,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GcnConfig {
    fn default() -> Self {
        Self {
            hidden_dim: 16,
            lr: 0.01,
            weight_decay: 5e-4,
            epochs: 200,
            patience: 20,
            dropout: 0.0,
            optimizer: OptimizerKind::Adam,
            seed: 0,
        }
    }
}

/// A trained GCN classifier.
pub struct GcnClassifier {
    params: ParamSet,
    norm_adj: Arc<CsrMatrix>,
    features: DenseMatrix,
    num_classes: usize,
    /// Training-loss history.
    pub train_losses: Vec<f64>,
    /// Validation-loss history (empty when there is no validation set).
    pub val_losses: Vec<f64>,
}

impl GcnClassifier {
    /// Trains on the graph's labelled `split.train` nodes. Panics on
    /// divergence; [`GcnClassifier::try_fit`] is the non-panicking variant.
    pub fn fit(graph: &AttributedGraph, config: &GcnConfig) -> Self {
        Self::try_fit(graph, config).expect("GCN training diverged")
    }

    /// Trains on the graph's labelled `split.train` nodes, surfacing
    /// [`TrainError::Diverged`] when the loss goes non-finite.
    pub fn try_fit(graph: &AttributedGraph, config: &GcnConfig) -> Result<Self, TrainError> {
        let labels = graph.labels.as_ref().expect("GCN needs labels").clone();
        let num_classes = graph.num_classes();
        assert!(num_classes >= 2, "GCN needs at least two classes");
        assert!(
            !graph.split.train.is_empty(),
            "GCN needs a non-empty training split"
        );
        let norm_adj = Arc::new(graph.norm_adjacency());
        let features = graph.features().clone();

        let mut rng = seeded_rng(derive_seed(config.seed, 0x6C4));
        let mut params = ParamSet::new();
        params.register(
            "w1",
            xavier_uniform(features.cols(), config.hidden_dim, &mut rng),
        );
        params.register(
            "w2",
            xavier_uniform(config.hidden_dim, num_classes, &mut rng),
        );

        let mut opt = config.optimizer.build(config.lr, config.weight_decay);
        let mut driver = GcnStep {
            norm_adj: &norm_adj,
            features: &features,
            labels: &labels,
            train_nodes: &graph.split.train,
            val_nodes: &graph.split.val,
            dropout: config.dropout,
            rng,
            val_losses: Vec::new(),
            best_params: None,
        };
        // The reference loop compared `vloss < best − 1e-6` and broke after
        // `patience` consecutive stalled validation epochs.
        let run = Trainer::new(config.epochs)
            .stop(StopRule::BestMonitor {
                objective: Objective::Minimize,
                patience: config.patience,
                min_delta: 1e-6,
            })
            .observe_as("train.gcn")
            .run(&mut params, opt.as_mut(), &mut driver)?;
        let GcnStep {
            val_losses,
            best_params,
            ..
        } = driver;
        if !val_losses.is_empty() {
            params = best_params.expect("first validation epoch always improves");
        }

        Ok(Self {
            params,
            norm_adj,
            features,
            num_classes,
            train_losses: run.losses,
            val_losses,
        })
    }

    /// Class logits for every node.
    pub fn logits(&self) -> DenseMatrix {
        let mut tape = Tape::new();
        let w = self.params.leaf_all(&mut tape);
        let out = forward(&mut tape, &w, &self.norm_adj, &self.features);
        tape.value(out).clone()
    }

    /// Hard class predictions for every node.
    pub fn predict(&self) -> Vec<usize> {
        self.logits().argmax_rows()
    }

    /// Accuracy on an index subset.
    pub fn accuracy_on(&self, graph: &AttributedGraph, nodes: &[usize]) -> f64 {
        let labels = graph.labels.as_ref().expect("needs labels");
        let pred = self.predict();
        if nodes.is_empty() {
            return 0.0;
        }
        let correct = nodes.iter().filter(|&&i| pred[i] == labels[i]).count();
        correct as f64 / nodes.len() as f64
    }

    /// The hidden-layer activations — a usable (supervised) embedding.
    pub fn hidden_embedding(&self) -> DenseMatrix {
        let mut tape = Tape::new();
        let w = self.params.leaf_all(&mut tape);
        let x = tape.constant(self.features.clone());
        let xw = tape.matmul(x, w[0]);
        let h1 = tape.spmm(&self.norm_adj, xw);
        let a1 = tape.relu(h1);
        tape.value(a1).clone()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The trained weight matrices `(W₁, W₂)` — the gradient-based attacks
    /// differentiate surrogate losses through these frozen weights.
    pub fn weights(&self) -> (DenseMatrix, DenseMatrix) {
        (self.params.get(0).clone(), self.params.get(1).clone())
    }
}

/// Drives [`GcnClassifier::fit`] through the shared [`Trainer`]: the
/// training loss on the labelled split, plus the validation loss as the
/// monitored metric and a best-parameter snapshot (taken pre-step, exactly
/// as the reference loop did).
struct GcnStep<'a> {
    norm_adj: &'a Arc<CsrMatrix>,
    features: &'a DenseMatrix,
    labels: &'a [usize],
    train_nodes: &'a [usize],
    val_nodes: &'a [usize],
    dropout: f64,
    rng: StdRng,
    val_losses: Vec<f64>,
    best_params: Option<ParamSet>,
}

impl TrainStep for GcnStep<'_> {
    fn step(&mut self, tape: &mut Tape, w: &[Var], _epoch: usize) -> StepOutput {
        let logits = {
            let _s = span("encode");
            forward_train(
                tape,
                w,
                self.norm_adj,
                self.features,
                self.dropout,
                &mut self.rng,
            )
        };
        let _s = span("loss");
        let loss = tape.softmax_cross_entropy(logits, self.labels, self.train_nodes);
        if self.val_nodes.is_empty() {
            return StepOutput::new(loss);
        }
        // Validation loss on the same forward pass (no grad needed).
        let vloss = {
            let mut t2 = Tape::new();
            let logits_const = t2.constant(tape.value(logits).clone());
            let l = t2.softmax_cross_entropy(logits_const, self.labels, self.val_nodes);
            t2.scalar(l)
        };
        self.val_losses.push(vloss);
        StepOutput::with_monitor(loss, vloss)
    }

    fn on_best(&mut self, _epoch: usize, params: &ParamSet) {
        self.best_params = Some(params.clone());
    }
}

/// The 2-layer GCN forward pass: `Ŝ·relu(Ŝ·X·W₁)·W₂`.
fn forward(tape: &mut Tape, w: &[Var], s: &Arc<CsrMatrix>, x: &DenseMatrix) -> Var {
    let xv = tape.constant(x.clone());
    let xw = tape.matmul(xv, w[0]);
    let h1 = tape.spmm(s, xw);
    let a1 = tape.relu(h1);
    let hw = tape.matmul(a1, w[1]);
    tape.spmm(s, hw)
}

/// Training-mode forward with inverted dropout on input and hidden layers.
fn forward_train(
    tape: &mut Tape,
    w: &[Var],
    s: &Arc<CsrMatrix>,
    x: &DenseMatrix,
    dropout: f64,
    rng: &mut rand::rngs::StdRng,
) -> Var {
    let xv = tape.constant(x.clone());
    let xd = tape.dropout(xv, dropout, rng);
    let xw = tape.matmul(xd, w[0]);
    let h1 = tape.spmm(s, xw);
    let a1 = tape.relu(h1);
    let ad = tape.dropout(a1, dropout, rng);
    let hw = tape.matmul(ad, w[1]);
    tape.spmm(s, hw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aneci_graph::{generate_sbm, karate_club, sample_split, SbmConfig, Split};

    fn sbm_with_split(seed: u64) -> AttributedGraph {
        let mut cfg = SbmConfig::small();
        cfg.num_nodes = 300;
        cfg.num_classes = 3;
        cfg.target_edges = 1200;
        let mut g = generate_sbm(&cfg, seed);
        let labels = g.labels.clone().unwrap();
        g.set_split(sample_split(&labels, 20, 60, 150, seed));
        g
    }

    #[test]
    fn learns_sbm_classification() {
        let g = sbm_with_split(1);
        let model = GcnClassifier::fit(
            &g,
            &GcnConfig {
                epochs: 120,
                ..Default::default()
            },
        );
        let acc = model.accuracy_on(&g, &g.split.test);
        assert!(acc > 0.8, "test accuracy {acc}");
    }

    #[test]
    fn training_loss_decreases() {
        let g = sbm_with_split(2);
        let model = GcnClassifier::fit(
            &g,
            &GcnConfig {
                epochs: 50,
                patience: 0,
                ..Default::default()
            },
        );
        assert!(model.train_losses.last().unwrap() < &model.train_losses[0]);
    }

    #[test]
    fn karate_with_tiny_split() {
        let mut g = karate_club();
        g.set_split(Split {
            train: vec![0, 33],
            val: vec![1, 32],
            test: (2..32).collect(),
        });
        let model = GcnClassifier::fit(
            &g,
            &GcnConfig {
                epochs: 100,
                ..Default::default()
            },
        );
        // Two labelled nodes are enough on karate thanks to propagation.
        let acc = model.accuracy_on(&g, &g.split.test);
        assert!(acc > 0.8, "karate accuracy {acc}");
    }

    #[test]
    fn early_stopping_can_trigger() {
        let g = sbm_with_split(3);
        let model = GcnClassifier::fit(
            &g,
            &GcnConfig {
                epochs: 400,
                patience: 5,
                ..Default::default()
            },
        );
        assert!(model.train_losses.len() < 400, "early stopping never fired");
    }

    #[test]
    fn hidden_embedding_shape() {
        let g = sbm_with_split(4);
        let cfg = GcnConfig {
            hidden_dim: 24,
            epochs: 10,
            ..Default::default()
        };
        let model = GcnClassifier::fit(&g, &cfg);
        assert_eq!(model.hidden_embedding().shape(), (300, 24));
    }

    #[test]
    fn deterministic_in_seed() {
        let g = sbm_with_split(5);
        let cfg = GcnConfig {
            epochs: 20,
            ..Default::default()
        };
        let a = GcnClassifier::fit(&g, &cfg).predict();
        let b = GcnClassifier::fit(&g, &cfg).predict();
        assert_eq!(a, b);
    }

    /// The pre-`Trainer` loop, replicated by hand, must produce bit-exact
    /// train/val trajectories and the same kept parameters as `fit` — the
    /// migration changed no tape op order, RNG draw or update order.
    #[test]
    fn trainer_matches_hand_rolled_reference_loop() {
        use aneci_autograd::Adam;

        let g = sbm_with_split(7);
        let cfg = GcnConfig {
            epochs: 60,
            patience: 5,
            dropout: 0.5, // exercise the RNG stream too
            ..Default::default()
        };

        // --- Hand-rolled reference (the old fit body, verbatim). ---
        let labels = g.labels.as_ref().unwrap().clone();
        let norm_adj = Arc::new(g.norm_adjacency());
        let features = g.features().clone();
        let mut rng = seeded_rng(derive_seed(cfg.seed, 0x6C4));
        let mut params = ParamSet::new();
        params.register(
            "w1",
            xavier_uniform(features.cols(), cfg.hidden_dim, &mut rng),
        );
        params.register(
            "w2",
            xavier_uniform(cfg.hidden_dim, g.num_classes(), &mut rng),
        );
        let mut opt = Adam::new(cfg.lr).with_weight_decay(cfg.weight_decay);
        let mut train_losses = Vec::new();
        let mut val_losses = Vec::new();
        let mut best_val = f64::INFINITY;
        let mut best_params = params.clone();
        let mut stall = 0usize;
        for _ in 0..cfg.epochs {
            let mut tape = Tape::new();
            let w = params.leaf_all(&mut tape);
            let logits = forward_train(&mut tape, &w, &norm_adj, &features, cfg.dropout, &mut rng);
            let loss = tape.softmax_cross_entropy(logits, &labels, &g.split.train);
            tape.backward(loss);
            train_losses.push(tape.scalar(loss));
            if !g.split.val.is_empty() {
                let vloss = {
                    let mut t2 = Tape::new();
                    let logits_const = t2.constant(tape.value(logits).clone());
                    let l = t2.softmax_cross_entropy(logits_const, &labels, &g.split.val);
                    t2.scalar(l)
                };
                val_losses.push(vloss);
                if vloss < best_val - 1e-6 {
                    best_val = vloss;
                    stall = 0;
                    best_params = params.clone();
                } else {
                    stall += 1;
                }
            }
            let grads = params.grads(&tape, &w);
            drop(tape);
            opt.step(&mut params, &grads);
            if cfg.patience > 0 && stall >= cfg.patience {
                break;
            }
        }
        if !val_losses.is_empty() {
            params = best_params;
        }

        // --- Trainer-driven fit. ---
        let model = GcnClassifier::fit(&g, &cfg);
        assert_eq!(model.train_losses, train_losses, "train-loss trajectory");
        assert_eq!(model.val_losses, val_losses, "val-loss trajectory");
        assert_eq!(model.params.get(0), params.get(0), "kept W1");
        assert_eq!(model.params.get(1), params.get(1), "kept W2");
    }

    /// The optimizer satellite: the classifier trains under SGD+momentum
    /// with the same weight-decay config as Adam, via the Optimizer trait.
    #[test]
    fn trains_with_sgd_momentum_optimizer() {
        use aneci_autograd::train::OptimizerKind;

        let g = sbm_with_split(8);
        let cfg = GcnConfig {
            epochs: 150,
            lr: 0.2,
            optimizer: OptimizerKind::Sgd { momentum: 0.9 },
            ..Default::default()
        };
        let model = GcnClassifier::fit(&g, &cfg);
        assert!(model.train_losses.last().unwrap() < &model.train_losses[0]);
        let acc = model.accuracy_on(&g, &g.split.test);
        assert!(acc > 0.7, "SGD-GCN accuracy {acc}");
    }

    #[test]
    fn learns_with_dropout_enabled() {
        let g = sbm_with_split(6);
        let cfg = GcnConfig {
            epochs: 150,
            dropout: 0.5,
            ..Default::default()
        };
        let model = GcnClassifier::fit(&g, &cfg);
        let acc = model.accuracy_on(&g, &g.split.test);
        assert!(acc > 0.75, "dropout-GCN accuracy {acc}");
    }
}
