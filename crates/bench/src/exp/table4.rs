//! Table IV — ablation study (paper: on Cora).
//!
//! Variants:
//!
//! * **Raw feature** — the attribute matrix `X` itself;
//! * **+Encoder** — the *untrained* GCN encoder output (pure Laplacian
//!   smoothing of `X`, as the paper's visualization discussion describes);
//! * **+Modularity** — AnECI trained with the modularity term only
//!   (`β₂ = 0`);
//! * **Full model** — AnECI with both loss terms.
//!
//! Tasks: node classification (logistic regression, ACC), anomaly detection
//! (Mix outliers; a uniform isolation-forest scoring over every variant's
//! embedding so the comparison is apples-to-apples), and community
//! detection (k-means++ partition scored by modularity).

use crate::{classify, print_table, ExpArgs};
use aneci_attacks::{seed_outliers, OutlierType};
use aneci_core::{AneciConfig, AneciModel, StopStrategy};
use aneci_eval::{auc, isolation_forest_scores, kmeans_best_of, modularity, IsolationForestConfig};
use aneci_graph::AttributedGraph;
use aneci_linalg::rng::derive_seed;
use aneci_linalg::stats::mean;
use aneci_linalg::DenseMatrix;

/// The four ablation variants.
#[derive(Clone, Copy, Debug)]
pub enum Variant {
    /// `X` as the embedding.
    RawFeature,
    /// Untrained encoder (graph smoothing of `X`).
    EncoderOnly,
    /// Modularity loss only (`β₂ = 0`).
    PlusModularity,
    /// Full AnECI objective.
    Full,
}

impl Variant {
    /// All variants in table order.
    pub const ALL: [Variant; 4] = [
        Self::RawFeature,
        Self::EncoderOnly,
        Self::PlusModularity,
        Self::Full,
    ];

    /// Row label.
    pub fn name(&self) -> &'static str {
        match self {
            Self::RawFeature => "Raw feature",
            Self::EncoderOnly => "+Encoder",
            Self::PlusModularity => "+Modularity",
            Self::Full => "Full model",
        }
    }

    /// Produces the variant's embedding for a graph.
    pub fn embed(&self, graph: &AttributedGraph, seed: u64) -> DenseMatrix {
        match self {
            Self::RawFeature => graph.features().clone(),
            Self::EncoderOnly => {
                // Untrained encoder = forward pass with the Xavier init.
                let config = AneciConfig {
                    seed,
                    ..Default::default()
                };
                AneciModel::new(graph, &config).forward_embedding()
            }
            Self::PlusModularity => {
                let config = AneciConfig {
                    beta2: 0.0,
                    epochs: 150,
                    stop: StopStrategy::FixedEpochs,
                    seed,
                    ..Default::default()
                };
                let mut model = AneciModel::new(graph, &config);
                model.train(None).expect("training failed");
                model.embedding().clone()
            }
            Self::Full => {
                let config = AneciConfig {
                    epochs: 150,
                    stop: StopStrategy::FixedEpochs,
                    seed,
                    ..Default::default()
                };
                let mut model = AneciModel::new(graph, &config);
                model.train(None).expect("training failed");
                model.embedding().clone()
            }
        }
    }
}

/// Runs the Table IV ablation (first requested dataset; paper uses Cora).
pub fn run(args: &ExpArgs) {
    let dataset = args.datasets[0];
    let mut acc = vec![Vec::new(); 4];
    let mut auc_scores = vec![Vec::new(); 4];
    let mut mods = vec![Vec::new(); 4];

    for round in 0..args.rounds {
        let seed = derive_seed(args.seed, round as u64 + 4000);
        let graph = dataset.generate(args.scale, seed);
        let k = graph.num_classes().max(2);
        let outcome = seed_outliers(
            &graph,
            0.05,
            &[
                OutlierType::Structural,
                OutlierType::Attribute,
                OutlierType::Combined,
            ],
            seed,
        );
        let seeded = outcome.apply(&graph).expect("outlier delta");
        let truth = outcome.outlier_mask(graph.num_nodes());
        eprintln!("[table4] {} round {round}", dataset.name());

        for (slot, variant) in Variant::ALL.iter().enumerate() {
            // Classification on the clean graph.
            let z = variant.embed(&graph, seed);
            acc[slot].push(classify(&graph, &z, seed));

            // Anomaly detection on the seeded graph.
            let z_anom = variant.embed(&seeded, seed);
            let scores = isolation_forest_scores(
                &z_anom,
                &IsolationForestConfig {
                    seed,
                    ..Default::default()
                },
            );
            auc_scores[slot].push(auc(&scores, &truth));

            // Community detection on the clean graph.
            let partition = kmeans_best_of(&z, k, 100, 5, seed).assignments;
            mods[slot].push(modularity(&graph, &partition));
        }
    }

    let rows: Vec<Vec<String>> = Variant::ALL
        .iter()
        .enumerate()
        .map(|(slot, v)| {
            vec![
                v.name().to_string(),
                format!("{:.3}", mean(&acc[slot])),
                format!("{:.3}", mean(&auc_scores[slot])),
                format!("{:.3}", mean(&mods[slot])),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Table IV — ablation on {} (ACC / AUC / Modularity)",
            dataset.name()
        ),
        &[
            "variant",
            "classification ACC",
            "anomaly AUC",
            "community Q",
        ],
        &rows,
    );
}
