//! Mini-batch extension of the shared training engine.
//!
//! [`Trainer::run_batched`] generalizes [`Trainer::run`] from one loss per
//! epoch to a sequence of per-batch losses, each with its own
//! backward/clip/optimizer step, while keeping the epoch-level contract
//! (best tracking, divergence guard, schedules, early stopping, telemetry)
//! identical — an epoch whose plan holds a single batch covering every node
//! executes *exactly* the [`Trainer::run`] pipeline, which is what the
//! full-batch/mini-batch parity test pins bit-exactly.
//!
//! [`BatchSampler`] produces the per-epoch batch plans:
//!
//! * [`BatchStrategy::CommunityAware`] — sample whole communities, then
//!   their l-hop neighborhoods, so the modularity term is computed on a
//!   coherent induced subgraph (the signal AnECI's loss depends on);
//! * [`BatchStrategy::NeighborSampling`] — GraphSAGE-style uniform neighbor
//!   expansion from shuffled seed nodes, the generic fallback when no
//!   community structure is known;
//! * [`BatchStrategy::FullGraph`] — one batch with every node (the parity /
//!   debugging strategy).
//!
//! Sampling is a *serial* walk of one RNG stream derived from
//! `(seed, 0xBA7C, epoch)` — no pooled code touches it — so plans are
//! bit-identical across `ANECI_NUM_THREADS` and chunk decompositions by
//! construction (pinned by `tests/minibatch_parity.rs`).
//!
//! Every batch records `train.batch.nodes` (histogram), and wall-time
//! histograms `train.batch.sample_ns` / `train.batch.step_ns` (excluded,
//! like all `_ns` metrics, from deterministic obs snapshots).

use crate::optim::ParamSet;
use crate::tape::{Tape, Var};
use crate::train::{
    EpochStats, LrSchedule, Objective, Optimizer, StepOutput, StopRule, TrainError, TrainRun,
    Trainer,
};
use aneci_linalg::rng::{derive_seed, sample_distinct, seeded_rng, shuffle};
use aneci_linalg::CsrMatrix;
use std::time::Instant;

/// RNG stream label for batch sampling (derived once per sampler seed; the
/// epoch index is derived on top per plan).
const BATCH_STREAM: u64 = 0xBA7C;

/// How an epoch's node set is cut into training batches.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BatchStrategy {
    /// One batch holding every node — the reference strategy:
    /// `run_batched` with this plan is bit-exact with `run`.
    FullGraph,
    /// Community-aware subgraph sampling: shuffle the communities, group
    /// `communities_per_batch` of them per batch, and expand each group's
    /// member set by `hops` adjacency hops (the high-order neighborhood the
    /// proximity matrix couples them to), capping the batch at
    /// `max_batch_nodes` nodes (`0` = uncapped).
    CommunityAware {
        /// Communities seeding each batch.
        communities_per_batch: usize,
        /// Neighborhood expansion hops added around the sampled communities.
        hops: usize,
        /// Hard cap on nodes per batch after expansion (`0` = uncapped).
        max_batch_nodes: usize,
    },
    /// GraphSAGE-style uniform neighbor sampling: shuffle all nodes, take
    /// `seeds_per_batch` seeds per batch, and for `hops` rounds add up to
    /// `fanout` uniformly-sampled neighbors of every frontier node.
    NeighborSampling {
        /// Seed nodes per batch.
        seeds_per_batch: usize,
        /// Neighbors sampled per frontier node per hop.
        fanout: usize,
        /// Expansion rounds.
        hops: usize,
    },
}

/// Deterministic per-epoch batch planner over a CSR adjacency. Community
/// assignments are optional; [`BatchStrategy::CommunityAware`] requires
/// them.
pub struct BatchSampler<'a> {
    adjacency: &'a CsrMatrix,
    strategy: BatchStrategy,
    seed: u64,
    /// Members of each community, ascending (CommunityAware only).
    groups: Vec<Vec<u32>>,
}

impl<'a> BatchSampler<'a> {
    /// Builds a sampler. `communities[i]` is node `i`'s community id;
    /// required for [`BatchStrategy::CommunityAware`], ignored otherwise.
    pub fn new(
        adjacency: &'a CsrMatrix,
        strategy: BatchStrategy,
        communities: Option<&[usize]>,
        seed: u64,
    ) -> Self {
        assert_eq!(
            adjacency.rows(),
            adjacency.cols(),
            "batch sampler: adjacency must be square"
        );
        let groups = if let BatchStrategy::CommunityAware {
            communities_per_batch,
            ..
        } = strategy
        {
            assert!(
                communities_per_batch >= 1,
                "batch sampler: communities_per_batch must be at least 1"
            );
            let labels =
                communities.expect("batch sampler: CommunityAware requires community assignments");
            assert_eq!(
                labels.len(),
                adjacency.rows(),
                "batch sampler: one community per node required"
            );
            let k = labels.iter().copied().max().map_or(0, |m| m + 1);
            let mut groups = vec![Vec::new(); k];
            for (i, &c) in labels.iter().enumerate() {
                groups[c].push(i as u32);
            }
            groups.retain(|g| !g.is_empty());
            groups
        } else {
            Vec::new()
        };
        if let BatchStrategy::NeighborSampling {
            seeds_per_batch,
            fanout,
            hops,
        } = strategy
        {
            assert!(
                seeds_per_batch >= 1,
                "batch sampler: seeds_per_batch must be at least 1"
            );
            assert!(
                hops == 0 || fanout >= 1,
                "batch sampler: fanout must be at least 1 when hops > 0"
            );
        }
        Self {
            adjacency,
            strategy,
            seed,
            groups,
        }
    }

    /// The batch plan for `epoch`: each batch is a sorted, deduplicated node
    /// list. Serial seeded-RNG walk — identical for any thread count.
    pub fn epoch_plan(&self, epoch: usize) -> Vec<Vec<usize>> {
        let n = self.adjacency.rows();
        let mut rng = seeded_rng(derive_seed(
            derive_seed(self.seed, BATCH_STREAM),
            epoch as u64,
        ));
        match self.strategy {
            BatchStrategy::FullGraph => vec![(0..n).collect()],
            BatchStrategy::CommunityAware {
                communities_per_batch,
                hops,
                max_batch_nodes,
            } => {
                let mut order: Vec<usize> = (0..self.groups.len()).collect();
                shuffle(&mut order, &mut rng);
                let mut visited = vec![false; n];
                let cap = if max_batch_nodes == 0 {
                    usize::MAX
                } else {
                    max_batch_nodes
                };
                order
                    .chunks(communities_per_batch)
                    .map(|group_ids| {
                        let mut batch: Vec<usize> = Vec::new();
                        for &g in group_ids {
                            for &m in &self.groups[g] {
                                if batch.len() >= cap {
                                    break;
                                }
                                if !visited[m as usize] {
                                    visited[m as usize] = true;
                                    batch.push(m as usize);
                                }
                            }
                        }
                        self.expand_hops(&mut batch, &mut visited, hops, cap, None);
                        for &v in &batch {
                            visited[v] = false;
                        }
                        batch.sort_unstable();
                        batch
                    })
                    .filter(|b| !b.is_empty())
                    .collect()
            }
            BatchStrategy::NeighborSampling {
                seeds_per_batch,
                fanout,
                hops,
            } => {
                let mut order: Vec<usize> = (0..n).collect();
                shuffle(&mut order, &mut rng);
                let mut visited = vec![false; n];
                order
                    .chunks(seeds_per_batch)
                    .map(|seeds| {
                        let mut batch: Vec<usize> = Vec::new();
                        for &s in seeds {
                            if !visited[s] {
                                visited[s] = true;
                                batch.push(s);
                            }
                        }
                        self.expand_hops(
                            &mut batch,
                            &mut visited,
                            hops,
                            usize::MAX,
                            Some((fanout, &mut rng)),
                        );
                        for &v in &batch {
                            visited[v] = false;
                        }
                        batch.sort_unstable();
                        batch
                    })
                    .filter(|b| !b.is_empty())
                    .collect()
            }
        }
    }

    /// Expands `batch` by `hops` BFS rounds over the adjacency, marking
    /// `visited`. With `sample = Some((fanout, rng))` each frontier node
    /// contributes at most `fanout` uniformly-sampled neighbors
    /// (GraphSAGE); with `None` the full neighborhood is taken, bounded by
    /// `cap` total nodes.
    fn expand_hops(
        &self,
        batch: &mut Vec<usize>,
        visited: &mut [bool],
        hops: usize,
        cap: usize,
        mut sample: Option<(usize, &mut rand::rngs::StdRng)>,
    ) {
        let indptr = self.adjacency.indptr();
        let indices = self.adjacency.indices();
        let mut frontier_start = 0usize;
        for _ in 0..hops {
            let frontier_end = batch.len();
            if frontier_start == frontier_end || batch.len() >= cap {
                break;
            }
            for fi in frontier_start..frontier_end {
                let node = batch[fi];
                let (s, e) = (indptr[node], indptr[node + 1]);
                let deg = e - s;
                let mut push = |pos: usize, batch: &mut Vec<usize>| {
                    let nb = indices[pos] as usize;
                    if !visited[nb] && batch.len() < cap {
                        visited[nb] = true;
                        batch.push(nb);
                    }
                };
                match sample {
                    Some((fanout, ref mut rng)) if deg > fanout => {
                        // Distinct neighbor positions, uniform without
                        // replacement; the RNG walk stays serial.
                        for off in sample_distinct(deg, fanout, rng) {
                            push(s + off, batch);
                        }
                    }
                    _ => {
                        for pos in s..e {
                            push(pos, batch);
                        }
                    }
                }
                if batch.len() >= cap {
                    break;
                }
            }
            frontier_start = frontier_end;
        }
    }
}

/// One batch of model-specific work for [`Trainer::run_batched`] — the
/// batched counterpart of [`crate::train::TrainStep`].
pub trait BatchTrainStep {
    /// Builds this batch's loss on a fresh tape. `nodes` is the sorted node
    /// set of batch `batch_index` (of `batch_count`) in epoch `epoch`.
    /// The returned monitor values are averaged over the epoch's batches
    /// for the stop rule.
    fn step(
        &mut self,
        tape: &mut Tape,
        params: &[Var],
        epoch: usize,
        batch_index: usize,
        batch_count: usize,
        nodes: &[usize],
    ) -> StepOutput;

    /// Fires when the epoch-level monitored metric improves (and every
    /// epoch under [`StopRule::FixedEpochs`]), before the epoch's final
    /// optimizer step — mirroring [`crate::train::TrainStep::on_best`].
    fn on_best(&mut self, _epoch: usize, _params: &ParamSet) {}

    /// Fires at the end of every epoch with batch-averaged statistics.
    fn on_epoch(&mut self, _stats: &EpochStats) {}
}

impl Trainer {
    /// Mini-batch variant of [`Trainer::run`]: per epoch, `plan(epoch)`
    /// yields the batch node sets; every batch gets a fresh tape, its own
    /// loss, backward and optimizer step. Epoch-level loss/monitor are the
    /// means over the epoch's batches; best tracking fires between the last
    /// batch's forward and its optimizer step, so a one-batch-per-epoch
    /// plan covering all nodes reproduces [`Trainer::run`] bit-exactly.
    pub fn run_batched(
        &self,
        params: &mut ParamSet,
        opt: &mut dyn Optimizer,
        plan: &mut dyn FnMut(usize) -> Vec<Vec<usize>>,
        step: &mut dyn BatchTrainStep,
    ) -> Result<TrainRun, TrainError> {
        let _run_span = self.obs_prefix.as_deref().map(aneci_obs::span);
        let obs = self.obs_prefix.as_deref().map(|p| {
            (
                aneci_obs::histogram(&format!("{p}.loss")),
                aneci_obs::histogram(&format!("{p}.grad_norm")),
                aneci_obs::counter(&format!("{p}.epochs")),
            )
        });
        let batch_nodes_h = aneci_obs::histogram("train.batch.nodes");
        let sample_ns_h = aneci_obs::histogram_time_ns("train.batch.sample_ns");
        let step_ns_h = aneci_obs::histogram_time_ns("train.batch.step_ns");

        let base_lr = opt.lr();
        let mut run = TrainRun::default();
        let mut best = match self.stop {
            StopRule::BestMonitor {
                objective: Objective::Maximize,
                ..
            } => f64::NEG_INFINITY,
            _ => f64::INFINITY,
        };
        let mut stall = 0usize;
        let mut last_good: Option<ParamSet> = None;

        for epoch in 0..self.epochs {
            if let LrSchedule::StepDecay { every, factor } = self.lr_schedule {
                let k = (epoch / every.max(1)) as i32;
                opt.set_lr(base_lr * factor.powi(k));
            }

            let sample_start = Instant::now();
            let batches = plan(epoch);
            sample_ns_h.observe(sample_start.elapsed().as_nanos() as f64);
            let batch_count = batches.iter().filter(|b| !b.is_empty()).count();
            assert!(batch_count > 0, "batch plan for epoch {epoch} is empty");

            let mut loss_sum = 0.0f64;
            let mut gnorm_sum = 0.0f64;
            let mut monitor_sum = 0.0f64;
            let mut monitored = 0usize;
            let mut epoch_monitor = None;
            let mut improved = false;
            let mut seen = 0usize;

            for (bi, nodes) in batches.iter().filter(|b| !b.is_empty()).enumerate() {
                let step_start = Instant::now();
                batch_nodes_h.observe(nodes.len() as f64);

                let mut tape = Tape::new();
                let vars = params.leaf_all(&mut tape);
                let out = step.step(&mut tape, &vars, epoch, bi, batch_count, nodes);
                let loss_val = tape.scalar(out.loss);

                if self.guard_divergence && !loss_val.is_finite() {
                    if let Some(good) = last_good.take() {
                        *params = good;
                    }
                    return Err(TrainError::Diverged {
                        epoch,
                        loss: loss_val,
                    });
                }

                loss_sum += loss_val;
                if let Some(m) = out.monitor {
                    monitor_sum += m;
                    monitored += 1;
                }
                seen += 1;

                // Epoch-level best tracking between the last batch's forward
                // and its optimizer step (run()'s ordering for one batch):
                // on_best must see the parameters that produced the metric.
                if seen == batch_count {
                    epoch_monitor = (monitored > 0).then(|| monitor_sum / monitored as f64);
                    improved = match self.stop {
                        StopRule::FixedEpochs => {
                            run.best_epoch = epoch;
                            step.on_best(epoch, params);
                            true
                        }
                        StopRule::BestMonitor {
                            objective,
                            min_delta,
                            ..
                        } => match epoch_monitor {
                            Some(m) => {
                                run.monitors.push((epoch, m));
                                let better = match objective {
                                    Objective::Maximize => m > best + min_delta,
                                    Objective::Minimize => m < best - min_delta,
                                };
                                if better {
                                    best = m;
                                    run.best_epoch = epoch;
                                    run.best_monitor = Some(m);
                                    stall = 0;
                                    step.on_best(epoch, params);
                                } else {
                                    stall += 1;
                                }
                                better
                            }
                            None => false,
                        },
                    };
                }

                let _step_span = self.obs_prefix.is_some().then(|| aneci_obs::span("step"));
                tape.backward(out.loss);
                let mut grads = params.grads(&tape, &vars);
                drop(tape);
                let norm = ParamSet::grad_norm(&grads);
                if self.guard_divergence && !norm.is_finite() {
                    return Err(TrainError::Diverged {
                        epoch,
                        loss: loss_val,
                    });
                }
                if let Some(max_norm) = self.clip_norm {
                    ParamSet::clip_grad_norm(&mut grads, max_norm);
                }
                if self.guard_divergence {
                    last_good = Some(params.clone());
                }
                opt.step(params, &grads);
                gnorm_sum += norm;
                step_ns_h.observe(step_start.elapsed().as_nanos() as f64);
            }

            let epoch_loss = loss_sum / batch_count as f64;
            let epoch_gnorm = gnorm_sum / batch_count as f64;
            if let Some((loss_h, gnorm_h, epochs_c)) = &obs {
                loss_h.observe(epoch_loss);
                gnorm_h.observe(epoch_gnorm);
                epochs_c.inc();
            }
            run.losses.push(epoch_loss);
            run.epochs_run = epoch + 1;

            step.on_epoch(&EpochStats {
                epoch,
                loss: epoch_loss,
                monitor: epoch_monitor,
                grad_norm: epoch_gnorm,
                lr: opt.lr(),
                improved,
            });

            if let StopRule::BestMonitor { patience, .. } = self.stop {
                if patience > 0 && stall >= patience {
                    run.stopped_early = true;
                    break;
                }
            }
        }
        Ok(run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use aneci_linalg::DenseMatrix;

    fn ring(n: usize) -> CsrMatrix {
        let mut trips = Vec::new();
        for i in 0..n {
            let j = (i + 1) % n;
            trips.push((i, j, 1.0));
            trips.push((j, i, 1.0));
        }
        CsrMatrix::from_triplets(n, n, &trips)
    }

    #[test]
    fn community_plan_covers_all_members_and_is_seed_stable() {
        let a = ring(12);
        let labels: Vec<usize> = (0..12).map(|i| i % 3).collect();
        let strat = BatchStrategy::CommunityAware {
            communities_per_batch: 1,
            hops: 0,
            max_batch_nodes: 0,
        };
        let s = BatchSampler::new(&a, strat, Some(&labels), 9);
        let plan = s.epoch_plan(0);
        assert_eq!(plan.len(), 3);
        let mut all: Vec<usize> = plan.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..12).collect::<Vec<_>>());
        // Same seed+epoch → same plan; different epoch → (generally) not.
        assert_eq!(
            plan,
            BatchSampler::new(&a, strat, Some(&labels), 9).epoch_plan(0)
        );
    }

    #[test]
    fn hop_expansion_adds_ring_neighbors() {
        let a = ring(10);
        let labels: Vec<usize> = (0..10).map(|i| usize::from(i >= 5)).collect();
        let strat = BatchStrategy::CommunityAware {
            communities_per_batch: 1,
            hops: 1,
            max_batch_nodes: 0,
        };
        let s = BatchSampler::new(&a, strat, Some(&labels), 1);
        for batch in s.epoch_plan(3) {
            // One hop around a contiguous arc adds the two boundary nodes.
            assert_eq!(batch.len(), 7, "batch {batch:?}");
            assert!(batch.windows(2).all(|w| w[0] < w[1]), "sorted unique");
        }
    }

    #[test]
    fn neighbor_sampling_bounds_fanout() {
        let a = ring(20);
        let strat = BatchStrategy::NeighborSampling {
            seeds_per_batch: 4,
            fanout: 1,
            hops: 1,
        };
        let s = BatchSampler::new(&a, strat, None, 5);
        let plan = s.epoch_plan(0);
        assert_eq!(plan.len(), 5);
        for batch in &plan {
            // 4 seeds, each adding at most one neighbor.
            assert!(batch.len() <= 8, "batch {batch:?}");
            assert!(batch.windows(2).all(|w| w[0] < w[1]));
        }
        // Seeds partition the nodes even though expansions overlap.
        let total: usize = plan.iter().map(|b| b.len()).sum();
        assert!(total >= 20);
    }

    #[test]
    fn full_graph_single_batch_matches_run_bit_exactly() {
        // Quadratic bowl, identical init: run() vs run_batched(FullGraph).
        let target = DenseMatrix::from_rows(&[&[1.0, -2.0], &[3.0, 0.5]]);
        let build = || {
            let mut p = ParamSet::new();
            p.register("x", DenseMatrix::zeros(2, 2));
            p
        };

        let mut p1 = build();
        let mut o1 = Adam::new(0.05);
        let t1 = target.clone();
        let mut s1 = move |tape: &mut Tape, w: &[Var], _e: usize| -> Var {
            let c = tape.constant(t1.clone());
            let d = tape.sub(w[0], c);
            tape.frob_sq(d)
        };
        let r1 = Trainer::new(40).run(&mut p1, &mut o1, &mut s1).unwrap();

        struct Bowl(DenseMatrix);
        impl BatchTrainStep for Bowl {
            fn step(
                &mut self,
                tape: &mut Tape,
                w: &[Var],
                _epoch: usize,
                _bi: usize,
                _bc: usize,
                nodes: &[usize],
            ) -> StepOutput {
                assert_eq!(nodes.len(), 2, "plan hands the full node set");
                let c = tape.constant(self.0.clone());
                let d = tape.sub(w[0], c);
                StepOutput::new(tape.frob_sq(d))
            }
        }
        let mut p2 = build();
        let mut o2 = Adam::new(0.05);
        let a = ring(2);
        let sampler = BatchSampler::new(&a, BatchStrategy::FullGraph, None, 0);
        let r2 = Trainer::new(40)
            .run_batched(
                &mut p2,
                &mut o2,
                &mut |e| sampler.epoch_plan(e),
                &mut Bowl(target),
            )
            .unwrap();

        assert_eq!(r1.losses, r2.losses);
        assert_eq!(p1.get(0), p2.get(0));
        assert_eq!(r1.best_epoch, r2.best_epoch);
    }
}
