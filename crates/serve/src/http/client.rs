//! A minimal blocking HTTP/1.1 client over one `TcpStream`, zero
//! dependencies — just enough to drive the server from benches, tests, and
//! examples (keep-alive reuse, `Content-Length`-framed responses). Not a
//! general-purpose client.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed response.
#[derive(Debug)]
pub struct ClientResponse {
    pub status: u16,
    /// Header fields; names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header value with this (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A persistent connection to one server; requests issued through it reuse
/// the socket (keep-alive) until the server closes it.
pub struct HttpClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl HttpClient {
    /// Connects with a 5 s I/O timeout on both directions.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        stream.set_write_timeout(Some(Duration::from_secs(5)))?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self { stream, reader })
    }

    /// `GET path`.
    pub fn get(&mut self, path: &str) -> std::io::Result<ClientResponse> {
        self.request("GET", path, None)
    }

    /// `POST path` with a body (framed with `Content-Length`).
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<ClientResponse> {
        self.request("POST", path, Some(body.as_bytes()))
    }

    /// Issues one request and reads the full response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> std::io::Result<ClientResponse> {
        let body = body.unwrap_or(&[]);
        write!(
            self.stream,
            "{method} {path} HTTP/1.1\r\nhost: aneci\r\ncontent-length: {}\r\n\r\n",
            body.len()
        )?;
        self.stream.write_all(body)?;
        self.stream.flush()?;
        self.read_response()
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-response",
            ));
        }
        Ok(line.trim_end_matches(['\r', '\n']).to_string())
    }

    fn read_response(&mut self) -> std::io::Result<ClientResponse> {
        let status_line = self.read_line()?;
        let status = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad status line {status_line:?}"),
                )
            })?;
        let mut headers = Vec::new();
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
            }
        }
        let content_length = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse::<usize>().ok());
        let body = match content_length {
            Some(n) => {
                let mut body = vec![0u8; n];
                self.reader.read_exact(&mut body)?;
                body
            }
            None => {
                // Close-delimited: drain until EOF.
                let mut body = Vec::new();
                self.reader.read_to_end(&mut body)?;
                body
            }
        };
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }
}

/// One-shot convenience: connect, `GET path`, disconnect.
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<ClientResponse> {
    HttpClient::connect(addr)?.get(path)
}

/// One-shot convenience: connect, `POST path`, disconnect.
pub fn post(addr: SocketAddr, path: &str, body: &str) -> std::io::Result<ClientResponse> {
    HttpClient::connect(addr)?.post(path, body)
}
