//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Tape`] records a DAG of matrix operations as they are executed
//! (define-by-run). Each node stores its forward value; [`Tape::backward`]
//! runs a single reverse sweep accumulating gradients. Nodes are addressed by
//! the lightweight [`Var`] index — no `Rc`/`RefCell` appears in the public
//! API.
//!
//! Besides the generic primitives (products, activations, reductions), the
//! tape offers three *fused* operations that the paper's objectives need to
//! stay `O(nnz)` instead of `O(N²)`:
//!
//! * [`Tape::spmm`] — sparse-constant × dense-variable product for GCN
//!   propagation and the `ÃP` term of the modularity;
//! * [`Tape::dense_recon_bce`] — the generalized cross-entropy of
//!   `sigmoid(P Pᵀ)` against a dense target (Eq. 17), with the `N×N` score
//!   matrix never leaving the op;
//! * [`Tape::pair_bce`] — the negative-sampled estimator of the same loss for
//!   large graphs.

use aneci_linalg::{par, pool, CsrMatrix, DenseMatrix};
use std::sync::Arc;

/// Handle to a node on a [`Tape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Var(usize);

impl Var {
    /// Raw index of this node on its tape.
    pub fn index(self) -> usize {
        self.0
    }
}

/// One training-example pair for [`Tape::pair_bce`]: `(i, j, target)`.
pub type BcePair = (u32, u32, f64);

enum Op {
    Leaf,
    MatMul(Var, Var),
    MatMulTn(Var, Var),
    SpMm(Arc<CsrMatrix>, Var),
    Add(Var, Var),
    Sub(Var, Var),
    Hadamard(Var, Var),
    AddRowBroadcast(Var, Var),
    Scale(Var, f64),
    Neg(Var),
    LeakyRelu(Var, f64),
    Relu(Var),
    Sigmoid(Var),
    Tanh(Var),
    Exp(Var),
    Dropout(Var, Arc<DenseMatrix>),
    SoftmaxRows(Var),
    Transpose(Var),
    Sum(Var),
    MeanAll(Var),
    FrobSq(Var),
    Dot(Var, Var),
    RowSelect(Var, Arc<[usize]>),
    SoftmaxCrossEntropy {
        logits: Var,
        labels: Arc<[usize]>,
        rows: Arc<[usize]>,
    },
    DenseReconBce {
        p: Var,
        target: Arc<DenseMatrix>,
        pos_weight: f64,
    },
    PairBce {
        p: Var,
        pairs: Arc<[BcePair]>,
    },
}

struct Node {
    value: DenseMatrix,
    op: Op,
    requires_grad: bool,
}

/// Clamp used inside every log-sigmoid to avoid `ln(0)`.
const SIG_EPS: f64 = 1e-12;

#[inline]
fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Sums `f` over the same `grain`-sized chunks `pool::parallel_map_chunks`
/// would use, in the same order, without touching the pool. Loss reductions
/// use this as their below-threshold path so the float association — and
/// therefore the result — never depends on the thread count.
fn serial_chunked_sum(items: usize, grain: usize, f: impl Fn(usize, usize) -> f64) -> f64 {
    let mut total = 0.0;
    let mut lo = 0;
    while lo < items {
        let hi = (lo + grain.max(1)).min(items);
        total += f(lo, hi);
        lo = hi;
    }
    total
}

/// The recording tape. Create one per forward pass (graphs are dynamic).
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    grads: Vec<Option<DenseMatrix>>,
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: DenseMatrix, op: Op, requires_grad: bool) -> Var {
        self.nodes.push(Node {
            value,
            op,
            requires_grad,
        });
        self.grads.push(None);
        Var(self.nodes.len() - 1)
    }

    fn requires(&self, v: Var) -> bool {
        self.nodes[v.0].requires_grad
    }

    /// The forward value of a node.
    pub fn value(&self, v: Var) -> &DenseMatrix {
        &self.nodes[v.0].value
    }

    /// The accumulated gradient of a node after [`Tape::backward`]; zeros if
    /// the node was never reached.
    pub fn grad(&self, v: Var) -> DenseMatrix {
        match &self.grads[v.0] {
            Some(g) => g.clone(),
            None => DenseMatrix::zeros(self.nodes[v.0].value.rows(), self.nodes[v.0].value.cols()),
        }
    }

    /// Scalar value of a `1×1` node (panics otherwise).
    pub fn scalar(&self, v: Var) -> f64 {
        let m = self.value(v);
        assert_eq!(
            m.shape(),
            (1, 1),
            "scalar: node is {}x{}",
            m.rows(),
            m.cols()
        );
        m.get(0, 0)
    }

    // ----- node constructors -------------------------------------------------

    /// Records a differentiable leaf (a parameter).
    pub fn leaf(&mut self, value: DenseMatrix) -> Var {
        self.push(value, Op::Leaf, true)
    }

    /// Records a constant (no gradient flows into it).
    pub fn constant(&mut self, value: DenseMatrix) -> Var {
        self.push(value, Op::Leaf, false)
    }

    /// Dense product `a * b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = par::matmul(self.value(a), self.value(b));
        let rg = self.requires(a) || self.requires(b);
        self.push(value, Op::MatMul(a, b), rg)
    }

    /// `aᵀ * b` without materializing the transpose.
    pub fn matmul_tn(&mut self, a: Var, b: Var) -> Var {
        let value = par::matmul_tn(self.value(a), self.value(b));
        let rg = self.requires(a) || self.requires(b);
        self.push(value, Op::MatMulTn(a, b), rg)
    }

    /// Sparse-constant × dense product `s * x` (GCN propagation).
    pub fn spmm(&mut self, s: &Arc<CsrMatrix>, x: Var) -> Var {
        let value = par::spmm_dense(s, self.value(x));
        let rg = self.requires(x);
        self.push(value, Op::SpMm(Arc::clone(s), x), rg)
    }

    /// Elementwise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).add(self.value(b));
        let rg = self.requires(a) || self.requires(b);
        self.push(value, Op::Add(a, b), rg)
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).sub(self.value(b));
        let rg = self.requires(a) || self.requires(b);
        self.push(value, Op::Sub(a, b), rg)
    }

    /// Hadamard (elementwise) product.
    pub fn hadamard(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).hadamard(self.value(b));
        let rg = self.requires(a) || self.requires(b);
        self.push(value, Op::Hadamard(a, b), rg)
    }

    /// Adds a `1×c` row vector to every row of an `r×c` matrix (bias add).
    pub fn add_row_broadcast(&mut self, m: Var, row: Var) -> Var {
        let mv = self.value(m);
        let rv = self.value(row);
        assert_eq!(rv.rows(), 1, "add_row_broadcast: bias must be 1×c");
        assert_eq!(rv.cols(), mv.cols(), "add_row_broadcast: width mismatch");
        let mut value = mv.clone();
        let bias = rv.row(0).to_vec();
        for r in 0..value.rows() {
            for (o, &b) in value.row_mut(r).iter_mut().zip(&bias) {
                *o += b;
            }
        }
        let rg = self.requires(m) || self.requires(row);
        self.push(value, Op::AddRowBroadcast(m, row), rg)
    }

    /// Scalar multiple `alpha * a`.
    pub fn scale(&mut self, a: Var, alpha: f64) -> Var {
        let value = self.value(a).scale(alpha);
        let rg = self.requires(a);
        self.push(value, Op::Scale(a, alpha), rg)
    }

    /// Elementwise negation.
    pub fn neg(&mut self, a: Var) -> Var {
        let value = self.value(a).scale(-1.0);
        let rg = self.requires(a);
        self.push(value, Op::Neg(a), rg)
    }

    /// LeakyReLU with negative slope `alpha` (the paper uses `alpha = 0.01`).
    pub fn leaky_relu(&mut self, a: Var, alpha: f64) -> Var {
        let value = self.value(a).map(|v| if v > 0.0 { v } else { alpha * v });
        let rg = self.requires(a);
        self.push(value, Op::LeakyRelu(a, alpha), rg)
    }

    /// ReLU.
    pub fn relu(&mut self, a: Var) -> Var {
        let value = self.value(a).map(|v| v.max(0.0));
        let rg = self.requires(a);
        self.push(value, Op::Relu(a), rg)
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let value = self.value(a).map(sigmoid);
        let rg = self.requires(a);
        self.push(value, Op::Sigmoid(a), rg)
    }

    /// Elementwise tanh.
    pub fn tanh(&mut self, a: Var) -> Var {
        let value = self.value(a).map(f64::tanh);
        let rg = self.requires(a);
        self.push(value, Op::Tanh(a), rg)
    }

    /// Elementwise exponential (the VGAE reparameterization needs
    /// `std = exp(logvar / 2)`).
    pub fn exp(&mut self, a: Var) -> Var {
        let value = self.value(a).map(f64::exp);
        let rg = self.requires(a);
        self.push(value, Op::Exp(a), rg)
    }

    /// Inverted dropout: zeroes each entry with probability `p` and scales
    /// the survivors by `1/(1-p)`, using the caller-provided RNG (training
    /// mode only — skip the call at inference).
    pub fn dropout(&mut self, a: Var, p: f64, rng: &mut impl rand::Rng) -> Var {
        assert!((0.0..1.0).contains(&p), "dropout rate must be in [0, 1)");
        if p == 0.0 {
            return a;
        }
        let (r, c) = self.value(a).shape();
        let keep = 1.0 / (1.0 - p);
        let mask = Arc::new(DenseMatrix::from_fn(r, c, |_, _| {
            if rng.gen::<f64>() < p {
                0.0
            } else {
                keep
            }
        }));
        let value = self.value(a).hadamard(&mask);
        let rg = self.requires(a);
        self.push(value, Op::Dropout(a, mask), rg)
    }

    /// Row-wise softmax (Eq. 3 of the paper: `P = softmax(Z)`).
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let value = self.value(a).softmax_rows();
        let rg = self.requires(a);
        self.push(value, Op::SoftmaxRows(a), rg)
    }

    /// Transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let value = self.value(a).transpose();
        let rg = self.requires(a);
        self.push(value, Op::Transpose(a), rg)
    }

    /// Sum of all entries, as a `1×1` node.
    pub fn sum(&mut self, a: Var) -> Var {
        let value = DenseMatrix::from_vec(1, 1, vec![self.value(a).sum()]);
        let rg = self.requires(a);
        self.push(value, Op::Sum(a), rg)
    }

    /// Mean of all entries, as a `1×1` node.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let value = DenseMatrix::from_vec(1, 1, vec![self.value(a).mean()]);
        let rg = self.requires(a);
        self.push(value, Op::MeanAll(a), rg)
    }

    /// Sum of squared entries `‖a‖²_F`, as a `1×1` node (L2 regularizer).
    pub fn frob_sq(&mut self, a: Var) -> Var {
        let v = self.value(a);
        let value = DenseMatrix::from_vec(1, 1, vec![v.dot(v)]);
        let rg = self.requires(a);
        self.push(value, Op::FrobSq(a), rg)
    }

    /// Frobenius inner product `<a, b>`, as a `1×1` node.
    pub fn dot(&mut self, a: Var, b: Var) -> Var {
        let value = DenseMatrix::from_vec(1, 1, vec![self.value(a).dot(self.value(b))]);
        let rg = self.requires(a) || self.requires(b);
        self.push(value, Op::Dot(a, b), rg)
    }

    /// Gathers a subset of rows.
    pub fn row_select(&mut self, a: Var, rows: &[usize]) -> Var {
        let value = self.value(a).select_rows(rows);
        let rg = self.requires(a);
        self.push(value, Op::RowSelect(a, rows.into()), rg)
    }

    /// Mean softmax cross-entropy of `logits` against integer `labels`,
    /// evaluated only on the `rows` subset (the labelled training nodes).
    /// Returns a `1×1` node.
    pub fn softmax_cross_entropy(&mut self, logits: Var, labels: &[usize], rows: &[usize]) -> Var {
        assert!(!rows.is_empty(), "softmax_cross_entropy: empty row set");
        let lv = self.value(logits);
        assert_eq!(
            labels.len(),
            lv.rows(),
            "labels must cover every row of logits"
        );
        let mut loss = 0.0;
        for &r in rows {
            let row = lv.row(r);
            let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let lse = max + row.iter().map(|v| (v - max).exp()).sum::<f64>().ln();
            loss += lse - row[labels[r]];
        }
        loss /= rows.len() as f64;
        let value = DenseMatrix::from_vec(1, 1, vec![loss]);
        let rg = self.requires(logits);
        self.push(
            value,
            Op::SoftmaxCrossEntropy {
                logits,
                labels: labels.into(),
                rows: rows.into(),
            },
            rg,
        )
    }

    /// Generalized cross-entropy of `sigmoid(p pᵀ)` against a dense target in
    /// `[0,1]` (Eq. 17). `pos_weight` rescales the positive term, matching
    /// the class-imbalance weighting used by GAE. Returns a `1×1` node.
    ///
    /// The `N×N` score matrix is produced and consumed inside the op; the
    /// tape only stores `p` and the target.
    pub fn dense_recon_bce(&mut self, p: Var, target: &Arc<DenseMatrix>, pos_weight: f64) -> Var {
        let pv = self.value(p);
        assert_eq!(pv.rows(), target.rows(), "dense_recon_bce: row mismatch");
        assert_eq!(
            target.rows(),
            target.cols(),
            "dense_recon_bce: target must be square"
        );
        let n = pv.rows();
        let d = pv.cols();
        // Per-row partial losses, pooled over i and summed in chunk order
        // (deterministic across thread counts).
        let row_loss = |lo: usize, hi: usize| -> f64 {
            let mut loss = 0.0;
            for i in lo..hi {
                let pi = pv.row(i);
                for j in 0..n {
                    let pj = pv.row(j);
                    let s: f64 = pi.iter().zip(pj).map(|(&a, &b)| a * b).sum();
                    let sig = sigmoid(s).clamp(SIG_EPS, 1.0 - SIG_EPS);
                    let t = target.get(i, j);
                    loss -= pos_weight * t * sig.ln() + (1.0 - t) * (1.0 - sig).ln();
                }
            }
            loss
        };
        // Both paths reduce over the same fixed chunk decomposition in the
        // same order, so the loss is bit-identical across thread counts;
        // the threshold only decides whether the chunks run pooled.
        let grain = pool::row_grain(n, 1);
        let loss = if pool::should_parallelize(n * n * d) {
            pool::parallel_map_chunks(n, grain, row_loss).iter().sum()
        } else {
            serial_chunked_sum(n, grain, row_loss)
        };
        let value = DenseMatrix::from_vec(1, 1, vec![loss]);
        let rg = self.requires(p);
        self.push(
            value,
            Op::DenseReconBce {
                p,
                target: Arc::clone(target),
                pos_weight,
            },
            rg,
        )
    }

    /// Negative-sampled estimator of [`Tape::dense_recon_bce`]: the loss is
    /// summed over the explicit `(i, j, target)` pairs only. Returns a `1×1`
    /// node.
    pub fn pair_bce(&mut self, p: Var, pairs: &Arc<[BcePair]>) -> Var {
        let pv = self.value(p);
        // Pooled over the pair list, partial losses summed in chunk order.
        let pair_loss = |lo: usize, hi: usize| -> f64 {
            let mut loss = 0.0;
            for &(i, j, t) in &pairs[lo..hi] {
                let s: f64 = pv
                    .row(i as usize)
                    .iter()
                    .zip(pv.row(j as usize))
                    .map(|(&a, &b)| a * b)
                    .sum();
                let sig = sigmoid(s).clamp(SIG_EPS, 1.0 - SIG_EPS);
                loss -= t * sig.ln() + (1.0 - t) * (1.0 - sig).ln();
            }
            loss
        };
        // Same fixed-decomposition reduction as `dense_recon_bce`: identical
        // chunk partial sums on both paths, so the loss is thread-count
        // invariant.
        let grain = pool::row_grain(pairs.len(), 64);
        let loss = if pool::should_parallelize(pairs.len() * pv.cols()) {
            pool::parallel_map_chunks(pairs.len(), grain, pair_loss)
                .iter()
                .sum()
        } else {
            serial_chunked_sum(pairs.len(), grain, pair_loss)
        };
        let value = DenseMatrix::from_vec(1, 1, vec![loss]);
        let rg = self.requires(p);
        self.push(
            value,
            Op::PairBce {
                p,
                pairs: Arc::clone(pairs),
            },
            rg,
        )
    }

    // ----- backward ----------------------------------------------------------

    fn accumulate(&mut self, v: Var, g: DenseMatrix) {
        if !self.nodes[v.0].requires_grad {
            return;
        }
        match &mut self.grads[v.0] {
            Some(existing) => existing.add_assign(&g),
            slot @ None => *slot = Some(g),
        }
    }

    /// Runs the reverse sweep from a scalar `1×1` loss node, filling
    /// gradients for every reachable differentiable node.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(
            self.value(loss).shape(),
            (1, 1),
            "backward: loss must be a 1×1 scalar node"
        );
        for g in &mut self.grads {
            *g = None;
        }
        self.grads[loss.0] = Some(DenseMatrix::filled(1, 1, 1.0));
        for idx in (0..=loss.0).rev() {
            if !self.nodes[idx].requires_grad {
                continue;
            }
            let Some(g) = self.grads[idx].take() else {
                continue;
            };
            self.backprop_node(idx, &g);
            self.grads[idx] = Some(g);
        }
    }

    fn backprop_node(&mut self, idx: usize, g: &DenseMatrix) {
        // `Op` owns only Vars, Arcs and scalars, so cloning what we need out
        // of the node keeps the borrow checker happy at negligible cost.
        match &self.nodes[idx].op {
            Op::Leaf => {}
            &Op::MatMul(a, b) => {
                if self.requires(a) {
                    // dA = g * Bᵀ
                    let da = par::matmul(g, &self.nodes[b.0].value.transpose());
                    self.accumulate(a, da);
                }
                if self.requires(b) {
                    // dB = Aᵀ * g
                    let db = par::matmul_tn(&self.nodes[a.0].value, g);
                    self.accumulate(b, db);
                }
            }
            &Op::MatMulTn(a, b) => {
                // y = aᵀ b; dA = b gᵀ, dB = a g
                if self.requires(a) {
                    let da = par::matmul(&self.nodes[b.0].value, &g.transpose());
                    self.accumulate(a, da);
                }
                if self.requires(b) {
                    let db = par::matmul(&self.nodes[a.0].value, g);
                    self.accumulate(b, db);
                }
            }
            Op::SpMm(s, x) => {
                let (s, x) = (Arc::clone(s), *x);
                if self.requires(x) {
                    // dX = Sᵀ * g. All our propagation operators are
                    // symmetric, but transpose anyway for correctness.
                    let st = s.transpose();
                    let dx = par::spmm_dense(&st, g);
                    self.accumulate(x, dx);
                }
            }
            &Op::Add(a, b) => {
                if self.requires(a) {
                    self.accumulate(a, g.clone());
                }
                if self.requires(b) {
                    self.accumulate(b, g.clone());
                }
            }
            &Op::Sub(a, b) => {
                if self.requires(a) {
                    self.accumulate(a, g.clone());
                }
                if self.requires(b) {
                    self.accumulate(b, g.scale(-1.0));
                }
            }
            &Op::Hadamard(a, b) => {
                if self.requires(a) {
                    let da = g.hadamard(&self.nodes[b.0].value);
                    self.accumulate(a, da);
                }
                if self.requires(b) {
                    let db = g.hadamard(&self.nodes[a.0].value);
                    self.accumulate(b, db);
                }
            }
            &Op::AddRowBroadcast(m, row) => {
                if self.requires(m) {
                    self.accumulate(m, g.clone());
                }
                if self.requires(row) {
                    let sums = g.col_sums();
                    self.accumulate(row, DenseMatrix::from_vec(1, sums.len(), sums));
                }
            }
            &Op::Scale(a, alpha) => {
                if self.requires(a) {
                    self.accumulate(a, g.scale(alpha));
                }
            }
            &Op::Neg(a) => {
                if self.requires(a) {
                    self.accumulate(a, g.scale(-1.0));
                }
            }
            &Op::LeakyRelu(a, alpha) => {
                if self.requires(a) {
                    let da = self.nodes[a.0]
                        .value
                        .zip(g, |x, gv| if x > 0.0 { gv } else { alpha * gv });
                    self.accumulate(a, da);
                }
            }
            &Op::Relu(a) => {
                if self.requires(a) {
                    let da = self.nodes[a.0]
                        .value
                        .zip(g, |x, gv| if x > 0.0 { gv } else { 0.0 });
                    self.accumulate(a, da);
                }
            }
            &Op::Sigmoid(a) => {
                if self.requires(a) {
                    let y = &self.nodes[idx].value;
                    let da = y.zip(g, |s, gv| gv * s * (1.0 - s));
                    self.accumulate(a, da);
                }
            }
            &Op::Tanh(a) => {
                if self.requires(a) {
                    let y = &self.nodes[idx].value;
                    let da = y.zip(g, |t, gv| gv * (1.0 - t * t));
                    self.accumulate(a, da);
                }
            }
            &Op::Exp(a) => {
                if self.requires(a) {
                    let y = &self.nodes[idx].value;
                    let da = y.zip(g, |e, gv| gv * e);
                    self.accumulate(a, da);
                }
            }
            Op::Dropout(a, mask) => {
                let (a, mask) = (*a, Arc::clone(mask));
                if self.requires(a) {
                    self.accumulate(a, g.hadamard(&mask));
                }
            }
            &Op::SoftmaxRows(a) => {
                if self.requires(a) {
                    let y = &self.nodes[idx].value;
                    let mut da = DenseMatrix::zeros(y.rows(), y.cols());
                    // Rows are independent: pooled when large enough.
                    da.par_rows_mut(2 * y.cols(), |r, dr| {
                        let yr = y.row(r);
                        let gr = g.row(r);
                        let inner: f64 = yr.iter().zip(gr).map(|(&a, &b)| a * b).sum();
                        for ((o, &yv), &gv) in dr.iter_mut().zip(yr).zip(gr) {
                            *o = yv * (gv - inner);
                        }
                    });
                    self.accumulate(a, da);
                }
            }
            &Op::Transpose(a) => {
                if self.requires(a) {
                    self.accumulate(a, g.transpose());
                }
            }
            &Op::Sum(a) => {
                if self.requires(a) {
                    let s = g.get(0, 0);
                    let (r, c) = self.nodes[a.0].value.shape();
                    self.accumulate(a, DenseMatrix::filled(r, c, s));
                }
            }
            &Op::MeanAll(a) => {
                if self.requires(a) {
                    let (r, c) = self.nodes[a.0].value.shape();
                    let s = g.get(0, 0) / (r * c) as f64;
                    self.accumulate(a, DenseMatrix::filled(r, c, s));
                }
            }
            &Op::FrobSq(a) => {
                if self.requires(a) {
                    let s = 2.0 * g.get(0, 0);
                    self.accumulate(a, self.nodes[a.0].value.scale(s));
                }
            }
            &Op::Dot(a, b) => {
                let s = g.get(0, 0);
                if self.requires(a) {
                    self.accumulate(a, self.nodes[b.0].value.scale(s));
                }
                if self.requires(b) {
                    self.accumulate(b, self.nodes[a.0].value.scale(s));
                }
            }
            Op::RowSelect(a, rows) => {
                let (a, rows) = (*a, Arc::clone(rows));
                if self.requires(a) {
                    let (r, c) = self.nodes[a.0].value.shape();
                    let mut da = DenseMatrix::zeros(r, c);
                    for (i, &row) in rows.iter().enumerate() {
                        let src = g.row(i).to_vec();
                        for (o, v) in da.row_mut(row).iter_mut().zip(src) {
                            *o += v;
                        }
                    }
                    self.accumulate(a, da);
                }
            }
            Op::SoftmaxCrossEntropy {
                logits,
                labels,
                rows,
            } => {
                let (logits, labels, rows) = (*logits, Arc::clone(labels), Arc::clone(rows));
                if self.requires(logits) {
                    let lv = &self.nodes[logits.0].value;
                    let mut dl = DenseMatrix::zeros(lv.rows(), lv.cols());
                    let scale = g.get(0, 0) / rows.len() as f64;
                    for &r in rows.iter() {
                        let row = lv.row(r);
                        let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                        let exps: Vec<f64> = row.iter().map(|v| (v - max).exp()).collect();
                        let z: f64 = exps.iter().sum();
                        let dr = dl.row_mut(r);
                        for (c, (o, e)) in dr.iter_mut().zip(exps).enumerate() {
                            let p = e / z;
                            *o = scale * (p - if c == labels[r] { 1.0 } else { 0.0 });
                        }
                    }
                    self.accumulate(logits, dl);
                }
            }
            Op::DenseReconBce {
                p,
                target,
                pos_weight,
            } => {
                let (p, target, w) = (*p, Arc::clone(target), *pos_weight);
                if self.requires(p) {
                    let pv = &self.nodes[p.0].value;
                    let n = pv.rows();
                    // dL/dS_ij = sigmoid(S_ij)*(w*T_ij + 1 - T_ij) - w*T_ij
                    // dL/dP = (G + Gᵀ) P, computed without storing G by two
                    // accumulation passes over rows.
                    let mut grad_s = DenseMatrix::zeros(n, n);
                    // Each output row needs a full pass over P: pooled over
                    // i when n²·d clears the threshold.
                    grad_s.par_rows_mut(n * pv.cols(), |i, row| {
                        let pi = pv.row(i);
                        for (j, o) in row.iter_mut().enumerate() {
                            let pj = pv.row(j);
                            let s: f64 = pi.iter().zip(pj).map(|(&a, &b)| a * b).sum();
                            let sig = sigmoid(s);
                            let t = target.get(i, j);
                            *o = sig * (w * t + 1.0 - t) - w * t;
                        }
                    });
                    let gsym = grad_s.add(&grad_s.transpose());
                    let mut dp = par::matmul(&gsym, pv);
                    dp.scale_inplace(g.get(0, 0));
                    self.accumulate(p, dp);
                }
            }
            Op::PairBce { p, pairs } => {
                let (p, pairs) = (*p, Arc::clone(pairs));
                if self.requires(p) {
                    let pv = &self.nodes[p.0].value;
                    let mut dp = DenseMatrix::zeros(pv.rows(), pv.cols());
                    let scale = g.get(0, 0);
                    for &(i, j, t) in pairs.iter() {
                        let (i, j) = (i as usize, j as usize);
                        let s: f64 = pv.row(i).iter().zip(pv.row(j)).map(|(&a, &b)| a * b).sum();
                        let coeff = scale * (sigmoid(s) - t);
                        let pi = pv.row(i).to_vec();
                        let pj = pv.row(j).to_vec();
                        for (o, v) in dp.row_mut(i).iter_mut().zip(&pj) {
                            *o += coeff * v;
                        }
                        for (o, v) in dp.row_mut(j).iter_mut().zip(&pi) {
                            *o += coeff * v;
                        }
                    }
                    self.accumulate(p, dp);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aneci_linalg::rng::{gaussian_matrix, seeded_rng};

    #[test]
    fn scalar_chain_gradient() {
        // f(x) = sum(3 * x)  =>  df/dx = 3 everywhere.
        let mut t = Tape::new();
        let x = t.leaf(DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let y = t.scale(x, 3.0);
        let loss = t.sum(y);
        t.backward(loss);
        assert_eq!(t.grad(x), DenseMatrix::filled(2, 2, 3.0));
        assert_eq!(t.scalar(loss), 30.0);
    }

    #[test]
    fn matmul_gradients_match_formula() {
        // L = sum(A*B): dA = 1 Bᵀ, dB = Aᵀ 1.
        let mut t = Tape::new();
        let a = t.leaf(DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let b = t.leaf(DenseMatrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]));
        let c = t.matmul(a, b);
        let loss = t.sum(c);
        t.backward(loss);
        let ones = DenseMatrix::filled(2, 2, 1.0);
        let da = ones.matmul(&t.value(b).transpose());
        let db = t.value(a).transpose().matmul(&ones);
        assert!(t.grad(a).sub(&da).max_abs() < 1e-12);
        assert!(t.grad(b).sub(&db).max_abs() < 1e-12);
    }

    #[test]
    fn gradient_accumulates_across_uses() {
        // L = sum(x) + sum(x) => grad = 2.
        let mut t = Tape::new();
        let x = t.leaf(DenseMatrix::filled(2, 3, 1.0));
        let s1 = t.sum(x);
        let s2 = t.sum(x);
        let loss = t.add(s1, s2);
        t.backward(loss);
        assert_eq!(t.grad(x), DenseMatrix::filled(2, 3, 2.0));
    }

    #[test]
    fn constants_receive_no_gradient() {
        let mut t = Tape::new();
        let x = t.leaf(DenseMatrix::filled(2, 2, 1.0));
        let c = t.constant(DenseMatrix::filled(2, 2, 5.0));
        let y = t.hadamard(x, c);
        let loss = t.sum(y);
        t.backward(loss);
        assert_eq!(t.grad(x), DenseMatrix::filled(2, 2, 5.0));
        assert_eq!(t.grad(c), DenseMatrix::zeros(2, 2));
    }

    #[test]
    fn spmm_gradient_matches_dense() {
        let s = Arc::new(CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 1, 2.0),
                (1, 0, 2.0),
                (1, 2, 1.0),
                (2, 1, 1.0),
                (0, 0, 0.5),
            ],
        ));
        let mut rng = seeded_rng(21);
        let x0 = gaussian_matrix(3, 4, 1.0, &mut rng);

        let mut t = Tape::new();
        let x = t.leaf(x0.clone());
        let y = t.spmm(&s, x);
        let sq = t.frob_sq(y);
        t.backward(sq);
        let got = t.grad(x);

        // d/dX ||S X||² = 2 Sᵀ S X
        let sd = s.to_dense();
        let want = sd.transpose().matmul(&sd.matmul(&x0)).scale(2.0);
        assert!(got.sub(&want).max_abs() < 1e-10);
    }

    #[test]
    fn backward_requires_scalar_loss() {
        let mut t = Tape::new();
        let x = t.leaf(DenseMatrix::filled(2, 2, 1.0));
        let y = t.scale(x, 2.0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut t2 = Tape::new();
            let x2 = t2.leaf(DenseMatrix::filled(2, 2, 1.0));
            t2.backward(x2);
        }));
        assert!(result.is_err());
        let loss = t.sum(y);
        t.backward(loss); // fine
    }

    #[test]
    fn softmax_rows_gradient_zero_for_uniform_target() {
        // L = sum(softmax(x)) = rows, a constant: gradient must be ~0.
        let mut t = Tape::new();
        let x = t.leaf(DenseMatrix::from_rows(&[
            &[0.3, -1.0, 2.0],
            &[0.0, 0.0, 1.0],
        ]));
        let p = t.softmax_rows(x);
        let loss = t.sum(p);
        t.backward(loss);
        assert!(t.grad(x).max_abs() < 1e-12);
    }

    #[test]
    fn row_select_routes_gradients() {
        let mut t = Tape::new();
        let x = t.leaf(DenseMatrix::from_fn(4, 2, |r, c| (r * 2 + c) as f64));
        let sel = t.row_select(x, &[1, 3, 1]);
        let loss = t.sum(sel);
        t.backward(loss);
        // Row 1 selected twice, row 3 once, rows 0 and 2 never.
        let g = t.grad(x);
        assert_eq!(g.row(0), &[0.0, 0.0]);
        assert_eq!(g.row(1), &[2.0, 2.0]);
        assert_eq!(g.row(2), &[0.0, 0.0]);
        assert_eq!(g.row(3), &[1.0, 1.0]);
    }

    #[test]
    fn cross_entropy_decreases_along_gradient() {
        let mut rng = seeded_rng(22);
        let logits0 = gaussian_matrix(6, 3, 1.0, &mut rng);
        let labels = vec![0, 1, 2, 0, 1, 2];
        let rows = vec![0, 2, 4, 5];

        let eval = |m: &DenseMatrix| {
            let mut t = Tape::new();
            let l = t.leaf(m.clone());
            let loss = t.softmax_cross_entropy(l, &labels, &rows);
            (t.scalar(loss), {
                t.backward(loss);
                t.grad(l)
            })
        };
        let (l0, g) = eval(&logits0);
        let mut stepped = logits0.clone();
        stepped.axpy(-0.1, &g);
        let (l1, _) = eval(&stepped);
        assert!(l1 < l0, "step along -grad should reduce CE: {l0} -> {l1}");
    }

    #[test]
    fn dropout_masks_and_routes_gradient() {
        let mut rng = seeded_rng(55);
        let mut t = Tape::new();
        let x = t.leaf(DenseMatrix::filled(20, 10, 1.0));
        let d = t.dropout(x, 0.4, &mut rng);
        // Survivors are scaled by 1/(1-p); zeros elsewhere.
        let keep = 1.0 / 0.6;
        let vals = t.value(d).clone();
        for &v in vals.as_slice() {
            assert!(v == 0.0 || (v - keep).abs() < 1e-12);
        }
        // Expected survivor fraction ≈ 60%.
        let survivors = vals.as_slice().iter().filter(|&&v| v != 0.0).count();
        assert!((0.4..0.8).contains(&(survivors as f64 / 200.0)));
        // Gradient flows only through survivors, scaled identically.
        let loss = t.sum(d);
        t.backward(loss);
        let g = t.grad(x);
        for (gv, v) in g.as_slice().iter().zip(vals.as_slice()) {
            assert_eq!(*gv, *v);
        }
        // p = 0 is the identity (same Var returned).
        let mut t2 = Tape::new();
        let y = t2.leaf(DenseMatrix::filled(2, 2, 3.0));
        let same = t2.dropout(y, 0.0, &mut rng);
        assert_eq!(y, same);
    }

    #[test]
    fn pair_bce_matches_dense_recon_on_full_pairs() {
        let mut rng = seeded_rng(23);
        let p0 = gaussian_matrix(5, 3, 0.5, &mut rng);
        let target = Arc::new(DenseMatrix::from_fn(5, 5, |r, c| ((r + c) % 2) as f64));
        let mut pairs: Vec<BcePair> = Vec::new();
        for i in 0..5u32 {
            for j in 0..5u32 {
                pairs.push((i, j, target.get(i as usize, j as usize)));
            }
        }
        let pairs: Arc<[BcePair]> = pairs.into();

        let mut t1 = Tape::new();
        let p1 = t1.leaf(p0.clone());
        let dense_loss = t1.dense_recon_bce(p1, &target, 1.0);
        t1.backward(dense_loss);

        let mut t2 = Tape::new();
        let p2 = t2.leaf(p0.clone());
        let pair_loss = t2.pair_bce(p2, &pairs);
        t2.backward(pair_loss);

        assert!((t1.scalar(dense_loss) - t2.scalar(pair_loss)).abs() < 1e-9);
        assert!(t1.grad(p1).sub(&t2.grad(p2)).max_abs() < 1e-9);
    }
}
