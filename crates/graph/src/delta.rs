//! Delta mutations for dynamic graphs.
//!
//! A [`GraphDelta`] is one batch of mutations — edge insert/delete, node
//! append/isolate, attribute set/clear — applied to an
//! [`AttributedGraph`](crate::attributed::AttributedGraph) in a single CSR
//! patch-and-compact pass ([`apply_to_csr`]). Node ids are **stable**: a
//! removed node is isolated (all incident edges dropped, attributes
//! cleared) rather than renumbered, so downstream consumers — embedding
//! rows, HNSW entries, serving query ids — never shift. Appended nodes take
//! the next ids.
//!
//! Missing attributes are first-class (motivated by the incomplete
//! attributed-network setting in PAPERS.md): a node can be appended without
//! features or have its features cleared later, and the graph tracks an
//! explicit missing-attribute mask instead of conflating "missing" with
//! "all-zero by coincidence".
//!
//! The [`DeltaReport`] returned by application records exactly the
//! information incremental downstream refreshes need: which adjacency rows
//! changed ([`DeltaReport::touched`]) and which undirected edges were
//! physically removed ([`DeltaReport::removed_edges`]) — together they let
//! [`HighOrder::refresh`](crate::proximity::HighOrder::refresh) bound the
//! set of proximity rows whose l-hop neighbourhood changed.

use aneci_linalg::{CsrMatrix, DenseMatrix};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Typed error for graph configuration and delta application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A configuration value is out of its valid range.
    Config(String),
    /// A delta references nodes/edges inconsistently with the graph.
    Delta(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Config(msg) => write!(f, "graph config error: {msg}"),
            GraphError::Delta(msg) => write!(f, "graph delta error: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// One batch of graph mutations. Build fluently, then apply with
/// [`AttributedGraph::apply_delta`](crate::attributed::AttributedGraph::apply_delta).
///
/// Semantics (applied as one set operation, not sequentially):
/// `E' = (E ∪ add_edges) ∖ remove_edges ∖ incident(remove_nodes)` —
/// removal wins over insertion, redundant operations (adding an existing
/// edge, removing an absent one) are no-ops. Appended nodes get ids
/// `n, n+1, …` in order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GraphDelta {
    /// Undirected edges to insert (either endpoint order).
    pub add_edges: Vec<(usize, usize)>,
    /// Undirected edges to delete.
    pub remove_edges: Vec<(usize, usize)>,
    /// Feature rows of appended nodes; `None` = attributes missing (the row
    /// is zero-filled and flagged in the missing-attribute mask).
    pub add_nodes: Vec<Option<Vec<f64>>>,
    /// Nodes to isolate: every incident edge is dropped, attributes are
    /// cleared, the id keeps pointing at an (empty) row.
    pub remove_nodes: Vec<usize>,
    /// Per-node attribute overwrites (also clears the node's missing flag).
    pub set_attributes: Vec<(usize, Vec<f64>)>,
    /// Nodes whose attributes become missing (zeroed + flagged).
    pub clear_attributes: Vec<usize>,
}

impl GraphDelta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues an undirected edge insertion.
    pub fn add_edge(mut self, u: usize, v: usize) -> Self {
        self.add_edges.push((u, v));
        self
    }

    /// Queues an undirected edge deletion.
    pub fn remove_edge(mut self, u: usize, v: usize) -> Self {
        self.remove_edges.push((u, v));
        self
    }

    /// Appends a node with the given feature row.
    pub fn add_node(mut self, features: Vec<f64>) -> Self {
        self.add_nodes.push(Some(features));
        self
    }

    /// Appends a node whose attributes are not (yet) known.
    pub fn add_node_missing(mut self) -> Self {
        self.add_nodes.push(None);
        self
    }

    /// Isolates a node (stable-id delete).
    pub fn remove_node(mut self, u: usize) -> Self {
        self.remove_nodes.push(u);
        self
    }

    /// Overwrites a node's attributes.
    pub fn set_attribute(mut self, u: usize, features: Vec<f64>) -> Self {
        self.set_attributes.push((u, features));
        self
    }

    /// Marks a node's attributes as missing.
    pub fn clear_attribute(mut self, u: usize) -> Self {
        self.clear_attributes.push(u);
        self
    }

    /// True when the delta mutates nothing.
    pub fn is_empty(&self) -> bool {
        self.add_edges.is_empty()
            && self.remove_edges.is_empty()
            && self.add_nodes.is_empty()
            && self.remove_nodes.is_empty()
            && self.set_attributes.is_empty()
            && self.clear_attributes.is_empty()
    }

    /// True when the delta changes topology (as opposed to attributes only).
    pub fn touches_topology(&self) -> bool {
        !self.add_edges.is_empty()
            || !self.remove_edges.is_empty()
            || !self.add_nodes.is_empty()
            || !self.remove_nodes.is_empty()
    }
}

/// What [`apply_to_csr`] actually did — the seed data for incremental
/// downstream refreshes.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DeltaReport {
    /// Node count before the delta.
    pub nodes_before: usize,
    /// Node count after (appended nodes only grow it; removals isolate).
    pub nodes_after: usize,
    /// Undirected edges actually inserted (not already present).
    pub edges_added: usize,
    /// Undirected edges actually deleted (present before).
    pub edges_removed: usize,
    /// Sorted rows whose adjacency row changed, including every appended
    /// node id (their rows are new by definition).
    pub touched: Vec<usize>,
    /// Every undirected edge physically removed — explicit removals that
    /// existed plus the incident edges of removed nodes. BFS over the new
    /// adjacency **plus these edges** reaches everything the old adjacency
    /// could reach, which is what bounds the dirty set of
    /// [`HighOrder::refresh`](crate::proximity::HighOrder::refresh).
    pub removed_edges: Vec<(usize, usize)>,
}

/// Applies a delta's topology operations to a symmetric hollow CSR
/// adjacency in one patch-and-compact pass: untouched rows are copied
/// verbatim (single `memcpy` each), touched rows merge their surviving old
/// entries with sorted insertions, appended rows are built fresh. Runs in
/// `O(nnz + Δ log Δ)` and returns the new matrix with a [`DeltaReport`].
pub fn apply_to_csr(
    adjacency: &CsrMatrix,
    delta: &GraphDelta,
) -> Result<(CsrMatrix, DeltaReport), GraphError> {
    let n_before = adjacency.rows();
    let n_after = n_before + delta.add_nodes.len();

    let check = |u: usize, v: usize, what: &str| -> Result<(), GraphError> {
        if u >= n_after || v >= n_after {
            return Err(GraphError::Delta(format!(
                "{what} ({u},{v}) out of range 0..{n_after}"
            )));
        }
        if u == v {
            return Err(GraphError::Delta(format!(
                "{what} ({u},{v}) is a self-loop"
            )));
        }
        Ok(())
    };

    let mut removed_nodes = BTreeSet::new();
    for &u in &delta.remove_nodes {
        if u >= n_after {
            return Err(GraphError::Delta(format!(
                "removed node {u} out of range 0..{n_after}"
            )));
        }
        removed_nodes.insert(u);
    }

    // Canonical (min, max) sets of edges that actually change the graph.
    // `vetoed` additionally remembers every explicitly requested removal,
    // present or not, so "add + remove in one delta" nets to absent.
    let mut removed = BTreeSet::new();
    let mut vetoed = BTreeSet::new();
    for &(u, v) in &delta.remove_edges {
        check(u, v, "removed edge")?;
        let key = (u.min(v), u.max(v));
        vetoed.insert(key);
        if u < n_before && v < n_before && adjacency.get(u, v) != 0.0 {
            removed.insert(key);
        }
    }
    for &u in &removed_nodes {
        if u < n_before {
            for (v, _) in adjacency.row_entries(u) {
                removed.insert((u.min(v), u.max(v)));
            }
        }
    }
    let mut added = BTreeSet::new();
    for &(u, v) in &delta.add_edges {
        check(u, v, "added edge")?;
        if removed_nodes.contains(&u) || removed_nodes.contains(&v) {
            return Err(GraphError::Delta(format!(
                "added edge ({u},{v}) is incident to a removed node"
            )));
        }
        let key = (u.min(v), u.max(v));
        if vetoed.contains(&key) {
            continue; // removal wins
        }
        let exists = u < n_before && v < n_before && adjacency.get(u, v) != 0.0;
        if !exists {
            added.insert(key);
        }
    }

    // Per-row patches for the compact pass.
    let mut patch: BTreeMap<usize, (Vec<u32>, BTreeSet<u32>)> = BTreeMap::new();
    for &(u, v) in &added {
        patch.entry(u).or_default().0.push(v as u32);
        patch.entry(v).or_default().0.push(u as u32);
    }
    for &(u, v) in &removed {
        patch.entry(u).or_default().1.insert(v as u32);
        patch.entry(v).or_default().1.insert(u as u32);
    }

    let new_nnz = adjacency.nnz() + 2 * added.len() - 2 * removed.len();
    let mut indptr = Vec::with_capacity(n_after + 1);
    let mut indices: Vec<u32> = Vec::with_capacity(new_nnz);
    indptr.push(0usize);
    for r in 0..n_after {
        match patch.get(&r) {
            None => {
                if r < n_before {
                    indices.extend(adjacency.row_entries(r).map(|(c, _)| c as u32));
                }
            }
            Some((adds, dels)) => {
                let mut adds = adds.clone();
                adds.sort_unstable();
                let mut ai = 0usize;
                let old: Box<dyn Iterator<Item = u32>> = if r < n_before {
                    Box::new(adjacency.row_entries(r).map(|(c, _)| c as u32))
                } else {
                    Box::new(std::iter::empty())
                };
                for c in old {
                    if dels.contains(&c) {
                        continue;
                    }
                    while ai < adds.len() && adds[ai] < c {
                        indices.push(adds[ai]);
                        ai += 1;
                    }
                    indices.push(c);
                }
                indices.extend_from_slice(&adds[ai..]);
            }
        }
        indptr.push(indices.len());
    }
    debug_assert_eq!(indices.len(), new_nnz);
    let values = vec![1.0f64; indices.len()];
    let matrix = CsrMatrix::from_raw(n_after, n_after, indptr, indices, values);

    let mut touched: BTreeSet<usize> = patch.keys().copied().collect();
    touched.extend(n_before..n_after);
    let report = DeltaReport {
        nodes_before: n_before,
        nodes_after: n_after,
        edges_added: added.len(),
        edges_removed: removed.len(),
        touched: touched.into_iter().collect(),
        removed_edges: removed.into_iter().collect(),
    };
    Ok((matrix, report))
}

/// Applies a delta's attribute operations to a feature matrix and its
/// missing-attribute mask: appended rows (feature vector or missing),
/// per-node overwrites, clears, and zeroing removed nodes. Returns the new
/// matrix and mask; the mask is `Some` only while at least one node is
/// flagged missing, so fully-attributed graphs stay mask-free.
pub fn apply_to_features(
    features: &DenseMatrix,
    mask: Option<&[bool]>,
    delta: &GraphDelta,
) -> Result<(DenseMatrix, Option<Vec<bool>>), GraphError> {
    let n_before = features.rows();
    let n_after = n_before + delta.add_nodes.len();
    let d = features.cols();

    let mut data = features.as_slice().to_vec();
    data.reserve(delta.add_nodes.len() * d);
    let mut missing: Vec<bool> = match mask {
        Some(m) => {
            if m.len() != n_before {
                return Err(GraphError::Delta(format!(
                    "missing-attribute mask has {} entries for {n_before} nodes",
                    m.len()
                )));
            }
            m.to_vec()
        }
        None => vec![false; n_before],
    };
    for (i, row) in delta.add_nodes.iter().enumerate() {
        match row {
            Some(x) => {
                if x.len() != d {
                    return Err(GraphError::Delta(format!(
                        "appended node {} has {} features, expected {d}",
                        n_before + i,
                        x.len()
                    )));
                }
                data.extend_from_slice(x);
                missing.push(false);
            }
            None => {
                data.resize(data.len() + d, 0.0);
                missing.push(true);
            }
        }
    }
    for (u, x) in &delta.set_attributes {
        let u = *u;
        if u >= n_after {
            return Err(GraphError::Delta(format!(
                "set_attributes node {u} out of range 0..{n_after}"
            )));
        }
        if x.len() != d {
            return Err(GraphError::Delta(format!(
                "set_attributes node {u} has {} features, expected {d}",
                x.len()
            )));
        }
        data[u * d..(u + 1) * d].copy_from_slice(x);
        missing[u] = false;
    }
    for &u in delta.clear_attributes.iter().chain(&delta.remove_nodes) {
        if u >= n_after {
            return Err(GraphError::Delta(format!(
                "cleared node {u} out of range 0..{n_after}"
            )));
        }
        data[u * d..(u + 1) * d].fill(0.0);
        missing[u] = true;
    }
    let matrix = DenseMatrix::from_vec(n_after, d, data);
    let mask = missing.iter().any(|&m| m).then_some(missing);
    Ok((matrix, mask))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributed::AttributedGraph;

    fn path4_adj() -> CsrMatrix {
        AttributedGraph::from_edges_plain(4, &[(0, 1), (1, 2), (2, 3)], None)
            .adjacency()
            .clone()
    }

    #[test]
    fn apply_to_csr_adds_and_removes() {
        let a = path4_adj();
        let delta = GraphDelta::new().add_edge(0, 3).remove_edge(1, 2);
        let (b, report) = apply_to_csr(&a, &delta).unwrap();
        assert_eq!(b.get(0, 3), 1.0);
        assert_eq!(b.get(3, 0), 1.0);
        assert_eq!(b.get(1, 2), 0.0);
        assert_eq!(report.edges_added, 1);
        assert_eq!(report.edges_removed, 1);
        assert_eq!(report.touched, vec![0, 1, 2, 3]);
        assert_eq!(report.removed_edges, vec![(1, 2)]);
        b.check_invariants().unwrap();
    }

    #[test]
    fn redundant_operations_are_noops() {
        let a = path4_adj();
        let delta = GraphDelta::new().add_edge(0, 1).remove_edge(0, 3);
        let (b, report) = apply_to_csr(&a, &delta).unwrap();
        assert_eq!(b, a);
        assert_eq!(report.edges_added, 0);
        assert_eq!(report.edges_removed, 0);
        assert!(report.touched.is_empty());
    }

    #[test]
    fn removal_wins_over_insertion() {
        let a = path4_adj();
        let delta = GraphDelta::new().add_edge(0, 3).remove_edge(0, 3);
        let (b, _) = apply_to_csr(&a, &delta).unwrap();
        assert_eq!(b.get(0, 3), 0.0);
    }

    #[test]
    fn node_append_and_isolate() {
        let a = path4_adj();
        let delta = GraphDelta {
            add_nodes: vec![None],
            add_edges: vec![(4, 0)],
            remove_nodes: vec![2],
            ..Default::default()
        };
        let (b, report) = apply_to_csr(&a, &delta).unwrap();
        assert_eq!(b.rows(), 5);
        assert_eq!(b.get(4, 0), 1.0);
        assert_eq!(b.row_nnz(2), 0, "removed node is isolated");
        assert_eq!(b.get(1, 2), 0.0);
        assert_eq!(report.nodes_after, 5);
        // 2's incident edges (1,2) and (2,3) were physically removed.
        assert_eq!(report.removed_edges, vec![(1, 2), (2, 3)]);
        assert!(report.touched.contains(&4));
        b.check_invariants().unwrap();
    }

    #[test]
    fn typed_errors_on_bad_deltas() {
        let a = path4_adj();
        assert!(matches!(
            apply_to_csr(&a, &GraphDelta::new().add_edge(0, 9)),
            Err(GraphError::Delta(_))
        ));
        assert!(matches!(
            apply_to_csr(&a, &GraphDelta::new().add_edge(1, 1)),
            Err(GraphError::Delta(_))
        ));
        let conflicted = GraphDelta::new().remove_node(2).add_edge(2, 0);
        assert!(matches!(
            apply_to_csr(&a, &conflicted),
            Err(GraphError::Delta(_))
        ));
    }

    #[test]
    fn features_append_set_clear_and_mask() {
        let x = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let delta = GraphDelta::new()
            .add_node(vec![5.0, 6.0])
            .add_node_missing()
            .set_attribute(0, vec![9.0, 9.0])
            .clear_attribute(1);
        let (y, mask) = apply_to_features(&x, None, &delta).unwrap();
        assert_eq!(y.rows(), 4);
        assert_eq!(y.row(0), &[9.0, 9.0]);
        assert_eq!(y.row(1), &[0.0, 0.0]);
        assert_eq!(y.row(2), &[5.0, 6.0]);
        assert_eq!(y.row(3), &[0.0, 0.0]);
        assert_eq!(mask, Some(vec![false, true, false, true]));
        // Filling the missing rows back in drops the mask entirely.
        let refill = GraphDelta::new()
            .set_attribute(1, vec![1.0, 1.0])
            .set_attribute(3, vec![2.0, 2.0]);
        let (_, mask2) = apply_to_features(&y, mask.as_deref(), &refill).unwrap();
        assert_eq!(mask2, None);
    }

    #[test]
    fn feature_dimension_mismatch_is_typed() {
        let x = DenseMatrix::from_vec(2, 2, vec![0.0; 4]);
        assert!(matches!(
            apply_to_features(&x, None, &GraphDelta::new().add_node(vec![1.0])),
            Err(GraphError::Delta(_))
        ));
        assert!(matches!(
            apply_to_features(
                &x,
                None,
                &GraphDelta::new().set_attribute(5, vec![0.0, 0.0])
            ),
            Err(GraphError::Delta(_))
        ));
    }
}
