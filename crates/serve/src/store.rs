//! In-memory embedding store with exact (brute-force) top-k queries.
//!
//! The store owns the checkpointed embedding matrix plus the soft community
//! membership, caches per-row L2 norms, and answers:
//!
//! * **top-k nearest neighbors** of a node or a free query vector under
//!   cosine or dot-product similarity — brute force over all rows, chunked
//!   across the persistent pool (`aneci_linalg::pool`), with output that is
//!   bit-identical for any thread count (fixed chunk decomposition, full
//!   deterministic merge);
//! * **community** lookups (argmax membership + the full soft row);
//! * **edge scores** through [`aneci_eval::linkpred::edge_score`] — the same
//!   function the evaluation harness uses, so a link-prediction score served
//!   online always equals the offline one.

use aneci_core::checkpoint::Checkpoint;
use aneci_linalg::pool;
use aneci_linalg::vector;
use aneci_linalg::DenseMatrix;

/// Similarity metric for neighbor queries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Metric {
    /// Cosine similarity (dot of L2-normalized vectors).
    Cosine,
    /// Raw inner product.
    Dot,
}

impl Metric {
    /// Parses `"cosine"` / `"dot"` (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "cosine" | "cos" => Some(Metric::Cosine),
            "dot" | "inner" | "ip" => Some(Metric::Dot),
            _ => None,
        }
    }

    /// Canonical name.
    pub fn name(self) -> &'static str {
        match self {
            Metric::Cosine => "cosine",
            Metric::Dot => "dot",
        }
    }
}

/// A scored neighbor.
pub type Scored = (usize, f64);

/// The in-memory serving store for one checkpointed model.
#[derive(Clone)]
pub struct EmbeddingStore {
    embedding: DenseMatrix,
    /// Cached per-row L2 norms (for cosine scoring).
    norms: Vec<f64>,
    membership: Option<DenseMatrix>,
    /// Cached argmax of each membership row.
    communities: Option<Vec<usize>>,
    /// Tombstone mask (`None` = nothing deleted). Tombstoned rows keep
    /// their id (so client-visible ids stay stable across snapshot swaps)
    /// but are filtered from every top-k result.
    deleted: Option<Vec<bool>>,
    /// Per-node anomaly scores in `[0, 1]` (`None` = not scored). Carried
    /// in every snapshot so the engine's poisoned-neighborhood detector can
    /// flag top-k responses whose mass concentrates on anomalous nodes.
    anomaly: Option<Vec<f64>>,
}

impl EmbeddingStore {
    /// Builds a store from an embedding matrix and optional membership.
    pub fn new(embedding: DenseMatrix, membership: Option<DenseMatrix>) -> Self {
        Self::with_tombstones(embedding, membership, None)
    }

    /// Builds a store with an explicit tombstone mask (the snapshot-update
    /// path; `None` means every row is live).
    pub fn with_tombstones(
        embedding: DenseMatrix,
        membership: Option<DenseMatrix>,
        deleted: Option<Vec<bool>>,
    ) -> Self {
        if let Some(m) = &membership {
            assert_eq!(
                m.rows(),
                embedding.rows(),
                "membership must cover every embedded node"
            );
        }
        if let Some(d) = &deleted {
            assert_eq!(
                d.len(),
                embedding.rows(),
                "tombstone mask must cover every embedded node"
            );
        }
        let norms = embedding.rows_iter().map(vector::norm2).collect();
        let communities = membership.as_ref().map(|m| m.argmax_rows());
        // An all-false mask is the same as no mask, and cheaper to query.
        let deleted = deleted.filter(|d| d.iter().any(|&x| x));
        Self {
            embedding,
            norms,
            membership,
            communities,
            deleted,
            anomaly: None,
        }
    }

    /// Fluent: attaches per-node anomaly scores (length must match the node
    /// count). The serving engine only runs poisoned-neighborhood detection
    /// on snapshots that carry these.
    pub fn with_anomaly_scores(mut self, scores: Vec<f64>) -> Self {
        assert_eq!(
            scores.len(),
            self.embedding.rows(),
            "anomaly scores must cover every embedded node"
        );
        self.anomaly = Some(scores);
        self
    }

    /// Per-node anomaly scores, when the store carries them.
    pub fn anomaly_scores(&self) -> Option<&[f64]> {
        self.anomaly.as_deref()
    }

    /// The anomaly score of `node`, when scored.
    pub fn anomaly_of(&self, node: usize) -> Option<f64> {
        self.anomaly.as_ref().map(|a| a[node])
    }

    /// Builds a store straight from a loaded checkpoint. The checkpointed
    /// membership doubles as the anomaly signal: each node's normalized
    /// membership entropy (`aneci_core::anomaly::node_anomaly_scores`), so
    /// every checkpoint-served snapshot is detection-ready.
    pub fn from_checkpoint(ckpt: &Checkpoint) -> Self {
        let anomaly = aneci_core::anomaly::node_anomaly_scores(&ckpt.membership);
        Self::new(ckpt.embedding.clone(), Some(ckpt.membership.clone()))
            .with_anomaly_scores(anomaly)
    }

    /// Number of embedded node slots, tombstoned ones included.
    pub fn num_nodes(&self) -> usize {
        self.embedding.rows()
    }

    /// Number of live (non-tombstoned) nodes.
    pub fn num_live(&self) -> usize {
        match &self.deleted {
            Some(d) => d.iter().filter(|&&x| !x).count(),
            None => self.embedding.rows(),
        }
    }

    /// Whether `node` is tombstoned.
    pub fn is_deleted(&self, node: usize) -> bool {
        self.deleted
            .as_ref()
            .is_some_and(|d| d.get(node).copied().unwrap_or(false))
    }

    /// The tombstone mask, when any row is tombstoned.
    pub fn deleted_mask(&self) -> Option<&[bool]> {
        self.deleted.as_deref()
    }

    /// The stored soft-membership matrix, when available.
    pub fn membership(&self) -> Option<&DenseMatrix> {
        self.membership.as_ref()
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.embedding.cols()
    }

    /// The stored embedding matrix.
    pub fn embedding(&self) -> &DenseMatrix {
        &self.embedding
    }

    /// The embedding row of `node`.
    pub fn vector_of(&self, node: usize) -> &[f64] {
        self.embedding.row(node)
    }

    /// Similarity between a query vector and a stored row — the per-row
    /// oracle the batched-scan production path is tested against.
    #[cfg(test)]
    fn score_row(&self, query: &[f64], query_norm: f64, row: usize, metric: Metric) -> f64 {
        let d = vector::dot(query, self.embedding.row(row));
        match metric {
            Metric::Dot => d,
            Metric::Cosine => vector::cosine_with_norms(d, query_norm, self.norms[row]),
        }
    }

    /// Exact top-`k` most similar nodes to a free query vector, brute force
    /// over every row. `exclude` removes one node id (used for node queries,
    /// which should not return the node itself). Results are sorted by
    /// descending score with ascending-id tie-breaks, so the answer is fully
    /// deterministic — across runs *and* across pool sizes.
    ///
    /// # Panics
    /// Panics if `query.len() != self.dim()`.
    pub fn top_k(
        &self,
        query: &[f64],
        k: usize,
        metric: Metric,
        exclude: Option<usize>,
    ) -> Vec<Scored> {
        assert_eq!(query.len(), self.dim(), "query dimension mismatch");
        let n = self.num_nodes();
        if n == 0 || k == 0 {
            return Vec::new();
        }
        let keep = k.min(n);
        // One telemetry sample per scan (the row dots inside dispatch to
        // SIMD when available — see `aneci_linalg::simd`).
        aneci_linalg::simd::record_dispatch();
        let query_norm = vector::norm2(query);

        // One extra candidate per chunk covers the excluded id.
        let per_chunk = keep + 1;
        let grain = pool::row_grain(n, 64);
        let chunks = if pool::should_parallelize(n.saturating_mul(self.dim())) {
            pool::parallel_map_chunks(n, grain, |lo, hi| {
                self.top_of_range(query, query_norm, metric, lo, hi, per_chunk)
            })
        } else {
            vec![self.top_of_range(query, query_norm, metric, 0, n, per_chunk)]
        };

        // Deterministic merge: concatenate chunk candidates (chunk order is
        // fixed by (n, grain)), then a full sort with id tie-breaks.
        let mut merged: Vec<Scored> = chunks.into_iter().flatten().collect();
        if let Some(ex) = exclude {
            merged.retain(|&(id, _)| id != ex);
        }
        merged.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        merged.truncate(keep.min(merged.len()));
        merged
    }

    /// Top candidates within one row range (the per-chunk kernel). The
    /// whole range is scored through the batched scan kernels
    /// ([`vector::cosine_scores`] / [`vector::dot_scores`]) so SIMD
    /// dispatch is paid once per range, not once per row.
    fn top_of_range(
        &self,
        query: &[f64],
        query_norm: f64,
        metric: Metric,
        lo: usize,
        hi: usize,
        keep: usize,
    ) -> Vec<Scored> {
        let d = self.dim();
        let rows = &self.embedding.as_slice()[lo * d..hi * d];
        let mut scores = vec![0.0f64; hi - lo];
        match metric {
            Metric::Cosine => {
                vector::cosine_scores(query, query_norm, rows, &self.norms[lo..hi], &mut scores)
            }
            Metric::Dot => vector::dot_scores(query, rows, &mut scores),
        }
        // Tombstones are dropped *before* the per-chunk truncation, so a
        // chunk full of deleted rows can never crowd live candidates out.
        let mut scored: Vec<Scored> = scores
            .iter()
            .enumerate()
            .map(|(i, &s)| (lo + i, s))
            .filter(|&(id, _)| !self.is_deleted(id))
            .collect();
        scored.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.truncate(keep.min(scored.len()));
        scored
    }

    /// Exact top-`k` neighbors of a stored node (the node itself excluded).
    pub fn top_k_node(&self, node: usize, k: usize, metric: Metric) -> Vec<Scored> {
        let query = self.embedding.row(node).to_vec();
        self.top_k(&query, k, metric, Some(node))
    }

    /// Hard community of `node` (argmax membership), when membership is
    /// available. Nodes appended by a snapshot update carry an all-zero
    /// membership row (the model hasn't assigned them yet) and report
    /// `None`.
    pub fn community(&self, node: usize) -> Option<usize> {
        self.membership_row(node)?;
        self.communities.as_ref().map(|c| c[node])
    }

    /// The soft membership row of `node`, when available and assigned
    /// (all-zero rows — appended, not-yet-trained nodes — report `None`).
    pub fn membership_row(&self, node: usize) -> Option<&[f64]> {
        let row = self.membership.as_ref().map(|m| m.row(node))?;
        row.iter().any(|&x| x != 0.0).then_some(row)
    }

    /// Link-prediction score `σ(z_u · z_v)` — **the** eval scorer
    /// ([`aneci_eval::linkpred::edge_score`]), reused verbatim so serve-time
    /// and eval-time scores are identical.
    pub fn edge_score(&self, u: usize, v: usize) -> f64 {
        aneci_eval::linkpred::edge_score(&self.embedding, u, v)
    }

    /// Batched edge scores through the pooled eval kernel.
    pub fn edge_scores(&self, pairs: &[(usize, usize)]) -> Vec<f64> {
        aneci_eval::linkpred::edge_scores(&self.embedding, pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aneci_linalg::rng::{gaussian_matrix, seeded_rng};

    fn store(n: usize, d: usize, seed: u64) -> EmbeddingStore {
        let mut rng = seeded_rng(seed);
        let z = gaussian_matrix(n, d, 1.0, &mut rng);
        let p = z.softmax_rows();
        EmbeddingStore::new(z, Some(p))
    }

    /// Naive reference: score every row serially and fully sort.
    fn naive_top_k(
        s: &EmbeddingStore,
        query: &[f64],
        k: usize,
        metric: Metric,
        exclude: Option<usize>,
    ) -> Vec<Scored> {
        let qn = vector::norm2(query);
        let mut all: Vec<Scored> = (0..s.num_nodes())
            .filter(|&r| Some(r) != exclude)
            .map(|r| (r, s.score_row(query, qn, r, metric)))
            .collect();
        all.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(k.min(all.len()));
        all
    }

    #[test]
    fn top_k_matches_naive_reference() {
        let s = store(200, 8, 1);
        let query = s.vector_of(7).to_vec();
        for &metric in &[Metric::Cosine, Metric::Dot] {
            for &k in &[1usize, 5, 10, 200, 500] {
                assert_eq!(
                    s.top_k(&query, k, metric, None),
                    naive_top_k(&s, &query, k, metric, None),
                    "metric {metric:?} k {k}"
                );
            }
        }
    }

    #[test]
    fn node_query_excludes_self_and_cosine_self_is_top_without_exclusion() {
        let s = store(50, 6, 2);
        let hits = s.top_k_node(3, 10, Metric::Cosine);
        assert_eq!(hits.len(), 10);
        assert!(hits.iter().all(|&(id, _)| id != 3));
        // Without exclusion the node itself wins at cosine similarity 1.
        let with_self = s.top_k(s.vector_of(3), 1, Metric::Cosine, None);
        assert_eq!(with_self[0].0, 3);
        assert!((with_self[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn top_k_bit_identical_across_thread_counts() {
        use aneci_linalg::pool;
        pool::force_pool();
        let s = store(500, 16, 3);
        let query = s.vector_of(11).to_vec();

        pool::set_par_threshold(1);
        let pooled = s.top_k(&query, 25, Metric::Cosine, Some(11));
        pool::set_num_threads(1);
        let single = s.top_k(&query, 25, Metric::Cosine, Some(11));
        pool::set_num_threads(4);

        assert_eq!(pooled, single);
    }

    #[test]
    fn community_and_membership_lookups() {
        let s = store(30, 4, 4);
        let row = s.membership_row(5).unwrap();
        assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let c = s.community(5).unwrap();
        // argmax of the row really is the reported community.
        let best = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(c, best);

        let bare = EmbeddingStore::new(s.embedding.clone(), None);
        assert_eq!(bare.community(5), None);
        assert!(bare.membership_row(5).is_none());
    }

    #[test]
    fn edge_score_parity_with_eval() {
        let s = store(40, 8, 5);
        for (u, v) in [(0usize, 1usize), (3, 17), (39, 0)] {
            assert_eq!(
                s.edge_score(u, v),
                aneci_eval::linkpred::edge_score(s.embedding(), u, v)
            );
        }
        let pairs = vec![(0, 1), (2, 3), (4, 5)];
        let batch = s.edge_scores(&pairs);
        for (score, &(u, v)) in batch.iter().zip(&pairs) {
            assert_eq!(*score, s.edge_score(u, v));
        }
    }

    #[test]
    fn tombstoned_rows_never_appear_in_top_k() {
        use aneci_linalg::pool;
        pool::force_pool();
        let n = 300;
        let mut rng = seeded_rng(9);
        let z = gaussian_matrix(n, 8, 1.0, &mut rng);
        let mut deleted = vec![false; n];
        for i in (0..n).step_by(3) {
            deleted[i] = true;
        }
        let full = EmbeddingStore::new(z.clone(), None);
        let masked = EmbeddingStore::with_tombstones(z.clone(), None, Some(deleted.clone()));
        assert_eq!(masked.num_live(), n - n.div_ceil(3));
        assert!(masked.is_deleted(0) && !masked.is_deleted(1));

        let query = z.row(1).to_vec();
        pool::set_par_threshold(1); // force the chunked parallel path
        for &k in &[1usize, 5, 50, 300] {
            let got = masked.top_k(&query, k, Metric::Cosine, None);
            // Reference: full scan, live rows only, same ordering rules.
            let expect: Vec<Scored> = full
                .top_k(&query, n, Metric::Cosine, None)
                .into_iter()
                .filter(|&(id, _)| !deleted[id])
                .take(k)
                .collect();
            assert_eq!(got, expect, "k = {k}");
        }

        // An all-false mask normalizes away entirely.
        let clean = EmbeddingStore::with_tombstones(z, None, Some(vec![false; n]));
        assert!(clean.deleted_mask().is_none());
        assert_eq!(clean.num_live(), n);
    }

    #[test]
    fn zero_membership_rows_report_unassigned() {
        let s = store(10, 4, 7);
        assert!(s.community(3).is_some());
        // Rebuild with node 3's membership zeroed (an appended node).
        let mut m = s.membership.clone().unwrap();
        m.row_mut(3).fill(0.0);
        let s2 = EmbeddingStore::new(s.embedding.clone(), Some(m));
        assert_eq!(s2.community(3), None);
        assert!(s2.membership_row(3).is_none());
        assert!(s2.community(4).is_some());
    }

    #[test]
    fn zero_and_degenerate_inputs() {
        let s = store(10, 4, 6);
        assert!(s.top_k(&[0.0; 4], 0, Metric::Cosine, None).is_empty());
        // All-zero query: cosine defined as 0 everywhere; still returns ids.
        let z = s.top_k(&[0.0; 4], 3, Metric::Cosine, None);
        assert_eq!(z.len(), 3);
        assert!(z.iter().all(|&(_, score)| score == 0.0));
    }
}
