//! # aneci-attacks
//!
//! The adversarial-attack and outlier-seeding toolkit of the reproduction
//! (Sec. V-C of the paper):
//!
//! * [`random`] — non-targeted random edge injection (Figs. 2 & 5);
//! * [`fga`] — FGA: gradient-of-the-adjacency targeted attack on a 2-layer
//!   GCN surrogate (Fig. 4);
//! * [`nettack`] — NETTACK-style greedy margin attack on a linearized
//!   surrogate (Fig. 3);
//! * [`outliers`] — structural / attribute / combined community-outlier
//!   seeding following ONE (Fig. 6);
//! * [`targets`] — the paper's target-node selection rule (test nodes with
//!   degree > 10).
//!
//! Every attack speaks the same type: it plans a
//! [`GraphDelta`](aneci_graph::GraphDelta) wrapped in an
//! [`AttackOutcome`] (see [`attack`]), so any attack composes with
//! `apply_to_csr`, `HighOrder::refresh`, and the dynamic-serving pipeline.

pub mod attack;
pub mod fga;
pub mod nettack;
pub mod outliers;
pub mod random;
pub mod targets;

pub use attack::{Attack, AttackOutcome, FgaAttack, NettackAttack, OutlierAttack, RandomAttack};
pub use fga::{fga_attack, EdgeFlip, FgaConfig};
pub use nettack::{nettack_attack, NettackConfig};
pub use outliers::{seed_outliers, OutlierType};
pub use random::random_attack;
pub use targets::select_targets;

#[cfg(test)]
mod proptests {
    use crate::random::random_attack;
    use aneci_graph::AttributedGraph;
    use proptest::prelude::*;

    fn sparse_graph(edges: &[(usize, usize)]) -> AttributedGraph {
        AttributedGraph::from_edges_plain(16, edges, None)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        /// The random attack injects exactly ⌊rate·M⌋ new, previously-absent
        /// edges and leaves the original edge set intact.
        #[test]
        fn random_attack_budget_and_superset(
            edges in prop::collection::vec((0usize..16, 0usize..16), 1..24),
            rate in 0.0..0.6f64,
        ) {
            let g = sparse_graph(&edges);
            if g.num_edges() == 0 { return Ok(()); }
            let want = (rate * g.num_edges() as f64).floor() as usize;
            let capacity = 16 * 15 / 2 - g.num_edges();
            prop_assume!(want <= capacity);
            let atk = random_attack(&g, rate, 7);
            prop_assert_eq!(atk.fake_edges().len(), want);
            let attacked = atk.apply(&g).unwrap();
            prop_assert_eq!(attacked.num_edges(), g.num_edges() + want);
            for (u, v) in g.edge_list() {
                prop_assert!(attacked.has_edge(u, v), "original edge ({u},{v}) lost");
            }
            prop_assert!(attacked.validate().is_ok());
        }

        /// Outlier seeding preserves the node count, marks exactly the
        /// requested fraction, and keeps the graph valid.
        #[test]
        fn outlier_seeding_invariants(frac in 0.02..0.2f64, seed in 0u64..50) {
            let cfg = aneci_graph::SbmConfig {
                num_nodes: 80,
                num_classes: 3,
                target_edges: 300,
                homophily: 0.85,
                degree_exponent: None,
                feature_dim: 24,
                features: aneci_graph::FeatureKind::BagOfWords { p_signal: 0.3, p_noise: 0.02 },
            };
            let g = aneci_graph::generate_sbm(&cfg, seed);
            let s = crate::outliers::seed_outliers(
                &g,
                frac,
                &[crate::outliers::OutlierType::Combined],
                seed,
            );
            let seeded = s.apply(&g).unwrap();
            prop_assert_eq!(seeded.num_nodes(), 80);
            let mask = s.outlier_mask(80);
            let marked = mask.iter().filter(|&&b| b).count();
            prop_assert_eq!(marked, (80.0 * frac).round() as usize);
            prop_assert_eq!(s.budget_spent, marked);
            prop_assert!(seeded.validate().is_ok());
            // Types recorded only at marked nodes.
            let types = s.outlier_types(80);
            for i in 0..80 {
                prop_assert_eq!(types[i].is_some(), mask[i]);
            }
        }
    }
}
