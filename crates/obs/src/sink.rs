//! The JSONL telemetry sink: an optional process-wide destination that
//! receives one JSON object per line as events occur (span exits, explicit
//! snapshot dumps). No sink is installed by default — recording into the
//! registry never touches I/O unless the embedder asked for it.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

static SINK: Mutex<Option<Box<dyn Write + Send>>> = Mutex::new(None);

/// Hand-rolled JSON formatting helpers, shared with the registry's
/// serializers (this crate deliberately has no serde dependency).
pub mod json {
    /// Escapes and quotes `s` as a JSON string literal.
    pub fn string(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }

    /// Formats an `f64` as a JSON number (`null` for NaN/±inf, which JSON
    /// cannot represent).
    pub fn number(v: f64) -> String {
        if v.is_finite() {
            // `{}` on f64 round-trips and never produces exponent-less
            // forms that JSON rejects.
            format!("{v}")
        } else {
            "null".to_string()
        }
    }
}

/// Installs a JSONL sink writing to the file at `path` (truncating it).
/// Replaces any previously installed sink.
pub fn install_jsonl_sink(path: &Path) -> io::Result<()> {
    let file = File::create(path)?;
    install_writer(Box::new(BufWriter::new(file)));
    Ok(())
}

/// Installs an arbitrary writer as the telemetry sink (tests use an
/// in-memory buffer). Replaces any previously installed sink.
pub fn install_writer(w: Box<dyn Write + Send>) {
    let mut sink = SINK.lock().unwrap_or_else(|p| p.into_inner());
    *sink = Some(w);
}

/// Removes and flushes the current sink, if any.
pub fn uninstall_sink() {
    let mut sink = SINK.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(mut w) = sink.take() {
        let _ = w.flush();
    }
}

/// Whether a sink is currently installed. Hot paths check this before
/// building event strings.
pub fn sink_active() -> bool {
    SINK.lock().unwrap_or_else(|p| p.into_inner()).is_some()
}

/// Writes one pre-formatted JSON line to the sink, if one is installed.
/// Write errors are swallowed — telemetry must never fail the workload.
pub fn emit_line(line: &str) {
    let mut sink = SINK.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(w) = sink.as_mut() {
        let _ = w.write_all(line.as_bytes());
        let _ = w.write_all(b"\n");
    }
}

/// Emits every metric in `snap` as one JSON line each, if a sink is
/// installed.
pub fn emit_snapshot(snap: &crate::Snapshot) {
    if sink_active() {
        emit_line(snap.to_jsonl().trim_end());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// A Write impl capturing into shared memory so tests can inspect what
    /// the sink received after uninstalling.
    struct Capture(Arc<StdMutex<Vec<u8>>>);
    impl Write for Capture {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json::string("plain"), "\"plain\"");
        assert_eq!(json::string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json::string("line\nbreak"), "\"line\\nbreak\"");
        assert_eq!(json::string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn json_number_handles_nonfinite() {
        assert_eq!(json::number(1.5), "1.5");
        assert_eq!(json::number(-3.0), "-3");
        assert_eq!(json::number(f64::NAN), "null");
        assert_eq!(json::number(f64::INFINITY), "null");
    }

    #[test]
    fn sink_receives_lines_and_uninstalls() {
        let buf = Arc::new(StdMutex::new(Vec::new()));
        install_writer(Box::new(Capture(buf.clone())));
        assert!(sink_active());
        emit_line("{\"type\":\"test\"}");
        uninstall_sink();
        assert!(!sink_active());
        // After uninstall, emits are dropped silently.
        emit_line("{\"type\":\"dropped\"}");
        let got = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(got, "{\"type\":\"test\"}\n");
    }

    #[test]
    fn snapshot_emits_one_line_per_metric() {
        let reg = crate::Registry::new();
        reg.counter("s.a").inc();
        reg.gauge("s.b").set(2.0);
        let buf = Arc::new(StdMutex::new(Vec::new()));
        install_writer(Box::new(Capture(buf.clone())));
        emit_snapshot(&reg.snapshot());
        uninstall_sink();
        let got = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = got.trim_end().lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"counter\""));
        assert!(lines[1].contains("\"gauge\""));
    }
}
