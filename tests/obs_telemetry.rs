//! Telemetry integration tests: training against the global `aneci-obs`
//! registry must (a) emit the documented span/metric names and (b) produce a
//! bit-identical deterministic snapshot regardless of the worker-thread
//! count, since the pool's chunk decomposition is thread-count-independent.
//!
//! All tests share the process-global registry, so they serialize on a
//! mutex and reset the registry at the top.

use std::sync::Mutex;

use aneci::linalg::pool;
use aneci::obs;
use aneci::prelude::*;

/// Serializes registry access across the tests in this binary.
static REGISTRY_LOCK: Mutex<()> = Mutex::new(());

fn train_karate() -> (AneciModel, TrainReport) {
    let graph = karate_club();
    let config = AneciConfig::builder()
        .embed_dim(2)
        .epochs(30)
        .stop(StopStrategy::FixedEpochs)
        .seed(42)
        .build()
        .expect("valid config");
    train_aneci(&graph, &config).expect("training failed")
}

#[test]
fn training_emits_documented_spans_and_metrics() {
    let _guard = REGISTRY_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    obs::set_enabled(true);
    obs::global().reset();

    let (_, report) = train_karate();
    let snap = obs::global().snapshot();

    // Phase spans: one `core.train` wrapper, one child span per epoch phase.
    for name in [
        "span.core.train.calls",
        "span.core.train.encode.calls",
        "span.core.train.modularity.calls",
        "span.core.train.decode.calls",
        "span.core.train.step.calls",
    ] {
        assert!(
            snap.counter(name).is_some_and(|c| c > 0),
            "missing span counter {name}; have: {:?}",
            snap.names()
        );
    }
    assert_eq!(snap.counter("span.core.train.calls"), Some(1));
    assert_eq!(
        snap.counter("span.core.train.encode.calls"),
        Some(report.epochs_run as u64),
        "one encode span per epoch"
    );

    // Training-value histograms observe once per epoch.
    for name in [
        "core.train.loss",
        "core.train.q_tilde",
        "core.train.delta_q",
    ] {
        let h = snap
            .histogram(name)
            .unwrap_or_else(|| panic!("missing histogram {name}"));
        assert_eq!(h.count, report.epochs_run as u64);
    }
    assert_eq!(
        snap.counter("core.train.epochs"),
        Some(report.epochs_run as u64)
    );

    // The always-on kernel counters saw work during training.
    let kernel_calls: u64 = snap
        .counters
        .iter()
        .filter(|(n, _)| n.starts_with("linalg.kernel.") && n.ends_with(".calls"))
        .map(|(_, v)| v)
        .sum();
    assert!(kernel_calls > 0, "no linalg kernel calls recorded");
}

#[test]
fn deterministic_snapshot_is_thread_count_invariant() {
    let _guard = REGISTRY_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    obs::set_enabled(true);
    pool::force_pool();

    obs::global().reset();
    pool::set_num_threads(1);
    train_karate();
    let single = obs::global().snapshot().deterministic();

    obs::global().reset();
    pool::set_num_threads(4);
    train_karate();
    let multi = obs::global().snapshot().deterministic();

    assert!(
        !single.counters.is_empty() && !single.histograms.is_empty(),
        "deterministic snapshot should retain counters and histograms"
    );
    assert_eq!(
        single, multi,
        "deterministic registry snapshot must not depend on the thread count"
    );
}

#[test]
fn deterministic_filter_drops_timing_and_cache_metrics() {
    let _guard = REGISTRY_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    obs::set_enabled(true);
    obs::global().reset();

    train_karate();
    let snap = obs::global().snapshot();
    let det = snap.deterministic();

    assert!(
        snap.names().iter().any(|n| n.ends_with("_ns")),
        "full snapshot should contain wall-time metrics"
    );
    for name in det.names() {
        assert!(
            !name.ends_with("_ns"),
            "deterministic snapshot leaked timing metric {name}"
        );
        assert!(
            !name
                .split('.')
                .any(|seg| seg == "dispatch" || seg == "cache"),
            "deterministic snapshot leaked scheduling metric {name}"
        );
    }
}

#[test]
fn disabling_telemetry_stops_recording() {
    let _guard = REGISTRY_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    obs::global().reset();

    obs::set_enabled(false);
    train_karate();
    let off = obs::global().snapshot();
    obs::set_enabled(true);

    assert_eq!(
        off.counter("core.train.epochs").unwrap_or(0),
        0,
        "disabled telemetry must not record training metrics"
    );
    assert!(
        off.counter("span.core.train.calls").unwrap_or(0) == 0,
        "disabled telemetry must not record spans"
    );
}
