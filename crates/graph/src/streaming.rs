//! Streaming planted-partition generator for million-node training runs.
//!
//! [`generate_sbm`](crate::generators::generate_sbm) materializes its whole
//! edge set in a `BTreeSet` before CSR assembly, which caps it around 10⁵
//! nodes. This module generates the same family of graphs — balanced planted
//! communities, tunable homophily, optional LFR-style power-law degree
//! correction, Gaussian class features — as a *stream* of edge chunks:
//!
//! * [`edge_chunks`] yields `Vec<(u32, u32)>` chunks; the full edge list is
//!   never materialized, and the sequence for a fixed seed is identical for
//!   every chunk size (the chunk boundary just slices a deterministic
//!   state-machine walk) and independent of `ANECI_NUM_THREADS` (generation
//!   is a serial per-phase RNG walk);
//! * [`generate_streamed`] consumes the stream twice — degree-count pass,
//!   then scatter pass — to build the CSR adjacency directly, so peak
//!   transient memory is `O(nnz)` for the scatter buffer plus one chunk.
//!
//! ## Determinism model
//!
//! Edges are drawn phase by phase: one intra-community phase per community
//! (each with its own RNG stream derived from `(seed, community)`), then one
//! global inter-community phase. Phase boundaries depend only on the config,
//! never on chunk size or thread count. Duplicate draws are *not* rejected
//! at generation time (that would need a hash set per phase); they are
//! deduplicated during CSR row assembly, which keeps the generator itself
//! allocation-free beyond the chunk buffer.
//!
//! Node `i` belongs to community `i % num_communities`, so membership is
//! O(1)-computable and the community-aware batch sampler never needs a
//! stored label array at scale (labels are still materialized in
//! [`StreamedGraph`] for evaluation).

use aneci_linalg::rng::{derive_seed, seeded_rng, standard_normal, AliasTable};
use aneci_linalg::{CsrMatrix, DenseMatrix};
use rand::rngs::StdRng;
use rand::Rng;

use crate::attributed::AttributedGraph;
use crate::delta::GraphError;

/// Configuration for the streaming planted-partition generator.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamingConfig {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Number of planted communities; node `i` belongs to `i % k`.
    pub num_communities: usize,
    /// Target mean degree (undirected edges ≈ `n · avg_degree / 2`).
    pub avg_degree: f64,
    /// Fraction of edges drawn inside communities (rest are cross-community).
    pub homophily: f64,
    /// LFR-style power-law degree-correction exponent; `None` = uniform
    /// endpoint propensities. Propensities are hash-derived per node, so the
    /// degree sequence is deterministic and phase-order independent.
    pub degree_exponent: Option<f64>,
    /// Gaussian feature dimension.
    pub feature_dim: usize,
    /// Distance of class centroids from the origin (block structure, as in
    /// the in-memory SBM's `FeatureKind::Gaussian`).
    pub feature_separation: f64,
    /// Per-coordinate Gaussian noise std.
    pub feature_noise: f64,
}

impl StreamingConfig {
    /// Scale-bench preset: `k ≈ √n / 3` balanced communities (so community
    /// subgraphs stay mini-batch sized), mean degree 8, strong homophily,
    /// mild degree tail, 16-dim separable features.
    ///
    /// Returns a typed [`GraphError::Config`] when `num_nodes` is out of
    /// range — fewer than 2 nodes, or more than the `u32` node-id space the
    /// edge stream emits (ids used to be silently truncated by the `as u32`
    /// casts; now the bound is checked up front).
    pub fn scale(num_nodes: usize) -> Result<Self, GraphError> {
        let k = ((num_nodes as f64).sqrt() / 3.0).round().max(2.0) as usize;
        let cfg = Self {
            num_nodes,
            num_communities: k.min(num_nodes),
            avg_degree: 8.0,
            homophily: 0.9,
            degree_exponent: Some(2.5),
            feature_dim: 16,
            feature_separation: 1.5,
            feature_noise: 1.0,
        };
        cfg.check()?;
        Ok(cfg)
    }

    /// Validates every field, returning a typed [`GraphError::Config`] on
    /// the first violation. The generator entry points call this through
    /// [`validate`](Self::validate) (which panics, preserving their
    /// fail-fast contract); config-building code should call `check`
    /// directly and propagate the error.
    pub fn check(&self) -> Result<(), GraphError> {
        let bad = |msg: String| Err(GraphError::Config(msg));
        if self.num_nodes < 2 {
            return bad("streaming: need at least 2 nodes".into());
        }
        // Node ids travel as u32 through the edge stream and CSR column
        // indices; a node count past that space would otherwise wrap the
        // `as u32` casts silently.
        if self.num_nodes > u32::MAX as usize {
            return bad(format!(
                "streaming: {} nodes exceed the u32 node-id space ({})",
                self.num_nodes,
                u32::MAX
            ));
        }
        if self.num_communities < 1 || self.num_communities > self.num_nodes {
            return bad(format!(
                "streaming: communities ({}) must be in 1..={}",
                self.num_communities, self.num_nodes
            ));
        }
        if !(0.0..=1.0).contains(&self.homophily) {
            return bad(format!(
                "streaming: homophily {} outside [0, 1]",
                self.homophily
            ));
        }
        if !self.avg_degree.is_finite() || self.avg_degree < 0.0 {
            return bad(format!("streaming: invalid avg_degree {}", self.avg_degree));
        }
        if let Some(alpha) = self.degree_exponent {
            if alpha.is_nan() || alpha <= 1.0 {
                return bad(format!("streaming: degree exponent {alpha} must exceed 1"));
            }
        }
        if self.feature_dim == 0 {
            return bad("streaming: feature_dim must be positive".into());
        }
        Ok(())
    }

    fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("{e}");
        }
    }
}

/// A graph built from the edge stream: CSR adjacency (deduplicated,
/// symmetric, hollow), Gaussian features, planted community labels.
#[derive(Clone, Debug)]
pub struct StreamedGraph {
    /// Symmetric binary adjacency.
    pub adjacency: CsrMatrix,
    /// `n × feature_dim` Gaussian class features.
    pub features: DenseMatrix,
    /// Planted community of each node (`i % num_communities`).
    pub labels: Vec<usize>,
}

impl StreamedGraph {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adjacency.rows()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.adjacency.nnz() / 2
    }

    /// Converts to a validated [`AttributedGraph`] — materializes the edge
    /// list, so this is for small-N tests and full-batch A/B baselines, not
    /// the million-node path.
    pub fn to_attributed(&self) -> AttributedGraph {
        let mut edges = Vec::with_capacity(self.num_edges());
        for (u, v, _) in self.adjacency.iter() {
            if u < v {
                edges.push((u, v));
            }
        }
        AttributedGraph::from_edges(
            self.num_nodes(),
            &edges,
            self.features.clone(),
            Some(self.labels.clone()),
        )
    }
}

/// Per-node endpoint propensity for the degree-corrected draw: a Pareto
/// sample computed from a *hash* of the node id (not an RNG stream), so it
/// is O(1), deterministic, and independent of generation order. Mirrors the
/// in-memory SBM's `u^(-1/(α-1))` capped at 20.
fn propensity(theta_seed: u64, node: usize, alpha: f64) -> f64 {
    let bits = derive_seed(theta_seed, node as u64);
    // 53-bit uniform in (0, 1).
    let u = ((bits >> 11) as f64 + 0.5) / 9007199254740992.0;
    u.powf(-1.0 / (alpha - 1.0)).min(20.0)
}

/// The phase walk: one intra phase per community, then one inter phase.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Phase {
    Intra(usize),
    Inter,
    Done,
}

/// Chunked edge iterator — see the module docs for the determinism model.
pub struct EdgeStream {
    cfg: StreamingConfig,
    seed: u64,
    chunk_size: usize,
    phase: Phase,
    rng: StdRng,
    /// Propensity alias table for the current phase (degree-corrected only).
    alias: Option<AliasTable>,
    emitted: usize,
    attempts: usize,
    quota: usize,
    max_attempts: usize,
}

impl EdgeStream {
    fn new(cfg: &StreamingConfig, seed: u64, chunk_size: usize) -> Self {
        cfg.validate();
        assert!(chunk_size > 0, "streaming: chunk size must be positive");
        let mut stream = Self {
            cfg: cfg.clone(),
            seed,
            chunk_size,
            phase: Phase::Done,
            rng: seeded_rng(seed),
            alias: None,
            emitted: 0,
            attempts: 0,
            quota: 0,
            max_attempts: 0,
        };
        stream.enter_phase(Phase::Intra(0));
        stream
    }

    /// Undirected target edge count.
    fn target_edges(&self) -> usize {
        (self.cfg.num_nodes as f64 * self.cfg.avg_degree / 2.0).round() as usize
    }

    fn intra_total(&self) -> usize {
        (self.target_edges() as f64 * self.cfg.homophily).round() as usize
    }

    /// Members of community `c` are `c, c+k, c+2k, …`.
    fn community_size(&self, c: usize) -> usize {
        let (n, k) = (self.cfg.num_nodes, self.cfg.num_communities);
        if c < n {
            (n - c).div_ceil(k)
        } else {
            0
        }
    }

    /// Sets up RNG stream, quota, and (if degree-corrected) the propensity
    /// alias table for `phase`. Skips ahead over phases with nothing to do.
    fn enter_phase(&mut self, mut phase: Phase) {
        let k = self.cfg.num_communities;
        let theta_seed = derive_seed(self.seed, 0x7E7A);
        loop {
            let (quota, members) = match phase {
                Phase::Intra(c) if c < k => {
                    let total = self.intra_total();
                    let base = total / k + usize::from(c < total % k);
                    (
                        if self.community_size(c) >= 2 { base } else { 0 },
                        self.community_size(c),
                    )
                }
                Phase::Intra(_) => {
                    phase = Phase::Inter;
                    continue;
                }
                Phase::Inter => (
                    if k >= 2 {
                        self.target_edges() - self.intra_total()
                    } else {
                        0
                    },
                    self.cfg.num_nodes,
                ),
                Phase::Done => {
                    self.phase = Phase::Done;
                    return;
                }
            };
            if quota == 0 {
                phase = match phase {
                    Phase::Intra(c) => Phase::Intra(c + 1),
                    Phase::Inter => Phase::Done,
                    Phase::Done => unreachable!(),
                };
                continue;
            }
            self.phase = phase;
            self.quota = quota;
            self.emitted = 0;
            self.attempts = 0;
            self.max_attempts = quota.saturating_mul(30) + 200;
            self.rng = match phase {
                Phase::Intra(c) => {
                    seeded_rng(derive_seed(derive_seed(self.seed, 0xED6E), c as u64))
                }
                Phase::Inter => seeded_rng(derive_seed(self.seed, 0x167E4)),
                Phase::Done => unreachable!(),
            };
            self.alias = self.cfg.degree_exponent.map(|alpha| {
                let weights: Vec<f64> = match phase {
                    Phase::Intra(c) => (0..members)
                        .map(|j| propensity(theta_seed, c + j * k, alpha))
                        .collect(),
                    Phase::Inter => (0..members)
                        .map(|i| propensity(theta_seed, i, alpha))
                        .collect(),
                    Phase::Done => unreachable!(),
                };
                AliasTable::new(&weights)
            });
            return;
        }
    }

    /// Draws one endpoint index in `0..members` for the current phase.
    fn draw_endpoint(&mut self, members: usize) -> usize {
        match &self.alias {
            Some(table) => table.sample(&mut self.rng),
            None => self.rng.gen_range(0..members),
        }
    }

    /// Next edge of the current phase, advancing phases as quotas fill.
    fn next_edge(&mut self) -> Option<(u32, u32)> {
        loop {
            match self.phase {
                Phase::Done => return None,
                Phase::Intra(c) => {
                    if self.emitted >= self.quota || self.attempts >= self.max_attempts {
                        self.enter_phase(Phase::Intra(c + 1));
                        continue;
                    }
                    self.attempts += 1;
                    let k = self.cfg.num_communities;
                    let members = self.community_size(c);
                    let u = c + self.draw_endpoint(members) * k;
                    let v = c + self.draw_endpoint(members) * k;
                    if u == v {
                        continue;
                    }
                    self.emitted += 1;
                    return Some((u.min(v) as u32, u.max(v) as u32));
                }
                Phase::Inter => {
                    if self.emitted >= self.quota || self.attempts >= self.max_attempts {
                        self.enter_phase(Phase::Done);
                        continue;
                    }
                    self.attempts += 1;
                    let n = self.cfg.num_nodes;
                    let u = self.draw_endpoint(n);
                    let v = self.draw_endpoint(n);
                    if u == v || u % self.cfg.num_communities == v % self.cfg.num_communities {
                        continue;
                    }
                    self.emitted += 1;
                    return Some((u.min(v) as u32, u.max(v) as u32));
                }
            }
        }
    }
}

impl Iterator for EdgeStream {
    type Item = Vec<(u32, u32)>;

    fn next(&mut self) -> Option<Self::Item> {
        let mut chunk = Vec::with_capacity(self.chunk_size);
        while chunk.len() < self.chunk_size {
            match self.next_edge() {
                Some(e) => chunk.push(e),
                None => break,
            }
        }
        if chunk.is_empty() {
            None
        } else {
            Some(chunk)
        }
    }
}

/// Chunked edge stream for `(cfg, seed)`. The concatenated sequence is
/// identical for every `chunk_size` and thread count.
pub fn edge_chunks(cfg: &StreamingConfig, seed: u64, chunk_size: usize) -> EdgeStream {
    EdgeStream::new(cfg, seed, chunk_size)
}

/// Builds a [`StreamedGraph`] from two passes over the edge stream: a
/// degree-counting pass, then a scatter pass into pre-sized CSR row ranges,
/// followed by per-row sort + dedup. Peak transient memory is the scatter
/// buffer (`O(2 · emitted edges)`) plus one chunk — the full edge list is
/// never held, and no hash sets are used.
pub fn generate_streamed(cfg: &StreamingConfig, seed: u64, chunk_size: usize) -> StreamedGraph {
    cfg.validate();
    let n = cfg.num_nodes;
    let k = cfg.num_communities;

    // Pass 1: directed degree counts (duplicates included — they vanish in
    // the dedup below, leaving only a slight over-allocation).
    let mut deg = vec![0usize; n];
    for chunk in edge_chunks(cfg, seed, chunk_size) {
        for &(u, v) in &chunk {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
    }
    let mut indptr = Vec::with_capacity(n + 1);
    indptr.push(0usize);
    for &d in &deg {
        indptr.push(indptr.last().unwrap() + d);
    }
    let total = *indptr.last().unwrap();

    // Pass 2: regenerate the identical stream and scatter both directions
    // into each row's range.
    let mut cols = vec![0u32; total];
    let mut cursor: Vec<usize> = indptr[..n].to_vec();
    for chunk in edge_chunks(cfg, seed, chunk_size) {
        for &(u, v) in &chunk {
            let (u, v) = (u as usize, v as usize);
            cols[cursor[u]] = v as u32;
            cursor[u] += 1;
            cols[cursor[v]] = u as u32;
            cursor[v] += 1;
        }
    }

    // Pass 3: per-row sort + dedup, compacting into the final CSR buffers.
    // Serial on purpose: rows are tiny, the pass is one O(nnz log deg)
    // sweep, and serial order is trivially thread-count invariant.
    let mut indices: Vec<u32> = Vec::with_capacity(total);
    let mut out_indptr = Vec::with_capacity(n + 1);
    out_indptr.push(0usize);
    for r in 0..n {
        let row = &mut cols[indptr[r]..indptr[r + 1]];
        row.sort_unstable();
        let mut prev = u32::MAX;
        for &c in row.iter() {
            if c != prev {
                indices.push(c);
                prev = c;
            }
        }
        out_indptr.push(indices.len());
    }
    drop(cols);
    let values = vec![1.0f64; indices.len()];
    let adjacency = CsrMatrix::from_raw(n, n, out_indptr, indices, values);

    // Features: Gaussian class centroids on axis blocks (same layout as the
    // in-memory SBM), one hash-derived RNG per row so parallel fills are
    // bit-identical to serial. The block start wraps modulo `d` so that
    // with more communities than dimensions every community still gets a
    // centroid (aliased communities then differ only structurally).
    let d = cfg.feature_dim;
    let fseed = derive_seed(seed, 0xFEA7);
    let block = (d / k.max(1)).max(1);
    let (sep, noise) = (cfg.feature_separation, cfg.feature_noise);
    let mut features = DenseMatrix::zeros(n, d);
    features.par_rows_mut(4 * d, |i, row| {
        let mut rng = seeded_rng(derive_seed(fseed, i as u64));
        let c = i % k;
        let lo = (c * block) % d;
        let hi = (lo + block).min(d);
        for (j, x) in row.iter_mut().enumerate() {
            let centroid = if j >= lo && j < hi { sep } else { 0.0 };
            *x = centroid + noise * standard_normal(&mut rng);
        }
    });

    let labels: Vec<usize> = (0..n).map(|i| i % k).collect();
    StreamedGraph {
        adjacency,
        features,
        labels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> StreamingConfig {
        StreamingConfig {
            num_nodes: 200,
            num_communities: 5,
            avg_degree: 6.0,
            homophily: 0.85,
            degree_exponent: Some(2.5),
            feature_dim: 8,
            feature_separation: 1.5,
            feature_noise: 1.0,
        }
    }

    #[test]
    fn edge_sequence_is_chunk_size_invariant() {
        let cfg = small_cfg();
        let a: Vec<(u32, u32)> = edge_chunks(&cfg, 7, 1).flatten().collect();
        let b: Vec<(u32, u32)> = edge_chunks(&cfg, 7, 64).flatten().collect();
        let c: Vec<(u32, u32)> = edge_chunks(&cfg, 7, 100_000).flatten().collect();
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert!(!a.is_empty());
    }

    #[test]
    fn streamed_graph_is_valid_and_deterministic() {
        let cfg = small_cfg();
        let g1 = generate_streamed(&cfg, 7, 64);
        let g2 = generate_streamed(&cfg, 7, 777);
        assert_eq!(g1.adjacency, g2.adjacency);
        assert_eq!(g1.features, g2.features);
        assert_eq!(g1.labels, g2.labels);
        // Valid attributed graph (symmetric, binary, hollow).
        let attr = g1.to_attributed();
        assert!(attr.validate().is_ok());
        // Roughly the requested density.
        let target = cfg.num_nodes as f64 * cfg.avg_degree / 2.0;
        let edges = g1.num_edges() as f64;
        assert!(
            edges > 0.5 * target && edges < 1.2 * target,
            "edges {edges} vs target {target}"
        );
    }

    #[test]
    fn homophily_is_respected() {
        let cfg = small_cfg();
        let g = generate_streamed(&cfg, 11, 128);
        let mut intra = 0usize;
        let mut total = 0usize;
        for (u, v, _) in g.adjacency.iter() {
            if u < v {
                total += 1;
                if g.labels[u] == g.labels[v] {
                    intra += 1;
                }
            }
        }
        let frac = intra as f64 / total as f64;
        assert!(frac > 0.7, "intra fraction {frac}");
    }

    #[test]
    fn degree_correction_skews_the_degree_tail() {
        let mut uniform_cfg = small_cfg();
        uniform_cfg.degree_exponent = None;
        let skewed = generate_streamed(&small_cfg(), 3, 64);
        let uniform = generate_streamed(&uniform_cfg, 3, 64);
        let max_deg = |g: &StreamedGraph| {
            (0..g.num_nodes())
                .map(|r| g.adjacency.row_nnz(r))
                .max()
                .unwrap()
        };
        assert!(max_deg(&skewed) > max_deg(&uniform));
    }

    #[test]
    fn scale_and_check_return_typed_errors() {
        assert!(StreamingConfig::scale(10_000).is_ok());
        assert!(matches!(
            StreamingConfig::scale(1),
            Err(GraphError::Config(_))
        ));
        assert!(matches!(
            StreamingConfig::scale(u32::MAX as usize + 10),
            Err(GraphError::Config(_))
        ));
        let mut cfg = small_cfg();
        cfg.homophily = 1.5;
        assert!(matches!(cfg.check(), Err(GraphError::Config(_))));
        cfg = small_cfg();
        cfg.num_communities = 0;
        assert!(matches!(cfg.check(), Err(GraphError::Config(_))));
        assert!(small_cfg().check().is_ok());
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = small_cfg();
        let a: Vec<(u32, u32)> = edge_chunks(&cfg, 1, 1024).flatten().collect();
        let b: Vec<(u32, u32)> = edge_chunks(&cfg, 2, 1024).flatten().collect();
        assert_ne!(a, b);
    }
}
