//! [`RobustGcnDefense`] — the DropEdge-trained GCN baseline behind the
//! unified [`Defense`] trait from `aneci-core`, so the bench robustness
//! matrix can sweep it next to `NoDefense` / `AneciPlus` /
//! `SmoothedEncoder` without special-casing a semi-supervised model.
//!
//! The classifier's softmax class distribution doubles as the soft
//! membership (classes stand in for communities on the labelled
//! benchmarks), so anomaly scoring and the serving layer's
//! poisoned-neighborhood detector work unchanged.

use crate::robust_gcn::{RobustGcn, RobustGcnConfig};
use aneci_core::anomaly::combined_anomaly_scores;
use aneci_core::defense::{Defense, DefenseOutcome};
use aneci_core::error::AneciError;
use aneci_graph::AttributedGraph;

/// The DropEdge-GCN baseline as a [`Defense`]. Requires a labelled graph
/// (it trains on the graph's training split).
#[derive(Clone, Debug, Default)]
pub struct RobustGcnDefense {
    /// DropEdge-GCN hyperparameters.
    pub config: RobustGcnConfig,
}

impl Defense for RobustGcnDefense {
    fn name(&self) -> &'static str {
        "robust_gcn"
    }

    fn defend(&self, graph: &AttributedGraph) -> Result<DefenseOutcome, AneciError> {
        if graph.labels.is_none() || graph.split.train.is_empty() {
            return Err(AneciError::Config(
                "RobustGcnDefense needs a labelled graph with a training split".into(),
            ));
        }
        let model = RobustGcn::try_fit(graph, &self.config)
            .map_err(|e| AneciError::Config(format!("DropEdge-GCN training failed: {e}")))?;
        let logits = model.logits();
        let membership = logits.softmax_rows();
        let anomaly_scores = combined_anomaly_scores(&membership, graph);
        Ok(DefenseOutcome {
            embedding: logits,
            communities: membership.argmax_rows(),
            membership,
            anomaly_scores,
            removed_edges: Vec::new(),
            certified: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aneci_graph::{generate_sbm, sample_split, FeatureKind, SbmConfig};

    #[test]
    fn robust_gcn_defense_produces_consistent_outcome() {
        let mut g = generate_sbm(
            &SbmConfig {
                num_nodes: 120,
                num_classes: 3,
                target_edges: 700,
                homophily: 0.9,
                degree_exponent: None,
                feature_dim: 40,
                features: FeatureKind::BagOfWords {
                    p_signal: 0.3,
                    p_noise: 0.01,
                },
            },
            7,
        );
        let labels = g.labels.clone().unwrap();
        g.set_split(sample_split(&labels, 10, 20, 60, 7));
        let out = RobustGcnDefense {
            config: RobustGcnConfig {
                epochs: 60,
                seed: 7,
                ..Default::default()
            },
        }
        .defend(&g)
        .unwrap();
        assert_eq!(out.communities.len(), g.num_nodes());
        assert_eq!(out.anomaly_scores.len(), g.num_nodes());
        assert!(out.certified.is_none());
        for row in out.membership.rows_iter() {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }
}
