//! Minimal offline stand-in for `proptest` 1 — see
//! `offline_shims/README.md`.
//!
//! Implements the subset this workspace uses: the `proptest!` macro with
//! optional `#![proptest_config(ProptestConfig::with_cases(n))]`,
//! strategies for integer/float ranges, tuples of strategies,
//! `prop::collection::vec`, `any::<bool>()`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros. Cases are
//! generated from a fixed per-test seed (FNV of the test name); there is
//! no shrinking.

use std::ops::Range;

/// Deterministic per-test RNG (SplitMix64).
pub struct TestRng(u64);

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a, for seeding a test's RNG from its name.
pub fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// A value generator (shim replacement for `proptest::strategy::Strategy`).
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// `any::<T>()` support.
pub trait ArbitraryShim: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitraryShim for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryShim for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u8
    }
}

impl ArbitraryShim for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: ArbitraryShim> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: ArbitraryShim>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Constant strategy.
#[derive(Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Size spec: a fixed length or a length range (`Into<SizeRange>` in
    /// the real crate).
    pub trait IntoSizeRange {
        fn into_size_range(self) -> Range<usize>;
    }

    impl IntoSizeRange for usize {
        fn into_size_range(self) -> Range<usize> {
            self..self + 1
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn into_size_range(self) -> Range<usize> {
            self
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `prop::collection::vec(elem, len_range_or_fixed_len)`.
    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into_size_range(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.end - self.size.start == 1 {
                self.size.start
            } else {
                Strategy::generate(&self.size, rng)
            };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prop {
    pub use crate::collection;
}

/// Run configuration (only `cases` is honored).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; kept lower so offline test runs stay fast.
        ProptestConfig { cases: 64 }
    }
}

/// Outcome of one generated case.
#[derive(Debug)]
pub enum TestCaseError {
    Fail(String),
    Reject,
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
        collection, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                __a, __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __a, __b
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! proptest {
    // Internal expansion arm — must come first so the catch-all below
    // doesn't re-capture the recursion.
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::new($crate::fnv(concat!(module_path!(), "::", stringify!($name))));
            let mut __ran = 0u32;
            let mut __tries = 0u32;
            while __ran < __cfg.cases {
                __tries += 1;
                assert!(
                    __tries < __cfg.cases.saturating_mul(20).max(1000),
                    "proptest shim: too many rejected cases in {}",
                    stringify!($name)
                );
                $(let $pat = $crate::Strategy::generate(&$strat, &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __result {
                    ::std::result::Result::Ok(()) => __ran += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!("proptest case failed: {} (case {}/{})", __msg, __ran + 1, __cfg.cases);
                    }
                }
            }
        }
    )*};
    // With a config header.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    // Without: default config.
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pairs(n: usize) -> impl Strategy<Value = Vec<(usize, f64)>> {
        prop::collection::vec((0..n, -1.0..1.0f64), 0..10)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3..9usize, y in -4..4i64, f in 0.5..2.0f64, b in any::<bool>()) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-4..4).contains(&y));
            prop_assert!((0.5..2.0).contains(&f));
            let _ = b;
        }

        #[test]
        fn vec_strategy_sizes(v in pairs(5)) {
            prop_assert!(v.len() < 10);
            for (i, x) in &v {
                prop_assert!(*i < 5);
                prop_assert!((-1.0..1.0).contains(x));
            }
        }
    }
}
