//! # aneci — Robust Attributed Network Embedding Preserving Community Information
//!
//! A complete, from-scratch Rust reproduction of the ICDE 2022 paper
//! *"Robust Attributed Network Embedding Preserving Community Information"*
//! (AnECI). This facade crate re-exports the whole workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`linalg`] | dense / CSR sparse matrices, multi-threaded kernels, seeded RNG |
//! | [`autograd`] | tape-based reverse-mode autodiff + optimizers |
//! | [`graph`] | attributed graphs, high-order proximity, SBM benchmark generators |
//! | [`core`] | the AnECI model, AnECI+ denoising, anomaly & defense scores |
//! | [`baselines`] | DeepWalk, LINE, GAE/VGAE, DGI, GCN, Dominant, spectral, Louvain |
//! | [`attacks`] | random / FGA / NETTACK-style attacks, outlier seeding |
//! | [`eval`] | metrics, logistic regression, k-means++, isolation forest, t-SNE |
//! | [`serve`] | `.aneci` checkpoints, exact + HNSW ANN queries, JSONL engine |
//!
//! ## Quickstart
//!
//! ```
//! use aneci::core::{AneciConfig, train_aneci};
//! use aneci::graph::karate_club;
//!
//! let graph = karate_club();
//! let config = AneciConfig::for_community_detection(2, 0);
//! let (model, _report) = train_aneci(&graph, &config);
//! let communities = model.communities();
//! assert_eq!(communities.len(), 34);
//! ```

pub use aneci_attacks as attacks;
pub use aneci_autograd as autograd;
pub use aneci_baselines as baselines;
pub use aneci_core as core;
pub use aneci_eval as eval;
pub use aneci_graph as graph;
pub use aneci_linalg as linalg;
pub use aneci_serve as serve;
