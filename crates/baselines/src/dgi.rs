//! Deep Graph Infomax (Veličković et al. 2019).
//!
//! Maximizes mutual information between patch representations and a global
//! summary: a GCN encoder produces `H` from the true features and `H̃` from
//! row-shuffled (corrupted) features; the readout `s = σ(mean(H))` scores
//! each node through the bilinear discriminator `D(h, s) = hᵀ W s`, trained
//! with BCE (real = 1, corrupted = 0).

use aneci_autograd::train::{TrainError, Trainer};
use aneci_autograd::{Adam, ParamSet, Tape, Var};
use aneci_graph::AttributedGraph;
use aneci_linalg::rng::{derive_seed, seeded_rng, shuffle, xavier_uniform};
use aneci_linalg::{CsrMatrix, DenseMatrix};
use aneci_obs::span;
use std::sync::Arc;

/// DGI hyperparameters.
#[derive(Clone, Debug)]
pub struct DgiConfig {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DgiConfig {
    fn default() -> Self {
        Self {
            dim: 16,
            epochs: 150,
            lr: 0.01,
            seed: 0,
        }
    }
}

/// A trained DGI model.
pub struct Dgi {
    embedding: DenseMatrix,
    /// Per-epoch loss.
    pub losses: Vec<f64>,
}

impl Dgi {
    /// Trains DGI on the graph (unsupervised). Panics on divergence;
    /// [`Dgi::try_fit`] is the non-panicking variant.
    pub fn fit(graph: &AttributedGraph, config: &DgiConfig) -> Self {
        Self::try_fit(graph, config).expect("DGI training diverged")
    }

    /// Trains DGI on the graph, surfacing [`TrainError::Diverged`] when the
    /// loss goes non-finite.
    pub fn try_fit(graph: &AttributedGraph, config: &DgiConfig) -> Result<Self, TrainError> {
        let n = graph.num_nodes();
        let norm_adj = Arc::new(graph.norm_adjacency());
        let features = graph.features().clone();
        let mut rng = seeded_rng(derive_seed(config.seed, 0xD61));

        let mut params = ParamSet::new();
        params.register(
            "w_enc",
            xavier_uniform(features.cols(), config.dim, &mut rng),
        );
        params.register("w_disc", xavier_uniform(config.dim, config.dim, &mut rng));

        let mut opt = Adam::new(config.lr);

        let encode = |tape: &mut Tape, w: Var, x: &DenseMatrix, s: &Arc<CsrMatrix>| -> Var {
            let xv = tape.constant(x.clone());
            let xw = tape.matmul(xv, w);
            let h = tape.spmm(s, xw);
            // PReLU in the original; LeakyReLU is close enough and matches
            // the rest of the codebase.
            tape.leaky_relu(h, 0.01)
        };

        let mut step = |tape: &mut Tape, w: &[Var], _epoch: usize| -> Var {
            // Corruption: shuffle feature rows.
            let mut perm: Vec<usize> = (0..n).collect();
            shuffle(&mut perm, &mut rng);
            let corrupted = features.select_rows(&perm);

            let (h_real, h_fake) = {
                let _s = span("encode");
                (
                    encode(tape, w[0], &features, &norm_adj),
                    encode(tape, w[0], &corrupted, &norm_adj),
                )
            };

            let _s = span("loss");
            // Readout: s = sigmoid(column means of H_real), a 1×d row.
            let ones_over_n = tape.constant(DenseMatrix::filled(1, n, 1.0 / n as f64));
            let mean_row = tape.matmul(ones_over_n, h_real);
            let summary = tape.sigmoid(mean_row); // 1×d

            // Discriminator scores: H W sᵀ → N×1 logits.
            let ws = {
                let st = tape.transpose(summary); // d×1
                tape.matmul(w[1], st) // d×1
            };
            let real_logits = tape.matmul(h_real, ws); // N×1
            let fake_logits = tape.matmul(h_fake, ws); // N×1

            // BCE: -mean[log σ(real)] - mean[log σ(-fake)], via the stable
            // softplus identity  -log σ(x) = softplus(-x) = log(1+e^-x),
            // composed from primitives: softplus(x) = x·σ(x) is wrong, so
            // use  BCE = mean( log(1+exp(-real)) + log(1+exp(fake)) )
            // implemented with sigmoid+sum through the pair trick:
            //   d/dx log(1+e^-x) = σ(x) − 1,  d/dx log(1+e^x) = σ(x)
            // The tape lacks a log op; instead score with the squared-error
            // surrogate used by several reimplementations:
            //   loss = mean( (σ(real) − 1)² + σ(fake)² )
            let sig_real = tape.sigmoid(real_logits);
            let sig_fake = tape.sigmoid(fake_logits);
            let ones = tape.constant(DenseMatrix::filled(n, 1, 1.0));
            let real_err = tape.sub(sig_real, ones);
            let real_sq = tape.hadamard(real_err, real_err);
            let fake_sq = tape.hadamard(sig_fake, sig_fake);
            let sum_r = tape.mean_all(real_sq);
            let sum_f = tape.mean_all(fake_sq);
            tape.add(sum_r, sum_f)
        };
        let run = Trainer::new(config.epochs).observe_as("train.dgi").run(
            &mut params,
            &mut opt,
            &mut step,
        )?;
        let losses = run.losses;

        // Final embedding from the trained encoder.
        let embedding = {
            let mut tape = Tape::new();
            let w = params.leaf_all(&mut tape);
            let h = encode(&mut tape, w[0], &features, &norm_adj);
            tape.value(h).clone()
        };
        Ok(Self { embedding, losses })
    }

    /// The learned embedding `H`.
    pub fn embedding(&self) -> &DenseMatrix {
        &self.embedding
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aneci_graph::{generate_sbm, karate_club, SbmConfig};

    #[test]
    fn loss_decreases() {
        let g = karate_club();
        let model = Dgi::fit(
            &g,
            &DgiConfig {
                epochs: 80,
                dim: 8,
                ..Default::default()
            },
        );
        assert!(model.losses.last().unwrap() < &model.losses[0]);
        assert!(model.embedding().all_finite());
    }

    #[test]
    fn embedding_is_class_informative_on_sbm() {
        let mut sbm = SbmConfig::small();
        sbm.num_nodes = 200;
        sbm.num_classes = 2;
        sbm.target_edges = 800;
        sbm.homophily = 0.9;
        let g = generate_sbm(&sbm, 5);
        let model = Dgi::fit(
            &g,
            &DgiConfig {
                epochs: 100,
                dim: 8,
                seed: 5,
                ..Default::default()
            },
        );
        let z = model.embedding();
        let labels = g.labels.as_ref().unwrap();
        // Nearest-centroid accuracy must beat chance comfortably.
        let mut centroids = vec![vec![0.0; 8]; 2];
        let mut counts = [0usize; 2];
        for i in 0..200 {
            counts[labels[i]] += 1;
            for (c, &v) in centroids[labels[i]].iter_mut().zip(z.row(i)) {
                *c += v;
            }
        }
        for (c, n) in centroids.iter_mut().zip(counts) {
            for v in c.iter_mut() {
                *v /= n as f64;
            }
        }
        let dist = |a: &[f64], b: &[f64]| -> f64 {
            a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
        };
        let correct = (0..200)
            .filter(|&i| {
                let d0 = dist(z.row(i), &centroids[0]);
                let d1 = dist(z.row(i), &centroids[1]);
                usize::from(d1 < d0) == labels[i]
            })
            .count();
        let acc = correct as f64 / 200.0;
        assert!(acc > 0.8, "nearest-centroid accuracy {acc}");
    }

    #[test]
    fn deterministic_in_seed() {
        let g = karate_club();
        let cfg = DgiConfig {
            epochs: 20,
            dim: 4,
            seed: 9,
            ..Default::default()
        };
        assert_eq!(
            Dgi::fit(&g, &cfg).embedding(),
            Dgi::fit(&g, &cfg).embedding()
        );
    }
}
