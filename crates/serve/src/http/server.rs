//! The server runtime: acceptor thread, bounded connection queue, worker
//! threads, routing, and graceful shutdown. See the module docs in
//! [`crate::http`] for the threading and backpressure model.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use aneci_core::AneciError;
use aneci_linalg::pool;

use crate::engine::{ErrorCode, QueryEngine, Response};
use crate::http::parse::{
    read_request, write_response, write_response_with_headers, ParseError, ParseLimits, Request,
};
use crate::snapshot::SnapshotUpdate;

/// Server construction parameters.
#[derive(Clone, Debug)]
pub struct HttpConfig {
    /// Worker threads handling connections. Defaults to the machine's core
    /// count (the `aneci-linalg::pool` sizing convention,
    /// [`pool::hardware_parallelism`]), at least 2.
    pub workers: usize,
    /// Accepted connections waiting for a worker. When full, new
    /// connections are answered `503` immediately and closed (load
    /// shedding) instead of growing the queue unboundedly.
    pub queue_capacity: usize,
    /// Serve multiple requests per connection.
    pub keep_alive: bool,
    /// How long a kept-alive connection may sit idle between requests, and
    /// the per-read stall cap inside a request.
    pub idle_timeout: Duration,
    /// Request-line + header byte budget per request.
    pub max_header_bytes: usize,
    /// Body byte budget per request.
    pub max_body_bytes: usize,
    /// Expose the test-only `POST /v1/admin/attack` route, which overwrites
    /// anomaly scores via [`QueryEngine::inject_anomalies`] so operators can
    /// rehearse poisoned-neighborhood detection end to end. Off by default;
    /// while disabled the path is indistinguishable from any other 404.
    pub admin_attack: bool,
}

impl Default for HttpConfig {
    fn default() -> Self {
        let workers = pool::hardware_parallelism().clamp(2, 32);
        Self {
            workers,
            queue_capacity: workers * 4,
            keep_alive: true,
            idle_timeout: Duration::from_secs(5),
            max_header_bytes: 8 * 1024,
            max_body_bytes: 1024 * 1024,
            admin_attack: false,
        }
    }
}

impl HttpConfig {
    /// Starts a validating builder from the defaults.
    pub fn builder() -> HttpConfigBuilder {
        HttpConfigBuilder::default()
    }

    /// Checks internal consistency; [`HttpConfigBuilder::build`] and
    /// [`HttpServer::start`] both call this.
    pub fn validate(&self) -> Result<(), AneciError> {
        let bad = |msg: &str| Err(AneciError::Config(msg.into()));
        if self.workers == 0 {
            return bad("http: workers must be at least 1");
        }
        if self.queue_capacity == 0 {
            return bad("http: queue_capacity must be at least 1");
        }
        if self.idle_timeout.is_zero() {
            return bad("http: idle_timeout must be positive");
        }
        if self.max_header_bytes < 256 {
            return bad("http: max_header_bytes must be at least 256 (a request line alone can approach that)");
        }
        if self.max_body_bytes == 0 {
            return bad("http: max_body_bytes must be positive");
        }
        Ok(())
    }
}

/// Validating builder for [`HttpConfig`]. Fluent setters, and a [`build`]
/// that returns a typed [`AneciError::Config`] instead of letting a
/// nonsensical value (zero workers, zero-byte header budget) surface later
/// as a hung or instantly-shed connection.
///
/// ```
/// use aneci_serve::http::HttpConfig;
///
/// let config = HttpConfig::builder()
///     .workers(4)
///     .queue_capacity(64)
///     .keep_alive(true)
///     .build()
///     .unwrap();
/// assert_eq!(config.workers, 4);
/// assert!(HttpConfig::builder().workers(0).build().is_err());
/// ```
///
/// [`build`]: HttpConfigBuilder::build
#[derive(Clone, Debug, Default)]
pub struct HttpConfigBuilder {
    config: HttpConfig,
}

impl HttpConfigBuilder {
    /// Worker threads handling connections.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Accepted-connection queue depth before load shedding.
    pub fn queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.config.queue_capacity = queue_capacity;
        self
    }

    /// Serve multiple requests per connection.
    pub fn keep_alive(mut self, keep_alive: bool) -> Self {
        self.config.keep_alive = keep_alive;
        self
    }

    /// Idle cap between requests and per-read stall cap within one.
    pub fn idle_timeout(mut self, idle_timeout: Duration) -> Self {
        self.config.idle_timeout = idle_timeout;
        self
    }

    /// Request-line + header byte budget per request.
    pub fn max_header_bytes(mut self, max_header_bytes: usize) -> Self {
        self.config.max_header_bytes = max_header_bytes;
        self
    }

    /// Body byte budget per request.
    pub fn max_body_bytes(mut self, max_body_bytes: usize) -> Self {
        self.config.max_body_bytes = max_body_bytes;
        self
    }

    /// Expose the test-only `POST /v1/admin/attack` anomaly-injection route.
    pub fn admin_attack(mut self, admin_attack: bool) -> Self {
        self.config.admin_attack = admin_attack;
        self
    }

    /// Validates and returns the finished config.
    pub fn build(self) -> Result<HttpConfig, AneciError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// How often an idle-waiting worker wakes to re-check the shutdown flag.
const IDLE_POLL_TICK: Duration = Duration::from_millis(50);

/// Cached registry handles for the per-request hot path.
struct HttpMetrics {
    connections: aneci_obs::Counter,
    requests: aneci_obs::Counter,
    request_ns: aneci_obs::Histogram,
    keepalive_reused: aneci_obs::Counter,
    shed: aneci_obs::Counter,
    batch_queries: aneci_obs::Counter,
    status_2xx: aneci_obs::Counter,
    status_3xx: aneci_obs::Counter,
    status_4xx: aneci_obs::Counter,
    status_5xx: aneci_obs::Counter,
    route_healthz: aneci_obs::Counter,
    route_metrics: aneci_obs::Counter,
    route_query: aneci_obs::Counter,
    route_query_batch: aneci_obs::Counter,
    route_reindex: aneci_obs::Counter,
    route_attack: aneci_obs::Counter,
    route_shutdown: aneci_obs::Counter,
    route_unmatched: aneci_obs::Counter,
    legacy_redirects: aneci_obs::Counter,
}

impl HttpMetrics {
    fn new() -> Self {
        Self {
            connections: aneci_obs::counter("serve.http.connections"),
            requests: aneci_obs::counter("serve.http.requests"),
            request_ns: aneci_obs::histogram_time_ns("serve.http.request_ns"),
            keepalive_reused: aneci_obs::counter("serve.http.keepalive_reused"),
            shed: aneci_obs::counter("serve.http.shed"),
            batch_queries: aneci_obs::counter("serve.http.batch_queries"),
            status_2xx: aneci_obs::counter("serve.http.status.2xx"),
            status_3xx: aneci_obs::counter("serve.http.status.3xx"),
            status_4xx: aneci_obs::counter("serve.http.status.4xx"),
            status_5xx: aneci_obs::counter("serve.http.status.5xx"),
            route_healthz: aneci_obs::counter("serve.http.route.healthz"),
            route_metrics: aneci_obs::counter("serve.http.route.metrics"),
            route_query: aneci_obs::counter("serve.http.route.query"),
            route_query_batch: aneci_obs::counter("serve.http.route.query_batch"),
            route_reindex: aneci_obs::counter("serve.http.route.reindex"),
            route_attack: aneci_obs::counter("serve.http.route.attack"),
            route_shutdown: aneci_obs::counter("serve.http.route.shutdown"),
            route_unmatched: aneci_obs::counter("serve.http.route.unmatched"),
            legacy_redirects: aneci_obs::counter("serve.http.legacy_redirects"),
        }
    }

    fn record_status(&self, status: u16) {
        match status {
            200..=299 => self.status_2xx.inc(),
            300..=399 => self.status_3xx.inc(),
            400..=499 => self.status_4xx.inc(),
            _ => self.status_5xx.inc(),
        }
    }
}

/// State shared by the acceptor, the workers, and the handle.
struct Shared {
    engine: Arc<QueryEngine>,
    config: HttpConfig,
    addr: SocketAddr,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    shutting_down: AtomicBool,
    in_flight: AtomicUsize,
    metrics: HttpMetrics,
}

impl Shared {
    /// Flips the shutdown flag, wakes parked workers, and unblocks the
    /// acceptor with a self-connection. Idempotent.
    fn begin_shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        self.queue_cv.notify_all();
        // `accept()` has no timeout; a throwaway local connection wakes it
        // so it can observe the flag and exit.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }

    fn draining(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }
}

/// The HTTP front end over a [`QueryEngine`]. Constructed bound-and-running
/// via [`HttpServer::start`]; interact with it through the returned
/// [`ServerHandle`].
pub struct HttpServer;

impl HttpServer {
    /// Binds `addr` (use port 0 for an ephemeral port), spawns the acceptor
    /// and `config.workers` worker threads, and returns immediately.
    pub fn start(
        engine: Arc<QueryEngine>,
        config: HttpConfig,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let config = HttpConfig {
            workers: config.workers.max(1),
            queue_capacity: config.queue_capacity.max(1),
            ..config
        };
        let shared = Arc::new(Shared {
            engine,
            config,
            addr,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            metrics: HttpMetrics::new(),
        });

        let workers = (0..shared.config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("aneci-http-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("aneci-http-accept".into())
                .spawn(move || acceptor_loop(&shared, &listener))?
        };

        Ok(ServerHandle {
            shared,
            acceptor: Some(acceptor),
            workers,
        })
    }
}

/// Owner handle for a running server: the bound address, shutdown, and
/// lifecycle joins.
pub struct ServerHandle {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Requests initiated but not yet answered, right now.
    pub fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: stop accepting, serve everything already
    /// accepted (queued connections included) to completion, then join all
    /// threads. Blocks until fully drained.
    pub fn shutdown(mut self) {
        self.shared.begin_shutdown();
        self.join_threads();
    }

    /// Blocks until some other trigger (e.g. the `POST /shutdown` route)
    /// initiates shutdown, then drains exactly like [`Self::shutdown`].
    pub fn wait(mut self) {
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shared.begin_shutdown();
        self.join_threads();
    }
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Serialized typed error body (the same shape the JSONL engine emits).
fn error_body(code: ErrorCode, message: impl Into<String>) -> Vec<u8> {
    let response = Response::Error {
        code,
        error: message.into(),
    };
    serde_json::to_string(&response)
        .expect("error serialization cannot fail")
        .into_bytes()
}

fn acceptor_loop(shared: &Shared, listener: &TcpListener) {
    for conn in listener.incoming() {
        if shared.draining() {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        let mut queue = lock(&shared.queue);
        if queue.len() >= shared.config.queue_capacity {
            drop(queue);
            shed(shared, stream);
            continue;
        }
        queue.push_back(stream);
        drop(queue);
        shared.queue_cv.notify_one();
    }
}

/// Backpressure: answer `503` immediately and close, never queue.
fn shed(shared: &Shared, stream: TcpStream) {
    shared.metrics.shed.inc();
    shared.metrics.record_status(503);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let body = error_body(
        ErrorCode::Overloaded,
        format!(
            "connection queue full ({} waiting); retry later",
            shared.config.queue_capacity
        ),
    );
    let _ = write_response(&mut &stream, 503, "application/json", &body, false);
    // The request was never read; closing now would RST and could destroy
    // the 503 in flight. Drain what already arrived — with a tiny budget,
    // since this runs on the acceptor thread.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(10)));
    let mut scratch = [0u8; 4096];
    let mut drained = 0usize;
    while drained < 16 * 1024 {
        match (&stream).read(&mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let conn = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(conn) = queue.pop_front() {
                    break Some(conn);
                }
                if shared.draining() {
                    break None;
                }
                queue = shared
                    .queue_cv
                    .wait(queue)
                    .unwrap_or_else(|p| p.into_inner());
            }
        };
        match conn {
            Some(stream) => handle_connection(shared, stream),
            // Queue drained and shutdown requested: exit.
            None => return,
        }
    }
}

/// Outcome of waiting for the first byte of the next request.
enum IdleWait {
    /// Data is buffered; parse a request now.
    Ready,
    /// Clean EOF, idle timeout, or shutdown while idle: close quietly.
    Close,
}

/// Waits up to `idle_timeout` for the next request's first byte, polling in
/// short ticks so a shutdown can't be held hostage by an idle keep-alive
/// connection. `served` distinguishes a fresh connection (still owed its
/// first response even while draining) from an idle kept-alive one.
fn wait_for_request(
    shared: &Shared,
    stream: &TcpStream,
    reader: &mut BufReader<TcpStream>,
    served: usize,
) -> IdleWait {
    let deadline = Instant::now() + shared.config.idle_timeout;
    loop {
        if shared.draining() && served > 0 {
            return IdleWait::Close;
        }
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return IdleWait::Close;
        }
        if stream
            .set_read_timeout(Some(remaining.min(IDLE_POLL_TICK)))
            .is_err()
        {
            return IdleWait::Close;
        }
        match reader.fill_buf() {
            Ok([]) => return IdleWait::Close,
            Ok(_) => return IdleWait::Ready,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(_) => return IdleWait::Close,
        }
    }
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    shared.metrics.connections.inc();
    let _ = stream.set_nodelay(true);
    let mut reader = match stream.try_clone() {
        Ok(clone) => BufReader::new(clone),
        Err(_) => return,
    };
    let mut writer = &stream;
    let limits = ParseLimits {
        max_header_bytes: shared.config.max_header_bytes,
        max_body_bytes: shared.config.max_body_bytes,
    };

    let mut served = 0usize;
    loop {
        match wait_for_request(shared, &stream, &mut reader, served) {
            IdleWait::Ready => {}
            IdleWait::Close => return,
        }
        // The request has started: one generous stall cap for the rest of
        // it, and count it as in flight until the response is written.
        let _ = stream.set_read_timeout(Some(shared.config.idle_timeout));
        shared.in_flight.fetch_add(1, Ordering::SeqCst);
        let start = Instant::now();
        let done = match read_request(&mut reader, &limits) {
            Ok(request) => {
                if served > 0 {
                    shared.metrics.keepalive_reused.inc();
                }
                served += 1;
                respond(shared, &mut writer, &request, start)
            }
            Err(parse_error) => {
                answer_parse_error(shared, &mut writer, &parse_error, start);
                linger_drain(&stream, &mut reader);
                true
            }
        };
        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        if done {
            return;
        }
    }
}

/// Briefly drains whatever the client already sent before the connection is
/// closed. After a parse error the request was abandoned mid-read; closing
/// with unread bytes in the receive buffer makes the kernel send an RST,
/// which can destroy the error response before the client reads it. A
/// bounded drain (256 KiB / 250 ms) turns that into a clean FIN.
fn linger_drain(stream: &TcpStream, reader: &mut BufReader<TcpStream>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut scratch = [0u8; 4096];
    let mut drained = 0usize;
    while drained < 256 * 1024 {
        match reader.read(&mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
}

/// Answers a parse failure with its typed 4xx/5xx, when there is an answer
/// to give. Always closes the connection: after a framing error the stream
/// position is unreliable.
fn answer_parse_error(
    shared: &Shared,
    writer: &mut impl Write,
    parse_error: &ParseError,
    start: Instant,
) {
    let Some(code) = parse_error.error_code() else {
        return; // clean EOF or hard I/O failure: nothing to say
    };
    let status = code.http_status();
    shared.metrics.requests.inc();
    shared.metrics.record_status(status);
    let body = error_body(code, parse_error.message());
    let _ = write_response(writer, status, "application/json", &body, false);
    shared
        .metrics
        .request_ns
        .observe(start.elapsed().as_nanos() as f64);
}

/// One routed response. Returns `true` when the connection must close.
fn respond(shared: &Shared, writer: &mut impl Write, request: &Request, start: Instant) -> bool {
    shared.metrics.requests.inc();
    let routed = route(shared, request);
    shared.metrics.record_status(routed.status);
    let keep_alive = shared.config.keep_alive && request.wants_keep_alive() && !shared.draining();
    let extra: Vec<(&str, &str)> = routed
        .location
        .map(|target| ("location", target))
        .into_iter()
        .collect();
    let write_failed = write_response_with_headers(
        writer,
        routed.status,
        routed.content_type,
        &routed.body,
        keep_alive,
        &extra,
    )
    .is_err();
    shared
        .metrics
        .request_ns
        .observe(start.elapsed().as_nanos() as f64);
    write_failed || !keep_alive
}

/// One route handler's answer: status line, body, and (for 301s) the
/// `location` header value.
struct Routed {
    status: u16,
    content_type: &'static str,
    body: Vec<u8>,
    location: Option<&'static str>,
}

impl Routed {
    fn new(status: u16, content_type: &'static str, body: Vec<u8>) -> Self {
        Self {
            status,
            content_type,
            body,
            location: None,
        }
    }
}

/// The unversioned paths of the pre-`/v1` API and where each now lives.
/// Any method on these answers `301 Moved Permanently` with a `location`
/// header — clients learn the new path from the redirect instead of
/// silently running against a frozen legacy surface.
const LEGACY_ROUTES: [(&str, &str); 5] = [
    ("/healthz", "/v1/healthz"),
    ("/metrics", "/v1/metrics"),
    ("/query", "/v1/query"),
    ("/query_batch", "/v1/query_batch"),
    ("/shutdown", "/v1/admin/shutdown"),
];

/// Dispatches one request to its route handler.
fn route(shared: &Shared, request: &Request) -> Routed {
    const JSON: &str = "application/json";
    const NDJSON: &str = "application/x-ndjson";
    let method = request.method.as_str();
    let path = request.path();
    match (method, path) {
        ("GET", "/v1/healthz") => {
            shared.metrics.route_healthz.inc();
            let snap = shared.engine.snapshot();
            let body = format!(
                r#"{{"kind":"health","status":"{}","nodes":{},"live":{},"dim":{},"generation":{},"reindexing":{},"in_flight":{}}}"#,
                if shared.draining() {
                    "draining"
                } else {
                    "serving"
                },
                snap.store.num_nodes(),
                snap.store.num_live(),
                snap.store.dim(),
                snap.generation,
                shared.engine.reindex_in_progress(),
                shared.in_flight.load(Ordering::SeqCst),
            );
            Routed::new(200, JSON, body.into_bytes())
        }
        ("GET", "/v1/metrics") => {
            shared.metrics.route_metrics.inc();
            let snapshot = aneci_obs::global().snapshot();
            Routed::new(200, JSON, snapshot.to_json().into_bytes())
        }
        ("POST", "/v1/query") => {
            shared.metrics.route_query.inc();
            let Ok(text) = std::str::from_utf8(&request.body) else {
                let body = error_body(ErrorCode::BadRequest, "query body is not UTF-8");
                return Routed::new(400, JSON, body);
            };
            let line = text.trim();
            if line.is_empty() {
                let body = error_body(
                    ErrorCode::BadRequest,
                    "empty query body (expected one JSON query object)",
                );
                return Routed::new(400, JSON, body);
            }
            let out = shared.engine.run_line(line);
            Routed::new(query_status(&out), JSON, out.into_bytes())
        }
        ("POST", "/v1/query_batch") => {
            shared.metrics.route_query_batch.inc();
            let Ok(text) = std::str::from_utf8(&request.body) else {
                let body = error_body(ErrorCode::BadRequest, "batch body is not UTF-8");
                return Routed::new(400, JSON, body);
            };
            let lines: Vec<&str> = text.lines().collect();
            if lines.is_empty() {
                let body = error_body(
                    ErrorCode::BadRequest,
                    "empty batch body (expected one JSON query per line)",
                );
                return Routed::new(400, JSON, body);
            }
            shared.metrics.batch_queries.add(lines.len() as u64);
            // Per-line errors come back typed *in place* — alignment with
            // the request lines is never broken, exactly like the JSONL
            // path — so the batch itself is always a 200.
            let mut body = shared.engine.run_batch(&lines).join("\n");
            body.push('\n');
            Routed::new(200, NDJSON, body.into_bytes())
        }
        ("POST", "/v1/admin/reindex") => {
            shared.metrics.route_reindex.inc();
            let update: SnapshotUpdate = match serde_json::from_slice(&request.body) {
                Ok(update) => update,
                Err(e) => {
                    let body = error_body(ErrorCode::BadRequest, format!("bad reindex body: {e}"));
                    return Routed::new(400, JSON, body);
                }
            };
            // Runs synchronously on this worker thread — off the readers'
            // path by construction: queries on other workers keep answering
            // from the pinned snapshot the whole time, and only the final
            // pointer swap is observable.
            match shared.engine.apply_update(&update) {
                Ok(generation) => {
                    let body = format!(r#"{{"kind":"reindex","generation":{generation}}}"#);
                    Routed::new(200, JSON, body.into_bytes())
                }
                Err((code, message)) => {
                    Routed::new(code.http_status(), JSON, error_body(code, message))
                }
            }
        }
        ("POST", "/v1/admin/attack") if shared.config.admin_attack => {
            shared.metrics.route_attack.inc();
            #[derive(serde::Deserialize)]
            struct AttackBody {
                targets: Vec<usize>,
                score: f64,
            }
            let body: AttackBody = match serde_json::from_slice(&request.body) {
                Ok(body) => body,
                Err(e) => {
                    let body = error_body(
                        ErrorCode::BadRequest,
                        format!("bad attack body (expected {{\"targets\":[..],\"score\":s}}): {e}"),
                    );
                    return Routed::new(400, JSON, body);
                }
            };
            match shared.engine.inject_anomalies(&body.targets, body.score) {
                Ok(generation) => {
                    let out = format!(
                        r#"{{"kind":"attack","generation":{generation},"targets":{}}}"#,
                        body.targets.len()
                    );
                    Routed::new(200, JSON, out.into_bytes())
                }
                Err((code, message)) => {
                    Routed::new(code.http_status(), JSON, error_body(code, message))
                }
            }
        }
        (_, "/v1/admin/attack") if shared.config.admin_attack => {
            shared.metrics.route_unmatched.inc();
            let body = error_body(
                ErrorCode::MethodNotAllowed,
                format!("{method} is not supported on {path}"),
            );
            Routed::new(405, JSON, body)
        }
        ("POST", "/v1/admin/shutdown") => {
            shared.metrics.route_shutdown.inc();
            shared.begin_shutdown();
            let body = br#"{"kind":"shutdown","status":"draining"}"#.to_vec();
            Routed::new(200, JSON, body)
        }
        (
            _,
            "/v1/healthz" | "/v1/metrics" | "/v1/query" | "/v1/query_batch" | "/v1/admin/reindex"
            | "/v1/admin/shutdown",
        ) => {
            shared.metrics.route_unmatched.inc();
            let body = error_body(
                ErrorCode::MethodNotAllowed,
                format!("{method} is not supported on {path}"),
            );
            Routed::new(405, JSON, body)
        }
        _ => {
            if let Some(&(_, target)) = LEGACY_ROUTES.iter().find(|&&(old, _)| old == path) {
                shared.metrics.legacy_redirects.inc();
                let body = format!(
                    r#"{{"kind":"moved","location":"{target}","error":"the unversioned API moved under /v1"}}"#
                );
                let mut routed = Routed::new(301, JSON, body.into_bytes());
                routed.location = Some(target);
                return routed;
            }
            shared.metrics.route_unmatched.inc();
            let body = error_body(
                ErrorCode::NotFound,
                format!("no route {method} {path} (have GET /v1/healthz, GET /v1/metrics, POST /v1/query, POST /v1/query_batch, POST /v1/admin/reindex, POST /v1/admin/shutdown)"),
            );
            Routed::new(404, JSON, body)
        }
    }
}

/// Status for a single-query response: typed engine errors surface as their
/// HTTP status, everything else is a 200. The error path re-parses the
/// (rare) error line; successes are matched on the serialized prefix alone
/// so the hot path never deserializes.
fn query_status(response_line: &str) -> u16 {
    if !response_line.starts_with(r#"{"kind":"error""#) {
        return 200;
    }
    match serde_json::from_str::<Response>(response_line) {
        Ok(response) => response.error_code().map_or(500, ErrorCode::http_status),
        Err(_) => 500,
    }
}
