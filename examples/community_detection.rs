//! Community detection on a planted-partition network: AnECI's softmax
//! membership vs Louvain and k-means over baseline embeddings (the Fig. 7
//! protocol), scored by modularity and NMI against the planted truth.
//! Also demonstrates graph I/O: the generated network is saved to and
//! reloaded from JSON before use.
//!
//! ```sh
//! cargo run --release --example community_detection
//! ```

use aneci::baselines::{deepwalk, louvain, DeepWalkConfig};
use aneci::graph::io::{load_json, save_json};
use aneci::prelude::*;

fn main() {
    let seed = 3;
    let config = SbmConfig {
        num_nodes: 800,
        num_classes: 5,
        target_edges: 4000,
        homophily: 0.85,
        degree_exponent: Some(2.5),
        feature_dim: 200,
        features: FeatureKind::BagOfWords {
            p_signal: 0.2,
            p_noise: 0.01,
        },
    };
    let generated = generate_sbm(&config, seed);

    // Round-trip through JSON (checkpointing a generated benchmark).
    let path = std::env::temp_dir().join("aneci_example_sbm.json");
    save_json(&generated, &path).expect("save graph");
    let graph = load_json(&path).expect("load graph");
    println!(
        "generated + reloaded SBM: {} nodes, {} edges, {} planted communities",
        graph.num_nodes(),
        graph.num_edges(),
        graph.num_classes()
    );
    let truth = graph.labels.clone().unwrap();
    let k = graph.num_classes();

    println!("\n{:<22}{:>12}{:>8}", "method", "modularity", "NMI");

    // Louvain: direct modularity maximization.
    let lv = louvain(&graph, seed);
    println!(
        "{:<22}{:>12.3}{:>8.3}",
        "Louvain",
        modularity(&graph, &lv),
        nmi(&lv, &truth)
    );

    // DeepWalk + k-means++.
    let z = deepwalk(
        &graph,
        &DeepWalkConfig {
            dim: 16,
            seed,
            ..Default::default()
        },
    );
    let km = kmeans_best_of(&z, k, 100, 5, seed).assignments;
    println!(
        "{:<22}{:>12.3}{:>8.3}",
        "DeepWalk + k-means++",
        modularity(&graph, &km),
        nmi(&km, &truth)
    );

    // AnECI: the membership matrix is the clustering.
    let (model, report) = train_aneci(&graph, &AneciConfig::for_community_detection(k, seed))
        .expect("training failed");
    let communities = model.communities();
    println!(
        "{:<22}{:>12.3}{:>8.3}",
        "AnECI (argmax P)",
        modularity(&graph, &communities),
        nmi(&communities, &truth)
    );
    println!(
        "\nAnECI generalized modularity Q̃ rose {:.4} → {:.4} over {} epochs",
        report.modularity.first().unwrap(),
        report.modularity.last().unwrap(),
        report.epochs_run
    );
    std::fs::remove_file(path).ok();
}
