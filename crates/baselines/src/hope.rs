//! HOPE-style high-order proximity embedding (Ou et al. 2016, simplified).
//!
//! Matrix-factorization lineage: embed nodes by a low-rank spectral
//! factorization of the **high-order proximity matrix** itself — the same
//! `Ã` AnECI's objective is built on, which makes this the natural
//! factorization ablation ("what if we just factorize `Ã` instead of
//! learning a GCN against it?"). We factorize the *symmetrized* proximity
//! `(Ã + Ãᵀ)/2` with the crate's orthogonal-iteration eigensolver and scale
//! the eigenvectors by `√|λ|`, the symmetric analogue of HOPE's
//! JDGSVD-based `U Σ^{1/2}`.

use aneci_graph::{AttributedGraph, HighOrder, ProximityConfig};
use aneci_linalg::DenseMatrix;

use crate::spectral::top_eigenvectors;

/// HOPE hyperparameters.
#[derive(Clone, Debug)]
pub struct HopeConfig {
    /// Embedding dimensionality (rank of the factorization).
    pub dim: usize,
    /// High-order proximity construction.
    pub proximity: ProximityConfig,
    /// Subspace-iteration sweeps for the eigensolver.
    pub iterations: usize,
    /// RNG seed (eigensolver start).
    pub seed: u64,
}

impl Default for HopeConfig {
    fn default() -> Self {
        Self {
            dim: 16,
            proximity: ProximityConfig::uniform(2),
            iterations: 100,
            seed: 0,
        }
    }
}

/// Computes the HOPE-style embedding `U |Λ|^{1/2}` of the symmetrized
/// high-order proximity.
pub fn hope_embedding(graph: &AttributedGraph, config: &HopeConfig) -> DenseMatrix {
    let ho = HighOrder::build(graph.adjacency(), &config.proximity);
    // Symmetrize (row normalization breaks symmetry).
    let sym = {
        let t = ho.a_tilde.transpose();
        let mut s = ho.a_tilde.add_scaled(&t, 1.0);
        s.scale_inplace(0.5);
        s
    };
    let k = config.dim.min(graph.num_nodes());
    let (values, vectors) = top_eigenvectors(&sym, k, config.iterations, config.seed);
    let mut embedding = vectors;
    for (c, &lambda) in values.iter().enumerate() {
        let scale = lambda.abs().sqrt();
        for r in 0..embedding.rows() {
            let v = embedding.get(r, c) * scale;
            embedding.set(r, c, v);
        }
    }
    embedding
}

#[cfg(test)]
mod tests {
    use super::*;
    use aneci_graph::karate_club;

    #[test]
    fn embedding_shape_and_finiteness() {
        let g = karate_club();
        let z = hope_embedding(
            &g,
            &HopeConfig {
                dim: 8,
                ..Default::default()
            },
        );
        assert_eq!(z.shape(), (34, 8));
        assert!(z.all_finite());
    }

    #[test]
    fn reconstructs_proximity_better_than_random() {
        // Low-rank Z Zᵀ should correlate with the symmetrized Ã far better
        // than a random embedding of the same size.
        let g = karate_club();
        let cfg = HopeConfig {
            dim: 8,
            iterations: 200,
            seed: 1,
            ..Default::default()
        };
        let z = hope_embedding(&g, &cfg);
        let ho = HighOrder::build(g.adjacency(), &cfg.proximity);
        let target = {
            let t = ho.a_tilde.transpose();
            let mut s = ho.a_tilde.add_scaled(&t, 1.0);
            s.scale_inplace(0.5);
            s.to_dense()
        };
        let recon_err = |emb: &DenseMatrix| -> f64 {
            let zt = aneci_linalg::par::matmul(emb, &emb.transpose());
            zt.sub(&target).frobenius_norm()
        };
        let mut rng = aneci_linalg::rng::seeded_rng(2);
        let random = aneci_linalg::rng::gaussian_matrix(34, 8, 0.1, &mut rng);
        assert!(
            recon_err(&z) < 0.8 * recon_err(&random),
            "HOPE {:.3} vs random {:.3}",
            recon_err(&z),
            recon_err(&random)
        );
    }

    #[test]
    fn separates_karate_factions() {
        let g = karate_club();
        let z = hope_embedding(
            &g,
            &HopeConfig {
                dim: 4,
                iterations: 200,
                seed: 3,
                ..Default::default()
            },
        );
        let labels = g.labels.as_ref().unwrap();
        // Nearest-centroid check.
        let mut centroids = vec![vec![0.0; 4]; 2];
        let mut counts = [0usize; 2];
        for i in 0..34 {
            counts[labels[i]] += 1;
            for (c, &v) in centroids[labels[i]].iter_mut().zip(z.row(i)) {
                *c += v;
            }
        }
        for (c, n) in centroids.iter_mut().zip(counts) {
            for v in c.iter_mut() {
                *v /= n as f64;
            }
        }
        let dist = |a: &[f64], b: &[f64]| {
            a.iter()
                .zip(b)
                .map(|(&x, &y)| (x - y) * (x - y))
                .sum::<f64>()
        };
        let correct = (0..34)
            .filter(|&i| {
                let d0 = dist(z.row(i), &centroids[0]);
                let d1 = dist(z.row(i), &centroids[1]);
                usize::from(d1 < d0) == labels[i]
            })
            .count();
        assert!(correct >= 28, "nearest-centroid hits {correct}/34");
    }

    #[test]
    fn deterministic_in_seed() {
        let g = karate_club();
        let cfg = HopeConfig {
            dim: 4,
            seed: 7,
            ..Default::default()
        };
        assert_eq!(hope_embedding(&g, &cfg), hope_embedding(&g, &cfg));
    }
}
