//! Regenerates Table V (running-time comparison).
fn main() {
    aneci_bench::exp::table5::run(&aneci_bench::ExpArgs::parse());
}
