//! GAE and VGAE (Kipf & Welling 2016) — the paper's closest unsupervised
//! competitors.
//!
//! GAE: GCN encoder → `Z`; inner-product decoder `Â = sigmoid(Z Zᵀ)`
//! reconstructing the self-looped adjacency under class-weighted BCE (the
//! reference implementation's `pos_weight = (N² − nnz)/nnz`).
//!
//! VGAE: adds the variational heads `μ, log σ²` with the reparameterization
//! trick and a KL regularizer toward the unit Gaussian.

use aneci_autograd::train::{TrainError, Trainer};
use aneci_autograd::{Adam, BcePair, ParamSet, Tape, Var};
use aneci_graph::AttributedGraph;
use aneci_linalg::rng::xavier_uniform;
use aneci_linalg::rng::{derive_seed, gaussian_matrix, seeded_rng};
use aneci_linalg::{CsrMatrix, DenseMatrix};
use aneci_obs::span;
use rand::Rng;
use std::sync::Arc;

/// Shared GAE/VGAE hyperparameters.
#[derive(Clone, Debug)]
pub struct GaeConfig {
    /// Hidden width of the first GCN layer.
    pub hidden_dim: usize,
    /// Embedding dimensionality.
    pub embed_dim: usize,
    /// Learning rate.
    pub lr: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Node count above which the reconstruction switches from exact dense
    /// BCE to negative sampling.
    pub exact_threshold: usize,
    /// Negative pairs per positive pair in sampled mode.
    pub neg_ratio: usize,
    /// Variational mode (VGAE) instead of plain GAE.
    pub variational: bool,
    /// KL weight (VGAE only; the reference uses 1/N).
    pub kl_scale: Option<f64>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GaeConfig {
    fn default() -> Self {
        Self {
            hidden_dim: 32,
            embed_dim: 16,
            lr: 0.01,
            epochs: 200,
            exact_threshold: 1800,
            neg_ratio: 1,
            variational: false,
            kl_scale: None,
            seed: 0,
        }
    }
}

/// A trained (V)GAE model.
pub struct Gae {
    params: ParamSet,
    norm_adj: Arc<CsrMatrix>,
    features: DenseMatrix,
    config: GaeConfig,
    /// Loss per epoch.
    pub losses: Vec<f64>,
    embedding: DenseMatrix,
}

impl Gae {
    /// Trains on the graph (unsupervised). Panics on divergence;
    /// [`Gae::try_fit`] is the non-panicking variant.
    pub fn fit(graph: &AttributedGraph, config: &GaeConfig) -> Self {
        Self::try_fit(graph, config).expect("GAE training diverged")
    }

    /// Trains on the graph, surfacing [`TrainError::Diverged`] when the
    /// loss goes non-finite instead of producing garbage embeddings.
    pub fn try_fit(graph: &AttributedGraph, config: &GaeConfig) -> Result<Self, TrainError> {
        let n = graph.num_nodes();
        let norm_adj = Arc::new(graph.norm_adjacency());
        let features = graph.features().clone();
        let target_sparse = graph.adjacency().add_identity();
        // Binarize the self-looped adjacency as the reconstruction target.
        let positives: Arc<[BcePair]> = target_sparse
            .iter()
            .map(|(i, j, _)| (i as u32, j as u32, 1.0))
            .collect::<Vec<_>>()
            .into();
        let exact = n <= config.exact_threshold;
        let dense_target = exact.then(|| {
            Arc::new(DenseMatrix::from_fn(n, n, |i, j| {
                if target_sparse.get(i, j) != 0.0 {
                    1.0
                } else {
                    0.0
                }
            }))
        });
        let nnz = target_sparse.nnz() as f64;
        let pos_weight = ((n * n) as f64 - nnz) / nnz;

        let mut rng = seeded_rng(derive_seed(config.seed, 0x6AE));
        let mut params = ParamSet::new();
        params.register(
            "w1",
            xavier_uniform(features.cols(), config.hidden_dim, &mut rng),
        );
        params.register(
            "w_mu",
            xavier_uniform(config.hidden_dim, config.embed_dim, &mut rng),
        );
        if config.variational {
            params.register(
                "w_logvar",
                xavier_uniform(config.hidden_dim, config.embed_dim, &mut rng),
            );
        }

        let mut opt = Adam::new(config.lr);
        // Default KL weight: the reconstruction term here is a *mean* over
        // N² pairs, so the KL sum must be scaled down to 1/N² as well to
        // keep the same relative weighting as the reference implementation
        // (which pairs a summed reconstruction with KL/N).
        let kl_scale = config.kl_scale.unwrap_or(1.0 / (n as f64 * n as f64));

        let mut step = |tape: &mut Tape, w: &[Var], _epoch: usize| -> Var {
            let (z, kl) = {
                let _s = span("encode");
                let x = tape.constant(features.clone());
                let xw = tape.matmul(x, w[0]);
                let h1 = tape.spmm(&norm_adj, xw);
                let a1 = tape.relu(h1);
                let mu = {
                    let hw = tape.matmul(a1, w[1]);
                    tape.spmm(&norm_adj, hw)
                };
                if config.variational {
                    let logvar = {
                        let hw = tape.matmul(a1, w[2]);
                        tape.spmm(&norm_adj, hw)
                    };
                    // Reparameterize: z = mu + exp(logvar/2) ⊙ ε.
                    let eps = tape.constant(gaussian_matrix(n, config.embed_dim, 1.0, &mut rng));
                    let half_logvar = tape.scale(logvar, 0.5);
                    let std = tape.exp(half_logvar);
                    let noise = tape.hadamard(std, eps);
                    let z = tape.add(mu, noise);
                    // KL = -0.5 Σ (1 + logvar − mu² − exp(logvar)) / N
                    let mu_sq = tape.hadamard(mu, mu);
                    let exp_logvar = tape.exp(logvar);
                    let ones = tape.constant(DenseMatrix::filled(n, config.embed_dim, 1.0));
                    let s1 = tape.add(ones, logvar);
                    let s2 = tape.sub(s1, mu_sq);
                    let s3 = tape.sub(s2, exp_logvar);
                    let ksum = tape.sum(s3);
                    let kl = tape.scale(ksum, -0.5 * kl_scale);
                    (z, Some(kl))
                } else {
                    (mu, None)
                }
            };

            let _s = span("loss");
            let recon = match &dense_target {
                Some(target) => {
                    let l = tape.dense_recon_bce(z, target, pos_weight);
                    tape.scale(l, 1.0 / (n * n) as f64)
                }
                None => {
                    let mut pairs: Vec<BcePair> = positives.to_vec();
                    let num_neg = pairs.len() * config.neg_ratio;
                    for _ in 0..num_neg {
                        let i = rng.gen_range(0..n as u32);
                        let j = rng.gen_range(0..n as u32);
                        if target_sparse.get(i as usize, j as usize) == 0.0 {
                            pairs.push((i, j, 0.0));
                        }
                    }
                    let count = pairs.len() as f64;
                    let pairs: Arc<[BcePair]> = pairs.into();
                    let l = tape.pair_bce(z, &pairs);
                    tape.scale(l, 1.0 / count)
                }
            };
            match kl {
                Some(k) => tape.add(recon, k),
                None => recon,
            }
        };
        let prefix = if config.variational {
            "train.vgae"
        } else {
            "train.gae"
        };
        let run =
            Trainer::new(config.epochs)
                .observe_as(prefix)
                .run(&mut params, &mut opt, &mut step)?;
        let losses = run.losses;

        // Final embedding = μ (the deterministic encoder output).
        let embedding = {
            let mut tape = Tape::new();
            let w = params.leaf_all(&mut tape);
            let x = tape.constant(features.clone());
            let xw = tape.matmul(x, w[0]);
            let h1 = tape.spmm(&norm_adj, xw);
            let a1 = tape.relu(h1);
            let hw = tape.matmul(a1, w[1]);
            let mu = tape.spmm(&norm_adj, hw);
            tape.value(mu).clone()
        };

        Ok(Self {
            params,
            norm_adj,
            features,
            config: config.clone(),
            losses,
            embedding,
        })
    }

    /// The learned embedding `Z` (the mean head for VGAE).
    pub fn embedding(&self) -> &DenseMatrix {
        &self.embedding
    }

    /// Reconstruction probability of an edge under the decoder.
    pub fn edge_probability(&self, u: usize, v: usize) -> f64 {
        let s: f64 = self
            .embedding
            .row(u)
            .iter()
            .zip(self.embedding.row(v))
            .map(|(&a, &b)| a * b)
            .sum();
        1.0 / (1.0 + (-s).exp())
    }

    /// The configuration used.
    pub fn config(&self) -> &GaeConfig {
        &self.config
    }

    /// Parameter count (runtime table).
    pub fn num_parameters(&self) -> usize {
        self.params.num_scalars()
    }

    /// Access to the propagation operator (attack code reuses it).
    pub fn norm_adj(&self) -> &Arc<CsrMatrix> {
        &self.norm_adj
    }

    /// Node features the model was fitted on.
    pub fn features(&self) -> &DenseMatrix {
        &self.features
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aneci_graph::{generate_sbm, karate_club, SbmConfig};

    #[test]
    fn gae_loss_decreases_on_karate() {
        let g = karate_club();
        let cfg = GaeConfig {
            epochs: 80,
            embed_dim: 8,
            ..Default::default()
        };
        let model = Gae::fit(&g, &cfg);
        assert!(model.losses.last().unwrap() < &model.losses[0]);
        assert!(model.embedding().all_finite());
        assert_eq!(model.embedding().shape(), (34, 8));
    }

    #[test]
    fn gae_reconstructs_edges_better_than_nonedges() {
        let g = karate_club();
        let cfg = GaeConfig {
            epochs: 150,
            embed_dim: 8,
            seed: 1,
            ..Default::default()
        };
        let model = Gae::fit(&g, &cfg);
        let mut edge_p = 0.0;
        let edges = g.edge_list();
        for &(u, v) in &edges {
            edge_p += model.edge_probability(u, v);
        }
        edge_p /= edges.len() as f64;
        let mut non_p = 0.0;
        let mut count = 0;
        for u in 0..34 {
            for v in (u + 1)..34 {
                if !g.has_edge(u, v) {
                    non_p += model.edge_probability(u, v);
                    count += 1;
                }
            }
        }
        non_p /= count as f64;
        assert!(
            edge_p > non_p + 0.1,
            "edges {edge_p:.3} vs non-edges {non_p:.3}"
        );
    }

    #[test]
    fn vgae_trains_and_stays_finite() {
        let g = karate_club();
        let cfg = GaeConfig {
            epochs: 60,
            variational: true,
            embed_dim: 4,
            ..Default::default()
        };
        let model = Gae::fit(&g, &cfg);
        assert!(model.losses.iter().all(|l| l.is_finite()));
        assert!(model.embedding().all_finite());
    }

    #[test]
    fn sampled_mode_on_larger_graph() {
        let mut sbm = SbmConfig::small();
        sbm.num_nodes = 250;
        let g = generate_sbm(&sbm, 3);
        let cfg = GaeConfig {
            epochs: 30,
            exact_threshold: 100,
            ..Default::default()
        };
        let model = Gae::fit(&g, &cfg);
        assert!(model.losses.last().unwrap() < &model.losses[0]);
    }

    #[test]
    fn exp_op_value_and_gradient() {
        let mut tape = Tape::new();
        let x = tape.leaf(DenseMatrix::from_rows(&[&[-4.0, -1.0, 0.0, 0.5, 3.0]]));
        let e = tape.exp(x);
        let got = tape.value(e).clone();
        for (i, &v) in [-4.0f64, -1.0, 0.0, 0.5, 3.0].iter().enumerate() {
            assert!((got.get(0, i) - v.exp()).abs() < 1e-12);
        }
        // Gradient of sum(exp(x)) is exp(x) itself.
        let loss = tape.sum(e);
        tape.backward(loss);
        let g = tape.grad(x);
        for (i, &v) in [-4.0f64, -1.0, 0.0, 0.5, 3.0].iter().enumerate() {
            assert!((g.get(0, i) - v.exp()).abs() < 1e-12);
        }
    }
}
