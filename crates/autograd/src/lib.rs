//! # aneci-autograd
//!
//! A small tape-based reverse-mode automatic-differentiation engine over
//! [`aneci_linalg::DenseMatrix`], purpose-built for the graph neural models
//! of the AnECI reproduction (GCN encoders, autoencoder decoders, the
//! generalized modularity objective) and for the gradient-based FGA attack.
//!
//! * [`tape::Tape`] / [`tape::Var`] — define-by-run computation graph;
//! * [`optim`] — `ParamSet`, SGD(+momentum), Adam, gradient clipping;
//! * [`train`] — the shared [`train::Trainer`] engine that owns the
//!   tape-rebuild/backward/step loop (stop rules, LR schedules, clipping,
//!   divergence guard, telemetry) for the core model and every baseline;
//! * [`train_batch`] — mini-batch extension: deterministic
//!   community-aware / GraphSAGE-style batch sampling
//!   ([`train_batch::BatchSampler`]) and the per-batch
//!   [`train_batch::BatchTrainStep`] loop `Trainer::run_batched`;
//! * [`gradcheck`] — central-difference verification used throughout the
//!   workspace's test suites.
//!
//! ```
//! use aneci_autograd::tape::Tape;
//! use aneci_linalg::DenseMatrix;
//!
//! let mut t = Tape::new();
//! let x = t.leaf(DenseMatrix::from_rows(&[&[1.0, -2.0]]));
//! let y = t.sigmoid(x);
//! let loss = t.sum(y);
//! t.backward(loss);
//! assert_eq!(t.grad(x).shape(), (1, 2));
//! ```

pub mod gradcheck;
pub mod optim;
pub mod tape;
pub mod train;
pub mod train_batch;

pub use gradcheck::{check_gradient, GradCheck};
pub use optim::{Adam, ParamSet, Sgd};
pub use tape::{BcePair, Tape, Var};
pub use train::{
    EpochStats, LrSchedule, Objective, Optimizer, OptimizerKind, StepOutput, StopRule, TrainError,
    TrainRun, TrainStep, Trainer,
};
pub use train_batch::{BatchSampler, BatchStrategy, BatchTrainStep};

#[cfg(test)]
mod proptests {
    use crate::gradcheck::check_gradient;
    use crate::tape::Tape;
    use aneci_linalg::DenseMatrix;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Backprop through softmax→frob² agrees with finite differences for
        /// arbitrary small inputs.
        #[test]
        fn softmax_frobsq_gradcheck(v in prop::collection::vec(-3.0..3.0f64, 12)) {
            let x = DenseMatrix::from_vec(3, 4, v);
            let eval = |m: &DenseMatrix| {
                let mut t = Tape::new();
                let xv = t.leaf(m.clone());
                let p = t.softmax_rows(xv);
                let loss = t.frob_sq(p);
                t.backward(loss);
                (t.scalar(loss), t.grad(xv))
            };
            let (_, g) = eval(&x);
            let gc = check_gradient(|m| eval(m).0, &x, &g, 1e-5);
            prop_assert!(gc.passes(1e-5), "abs={} rel={}", gc.max_abs_err, gc.max_rel_err);
        }

        /// The gradient of sum(x·W) w.r.t. x equals 1·Wᵀ for any W.
        #[test]
        fn matmul_grad_closed_form(
            xv in prop::collection::vec(-2.0..2.0f64, 6),
            wv in prop::collection::vec(-2.0..2.0f64, 6),
        ) {
            let x = DenseMatrix::from_vec(2, 3, xv);
            let w = DenseMatrix::from_vec(3, 2, wv);
            let mut t = Tape::new();
            let xvar = t.leaf(x);
            let wvar = t.constant(w.clone());
            let y = t.matmul(xvar, wvar);
            let loss = t.sum(y);
            t.backward(loss);
            let expected = DenseMatrix::filled(2, 2, 1.0).matmul(&w.transpose());
            prop_assert!(t.grad(xvar).sub(&expected).max_abs() < 1e-10);
        }

        /// Linearity: grad of a·f + b·g is a·grad f + b·grad g.
        #[test]
        fn gradient_linearity(
            v in prop::collection::vec(-2.0..2.0f64, 9),
            a in -3.0..3.0f64,
            b in -3.0..3.0f64,
        ) {
            let x = DenseMatrix::from_vec(3, 3, v);
            let run = |ca: f64, cb: f64, m: &DenseMatrix| {
                let mut t = Tape::new();
                let xv = t.leaf(m.clone());
                let s = t.sigmoid(xv);
                let f = t.sum(s);
                let h = t.tanh(xv);
                let g = t.frob_sq(h);
                let fa = t.scale(f, ca);
                let gb = t.scale(g, cb);
                let loss = t.add(fa, gb);
                t.backward(loss);
                t.grad(xv)
            };
            let combined = run(a, b, &x);
            let fx = run(1.0, 0.0, &x);
            let gx = run(0.0, 1.0, &x);
            let mut expect = fx.scale(a);
            expect.axpy(b, &gx);
            prop_assert!(combined.sub(&expect).max_abs() < 1e-9);
        }
    }
}
