//! The shared training engine.
//!
//! Every gradient-trained model in the workspace — the AnECI model itself
//! and the seven autograd baselines (GAE/VGAE, DGI, GCN, DropEdge-GCN,
//! Dominant, DONE, SDNE) — runs the same define-by-run loop: rebuild a
//! [`Tape`], push the parameters as leaves, build a loss, backprop, apply an
//! optimizer step, decide whether to keep going. [`Trainer`] owns that loop
//! once, so cross-cutting improvements (telemetry, divergence guarding,
//! clipping, schedules) land in one place and apply to every model.
//!
//! The caller supplies
//!
//! * a [`ParamSet`] holding the trainable matrices,
//! * an [`Optimizer`] (the [`Adam`] / [`Sgd`] impls here, or a custom one),
//! * a [`TrainStep`]: given a fresh tape and the parameter leaves, build
//!   this epoch's loss. Plain closures `FnMut(&mut Tape, &[Var], usize) ->
//!   Var` implement it directly; models with checkpoint-best/validation
//!   logic implement the trait on a driver struct and use the
//!   [`TrainStep::on_best`] / [`TrainStep::on_epoch`] hooks.
//!
//! Per epoch the engine runs, in order:
//!
//! 1. fresh tape, [`ParamSet::leaf_all`], [`TrainStep::step`] → loss;
//! 2. **divergence guard** — a non-finite loss restores the last parameter
//!    state that produced a finite loss and surfaces
//!    [`TrainError::Diverged`] instead of silently training through NaNs;
//! 3. **best tracking** — the [`StopRule`] compares the step's monitored
//!    metric against the best so far and fires [`TrainStep::on_best`]
//!    *before* the optimizer step (so snapshots capture the parameters that
//!    produced the metric);
//! 4. backward, gradient collection, optional global-norm clipping, the
//!    scheduled-LR optimizer step (wrapped in a `step` span when
//!    observability is on);
//! 5. telemetry (`<prefix>.loss`, `<prefix>.grad_norm` histograms and a
//!    `<prefix>.epochs` counter), [`TrainStep::on_epoch`], and the
//!    early-stop decision.
//!
//! The loop is bit-exact with the hand-rolled loops it replaced: tape op
//! order, RNG consumption and optimizer update order are unchanged, which
//! `tests/trainer_parity.rs` pins against the preserved reference loop.

use crate::optim::{Adam, ParamSet, Sgd};
use crate::tape::{Tape, Var};
use aneci_linalg::DenseMatrix;
use std::error::Error;
use std::fmt;

/// A first-order optimizer: consumes one gradient list per call and updates
/// the parameters in place. Implemented by [`Adam`] and [`Sgd`]; the
/// [`Trainer`] drives it through this trait so models are optimizer-
/// agnostic.
pub trait Optimizer {
    /// Applies one update.
    fn step(&mut self, params: &mut ParamSet, grads: &[DenseMatrix]);
    /// Current learning rate.
    fn lr(&self) -> f64;
    /// Overrides the learning rate (used by [`LrSchedule`]).
    fn set_lr(&mut self, lr: f64);
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut ParamSet, grads: &[DenseMatrix]) {
        Sgd::step(self, params, grads);
    }
    fn lr(&self) -> f64 {
        self.lr
    }
    fn set_lr(&mut self, lr: f64) {
        self.lr = lr;
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut ParamSet, grads: &[DenseMatrix]) {
        Adam::step(self, params, grads);
    }
    fn lr(&self) -> f64 {
        self.lr
    }
    fn set_lr(&mut self, lr: f64) {
        self.lr = lr;
    }
}

/// Declarative optimizer choice for model configs: lets e.g. the GCN
/// classifier swap Adam for SGD(+momentum) without changing its training
/// code, with weight decay supported uniformly by both.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum OptimizerKind {
    /// Adam with standard β₁/β₂/ε.
    #[default]
    Adam,
    /// SGD with classical momentum (0 disables momentum).
    Sgd {
        /// Momentum coefficient.
        momentum: f64,
    },
}

impl OptimizerKind {
    /// Builds the optimizer with the given learning rate and decoupled
    /// weight decay.
    pub fn build(self, lr: f64, weight_decay: f64) -> Box<dyn Optimizer> {
        match self {
            OptimizerKind::Adam => Box::new(Adam::new(lr).with_weight_decay(weight_decay)),
            OptimizerKind::Sgd { momentum } => Box::new(
                Sgd::new(lr)
                    .with_momentum(momentum)
                    .with_weight_decay(weight_decay),
            ),
        }
    }
}

/// What a [`TrainStep`] hands back to the engine: the loss to minimize and
/// (optionally) the metric the [`StopRule`] should track this epoch.
#[derive(Clone, Copy, Debug)]
pub struct StepOutput {
    /// The scalar loss variable to backprop.
    pub loss: Var,
    /// Monitored metric for best-tracking / early stopping. `None` means
    /// "no measurement this epoch" (e.g. between validation probes).
    pub monitor: Option<f64>,
}

impl StepOutput {
    /// A loss with no monitored metric.
    pub fn new(loss: Var) -> Self {
        Self {
            loss,
            monitor: None,
        }
    }

    /// A loss plus the metric the stop rule should track.
    pub fn with_monitor(loss: Var, monitor: f64) -> Self {
        Self {
            loss,
            monitor: Some(monitor),
        }
    }
}

impl From<Var> for StepOutput {
    fn from(loss: Var) -> Self {
        Self::new(loss)
    }
}

/// Per-epoch statistics handed to [`TrainStep::on_epoch`] after the
/// optimizer step.
#[derive(Clone, Copy, Debug)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Loss value of this epoch's forward pass.
    pub loss: f64,
    /// The monitored metric, when the step reported one.
    pub monitor: Option<f64>,
    /// Global L2 norm of the (unclipped) gradients.
    pub grad_norm: f64,
    /// Learning rate the optimizer used this epoch.
    pub lr: f64,
    /// Whether the monitored metric improved this epoch.
    pub improved: bool,
}

/// One epoch of model-specific work. Implemented automatically by plain
/// closures `FnMut(&mut Tape, &[Var], usize) -> Var`; models that need
/// best-checkpoint snapshots implement it on a driver struct.
pub trait TrainStep {
    /// Builds this epoch's loss on a fresh tape. `params[i]` is the leaf
    /// for [`ParamSet`] slot `i`, pushed in slot order.
    fn step(&mut self, tape: &mut Tape, params: &[Var], epoch: usize) -> StepOutput;

    /// Fires when the monitored metric improves (and every epoch under
    /// [`StopRule::FixedEpochs`]). `params` holds the *pre-step* values —
    /// the ones that produced the improved metric — so cloning them here
    /// implements best-checkpoint restoration exactly.
    fn on_best(&mut self, _epoch: usize, _params: &ParamSet) {}

    /// Fires at the end of every epoch, after the optimizer step.
    fn on_epoch(&mut self, _stats: &EpochStats) {}
}

impl<F> TrainStep for F
where
    F: FnMut(&mut Tape, &[Var], usize) -> Var,
{
    fn step(&mut self, tape: &mut Tape, params: &[Var], epoch: usize) -> StepOutput {
        StepOutput::new(self(tape, params, epoch))
    }
}

/// Direction of the monitored metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Objective {
    /// Lower is better (losses).
    Minimize,
    /// Higher is better (modularity, validation scores).
    Maximize,
}

/// When to stop and which epoch to call "best". Generalizes the per-model
/// stopping rules the workspace used to hand-roll: AnECI's
/// `StopStrategy::{FixedEpochs, ValidationBest, EarlyStopModularity}` and
/// the GCN classifier's validation-loss patience all map onto these two
/// variants.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StopRule {
    /// Run every epoch; each epoch is the new best (last epoch wins).
    FixedEpochs,
    /// Track the best monitored metric. Epochs whose [`StepOutput`] carries
    /// no monitor are skipped (validation probing). `patience` consecutive
    /// *measured* epochs without improvement stop training early;
    /// `patience == 0` disables early stopping and only tracks the best.
    /// An improvement must beat the best by more than `min_delta`.
    BestMonitor {
        /// Metric direction.
        objective: Objective,
        /// Measured epochs without improvement tolerated (0 = never stop).
        patience: usize,
        /// Required improvement margin.
        min_delta: f64,
    },
}

impl StopRule {
    /// Track the highest monitored value, stopping after `patience`
    /// non-improving measurements (0 = track only).
    pub fn maximize(patience: usize) -> Self {
        StopRule::BestMonitor {
            objective: Objective::Maximize,
            patience,
            min_delta: 0.0,
        }
    }

    /// Track the lowest monitored value, stopping after `patience`
    /// non-improving measurements (0 = track only).
    pub fn minimize(patience: usize) -> Self {
        StopRule::BestMonitor {
            objective: Objective::Minimize,
            patience,
            min_delta: 0.0,
        }
    }

    /// Sets the improvement margin (no-op for [`StopRule::FixedEpochs`]).
    pub fn with_min_delta(self, delta: f64) -> Self {
        match self {
            StopRule::FixedEpochs => self,
            StopRule::BestMonitor {
                objective,
                patience,
                ..
            } => StopRule::BestMonitor {
                objective,
                patience,
                min_delta: delta,
            },
        }
    }
}

/// Learning-rate schedule applied on top of the optimizer's base rate (the
/// rate it enters [`Trainer::run`] with).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LrSchedule {
    /// Keep the base rate.
    Constant,
    /// Multiply the base rate by `factor` every `every` epochs:
    /// `lr(e) = base · factor^⌊e/every⌋`.
    StepDecay {
        /// Epochs per decay step.
        every: usize,
        /// Multiplicative decay factor.
        factor: f64,
    },
}

/// What [`Trainer::run`] produced: the full loss trajectory plus the
/// best-epoch bookkeeping of the [`StopRule`].
#[derive(Clone, Debug, Default)]
pub struct TrainRun {
    /// Loss per executed epoch.
    pub losses: Vec<f64>,
    /// `(epoch, monitored value)` for every epoch that reported a monitor.
    pub monitors: Vec<(usize, f64)>,
    /// Epoch whose parameters/metric were kept as best.
    pub best_epoch: usize,
    /// Best monitored value seen (`None` when nothing was monitored).
    pub best_monitor: Option<f64>,
    /// Number of epochs actually executed.
    pub epochs_run: usize,
    /// Whether the stop rule cut training short.
    pub stopped_early: bool,
}

/// Training-engine failures.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// The loss (or gradient norm) became non-finite. The parameters were
    /// restored to the last state that produced a finite loss.
    Diverged {
        /// Epoch at which the non-finite value appeared.
        epoch: usize,
        /// The offending loss value (NaN or ±∞).
        loss: f64,
    },
    /// Two parameters were registered under the same name, which would
    /// corrupt name-keyed checkpoint round-trips.
    DuplicateParam(String),
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::Diverged { epoch, loss } => write!(
                f,
                "training diverged at epoch {epoch} (loss = {loss}); \
                 parameters restored to the last finite state"
            ),
            TrainError::DuplicateParam(name) => {
                write!(f, "parameter '{name}' is already registered")
            }
        }
    }
}

impl Error for TrainError {}

/// The shared define-by-run training engine; see the module docs for the
/// exact per-epoch pipeline.
#[derive(Clone, Debug)]
pub struct Trainer {
    pub(crate) epochs: usize,
    pub(crate) stop: StopRule,
    pub(crate) clip_norm: Option<f64>,
    pub(crate) lr_schedule: LrSchedule,
    pub(crate) guard_divergence: bool,
    pub(crate) obs_prefix: Option<String>,
}

impl Trainer {
    /// A trainer running `epochs` epochs with [`StopRule::FixedEpochs`], no
    /// clipping, a constant learning rate, the divergence guard on, and no
    /// telemetry prefix.
    pub fn new(epochs: usize) -> Self {
        Self {
            epochs,
            stop: StopRule::FixedEpochs,
            clip_norm: None,
            lr_schedule: LrSchedule::Constant,
            guard_divergence: true,
            obs_prefix: None,
        }
    }

    /// Sets the stop rule.
    pub fn stop(mut self, rule: StopRule) -> Self {
        self.stop = rule;
        self
    }

    /// Enables global-norm gradient clipping at `max_norm`.
    pub fn clip_norm(mut self, max_norm: f64) -> Self {
        self.clip_norm = Some(max_norm);
        self
    }

    /// Sets the learning-rate schedule.
    pub fn lr_schedule(mut self, schedule: LrSchedule) -> Self {
        self.lr_schedule = schedule;
        self
    }

    /// Enables/disables the NaN-divergence guard (on by default).
    pub fn guard_divergence(mut self, on: bool) -> Self {
        self.guard_divergence = on;
        self
    }

    /// Publishes `<prefix>.loss` / `<prefix>.grad_norm` histograms and a
    /// `<prefix>.epochs` counter into the global `aneci-obs` registry, and
    /// wraps the run in a `<prefix>` span with a per-epoch `step` child.
    pub fn observe_as(mut self, prefix: impl Into<String>) -> Self {
        self.obs_prefix = Some(prefix.into());
        self
    }

    /// Runs the training loop. On divergence the parameters are rolled back
    /// to the last state that produced a finite loss and
    /// [`TrainError::Diverged`] is returned; otherwise the full loss
    /// trajectory and best-epoch bookkeeping come back as a [`TrainRun`].
    pub fn run(
        &self,
        params: &mut ParamSet,
        opt: &mut dyn Optimizer,
        step: &mut dyn TrainStep,
    ) -> Result<TrainRun, TrainError> {
        let _run_span = self.obs_prefix.as_deref().map(aneci_obs::span);
        let obs = self.obs_prefix.as_deref().map(|p| {
            (
                aneci_obs::histogram(&format!("{p}.loss")),
                aneci_obs::histogram(&format!("{p}.grad_norm")),
                aneci_obs::counter(&format!("{p}.epochs")),
            )
        });

        let base_lr = opt.lr();
        let mut run = TrainRun::default();
        let mut best = match self.stop {
            StopRule::BestMonitor {
                objective: Objective::Maximize,
                ..
            } => f64::NEG_INFINITY,
            _ => f64::INFINITY,
        };
        let mut stall = 0usize;
        // Parameters as of just before the previous optimizer step — i.e.
        // the last state known to produce a finite loss.
        let mut last_good: Option<ParamSet> = None;

        for epoch in 0..self.epochs {
            if let LrSchedule::StepDecay { every, factor } = self.lr_schedule {
                let k = (epoch / every.max(1)) as i32;
                opt.set_lr(base_lr * factor.powi(k));
            }

            let mut tape = Tape::new();
            let vars = params.leaf_all(&mut tape);
            let out = step.step(&mut tape, &vars, epoch);
            let loss_val = tape.scalar(out.loss);

            if self.guard_divergence && !loss_val.is_finite() {
                if let Some(good) = last_good.take() {
                    *params = good;
                }
                return Err(TrainError::Diverged {
                    epoch,
                    loss: loss_val,
                });
            }

            // Best tracking fires before the optimizer step so `on_best`
            // sees the parameters that produced this epoch's metric.
            let improved = match self.stop {
                StopRule::FixedEpochs => {
                    run.best_epoch = epoch;
                    step.on_best(epoch, params);
                    true
                }
                StopRule::BestMonitor {
                    objective,
                    min_delta,
                    ..
                } => match out.monitor {
                    Some(m) => {
                        run.monitors.push((epoch, m));
                        let better = match objective {
                            Objective::Maximize => m > best + min_delta,
                            Objective::Minimize => m < best - min_delta,
                        };
                        if better {
                            best = m;
                            run.best_epoch = epoch;
                            run.best_monitor = Some(m);
                            stall = 0;
                            step.on_best(epoch, params);
                        } else {
                            stall += 1;
                        }
                        better
                    }
                    None => false,
                },
            };

            let grad_norm = {
                let _step_span = self.obs_prefix.is_some().then(|| aneci_obs::span("step"));
                tape.backward(out.loss);
                let mut grads = params.grads(&tape, &vars);
                drop(tape);
                let norm = ParamSet::grad_norm(&grads);
                if self.guard_divergence && !norm.is_finite() {
                    // The current parameters produced a finite loss; keep
                    // them rather than stepping into the non-finite update.
                    return Err(TrainError::Diverged {
                        epoch,
                        loss: loss_val,
                    });
                }
                if let Some(max_norm) = self.clip_norm {
                    ParamSet::clip_grad_norm(&mut grads, max_norm);
                }
                if self.guard_divergence {
                    last_good = Some(params.clone());
                }
                opt.step(params, &grads);
                norm
            };

            if let Some((loss_h, gnorm_h, epochs_c)) = &obs {
                loss_h.observe(loss_val);
                gnorm_h.observe(grad_norm);
                epochs_c.inc();
            }
            run.losses.push(loss_val);
            run.epochs_run = epoch + 1;

            step.on_epoch(&EpochStats {
                epoch,
                loss: loss_val,
                monitor: out.monitor,
                grad_norm,
                lr: opt.lr(),
                improved,
            });

            if let StopRule::BestMonitor { patience, .. } = self.stop {
                if patience > 0 && stall >= patience {
                    run.stopped_early = true;
                    break;
                }
            }
        }
        Ok(run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2×2 quadratic bowl ‖x − c‖² as a closure step.
    fn quadratic_step(target: DenseMatrix) -> impl FnMut(&mut Tape, &[Var], usize) -> Var {
        move |tape: &mut Tape, w: &[Var], _epoch: usize| -> Var {
            let c = tape.constant(target.clone());
            let d = tape.sub(w[0], c);
            tape.frob_sq(d)
        }
    }

    fn fresh_params() -> ParamSet {
        let mut p = ParamSet::new();
        p.register("x", DenseMatrix::zeros(2, 2));
        p
    }

    fn target() -> DenseMatrix {
        DenseMatrix::from_rows(&[&[1.0, -2.0], &[3.0, 0.5]])
    }

    #[test]
    fn trainer_matches_hand_rolled_adam_loop_bit_exactly() {
        // Reference: the loop every model used to hand-roll.
        let mut ref_params = fresh_params();
        let mut ref_opt = Adam::new(0.05);
        let mut ref_losses = Vec::new();
        for _ in 0..60 {
            let mut tape = Tape::new();
            let w = ref_params.leaf_all(&mut tape);
            let c = tape.constant(target());
            let d = tape.sub(w[0], c);
            let loss = tape.frob_sq(d);
            tape.backward(loss);
            ref_losses.push(tape.scalar(loss));
            let grads = ref_params.grads(&tape, &w);
            drop(tape);
            ref_opt.step(&mut ref_params, &grads);
        }

        let mut params = fresh_params();
        let mut opt = Adam::new(0.05);
        let mut step = quadratic_step(target());
        let run = Trainer::new(60)
            .run(&mut params, &mut opt, &mut step)
            .unwrap();

        assert_eq!(
            run.losses, ref_losses,
            "loss trajectories must be identical"
        );
        assert_eq!(params.get(0), ref_params.get(0), "final params must match");
        assert_eq!(run.epochs_run, 60);
        assert_eq!(run.best_epoch, 59, "FixedEpochs keeps the last epoch");
    }

    #[test]
    fn closure_and_sgd_converge() {
        let mut params = fresh_params();
        let mut opt = Sgd::new(0.1).with_momentum(0.5);
        let mut step = quadratic_step(target());
        let run = Trainer::new(200)
            .run(&mut params, &mut opt, &mut step)
            .unwrap();
        assert!(run.losses.last().unwrap() < &1e-8);
        assert!(params.get(0).sub(&target()).max_abs() < 1e-4);
    }

    #[test]
    fn early_stop_fires_on_stalled_monitor() {
        struct Stalled {
            #[allow(clippy::type_complexity)]
            inner: Box<dyn FnMut(&mut Tape, &[Var], usize) -> Var>,
        }
        impl TrainStep for Stalled {
            fn step(&mut self, tape: &mut Tape, w: &[Var], epoch: usize) -> StepOutput {
                let loss = (self.inner)(tape, w, epoch);
                // Monitor improves for 5 epochs, then goes flat.
                let m = if epoch < 5 { epoch as f64 } else { 4.0 };
                StepOutput::with_monitor(loss, m)
            }
        }
        let mut params = fresh_params();
        let mut opt = Adam::new(0.01);
        let mut step = Stalled {
            inner: Box::new(quadratic_step(target())),
        };
        let run = Trainer::new(500)
            .stop(StopRule::maximize(3))
            .run(&mut params, &mut opt, &mut step)
            .unwrap();
        assert!(run.stopped_early);
        assert_eq!(run.epochs_run, 8, "5 improving + 3 stalled epochs");
        assert_eq!(run.best_epoch, 4);
        assert_eq!(run.best_monitor, Some(4.0));
    }

    #[test]
    fn unmonitored_epochs_are_skipped_by_the_stop_rule() {
        struct Probing;
        impl TrainStep for Probing {
            fn step(&mut self, tape: &mut Tape, w: &[Var], epoch: usize) -> StepOutput {
                let loss = tape.frob_sq(w[0]);
                // Probe every 4th epoch; the monitored value worsens so
                // patience counts only probe epochs.
                if epoch % 4 == 3 {
                    StepOutput::with_monitor(loss, -(epoch as f64))
                } else {
                    StepOutput::new(loss)
                }
            }
        }
        let mut params = fresh_params();
        let mut opt = Sgd::new(0.01);
        let run = Trainer::new(100)
            .stop(StopRule::maximize(2))
            .run(&mut params, &mut opt, &mut Probing)
            .unwrap();
        // Probe 1 (epoch 3) improves from -inf; probes 2 and 3 stall.
        assert_eq!(run.epochs_run, 12);
        assert_eq!(run.monitors.len(), 3);
        assert_eq!(run.best_epoch, 3);
    }

    #[test]
    fn on_best_sees_pre_step_parameters() {
        struct Snapshot {
            seen: Vec<DenseMatrix>,
        }
        impl TrainStep for Snapshot {
            fn step(&mut self, tape: &mut Tape, w: &[Var], epoch: usize) -> StepOutput {
                let loss = tape.frob_sq(w[0]);
                StepOutput::with_monitor(loss, epoch as f64)
            }
            fn on_best(&mut self, _epoch: usize, params: &ParamSet) {
                self.seen.push(params.get(0).clone());
            }
        }
        let mut params = ParamSet::new();
        params.register("x", DenseMatrix::filled(1, 1, 4.0));
        let mut opt = Sgd::new(0.1);
        let mut step = Snapshot { seen: Vec::new() };
        Trainer::new(2)
            .stop(StopRule::maximize(0))
            .run(&mut params, &mut opt, &mut step)
            .unwrap();
        // Epoch 0's snapshot is the initial value, untouched by any step.
        assert_eq!(step.seen[0].get(0, 0), 4.0);
        // Epoch 1's snapshot reflects exactly one SGD step: x -= 0.1·2x.
        assert!((step.seen[1].get(0, 0) - (4.0 - 0.1 * 8.0)).abs() < 1e-12);
    }

    #[test]
    fn divergence_restores_last_finite_params_and_errors() {
        let mut params = fresh_params();
        let mut opt = Sgd::new(1e200); // guarantees overflow within a few steps
        let mut step = quadratic_step(target());
        let err = Trainer::new(50)
            .run(&mut params, &mut opt, &mut step)
            .unwrap_err();
        assert!(matches!(err, TrainError::Diverged { .. }));
        assert!(
            params.get(0).as_slice().iter().all(|v| v.is_finite()),
            "restored parameters must be finite"
        );
        let msg = err.to_string();
        assert!(msg.contains("diverged"), "message: {msg}");
    }

    #[test]
    fn guard_can_be_disabled() {
        let mut params = fresh_params();
        let mut opt = Sgd::new(1e200);
        let mut step = quadratic_step(target());
        let run = Trainer::new(10)
            .guard_divergence(false)
            .run(&mut params, &mut opt, &mut step)
            .unwrap();
        assert_eq!(run.epochs_run, 10, "unguarded loop trains through NaNs");
        assert!(run.losses.iter().any(|l| !l.is_finite()));
    }

    #[test]
    fn clipping_matches_manual_clipped_loop() {
        let mut ref_params = fresh_params();
        let mut ref_opt = Sgd::new(0.05);
        for _ in 0..40 {
            let mut tape = Tape::new();
            let w = ref_params.leaf_all(&mut tape);
            let c = tape.constant(target());
            let d = tape.sub(w[0], c);
            let loss = tape.frob_sq(d);
            tape.backward(loss);
            let mut grads = ref_params.grads(&tape, &w);
            drop(tape);
            ParamSet::clip_grad_norm(&mut grads, 1.0);
            ref_opt.step(&mut ref_params, &grads);
        }

        let mut params = fresh_params();
        let mut opt = Sgd::new(0.05);
        let mut step = quadratic_step(target());
        Trainer::new(40)
            .clip_norm(1.0)
            .run(&mut params, &mut opt, &mut step)
            .unwrap();
        assert_eq!(params.get(0), ref_params.get(0));
    }

    #[test]
    fn step_decay_schedule_shrinks_lr() {
        struct LrProbe {
            lrs: Vec<f64>,
        }
        impl TrainStep for LrProbe {
            fn step(&mut self, tape: &mut Tape, w: &[Var], _epoch: usize) -> StepOutput {
                StepOutput::new(tape.frob_sq(w[0]))
            }
            fn on_epoch(&mut self, stats: &EpochStats) {
                self.lrs.push(stats.lr);
            }
        }
        let mut params = fresh_params();
        let mut opt = Sgd::new(0.8);
        let mut step = LrProbe { lrs: Vec::new() };
        Trainer::new(6)
            .lr_schedule(LrSchedule::StepDecay {
                every: 2,
                factor: 0.5,
            })
            .run(&mut params, &mut opt, &mut step)
            .unwrap();
        assert_eq!(step.lrs, vec![0.8, 0.8, 0.4, 0.4, 0.2, 0.2]);
    }

    #[test]
    fn optimizer_kind_builds_both_optimizers_with_weight_decay() {
        for kind in [OptimizerKind::Adam, OptimizerKind::Sgd { momentum: 0.9 }] {
            let mut opt = kind.build(0.1, 0.01);
            assert_eq!(opt.lr(), 0.1);
            opt.set_lr(0.05);
            assert_eq!(opt.lr(), 0.05);
            // Pure decay shrinks parameters even with zero gradients.
            let mut params = ParamSet::new();
            params.register("x", DenseMatrix::filled(1, 1, 1.0));
            let zero = vec![DenseMatrix::zeros(1, 1)];
            opt.step(&mut params, &zero);
            assert!(
                params.get(0).get(0, 0) < 1.0,
                "{kind:?} ignored weight decay"
            );
        }
    }

    #[test]
    fn duplicate_param_registration_is_rejected() {
        let mut p = ParamSet::new();
        p.register("w", DenseMatrix::zeros(1, 1));
        let err = p.try_register("w", DenseMatrix::zeros(2, 2)).unwrap_err();
        assert_eq!(err, TrainError::DuplicateParam("w".into()));
        assert!(err.to_string().contains("already registered"));
        // Distinct names still register fine.
        assert_eq!(p.try_register("w2", DenseMatrix::zeros(1, 1)).unwrap(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn register_panics_on_duplicate_name() {
        let mut p = ParamSet::new();
        p.register("w", DenseMatrix::zeros(1, 1));
        p.register("w", DenseMatrix::zeros(1, 1));
    }
}
