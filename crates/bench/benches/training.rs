//! Training-cost benchmarks backing Table V: one epoch of each model on a
//! Cora-statistics synthetic graph (quarter scale), so the per-epoch column
//! can be regenerated with Criterion rigor.

use aneci_baselines::{Dgi, DgiConfig, Gae, GaeConfig, GcnClassifier, GcnConfig};
use aneci_core::{AneciConfig, AneciModel, StopStrategy};
use aneci_graph::Benchmark;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_training_epoch(c: &mut Criterion) {
    let graph = Benchmark::Cora.generate(0.25, 7);
    let mut group = c.benchmark_group("train_cora_quarter");
    group.sample_size(10);

    group.bench_function("aneci_one_epoch", |b| {
        b.iter(|| {
            let cfg = AneciConfig {
                epochs: 1,
                stop: StopStrategy::FixedEpochs,
                seed: 7,
                ..Default::default()
            };
            let mut model = AneciModel::new(&graph, &cfg);
            black_box(model.train(None))
        })
    });

    group.bench_function("gae_one_epoch", |b| {
        b.iter(|| {
            let cfg = GaeConfig {
                epochs: 1,
                seed: 7,
                ..Default::default()
            };
            black_box(Gae::fit(&graph, &cfg).losses)
        })
    });

    group.bench_function("dgi_one_epoch", |b| {
        b.iter(|| {
            let cfg = DgiConfig {
                epochs: 1,
                seed: 7,
                ..Default::default()
            };
            black_box(Dgi::fit(&graph, &cfg).losses)
        })
    });

    group.bench_function("gcn_one_epoch", |b| {
        b.iter(|| {
            let cfg = GcnConfig {
                epochs: 1,
                patience: 0,
                seed: 7,
                ..Default::default()
            };
            black_box(GcnClassifier::fit(&graph, &cfg).train_losses)
        })
    });

    group.finish();
}

fn bench_model_setup(c: &mut Criterion) {
    // Model construction includes the high-order proximity build — worth
    // tracking separately from the per-epoch cost.
    let graph = Benchmark::Cora.generate(0.25, 7);
    let mut group = c.benchmark_group("setup_cora_quarter");
    group.sample_size(10);
    group.bench_function("aneci_new", |b| {
        let cfg = AneciConfig {
            seed: 7,
            ..Default::default()
        };
        b.iter(|| black_box(AneciModel::new(&graph, &cfg)))
    });
    group.finish();
}

criterion_group!(benches, bench_training_epoch, bench_model_setup);
criterion_main!(benches);
