//! Regenerates Fig. 9 (proximity-order sweep and rigidity curves).
fn main() {
    aneci_bench::exp::fig9::run(&aneci_bench::ExpArgs::parse());
}
