//! Minimal offline stand-in for `criterion` 0.5 — see
//! `offline_shims/README.md`. Compiles and *runs* the bench targets
//! (each body once, no statistics). Use `bench_report` for real numbers.

use std::fmt::Display;

#[derive(Default)]
pub struct Criterion;

pub struct Bencher;

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
    }
}

pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        eprintln!("bench {}/{} (shim: 1 iteration)", self.name, id.into().0);
        f(&mut Bencher);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        eprintln!("bench {}/{} (shim: 1 iteration)", self.name, id.into().0);
        f(&mut Bencher, input);
        self
    }

    pub fn finish(self) {}
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        eprintln!("bench {} (shim: 1 iteration)", id.into().0);
        f(&mut Bencher);
        self
    }
}

/// Re-export so `criterion::black_box` callers work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
