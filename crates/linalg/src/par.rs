//! Multi-threaded kernels.
//!
//! The reproduction must train several GCNs on graphs with up to ~20k nodes
//! and 500–3700-dimensional features on CPU, so the two hot products —
//! dense×dense and sparse×dense — get row-parallel versions. All of them run
//! on the persistent worker pool in [`crate::pool`] (no per-call thread
//! spawning): workers split the *output rows*, so each chunk writes a
//! disjoint region and no synchronization is needed, and chunk boundaries
//! depend only on the problem size, so results are identical across thread
//! counts.
//!
//! The dense product additionally uses the cache-blocked register-tiled
//! microkernel from [`crate::dense`], which beats the streaming axpy loop
//! roughly 2× even single-threaded at GCN-layer sizes.

use crate::dense::{self, DenseMatrix};
use crate::kernel_stats::{self, Kernel};
use crate::pool::{self, SendPtr};
use crate::sparse::CsrMatrix;

/// Dense matrix product `a * b`: cache-blocked microkernel, pooled over
/// output rows above the pool threshold.
pub fn matmul(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "par::matmul: inner dimension mismatch {}x{} * {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k) = a.shape();
    let n = b.cols();
    let work = m * k * n;
    kernel_stats::record(Kernel::Matmul, 2 * work as u64, || {
        let mut out = DenseMatrix::zeros(m, n);
        let ptr = SendPtr(out.as_mut_slice().as_mut_ptr());
        if pool::should_parallelize(work) {
            pool::parallel_for(m, pool::row_grain(m, 4), |lo, hi| {
                // SAFETY (in callee): chunks own disjoint output row ranges.
                dense::matmul_rows_into(a, b, lo, hi, ptr.get());
            });
        } else {
            dense::matmul_rows_into(a, b, 0, m, ptr.get());
        }
        out
    })
}

/// Sparse × dense product `s * d`, pooled over output rows. Row chunks are
/// claimed via an atomic index, so uneven row sparsity load-balances.
pub fn spmm_dense(s: &CsrMatrix, d: &DenseMatrix) -> DenseMatrix {
    assert_eq!(
        s.cols(),
        d.rows(),
        "par::spmm_dense: inner dimension mismatch"
    );
    let m = s.rows();
    let n = d.cols();
    let work = s.nnz() * n;
    kernel_stats::record(Kernel::SpmmDense, 2 * work as u64, || {
        let mut out = DenseMatrix::zeros(m, n);
        let ptr = SendPtr(out.as_mut_slice().as_mut_ptr());
        let fill_rows = |lo: usize, hi: usize| {
            // SAFETY: chunks own disjoint output row ranges and `out`
            // outlives the parallel region.
            let dst =
                unsafe { std::slice::from_raw_parts_mut(ptr.get().add(lo * n), (hi - lo) * n) };
            for (local_r, out_row) in dst.chunks_exact_mut(n.max(1)).enumerate() {
                for (c, v) in s.row_entries(lo + local_r) {
                    let d_row = d.row(c);
                    for (o, &dv) in out_row.iter_mut().zip(d_row) {
                        *o += v * dv;
                    }
                }
            }
        };
        if n > 0 && pool::should_parallelize(work) {
            // Fine grain: sparse rows are uneven, let the atomic index
            // load-balance many small chunks.
            pool::parallel_for(m, pool::row_grain(m, 1), fill_rows);
        } else {
            fill_rows(0, m);
        }
        out
    })
}

/// `aᵀ * b`, pooled by splitting the shared row dimension and summing the
/// per-chunk partial products in chunk order (deterministic across thread
/// counts; rounding may differ from strict serial by ~1e-12 relative).
pub fn matmul_tn(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    assert_eq!(a.rows(), b.rows(), "par::matmul_tn: row mismatch");
    let m = a.rows();
    let work = m * a.cols() * b.cols();
    kernel_stats::record(Kernel::MatmulTn, 2 * work as u64, || {
        if !pool::should_parallelize(work) {
            return a.matmul_tn(b);
        }
        // Each chunk materializes a full `a.cols × b.cols` partial, so cap
        // the chunk count at 32 regardless of thread count.
        let grain = m.div_ceil(32).max(16);
        let partials = pool::parallel_map_chunks(m, grain, |lo, hi| {
            let mut acc = DenseMatrix::zeros(a.cols(), b.cols());
            for r in lo..hi {
                let a_row = a.row(r);
                let b_row = b.row(r);
                for (i, &av) in a_row.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    let acc_row = acc.row_mut(i);
                    for (o, &bv) in acc_row.iter_mut().zip(b_row) {
                        *o += av * bv;
                    }
                }
            }
            acc
        });
        let mut out = DenseMatrix::zeros(a.cols(), b.cols());
        for p in &partials {
            out.add_assign(p);
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::force_pool;
    use crate::rng::{gaussian_matrix, seeded_rng};

    #[test]
    fn par_matmul_matches_serial_small() {
        let mut rng = seeded_rng(10);
        let a = gaussian_matrix(13, 7, 1.0, &mut rng);
        let b = gaussian_matrix(7, 9, 1.0, &mut rng);
        assert!(matmul(&a, &b).sub(&a.matmul(&b)).max_abs() < 1e-12);
    }

    #[test]
    fn par_matmul_matches_serial_large() {
        force_pool();
        let mut rng = seeded_rng(11);
        let a = gaussian_matrix(256, 256, 1.0, &mut rng);
        let b = gaussian_matrix(256, 256, 1.0, &mut rng);
        let fast = matmul(&a, &b);
        let slow = a.matmul(&b);
        assert!(fast.sub(&slow).max_abs() < 1e-9);
    }

    #[test]
    fn par_matmul_handles_uneven_chunks() {
        force_pool();
        let mut rng = seeded_rng(12);
        // Row count not divisible by typical thread counts.
        let a = gaussian_matrix(257, 130, 1.0, &mut rng);
        let b = gaussian_matrix(130, 131, 1.0, &mut rng);
        let fast = matmul(&a, &b);
        assert_eq!(fast.shape(), (257, 131));
        assert!(fast.sub(&a.matmul(&b)).max_abs() < 1e-10);
    }

    #[test]
    fn par_spmm_matches_serial() {
        force_pool();
        let mut rng = seeded_rng(13);
        let trips: Vec<(usize, usize, f64)> = (0..5000)
            .map(|i| ((i * 37) % 300, (i * 61) % 300, (i % 10) as f64 - 4.5))
            .collect();
        let s = CsrMatrix::from_triplets(300, 300, &trips);
        let d = gaussian_matrix(300, 500, 1.0, &mut rng);
        let fast = spmm_dense(&s, &d);
        let slow = s.spmm_dense(&d);
        assert!(fast.sub(&slow).max_abs() < 1e-10);
    }

    #[test]
    fn par_matmul_tn_matches_serial() {
        force_pool();
        let mut rng = seeded_rng(14);
        let a = gaussian_matrix(500, 64, 1.0, &mut rng);
        let b = gaussian_matrix(500, 64, 1.0, &mut rng);
        let fast = matmul_tn(&a, &b);
        let slow = a.matmul_tn(&b);
        assert!(fast.sub(&slow).max_abs() < 1e-9);
    }
}
