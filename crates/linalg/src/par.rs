//! Multi-threaded kernels.
//!
//! The reproduction must train several GCNs on graphs with up to ~20k nodes
//! and 500–3700-dimensional features on CPU, so the two hot products —
//! dense×dense and sparse×dense — get row-parallel versions built on
//! `std::thread::scope`. Threads split the *output rows*, so each worker
//! writes a disjoint `&mut` chunk and no synchronization is needed.

use crate::dense::DenseMatrix;
use crate::sparse::CsrMatrix;

/// Work below this many multiply-adds is not worth spawning threads for.
const PAR_THRESHOLD: usize = 1 << 20;

/// Returns the number of worker threads to use for a problem of `work`
/// multiply-adds.
fn thread_count(work: usize) -> usize {
    if work < PAR_THRESHOLD {
        return 1;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(16)
}

/// Dense matrix product `a * b`, multi-threaded over output rows.
pub fn matmul(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "par::matmul: inner dimension mismatch {}x{} * {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k) = a.shape();
    let n = b.cols();
    let threads = thread_count(m * k * n);
    if threads <= 1 {
        return a.matmul(b);
    }
    let mut out = DenseMatrix::zeros(m, n);
    let chunk_rows = m.div_ceil(threads);
    {
        let out_chunks: Vec<&mut [f64]> = out.as_mut_slice().chunks_mut(chunk_rows * n).collect();
        std::thread::scope(|scope| {
            for (t, chunk) in out_chunks.into_iter().enumerate() {
                let row0 = t * chunk_rows;
                scope.spawn(move || {
                    let rows_here = chunk.len() / n;
                    for local_r in 0..rows_here {
                        let a_row = a.row(row0 + local_r);
                        let out_row = &mut chunk[local_r * n..(local_r + 1) * n];
                        for (kk, &av) in a_row.iter().enumerate() {
                            if av == 0.0 {
                                continue;
                            }
                            let b_row = b.row(kk);
                            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                                *o += av * bv;
                            }
                        }
                    }
                });
            }
        });
    }
    out
}

/// Sparse × dense product `s * d`, multi-threaded over output rows.
pub fn spmm_dense(s: &CsrMatrix, d: &DenseMatrix) -> DenseMatrix {
    assert_eq!(
        s.cols(),
        d.rows(),
        "par::spmm_dense: inner dimension mismatch"
    );
    let m = s.rows();
    let n = d.cols();
    let threads = thread_count(s.nnz() * n);
    if threads <= 1 {
        return s.spmm_dense(d);
    }
    let mut out = DenseMatrix::zeros(m, n);
    let chunk_rows = m.div_ceil(threads);
    {
        let out_chunks: Vec<&mut [f64]> = out.as_mut_slice().chunks_mut(chunk_rows * n).collect();
        std::thread::scope(|scope| {
            for (t, chunk) in out_chunks.into_iter().enumerate() {
                let row0 = t * chunk_rows;
                scope.spawn(move || {
                    let rows_here = chunk.len() / n;
                    for local_r in 0..rows_here {
                        let out_row = &mut chunk[local_r * n..(local_r + 1) * n];
                        for (c, v) in s.row_entries(row0 + local_r) {
                            let d_row = d.row(c);
                            for (o, &dv) in out_row.iter_mut().zip(d_row) {
                                *o += v * dv;
                            }
                        }
                    }
                });
            }
        });
    }
    out
}

/// `aᵀ * b`, multi-threaded by splitting the shared row dimension and
/// summing partial products.
pub fn matmul_tn(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    assert_eq!(a.rows(), b.rows(), "par::matmul_tn: row mismatch");
    let m = a.rows();
    let work = m * a.cols() * b.cols();
    let threads = thread_count(work);
    if threads <= 1 {
        return a.matmul_tn(b);
    }
    let chunk_rows = m.div_ceil(threads);
    let partials = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let lo = t * chunk_rows;
            let hi = ((t + 1) * chunk_rows).min(m);
            if lo >= hi {
                break;
            }
            handles.push(scope.spawn(move || {
                let mut acc = DenseMatrix::zeros(a.cols(), b.cols());
                for r in lo..hi {
                    let a_row = a.row(r);
                    let b_row = b.row(r);
                    for (i, &av) in a_row.iter().enumerate() {
                        if av == 0.0 {
                            continue;
                        }
                        let acc_row = acc.row_mut(i);
                        for (o, &bv) in acc_row.iter_mut().zip(b_row) {
                            *o += av * bv;
                        }
                    }
                }
                acc
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("matmul_tn worker panicked"))
            .collect::<Vec<_>>()
    });
    let mut out = DenseMatrix::zeros(a.cols(), b.cols());
    for p in partials {
        out.add_assign(&p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{gaussian_matrix, seeded_rng};

    #[test]
    fn par_matmul_matches_serial_small() {
        let mut rng = seeded_rng(10);
        let a = gaussian_matrix(13, 7, 1.0, &mut rng);
        let b = gaussian_matrix(7, 9, 1.0, &mut rng);
        assert!(matmul(&a, &b).sub(&a.matmul(&b)).max_abs() < 1e-12);
    }

    #[test]
    fn par_matmul_matches_serial_large() {
        let mut rng = seeded_rng(11);
        // Big enough to trip the threshold (256*256*256 = 16.7M mul-adds).
        let a = gaussian_matrix(256, 256, 1.0, &mut rng);
        let b = gaussian_matrix(256, 256, 1.0, &mut rng);
        let fast = matmul(&a, &b);
        let slow = a.matmul(&b);
        assert!(fast.sub(&slow).max_abs() < 1e-9);
    }

    #[test]
    fn par_matmul_handles_uneven_chunks() {
        let mut rng = seeded_rng(12);
        // Row count not divisible by typical thread counts.
        let a = gaussian_matrix(257, 130, 1.0, &mut rng);
        let b = gaussian_matrix(130, 131, 1.0, &mut rng);
        let fast = matmul(&a, &b);
        assert_eq!(fast.shape(), (257, 131));
        assert!(fast.sub(&a.matmul(&b)).max_abs() < 1e-10);
    }

    #[test]
    fn par_spmm_matches_serial() {
        let mut rng = seeded_rng(13);
        let trips: Vec<(usize, usize, f64)> = (0..5000)
            .map(|i| ((i * 37) % 300, (i * 61) % 300, (i % 10) as f64 - 4.5))
            .collect();
        let s = CsrMatrix::from_triplets(300, 300, &trips);
        let d = gaussian_matrix(300, 500, 1.0, &mut rng);
        let fast = spmm_dense(&s, &d);
        let slow = s.spmm_dense(&d);
        assert!(fast.sub(&slow).max_abs() < 1e-10);
    }

    #[test]
    fn par_matmul_tn_matches_serial() {
        let mut rng = seeded_rng(14);
        let a = gaussian_matrix(500, 64, 1.0, &mut rng);
        let b = gaussian_matrix(500, 64, 1.0, &mut rng);
        let fast = matmul_tn(&a, &b);
        let slow = a.matmul_tn(&b);
        assert!(fast.sub(&slow).max_abs() < 1e-9);
    }
}
