//! Shared runner for the two targeted-attack experiments (Figs. 3 & 4).
//!
//! Protocol: targets are test nodes with degree > 10; the attacker spends
//! 1–5 edge flips per target on the clean graph (poisoning); every victim
//! model is retrained on the poisoned graph; the reported metric is
//! classification accuracy restricted to the target nodes.

use crate::{classify_subset, print_table, write_csv, ExpArgs};
use aneci_attacks::{
    fga_attack, nettack_attack, select_targets, AttackOutcome, FgaConfig, NettackConfig,
};
use aneci_baselines::{Dgi, DgiConfig, Gae, GaeConfig, GcnClassifier, GcnConfig};
use aneci_core::{aneci_plus, train_aneci, AneciConfig, DenoiseConfig, StopStrategy};
use aneci_graph::AttributedGraph;
use aneci_linalg::rng::derive_seed;
use aneci_linalg::stats::mean;

/// Which targeted attack to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttackKind {
    /// NETTACK-style greedy margin poisoning (Fig. 3).
    Nettack,
    /// FGA gradient attack (Fig. 4).
    Fga,
}

impl AttackKind {
    fn name(&self) -> &'static str {
        match self {
            Self::Nettack => "NETTACK",
            Self::Fga => "FGA",
        }
    }

    fn attack(
        &self,
        graph: &AttributedGraph,
        targets: &[usize],
        budget: usize,
        seed: u64,
    ) -> AttackOutcome {
        match self {
            Self::Nettack => nettack_attack(
                graph,
                targets,
                &NettackConfig {
                    surrogate: GcnConfig {
                        epochs: 120,
                        seed,
                        ..Default::default()
                    },
                    perturbations_per_target: budget,
                    seed,
                    ..Default::default()
                },
            ),
            Self::Fga => fga_attack(
                graph,
                targets,
                &FgaConfig {
                    surrogate: GcnConfig {
                        epochs: 120,
                        seed,
                        ..Default::default()
                    },
                    perturbations_per_target: budget,
                },
            ),
        }
    }
}

const METHODS: [&str; 5] = ["GCN", "GAE", "DGI", "AnECI", "AnECI+"];

/// Accuracy of each victim retrained on `poisoned`, evaluated on `targets`.
fn victim_accuracies(poisoned: &AttributedGraph, targets: &[usize], seed: u64) -> Vec<f64> {
    let mut out = Vec::with_capacity(METHODS.len());

    let gcn = GcnClassifier::fit(
        poisoned,
        &GcnConfig {
            seed,
            ..Default::default()
        },
    );
    out.push(gcn.accuracy_on(poisoned, targets));

    let gae = Gae::fit(
        poisoned,
        &GaeConfig {
            seed,
            ..Default::default()
        },
    );
    out.push(classify_subset(poisoned, gae.embedding(), targets, seed));

    let dgi = Dgi::fit(
        poisoned,
        &DgiConfig {
            seed,
            ..Default::default()
        },
    );
    out.push(classify_subset(poisoned, dgi.embedding(), targets, seed));

    let config = AneciConfig {
        epochs: 150,
        stop: StopStrategy::FixedEpochs,
        seed,
        ..Default::default()
    };
    let (aneci, _) = train_aneci(poisoned, &config).unwrap();
    out.push(classify_subset(poisoned, aneci.embedding(), targets, seed));

    let plus =
        aneci_plus(poisoned, &config, &DenoiseConfig::default(), None).expect("AnECI+ failed");
    out.push(classify_subset(
        poisoned,
        plus.model.embedding(),
        targets,
        seed,
    ));

    out
}

/// Runs the targeted-attack experiment for one attack kind.
pub fn run(args: &ExpArgs, kind: AttackKind) {
    for &dataset in &args.datasets {
        let mut rows = Vec::new();
        let mut csv_rows = Vec::new();
        for budget in 1..=5usize {
            let mut per_method: Vec<Vec<f64>> = vec![Vec::new(); METHODS.len()];
            for round in 0..args.rounds {
                let seed = derive_seed(args.seed, (budget * 100 + round) as u64);
                let graph = dataset.generate(args.scale, seed);
                let targets = select_targets(&graph, 10, 8);
                eprintln!(
                    "[{}] {} budget {} round {}: {} targets",
                    kind.name(),
                    dataset.name(),
                    budget,
                    round,
                    targets.len()
                );
                let poisoned = kind
                    .attack(&graph, &targets, budget, seed)
                    .apply(&graph)
                    .expect("targeted attack delta");
                let accs = victim_accuracies(&poisoned, &targets, seed);
                for (slot, a) in accs.into_iter().enumerate() {
                    per_method[slot].push(a);
                }
            }
            let means: Vec<f64> = per_method.iter().map(|s| mean(s)).collect();
            rows.push({
                let mut r = vec![budget.to_string()];
                r.extend(means.iter().map(|m| format!("{:.3}", m)));
                r
            });
            for (name, m) in METHODS.iter().zip(&means) {
                csv_rows.push(vec![
                    name.to_string(),
                    budget.to_string(),
                    format!("{m:.4}"),
                ]);
            }
        }
        print_table(
            &format!(
                "Fig. {} — target-node accuracy under {} ({})",
                if kind == AttackKind::Nettack { 3 } else { 4 },
                kind.name(),
                dataset.name()
            ),
            &["perturbations", "GCN", "GAE", "DGI", "AnECI", "AnECI+"],
            &rows,
        );
        let path = write_csv(
            &args.out_dir,
            &format!(
                "fig{}_{}.csv",
                if kind == AttackKind::Nettack { 3 } else { 4 },
                dataset.name()
            ),
            "method,perturbations,accuracy",
            &csv_rows,
        )
        .expect("write csv");
        println!("wrote {}", path.display());
    }
}
