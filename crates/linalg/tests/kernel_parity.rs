//! Parity suite: every pooled kernel must match its serial counterpart to
//! 1e-10 (bit-identical where the docs promise it) across adversarial
//! shapes — 1×N, N×1, empty rows, prime row counts, all-zero sparse rows.
//!
//! `force_pool` drops the pool threshold to 1 and guarantees ≥4 threads, so
//! every kernel here genuinely takes the pooled path even on small inputs
//! and single-core CI runners.
//!
//! The `simd_*` tests at the bottom hold the dispatched vector kernels to
//! their `*_scalar` references: within the documented ULP envelope when the
//! AVX2 path is active (FMA + different association), and bit-for-bit when
//! dispatch falls back — including a subprocess run with `ANECI_NO_SIMD`
//! forcing the fallback on AVX2-capable machines.

use aneci_linalg::rng::{gaussian_matrix, seeded_rng};
use aneci_linalg::{pool, simd, vector};
use aneci_linalg::{CsrMatrix, DenseMatrix};

const TOL: f64 = 1e-10;

/// Deterministic dense test matrix with a sprinkling of exact zeros (so the
/// zero-skip branches of the kernels are exercised).
fn dense(rows: usize, cols: usize, seed: usize) -> DenseMatrix {
    DenseMatrix::from_fn(rows, cols, |r, c| {
        let x = (r * 31 + c * 7 + seed * 13) % 17;
        if x == 0 {
            0.0
        } else {
            x as f64 * 0.25 - 2.0
        }
    })
}

/// Sparse matrix with structurally empty rows (every third row) and a row
/// whose entries would cancel in products.
fn sparse(rows: usize, cols: usize, seed: usize) -> CsrMatrix {
    let mut trips = Vec::new();
    for r in 0..rows {
        if r % 3 == 1 {
            continue; // empty row
        }
        for j in 0..4 {
            let c = (r * 7 + j * 11 + seed) % cols;
            trips.push((r, c, ((r + j + seed) % 5) as f64 - 2.0));
        }
    }
    CsrMatrix::from_triplets(rows, cols, &trips)
}

/// Naive serial dense product, independent of the library kernels.
fn matmul_ref(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    DenseMatrix::from_fn(a.rows(), b.cols(), |r, c| {
        (0..a.cols()).map(|k| a.get(r, k) * b.get(k, c)).sum()
    })
}

#[test]
fn matmul_parity_adversarial_shapes() {
    pool::force_pool();
    // (m, k, n): 1×N, N×1, prime row counts, tile remainders, tiny.
    for &(m, k, n) in &[
        (1usize, 300usize, 64usize),
        (300, 300, 1),
        (257, 131, 67),
        (64, 64, 64),
        (3, 2, 5),
        (97, 17, 8),
    ] {
        let a = dense(m, k, 1);
        let b = dense(k, n, 2);
        let pooled = aneci_linalg::par::matmul(&a, &b);
        let serial = matmul_ref(&a, &b);
        assert!(
            pooled.sub(&serial).max_abs() < TOL,
            "matmul parity failed at {m}x{k}x{n}"
        );
    }
}

#[test]
fn matmul_tn_parity() {
    pool::force_pool();
    for &(m, k, n) in &[(1usize, 5usize, 7usize), (257, 31, 19), (500, 64, 64)] {
        let a = dense(m, k, 3);
        let b = dense(m, n, 4);
        let pooled = aneci_linalg::par::matmul_tn(&a, &b);
        let serial = matmul_ref(&a.transpose(), &b);
        assert!(
            pooled.sub(&serial).max_abs() < TOL,
            "matmul_tn parity failed at ({m}){k}x{n}"
        );
    }
}

#[test]
fn spmm_dense_parity_with_empty_rows() {
    pool::force_pool();
    for &(m, n, d) in &[(1usize, 40usize, 8usize), (257, 101, 33), (90, 90, 1)] {
        let s = sparse(m, n, 5);
        let x = dense(n, d, 6);
        let pooled = aneci_linalg::par::spmm_dense(&s, &x);
        let serial = matmul_ref(&s.to_dense(), &x);
        assert!(
            pooled.sub(&serial).max_abs() < TOL,
            "spmm_dense parity failed at {m}x{n}x{d}"
        );
        // Structurally empty input rows must yield exactly-zero output rows.
        for r in 0..m {
            if s.row_nnz(r) == 0 {
                assert!(pooled.row(r).iter().all(|&v| v == 0.0), "row {r} not zero");
            }
        }
    }
}

#[test]
fn sparse_spmm_parity() {
    pool::force_pool();
    for &(m, k, n) in &[(1usize, 50usize, 50usize), (211, 103, 157), (60, 60, 60)] {
        let a = sparse(m, k, 7);
        let b = sparse(k, n, 8);
        let pooled = a.spmm(&b);
        let serial = matmul_ref(&a.to_dense(), &b.to_dense());
        assert!(
            pooled.to_dense().sub(&serial).max_abs() < TOL,
            "sparse spmm parity failed at {m}x{k}x{n}"
        );
    }
}

#[test]
fn sparse_transpose_parity_is_exact() {
    pool::force_pool();
    for &(m, n) in &[(1usize, 80usize), (257, 61), (96, 1), (100, 100)] {
        let s = sparse(m, n, 9);
        let t = s.transpose();
        assert_eq!(t.to_dense(), s.to_dense().transpose(), "transpose {m}x{n}");
        assert_eq!(t.transpose(), s, "double transpose {m}x{n}");
    }
}

#[test]
fn prune_top_k_parity_is_exact() {
    pool::force_pool();
    let s = sparse(257, 91, 10);
    for k in [0usize, 1, 2, 10] {
        let pruned = s.prune_top_k_per_row(k);
        for r in 0..s.rows() {
            assert!(pruned.row_nnz(r) <= k, "row {r} k={k}");
        }
        // Every surviving entry must exist in the original with equal value.
        for (r, c, v) in pruned.iter() {
            assert_eq!(s.get(r, c), v, "entry ({r},{c}) changed");
        }
    }
    // k larger than any row: identity.
    assert_eq!(s.prune_top_k_per_row(1000), s);
}

#[test]
fn normalize_parity_is_exact() {
    pool::force_pool();
    let s = sparse(257, 257, 11);
    let rn = s.row_normalize();
    for r in 0..s.rows() {
        let orig: f64 = s.row_entries(r).map(|(_, v)| v).sum();
        if s.row_nnz(r) > 0 && orig != 0.0 {
            let sum: f64 = rn.row_entries(r).map(|(_, v)| v).sum();
            assert!((sum - 1.0).abs() < TOL, "row {r} sums to {sum}");
        } else {
            // Empty rows and exactly-cancelling rows pass through unchanged.
            let unchanged: Vec<_> = s.row_entries(r).collect();
            assert_eq!(rn.row_entries(r).collect::<Vec<_>>(), unchanged);
        }
    }
    // Symmetric normalization against a dense reference.
    let sym = s.sym_normalize();
    let deg: Vec<f64> = s.to_dense().row_sums();
    let dense_ref = DenseMatrix::from_fn(s.rows(), s.cols(), |i, j| {
        let (di, dj) = (deg[i], deg[j]);
        if di > 0.0 && dj > 0.0 {
            s.get(i, j) / (di.sqrt() * dj.sqrt())
        } else {
            0.0
        }
    });
    assert!(sym.to_dense().sub(&dense_ref).max_abs() < TOL);
}

#[test]
fn dense_elementwise_and_reductions_parity() {
    pool::force_pool();
    // Big enough to clear the elementwise floor (1<<12 entries).
    let a = dense(257, 67, 12);
    let b = dense(257, 67, 13);

    let mapped = a.map(|v| v * 2.0 - 1.0);
    let zipped = a.zip(&b, |x, y| x * y + 0.5);
    for i in 0..a.len() {
        let (x, y) = (a.as_slice()[i], b.as_slice()[i]);
        assert_eq!(mapped.as_slice()[i], x * 2.0 - 1.0);
        assert_eq!(zipped.as_slice()[i], x * y + 0.5);
    }

    let serial_sum: f64 = a.as_slice().iter().sum();
    assert!((a.sum() - serial_sum).abs() < TOL * serial_sum.abs().max(1.0));
    let serial_dot: f64 = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| x * y)
        .sum();
    assert!((a.dot(&b) - serial_dot).abs() < TOL * serial_dot.abs().max(1.0));

    assert_eq!(a.transpose().transpose(), a);

    let mut soft = a.clone();
    soft.softmax_rows_inplace();
    for row in soft.rows_iter() {
        let sum: f64 = row.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }
}

#[test]
fn pooled_results_stable_across_thread_caps() {
    pool::force_pool();
    let mut rng = seeded_rng(99);
    let a = gaussian_matrix(129, 65, 1.0, &mut rng);
    let b = gaussian_matrix(65, 33, 1.0, &mut rng);
    let wide = aneci_linalg::par::matmul(&a, &b);
    // Capping participation must not change a single bit: the chunk
    // decomposition depends only on the problem shape.
    pool::set_num_threads(2);
    let narrow = aneci_linalg::par::matmul(&a, &b);
    pool::set_num_threads(4);
    assert_eq!(wide, narrow);
}

#[test]
fn nested_parallel_for_does_not_deadlock() {
    pool::force_pool();
    use std::sync::atomic::{AtomicUsize, Ordering};
    let total = AtomicUsize::new(0);
    pool::parallel_for(16, 1, |lo, hi| {
        for _ in lo..hi {
            pool::parallel_for(32, 4, |ilo, ihi| {
                // Two levels down: still must run (inline) and terminate.
                pool::parallel_for(8, 2, |jlo, jhi| {
                    total.fetch_add((ihi - ilo) * (jhi - jlo), Ordering::Relaxed);
                });
            });
        }
    });
    // 16 outer × (sum over inner chunks of chunk_len) pairs…: every inner
    // element pairs with every innermost element: 16 * 32 * 8 with the
    // chunk-product decomposition summing to the same total.
    assert_eq!(total.load(Ordering::Relaxed), 16 * 32 * 8);
}

// ---------------------------------------------------------------------------
// SIMD vs scalar parity
// ---------------------------------------------------------------------------

/// Deterministic vector with modest values and exact zeros sprinkled in.
fn vec_pattern(len: usize, seed: usize) -> Vec<f64> {
    (0..len)
        .map(|i| {
            let x = (i * 31 + seed * 7) % 23;
            if x == 0 {
                0.0
            } else {
                x as f64 * 0.125 - 1.25
            }
        })
        .collect()
}

/// Forward-error envelope for a `len`-term reassociated FMA reduction:
/// `len · ~4096 ULP` relative to the scalar result. Loose enough for any
/// legal association, tight enough that a wrong element (not just a
/// reordered sum) fails by many orders of magnitude.
fn ulp_tol(len: usize, reference: f64) -> f64 {
    (len.max(1) as f64) * 1e-12 * reference.abs().max(1.0)
}

/// Lengths hitting every dispatch regime: empty, scalar tail only,
/// `len % 4 != 0` remainders, exact lane multiples, and past the 8- and
/// 16-wide unroll boundaries.
const SIMD_LENS: &[usize] = &[0, 1, 2, 3, 4, 5, 7, 8, 9, 13, 16, 17, 31, 32, 33, 100, 257];

/// Asserts the dispatched reduction kernels equal their scalar references
/// bitwise — the contract whenever dispatch has fallen back.
fn assert_reductions_bit_exact() {
    for &len in SIMD_LENS {
        let a = vec_pattern(len, 1);
        let b = vec_pattern(len, 2);
        assert_eq!(
            vector::dot(&a, &b).to_bits(),
            vector::dot_scalar(&a, &b).to_bits(),
            "dot len {len}"
        );
        assert_eq!(
            vector::squared_euclidean(&a, &b).to_bits(),
            vector::squared_euclidean_scalar(&a, &b).to_bits(),
            "squared_euclidean len {len}"
        );
        let mut y = vec_pattern(len, 3);
        let mut y_ref = y.clone();
        vector::axpy(&mut y, -0.75, &a);
        vector::axpy_scalar(&mut y_ref, -0.75, &a);
        assert_eq!(y, y_ref, "axpy len {len}");
    }
}

#[test]
fn simd_reductions_match_scalar_within_documented_ulp() {
    for &len in SIMD_LENS {
        let a = vec_pattern(len, 1);
        let b = vec_pattern(len, 2);

        let (d, d_ref) = (vector::dot(&a, &b), vector::dot_scalar(&a, &b));
        assert!((d - d_ref).abs() <= ulp_tol(len, d_ref), "dot len {len}");

        let (e, e_ref) = (
            vector::squared_euclidean(&a, &b),
            vector::squared_euclidean_scalar(&a, &b),
        );
        assert!(
            (e - e_ref).abs() <= ulp_tol(len, e_ref),
            "squared_euclidean len {len}"
        );

        // axpy is elementwise: one FMA per lane, so the envelope is 1 ULP
        // per element, not len-scaled.
        let mut y = vec_pattern(len, 3);
        let mut y_ref = y.clone();
        vector::axpy(&mut y, -0.75, &a);
        vector::axpy_scalar(&mut y_ref, -0.75, &a);
        for (i, (&s, &r)) in y.iter().zip(&y_ref).enumerate() {
            assert!((s - r).abs() <= ulp_tol(1, r), "axpy len {len} lane {i}");
        }
    }
    if !simd::avx2_active() {
        // Fallback dispatch must not merely be close — it must be the
        // scalar kernel.
        assert_reductions_bit_exact();
    }
}

#[test]
fn simd_batched_scans_match_scalar() {
    // (rows, dim) covering empty scans, empty queries, d % 4 != 0, and
    // past-unroll dims.
    for &(n, d) in &[
        (0usize, 8usize),
        (1, 0),
        (3, 1),
        (5, 3),
        (4, 5),
        (7, 13),
        (2, 96),
        (3, 257),
    ] {
        let q = vec_pattern(d, 4);
        let qn = vector::norm2(&q);
        let mut rows = vec_pattern(n * d, 5);
        if n > 0 {
            // Force one all-zero row so the zero-norm branch is exercised.
            rows[..d].fill(0.0);
        }
        let norms: Vec<f64> = (0..n)
            .map(|i| {
                let row = &rows[i * d..(i + 1) * d];
                vector::dot_scalar(row, row).sqrt()
            })
            .collect();

        let mut cos = vec![f64::NAN; n];
        let mut cos_ref = vec![f64::NAN; n];
        vector::cosine_scores(&q, qn, &rows, &norms, &mut cos);
        vector::cosine_scores_scalar(&q, qn, &rows, &norms, &mut cos_ref);
        for i in 0..n {
            assert!(
                (cos[i] - cos_ref[i]).abs() <= ulp_tol(d, cos_ref[i]),
                "cosine_scores ({n}x{d}) row {i}: {} vs {}",
                cos[i],
                cos_ref[i]
            );
        }
        if n > 0 && d > 0 {
            assert_eq!(cos[0], 0.0, "zero-norm row must score exactly 0");
        }

        let mut dots = vec![f64::NAN; n];
        let mut dots_ref = vec![f64::NAN; n];
        vector::dot_scores(&q, &rows, &mut dots);
        vector::dot_scores_scalar(&q, &rows, &mut dots_ref);
        for i in 0..n {
            assert!(
                (dots[i] - dots_ref[i]).abs() <= ulp_tol(d, dots_ref[i]),
                "dot_scores ({n}x{d}) row {i}"
            );
        }
        if d == 0 {
            // Empty query: both scans define the score as exactly 0.
            assert!(cos.iter().chain(&dots).all(|&v| v == 0.0));
        }
        if !simd::avx2_active() {
            assert_eq!(cos, cos_ref, "fallback cosine must be bit-exact");
            assert_eq!(dots, dots_ref, "fallback dot scan must be bit-exact");
        }
    }
}

#[test]
fn forced_fallback_is_bit_exact() {
    if std::env::var_os("ANECI_NO_SIMD").is_some() {
        // Child process (or an environment already forcing the fallback):
        // dispatch must have resolved to scalar, and every dispatched
        // kernel must be bitwise-identical to its reference.
        assert!(
            !simd::avx2_active(),
            "ANECI_NO_SIMD must force the scalar fallback"
        );
        assert_reductions_bit_exact();
        let q = vec_pattern(13, 4);
        let rows = vec_pattern(5 * 13, 5);
        let norms: Vec<f64> = rows
            .chunks_exact(13)
            .map(|r| vector::dot_scalar(r, r).sqrt())
            .collect();
        let (mut a, mut b) = (vec![0.0; 5], vec![0.0; 5]);
        vector::cosine_scores(&q, vector::norm2(&q), &rows, &norms, &mut a);
        vector::cosine_scores_scalar(&q, vector::norm2(&q), &rows, &norms, &mut b);
        assert_eq!(a, b);
        vector::dot_scores(&q, &rows, &mut a);
        vector::dot_scores_scalar(&q, &rows, &mut b);
        assert_eq!(a, b);
        return;
    }
    // Parent: rerun just this test in a child with the fallback forced.
    // Dispatch latches on first use, so the flag can't be flipped in-process.
    let exe = std::env::current_exe().expect("test binary path");
    let out = std::process::Command::new(exe)
        .args(["--exact", "forced_fallback_is_bit_exact"])
        .env("ANECI_NO_SIMD", "1")
        .output()
        .expect("spawn forced-fallback child");
    assert!(
        out.status.success(),
        "forced-fallback child failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}
