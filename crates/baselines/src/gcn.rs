//! Semi-supervised GCN node classifier (Kipf & Welling 2017).
//!
//! One of the semi-supervised comparison rows of Table III, and the
//! surrogate model that the NETTACK-style attack scores against.
//! Architecture and training follow the reference implementation: two
//! spectral convolution layers with ReLU, softmax cross-entropy on the
//! labelled training nodes, Adam with weight decay, early stopping on the
//! validation loss.

use aneci_autograd::{Adam, ParamSet, Tape, Var};
use aneci_graph::AttributedGraph;
use aneci_linalg::rng::{derive_seed, seeded_rng, xavier_uniform};
use aneci_linalg::{CsrMatrix, DenseMatrix};
use std::sync::Arc;

/// GCN hyperparameters.
#[derive(Clone, Debug)]
pub struct GcnConfig {
    /// Hidden layer width.
    pub hidden_dim: usize,
    /// Learning rate (Adam).
    pub lr: f64,
    /// Decoupled weight decay.
    pub weight_decay: f64,
    /// Maximum epochs.
    pub epochs: usize,
    /// Early-stopping patience on the validation loss (0 disables).
    pub patience: usize,
    /// Dropout rate applied to the input features and hidden activations
    /// during training (the reference GCN uses 0.5; 0 disables — the
    /// default here, so small-graph experiments stay deterministic-simple).
    pub dropout: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GcnConfig {
    fn default() -> Self {
        Self {
            hidden_dim: 16,
            lr: 0.01,
            weight_decay: 5e-4,
            epochs: 200,
            patience: 20,
            dropout: 0.0,
            seed: 0,
        }
    }
}

/// A trained GCN classifier.
pub struct GcnClassifier {
    params: ParamSet,
    norm_adj: Arc<CsrMatrix>,
    features: DenseMatrix,
    num_classes: usize,
    /// Training-loss history.
    pub train_losses: Vec<f64>,
    /// Validation-loss history (empty when there is no validation set).
    pub val_losses: Vec<f64>,
}

impl GcnClassifier {
    /// Trains on the graph's labelled `split.train` nodes.
    pub fn fit(graph: &AttributedGraph, config: &GcnConfig) -> Self {
        let labels = graph.labels.as_ref().expect("GCN needs labels").clone();
        let num_classes = graph.num_classes();
        assert!(num_classes >= 2, "GCN needs at least two classes");
        assert!(
            !graph.split.train.is_empty(),
            "GCN needs a non-empty training split"
        );
        let norm_adj = Arc::new(graph.norm_adjacency());
        let features = graph.features().clone();

        let mut rng = seeded_rng(derive_seed(config.seed, 0x6C4));
        let mut params = ParamSet::new();
        params.register(
            "w1",
            xavier_uniform(features.cols(), config.hidden_dim, &mut rng),
        );
        params.register(
            "w2",
            xavier_uniform(config.hidden_dim, num_classes, &mut rng),
        );

        let mut opt = Adam::new(config.lr).with_weight_decay(config.weight_decay);
        let mut train_losses = Vec::new();
        let mut val_losses = Vec::new();
        let mut best_val = f64::INFINITY;
        let mut best_params = params.clone();
        let mut stall = 0usize;

        for _ in 0..config.epochs {
            let mut tape = Tape::new();
            let w = params.leaf_all(&mut tape);
            let logits = forward_train(
                &mut tape,
                &w,
                &norm_adj,
                &features,
                config.dropout,
                &mut rng,
            );
            let loss = tape.softmax_cross_entropy(logits, &labels, &graph.split.train);
            tape.backward(loss);
            train_losses.push(tape.scalar(loss));

            if !graph.split.val.is_empty() {
                // Validation loss on the same forward pass (no grad needed).
                let vloss = {
                    let mut t2 = Tape::new();
                    let logits_const = t2.constant(tape.value(logits).clone());
                    let l = t2.softmax_cross_entropy(logits_const, &labels, &graph.split.val);
                    t2.scalar(l)
                };
                val_losses.push(vloss);
                if vloss < best_val - 1e-6 {
                    best_val = vloss;
                    stall = 0;
                    best_params = params.clone();
                } else {
                    stall += 1;
                }
            }
            let grads = params.grads(&tape, &w);
            drop(tape);
            opt.step(&mut params, &grads);
            if config.patience > 0 && stall >= config.patience {
                break;
            }
        }
        if !val_losses.is_empty() {
            params = best_params;
        }

        Self {
            params,
            norm_adj,
            features,
            num_classes,
            train_losses,
            val_losses,
        }
    }

    /// Class logits for every node.
    pub fn logits(&self) -> DenseMatrix {
        let mut tape = Tape::new();
        let w = self.params.leaf_all(&mut tape);
        let out = forward(&mut tape, &w, &self.norm_adj, &self.features);
        tape.value(out).clone()
    }

    /// Hard class predictions for every node.
    pub fn predict(&self) -> Vec<usize> {
        self.logits().argmax_rows()
    }

    /// Accuracy on an index subset.
    pub fn accuracy_on(&self, graph: &AttributedGraph, nodes: &[usize]) -> f64 {
        let labels = graph.labels.as_ref().expect("needs labels");
        let pred = self.predict();
        if nodes.is_empty() {
            return 0.0;
        }
        let correct = nodes.iter().filter(|&&i| pred[i] == labels[i]).count();
        correct as f64 / nodes.len() as f64
    }

    /// The hidden-layer activations — a usable (supervised) embedding.
    pub fn hidden_embedding(&self) -> DenseMatrix {
        let mut tape = Tape::new();
        let w = self.params.leaf_all(&mut tape);
        let x = tape.constant(self.features.clone());
        let xw = tape.matmul(x, w[0]);
        let h1 = tape.spmm(&self.norm_adj, xw);
        let a1 = tape.relu(h1);
        tape.value(a1).clone()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The trained weight matrices `(W₁, W₂)` — the gradient-based attacks
    /// differentiate surrogate losses through these frozen weights.
    pub fn weights(&self) -> (DenseMatrix, DenseMatrix) {
        (self.params.get(0).clone(), self.params.get(1).clone())
    }
}

/// The 2-layer GCN forward pass: `Ŝ·relu(Ŝ·X·W₁)·W₂`.
fn forward(tape: &mut Tape, w: &[Var], s: &Arc<CsrMatrix>, x: &DenseMatrix) -> Var {
    let xv = tape.constant(x.clone());
    let xw = tape.matmul(xv, w[0]);
    let h1 = tape.spmm(s, xw);
    let a1 = tape.relu(h1);
    let hw = tape.matmul(a1, w[1]);
    tape.spmm(s, hw)
}

/// Training-mode forward with inverted dropout on input and hidden layers.
fn forward_train(
    tape: &mut Tape,
    w: &[Var],
    s: &Arc<CsrMatrix>,
    x: &DenseMatrix,
    dropout: f64,
    rng: &mut rand::rngs::StdRng,
) -> Var {
    let xv = tape.constant(x.clone());
    let xd = tape.dropout(xv, dropout, rng);
    let xw = tape.matmul(xd, w[0]);
    let h1 = tape.spmm(s, xw);
    let a1 = tape.relu(h1);
    let ad = tape.dropout(a1, dropout, rng);
    let hw = tape.matmul(ad, w[1]);
    tape.spmm(s, hw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aneci_graph::{generate_sbm, karate_club, sample_split, SbmConfig, Split};

    fn sbm_with_split(seed: u64) -> AttributedGraph {
        let mut cfg = SbmConfig::small();
        cfg.num_nodes = 300;
        cfg.num_classes = 3;
        cfg.target_edges = 1200;
        let mut g = generate_sbm(&cfg, seed);
        let labels = g.labels.clone().unwrap();
        g.set_split(sample_split(&labels, 20, 60, 150, seed));
        g
    }

    #[test]
    fn learns_sbm_classification() {
        let g = sbm_with_split(1);
        let model = GcnClassifier::fit(
            &g,
            &GcnConfig {
                epochs: 120,
                ..Default::default()
            },
        );
        let acc = model.accuracy_on(&g, &g.split.test);
        assert!(acc > 0.8, "test accuracy {acc}");
    }

    #[test]
    fn training_loss_decreases() {
        let g = sbm_with_split(2);
        let model = GcnClassifier::fit(
            &g,
            &GcnConfig {
                epochs: 50,
                patience: 0,
                ..Default::default()
            },
        );
        assert!(model.train_losses.last().unwrap() < &model.train_losses[0]);
    }

    #[test]
    fn karate_with_tiny_split() {
        let mut g = karate_club();
        g.set_split(Split {
            train: vec![0, 33],
            val: vec![1, 32],
            test: (2..32).collect(),
        });
        let model = GcnClassifier::fit(
            &g,
            &GcnConfig {
                epochs: 100,
                ..Default::default()
            },
        );
        // Two labelled nodes are enough on karate thanks to propagation.
        let acc = model.accuracy_on(&g, &g.split.test);
        assert!(acc > 0.8, "karate accuracy {acc}");
    }

    #[test]
    fn early_stopping_can_trigger() {
        let g = sbm_with_split(3);
        let model = GcnClassifier::fit(
            &g,
            &GcnConfig {
                epochs: 400,
                patience: 5,
                ..Default::default()
            },
        );
        assert!(model.train_losses.len() < 400, "early stopping never fired");
    }

    #[test]
    fn hidden_embedding_shape() {
        let g = sbm_with_split(4);
        let cfg = GcnConfig {
            hidden_dim: 24,
            epochs: 10,
            ..Default::default()
        };
        let model = GcnClassifier::fit(&g, &cfg);
        assert_eq!(model.hidden_embedding().shape(), (300, 24));
    }

    #[test]
    fn deterministic_in_seed() {
        let g = sbm_with_split(5);
        let cfg = GcnConfig {
            epochs: 20,
            ..Default::default()
        };
        let a = GcnClassifier::fit(&g, &cfg).predict();
        let b = GcnClassifier::fit(&g, &cfg).predict();
        assert_eq!(a, b);
    }

    #[test]
    fn learns_with_dropout_enabled() {
        let g = sbm_with_split(6);
        let cfg = GcnConfig {
            epochs: 150,
            dropout: 0.5,
            ..Default::default()
        };
        let model = GcnClassifier::fit(&g, &cfg);
        let acc = model.accuracy_on(&g, &g.split.test);
        assert!(acc > 0.75, "dropout-GCN accuracy {acc}");
    }
}
