//! DeepWalk (Perozzi et al. 2014).
//!
//! Truncated random walks feed a skip-gram model trained with negative
//! sampling (SGNS). Hand-rolled hot loop (no autograd) — this is the same
//! asymptotic shape as the reference gensim-based implementation: for each
//! (center, context) pair within the window, one positive update plus `k`
//! negative-sampled updates on two embedding tables.

use aneci_graph::AttributedGraph;
use aneci_linalg::rng::{derive_seed, seeded_rng, uniform_matrix, AliasTable};
use aneci_linalg::DenseMatrix;
use rand::rngs::StdRng;
use rand::Rng;

/// DeepWalk hyperparameters.
#[derive(Clone, Debug)]
pub struct DeepWalkConfig {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Walks started per node.
    pub num_walks: usize,
    /// Walk length.
    pub walk_length: usize,
    /// Skip-gram window radius.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// SGD passes over the walk corpus.
    pub epochs: usize,
    /// Initial learning rate (linearly decayed to 1e-4 of itself).
    pub lr: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DeepWalkConfig {
    fn default() -> Self {
        Self {
            dim: 16,
            num_walks: 10,
            walk_length: 40,
            window: 5,
            negatives: 5,
            epochs: 2,
            lr: 0.025,
            seed: 0,
        }
    }
}

/// Generates the truncated-random-walk corpus.
pub fn random_walks(
    graph: &AttributedGraph,
    num_walks: usize,
    walk_length: usize,
    rng: &mut StdRng,
) -> Vec<Vec<u32>> {
    let n = graph.num_nodes();
    let mut walks = Vec::with_capacity(n * num_walks);
    let neighborhoods: Vec<Vec<usize>> = (0..n).map(|u| graph.neighbors(u)).collect();
    for _ in 0..num_walks {
        for start in 0..n {
            let mut walk = Vec::with_capacity(walk_length);
            walk.push(start as u32);
            let mut current = start;
            for _ in 1..walk_length {
                let nbrs = &neighborhoods[current];
                if nbrs.is_empty() {
                    break;
                }
                current = nbrs[rng.gen_range(0..nbrs.len())];
                walk.push(current as u32);
            }
            walks.push(walk);
        }
    }
    walks
}

#[inline]
fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// One SGNS update on `(center, context, label)`.
#[inline]
fn sgns_update(
    center_table: &mut DenseMatrix,
    context_table: &mut DenseMatrix,
    center: usize,
    context: usize,
    label: f64,
    lr: f64,
) {
    let dim = center_table.cols();
    let mut dot = 0.0;
    {
        let cr = center_table.row(center);
        let xr = context_table.row(context);
        for i in 0..dim {
            dot += cr[i] * xr[i];
        }
    }
    let coeff = lr * (label - sigmoid(dot));
    // Update both tables (copy one row to avoid aliasing).
    let ctx_copy: Vec<f64> = context_table.row(context).to_vec();
    {
        let cr = center_table.row(center).to_vec();
        let xr = context_table.row_mut(context);
        for i in 0..dim {
            xr[i] += coeff * cr[i];
        }
        let cr_mut = center_table.row_mut(center);
        for i in 0..dim {
            cr_mut[i] += coeff * ctx_copy[i];
        }
        let _ = cr;
    }
}

/// Trains DeepWalk and returns the node embedding matrix.
pub fn deepwalk(graph: &AttributedGraph, config: &DeepWalkConfig) -> DenseMatrix {
    let mut rng = seeded_rng(derive_seed(config.seed, 0xD33B));
    let walks = random_walks(graph, config.num_walks, config.walk_length, &mut rng);
    train_skipgram(graph, &walks, config, &mut rng)
}

/// Skip-gram-with-negative-sampling training over a fixed walk corpus —
/// shared by DeepWalk and Node2Vec.
#[allow(clippy::needless_range_loop)] // window arithmetic is clearer with indices
pub fn train_skipgram(
    graph: &AttributedGraph,
    walks: &[Vec<u32>],
    config: &DeepWalkConfig,
    rng: &mut StdRng,
) -> DenseMatrix {
    let n = graph.num_nodes();
    // Negative-sampling distribution ∝ degree^0.75 (word2vec convention).
    let weights: Vec<f64> = (0..n)
        .map(|u| (graph.degree(u) as f64).max(1e-3).powf(0.75))
        .collect();
    let noise = AliasTable::new(&weights);

    let bound = 0.5 / config.dim as f64;
    let mut center = uniform_matrix(n, config.dim, bound, rng);
    let mut context = DenseMatrix::zeros(n, config.dim);

    // Count training pairs for the LR schedule.
    let total_pairs: usize = walks
        .iter()
        .map(|w| {
            let l = w.len();
            (0..l)
                .map(|i| {
                    (i.saturating_sub(config.window)..(i + config.window + 1).min(l)).len() - 1
                })
                .sum::<usize>()
        })
        .sum::<usize>()
        * config.epochs;
    let mut seen = 0usize;

    for _ in 0..config.epochs {
        for walk in walks {
            let l = walk.len();
            for i in 0..l {
                let c = walk[i] as usize;
                let lo = i.saturating_sub(config.window);
                let hi = (i + config.window + 1).min(l);
                for j in lo..hi {
                    if j == i {
                        continue;
                    }
                    seen += 1;
                    let lr = config.lr * (1.0 - seen as f64 / total_pairs.max(1) as f64).max(1e-4);
                    let ctx = walk[j] as usize;
                    sgns_update(&mut center, &mut context, c, ctx, 1.0, lr);
                    for _ in 0..config.negatives {
                        let neg = noise.sample(rng);
                        if neg != ctx {
                            sgns_update(&mut center, &mut context, c, neg, 0.0, lr);
                        }
                    }
                }
            }
        }
    }
    center
}

#[cfg(test)]
mod tests {
    use super::*;
    use aneci_graph::karate_club;
    use aneci_linalg::rng::seeded_rng;

    #[test]
    fn walks_respect_topology() {
        let g = karate_club();
        let mut rng = seeded_rng(1);
        let walks = random_walks(&g, 2, 10, &mut rng);
        assert_eq!(walks.len(), 68);
        for walk in &walks {
            assert!(walk.len() <= 10);
            for pair in walk.windows(2) {
                assert!(
                    g.has_edge(pair[0] as usize, pair[1] as usize),
                    "walk step {}-{} is not an edge",
                    pair[0],
                    pair[1]
                );
            }
        }
    }

    #[test]
    fn isolated_nodes_yield_single_step_walks() {
        let g = aneci_graph::AttributedGraph::from_edges_plain(3, &[(0, 1)], None);
        let mut rng = seeded_rng(2);
        let walks = random_walks(&g, 1, 5, &mut rng);
        let walk_of_2 = walks.iter().find(|w| w[0] == 2).unwrap();
        assert_eq!(walk_of_2.len(), 1);
    }

    #[test]
    fn embedding_separates_karate_factions() {
        let g = karate_club();
        let cfg = DeepWalkConfig {
            dim: 8,
            epochs: 3,
            seed: 3,
            ..Default::default()
        };
        let z = deepwalk(&g, &cfg);
        assert_eq!(z.shape(), (34, 8));
        assert!(z.all_finite());
        // Same-faction cosine similarity should exceed cross-faction.
        let labels = g.labels.as_ref().unwrap();
        let cos = |a: usize, b: usize| {
            let (ra, rb) = (z.row(a), z.row(b));
            let dot: f64 = ra.iter().zip(rb).map(|(&x, &y)| x * y).sum();
            let na: f64 = ra.iter().map(|v| v * v).sum::<f64>().sqrt();
            let nb: f64 = rb.iter().map(|v| v * v).sum::<f64>().sqrt();
            dot / (na * nb).max(1e-12)
        };
        let mut same = (0.0, 0);
        let mut diff = (0.0, 0);
        for i in 0..34 {
            for j in (i + 1)..34 {
                if labels[i] == labels[j] {
                    same = (same.0 + cos(i, j), same.1 + 1);
                } else {
                    diff = (diff.0 + cos(i, j), diff.1 + 1);
                }
            }
        }
        let same_avg = same.0 / same.1 as f64;
        let diff_avg = diff.0 / diff.1 as f64;
        assert!(
            same_avg > diff_avg + 0.05,
            "same {same_avg:.3} vs diff {diff_avg:.3}"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let g = karate_club();
        let cfg = DeepWalkConfig {
            dim: 4,
            epochs: 1,
            seed: 4,
            ..Default::default()
        };
        assert_eq!(deepwalk(&g, &cfg), deepwalk(&g, &cfg));
    }
}
