//! Optimizers.
//!
//! The tape is rebuilt every iteration (define-by-run), so parameters live
//! *outside* any tape in a plain [`ParamSet`]. A training step is:
//!
//! 1. create a `Tape`, push each parameter with [`ParamSet::leaf_all`],
//! 2. build the loss, call `backward`,
//! 3. collect gradients and hand them to [`Adam::step`] / [`Sgd::step`].

use crate::tape::{Tape, Var};
use crate::train::TrainError;
use aneci_linalg::DenseMatrix;

/// A named, ordered collection of trainable matrices.
#[derive(Clone, Debug, Default)]
pub struct ParamSet {
    names: Vec<String>,
    values: Vec<DenseMatrix>,
}

impl ParamSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter and returns its slot index.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered — duplicate names would
    /// corrupt name-keyed checkpoint round-trips. Use [`Self::try_register`]
    /// to handle the collision instead.
    pub fn register(&mut self, name: impl Into<String>, value: DenseMatrix) -> usize {
        self.try_register(name, value)
            .unwrap_or_else(|e| panic!("ParamSet::register: {e}"))
    }

    /// Registers a parameter, rejecting duplicate names with
    /// [`TrainError::DuplicateParam`].
    pub fn try_register(
        &mut self,
        name: impl Into<String>,
        value: DenseMatrix,
    ) -> Result<usize, TrainError> {
        let name = name.into();
        if self.names.contains(&name) {
            return Err(TrainError::DuplicateParam(name));
        }
        self.names.push(name);
        self.values.push(value);
        Ok(self.values.len() - 1)
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Immutable access by slot.
    pub fn get(&self, slot: usize) -> &DenseMatrix {
        &self.values[slot]
    }

    /// Mutable access by slot.
    pub fn get_mut(&mut self, slot: usize) -> &mut DenseMatrix {
        &mut self.values[slot]
    }

    /// Name of a slot.
    pub fn name(&self, slot: usize) -> &str {
        &self.names[slot]
    }

    /// Pushes every parameter onto `tape` as a differentiable leaf, in slot
    /// order, returning the tape handles.
    pub fn leaf_all(&self, tape: &mut Tape) -> Vec<Var> {
        self.values.iter().map(|v| tape.leaf(v.clone())).collect()
    }

    /// Collects the gradient of every parameter after `tape.backward`.
    pub fn grads(&self, tape: &Tape, vars: &[Var]) -> Vec<DenseMatrix> {
        assert_eq!(vars.len(), self.len(), "grads: var count mismatch");
        vars.iter().map(|&v| tape.grad(v)).collect()
    }

    /// Total number of scalar parameters.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(|m| m.len()).sum()
    }

    /// Global L2 norm of a gradient list (for clipping / logging).
    pub fn grad_norm(grads: &[DenseMatrix]) -> f64 {
        grads.iter().map(|g| g.dot(g)).sum::<f64>().sqrt()
    }

    /// Scales gradients in place so their global norm is at most `max_norm`.
    pub fn clip_grad_norm(grads: &mut [DenseMatrix], max_norm: f64) {
        let norm = Self::grad_norm(grads);
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for g in grads {
                g.scale_inplace(s);
            }
        }
    }
}

/// Plain SGD with optional classical momentum and decoupled weight decay.
#[derive(Clone, Debug)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f64,
    /// Decoupled weight decay coefficient.
    pub weight_decay: f64,
    velocity: Vec<DenseMatrix>,
}

impl Sgd {
    /// New optimizer with the given learning rate, no momentum or decay.
    pub fn new(lr: f64) -> Self {
        Self {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Builder: sets momentum.
    pub fn with_momentum(mut self, m: f64) -> Self {
        self.momentum = m;
        self
    }

    /// Builder: sets weight decay.
    pub fn with_weight_decay(mut self, wd: f64) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Applies one update.
    pub fn step(&mut self, params: &mut ParamSet, grads: &[DenseMatrix]) {
        assert_eq!(
            grads.len(),
            params.len(),
            "Sgd::step: gradient count mismatch"
        );
        if self.velocity.is_empty() && self.momentum != 0.0 {
            self.velocity = grads
                .iter()
                .map(|g| DenseMatrix::zeros(g.rows(), g.cols()))
                .collect();
        }
        for (slot, g) in grads.iter().enumerate() {
            let p = params.get_mut(slot);
            if self.weight_decay != 0.0 {
                let decay = self.lr * self.weight_decay;
                p.map_inplace(|v| v * (1.0 - decay));
            }
            if self.momentum != 0.0 {
                let v = &mut self.velocity[slot];
                v.scale_inplace(self.momentum);
                v.axpy(1.0, g);
                p.axpy(-self.lr, v);
            } else {
                p.axpy(-self.lr, g);
            }
        }
    }
}

/// Adam (Kingma & Ba 2015) with optional decoupled weight decay (AdamW).
#[derive(Clone, Debug)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical fuzz.
    pub eps: f64,
    /// Decoupled weight decay.
    pub weight_decay: f64,
    t: u64,
    m: Vec<DenseMatrix>,
    v: Vec<DenseMatrix>,
}

impl Adam {
    /// Adam with standard hyperparameters (β₁=0.9, β₂=0.999, ε=1e-8).
    pub fn new(lr: f64) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Builder: sets decoupled weight decay.
    pub fn with_weight_decay(mut self, wd: f64) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Applies one update.
    pub fn step(&mut self, params: &mut ParamSet, grads: &[DenseMatrix]) {
        assert_eq!(
            grads.len(),
            params.len(),
            "Adam::step: gradient count mismatch"
        );
        if self.m.is_empty() {
            self.m = grads
                .iter()
                .map(|g| DenseMatrix::zeros(g.rows(), g.cols()))
                .collect();
            self.v = self.m.clone();
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (slot, g) in grads.iter().enumerate() {
            let m = &mut self.m[slot];
            let v = &mut self.v[slot];
            for ((mi, vi), &gi) in m
                .as_mut_slice()
                .iter_mut()
                .zip(v.as_mut_slice().iter_mut())
                .zip(g.as_slice())
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
            }
            let p = params.get_mut(slot);
            if self.weight_decay != 0.0 {
                let decay = self.lr * self.weight_decay;
                p.map_inplace(|x| x * (1.0 - decay));
            }
            for ((pi, &mi), &vi) in p
                .as_mut_slice()
                .iter_mut()
                .zip(m.as_slice())
                .zip(v.as_slice())
            {
                let mhat = mi / bc1;
                let vhat = vi / bc2;
                *pi -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    /// Minimizes f(x) = ||x - c||² and checks convergence to c.
    fn quadratic_target() -> (DenseMatrix, impl Fn(&DenseMatrix) -> (f64, DenseMatrix)) {
        let c = DenseMatrix::from_rows(&[&[1.0, -2.0], &[3.0, 0.5]]);
        let target = c.clone();
        let f = move |x: &DenseMatrix| {
            let mut t = Tape::new();
            let xv = t.leaf(x.clone());
            let cv = t.constant(target.clone());
            let d = t.sub(xv, cv);
            let loss = t.frob_sq(d);
            t.backward(loss);
            (t.scalar(loss), t.grad(xv))
        };
        (c, f)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let (c, f) = quadratic_target();
        let mut params = ParamSet::new();
        params.register("x", DenseMatrix::zeros(2, 2));
        let mut opt = Sgd::new(0.1);
        for _ in 0..200 {
            let (_, g) = f(params.get(0));
            opt.step(&mut params, &[g]);
        }
        assert!(params.get(0).sub(&c).max_abs() < 1e-6);
    }

    #[test]
    fn sgd_with_momentum_converges_faster() {
        let (c, f) = quadratic_target();
        let run = |momentum: f64, iters: usize| {
            let mut params = ParamSet::new();
            params.register("x", DenseMatrix::zeros(2, 2));
            let mut opt = Sgd::new(0.01).with_momentum(momentum);
            for _ in 0..iters {
                let (_, g) = f(params.get(0));
                opt.step(&mut params, &[g]);
            }
            params.get(0).sub(&c).max_abs()
        };
        assert!(run(0.9, 100) < run(0.0, 100));
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let (c, f) = quadratic_target();
        let mut params = ParamSet::new();
        params.register("x", DenseMatrix::zeros(2, 2));
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            let (_, g) = f(params.get(0));
            opt.step(&mut params, &[g]);
        }
        assert!(params.get(0).sub(&c).max_abs() < 1e-4);
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let mut params = ParamSet::new();
        params.register("x", DenseMatrix::filled(2, 2, 1.0));
        let mut opt = Sgd::new(0.1).with_weight_decay(1.0);
        let zero_grad = DenseMatrix::zeros(2, 2);
        for _ in 0..10 {
            opt.step(&mut params, std::slice::from_ref(&zero_grad));
        }
        // Pure decay: x *= (1 - lr*wd)^10 = 0.9^10.
        let expected = 0.9f64.powi(10);
        assert!((params.get(0).get(0, 0) - expected).abs() < 1e-12);
    }

    #[test]
    fn clip_grad_norm_caps_norm() {
        let mut grads = vec![DenseMatrix::filled(2, 2, 3.0)];
        // norm = sqrt(4*9) = 6
        ParamSet::clip_grad_norm(&mut grads, 3.0);
        assert!((ParamSet::grad_norm(&grads) - 3.0).abs() < 1e-12);
        // Already small → untouched.
        let mut small = vec![DenseMatrix::filled(1, 1, 0.5)];
        ParamSet::clip_grad_norm(&mut small, 3.0);
        assert_eq!(small[0].get(0, 0), 0.5);
    }

    #[test]
    fn param_set_bookkeeping() {
        let mut p = ParamSet::new();
        let a = p.register("w1", DenseMatrix::zeros(2, 3));
        let b = p.register("w2", DenseMatrix::zeros(3, 1));
        assert_eq!(p.len(), 2);
        assert_eq!(p.name(a), "w1");
        assert_eq!(p.name(b), "w2");
        assert_eq!(p.num_scalars(), 9);
    }
}
