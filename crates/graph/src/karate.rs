//! Zachary's karate club — the one *real* network embedded in the crate.
//!
//! 34 nodes, 78 edges, and the canonical two-faction ground truth (Mr. Hi
//! vs. the Officer). Public-domain data, small enough to inline; used by
//! examples and as a ground-truth sanity check in tests (the synthetic
//! benchmark datasets are generated, see [`crate::generators`]).

use crate::attributed::AttributedGraph;
use aneci_linalg::DenseMatrix;

/// The 78 undirected edges of the karate-club network (0-indexed).
pub const KARATE_EDGES: [(usize, usize); 78] = [
    (0, 1),
    (0, 2),
    (0, 3),
    (0, 4),
    (0, 5),
    (0, 6),
    (0, 7),
    (0, 8),
    (0, 10),
    (0, 11),
    (0, 12),
    (0, 13),
    (0, 17),
    (0, 19),
    (0, 21),
    (0, 31),
    (1, 2),
    (1, 3),
    (1, 7),
    (1, 13),
    (1, 17),
    (1, 19),
    (1, 21),
    (1, 30),
    (2, 3),
    (2, 7),
    (2, 8),
    (2, 9),
    (2, 13),
    (2, 27),
    (2, 28),
    (2, 32),
    (3, 7),
    (3, 12),
    (3, 13),
    (4, 6),
    (4, 10),
    (5, 6),
    (5, 10),
    (5, 16),
    (6, 16),
    (8, 30),
    (8, 32),
    (8, 33),
    (9, 33),
    (13, 33),
    (14, 32),
    (14, 33),
    (15, 32),
    (15, 33),
    (18, 32),
    (18, 33),
    (19, 33),
    (20, 32),
    (20, 33),
    (22, 32),
    (22, 33),
    (23, 25),
    (23, 27),
    (23, 29),
    (23, 32),
    (23, 33),
    (24, 25),
    (24, 27),
    (24, 31),
    (25, 31),
    (26, 29),
    (26, 33),
    (27, 33),
    (28, 31),
    (28, 33),
    (29, 32),
    (29, 33),
    (30, 32),
    (30, 33),
    (31, 32),
    (31, 33),
    (32, 33),
];

/// The observed post-split faction of each member: 0 = Mr. Hi (node 0),
/// 1 = the Officer (node 33).
pub const KARATE_FACTIONS: [usize; 34] = [
    0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 1, 0, 0, 1, 0, 1, 0, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1,
    1, 1,
];

/// Builds the karate-club graph with identity features and faction labels.
pub fn karate_club() -> AttributedGraph {
    let mut g = AttributedGraph::from_edges(
        34,
        &KARATE_EDGES,
        DenseMatrix::identity(34),
        Some(KARATE_FACTIONS.to_vec()),
    );
    g.name = "karate".to_string();
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_statistics() {
        let g = karate_club();
        assert_eq!(g.num_nodes(), 34);
        assert_eq!(g.num_edges(), 78);
        assert_eq!(g.num_classes(), 2);
        g.validate().unwrap();
    }

    #[test]
    fn famous_degrees() {
        let g = karate_club();
        // Mr. Hi and the Officer are the two hubs.
        assert_eq!(g.degree(0), 16);
        assert_eq!(g.degree(33), 17);
        assert_eq!(g.degree(32), 12);
    }

    #[test]
    fn factions_are_assortative() {
        let g = karate_club();
        // The split follows the social structure: strong homophily.
        assert!(g.edge_homophily().unwrap() > 0.85);
    }

    #[test]
    fn faction_sizes() {
        let zeros = KARATE_FACTIONS.iter().filter(|&&f| f == 0).count();
        assert_eq!(zeros, 17);
        assert_eq!(KARATE_FACTIONS.len() - zeros, 17);
    }
}
