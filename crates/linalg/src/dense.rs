//! Dense, row-major, `f64` matrices.
//!
//! This is the workhorse type of the whole reproduction: GCN activations,
//! weight matrices, embeddings and membership matrices are all [`DenseMatrix`].
//! The layout is plain row-major `Vec<f64>` so rows are contiguous and can be
//! handed out as slices, which the multi-threaded kernels in [`crate::par`]
//! rely on.

use crate::pool::{self, SendPtr};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Elementwise kernels below this many entries always run serially (they are
/// memory-bound, so the pool threshold is consulted on top of this floor).
const ELEMENTWISE_MIN: usize = 1 << 12;

/// Flat-array grain: at most 64 chunks, at least 4096 entries per chunk.
#[inline]
fn flat_grain(len: usize) -> usize {
    len.div_ceil(64).max(1 << 12)
}

#[inline]
fn par_elementwise(len: usize) -> bool {
    len >= ELEMENTWISE_MIN && pool::should_parallelize(len)
}

/// A dense row-major matrix of `f64`.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMatrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(6);
        for r in 0..show_rows {
            let row = self.row(r);
            let shown: Vec<String> = row.iter().take(8).map(|v| format!("{v:.4}")).collect();
            let ellipsis = if self.cols > 8 { ", …" } else { "" };
            writeln!(f, "  [{}{}]", shown.join(", "), ellipsis)?;
        }
        if self.rows > show_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl DenseMatrix {
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with a constant.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from a generator function over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: data length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from nested row slices (convenient in tests).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a single-column matrix from a vector.
    pub fn column(values: &[f64]) -> Self {
        Self {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Checks the storage invariant (`data.len() == rows * cols`) without
    /// panicking. Constructors enforce it; the check exists for
    /// serde-deserialized matrices, where a malformed file must turn into an
    /// `Err` from the load path rather than a row-slicing panic later.
    pub fn check_invariants(&self) -> Result<(), String> {
        let want = self
            .rows
            .checked_mul(self.cols)
            .ok_or_else(|| format!("shape {}x{} overflows", self.rows, self.cols))?;
        if self.data.len() != want {
            return Err(format!(
                "data length {} does not match shape {}x{}",
                self.data.len(),
                self.rows,
                self.cols
            ));
        }
        Ok(())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the matrix has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the backing row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning the backing storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Reads entry `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Writes entry `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Adds `v` to entry `(r, c)`.
    #[inline]
    pub fn add_at(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] += v;
    }

    /// Row `r` as a contiguous slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        let start = r * self.cols;
        &self.data[start..start + self.cols]
    }

    /// Row `r` as a mutable contiguous slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        let start = r * self.cols;
        &mut self.data[start..start + self.cols]
    }

    /// Copies column `c` out into a new vector.
    pub fn col_to_vec(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Iterator over row slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        if par_elementwise(self.data.len()) {
            // Split the *input rows* across chunks: chunk `lo..hi` writes
            // the output columns `lo..hi`, a disjoint entry set per chunk.
            let ptr = SendPtr(out.data.as_mut_ptr());
            let (rows, cols) = (self.rows, self.cols);
            let grain = pool::row_grain(rows, 32);
            pool::parallel_for(rows, grain, move |lo, hi| {
                // SAFETY: entries `(c, r)` for `r ∈ lo..hi` are disjoint
                // across chunks and `out` outlives the call.
                let out_data = ptr.get();
                transpose_block(&self.data, out_data, rows, cols, lo, hi);
            });
        } else {
            transpose_block(
                &self.data,
                out.data.as_mut_ptr(),
                self.rows,
                self.cols,
                0,
                self.rows,
            );
        }
        out
    }

    /// Elementwise map into a new matrix (pooled above the elementwise
    /// threshold; the closure must therefore be `Sync`).
    pub fn map(&self, f: impl Fn(f64) -> f64 + Sync) -> DenseMatrix {
        if par_elementwise(self.data.len()) {
            let mut out = DenseMatrix::zeros(self.rows, self.cols);
            let ptr = SendPtr(out.data.as_mut_ptr());
            pool::parallel_for(self.data.len(), flat_grain(self.data.len()), |lo, hi| {
                // SAFETY: chunks cover disjoint ranges of `out.data`.
                let dst = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(lo), hi - lo) };
                for (o, &v) in dst.iter_mut().zip(&self.data[lo..hi]) {
                    *o = f(v);
                }
            });
            return out;
        }
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Elementwise map in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64 + Sync) {
        if par_elementwise(self.data.len()) {
            let ptr = SendPtr(self.data.as_mut_ptr());
            pool::parallel_for(self.data.len(), flat_grain(self.data.len()), |lo, hi| {
                // SAFETY: chunks cover disjoint ranges of `self.data`.
                let dst = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(lo), hi - lo) };
                for v in dst {
                    *v = f(*v);
                }
            });
            return;
        }
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// `self + other`, elementwise.
    pub fn add(&self, other: &DenseMatrix) -> DenseMatrix {
        self.zip(other, |a, b| a + b)
    }

    /// `self - other`, elementwise.
    pub fn sub(&self, other: &DenseMatrix) -> DenseMatrix {
        self.zip(other, |a, b| a - b)
    }

    /// `self ⊙ other` (Hadamard product).
    pub fn hadamard(&self, other: &DenseMatrix) -> DenseMatrix {
        self.zip(other, |a, b| a * b)
    }

    /// Generic elementwise zip of two same-shape matrices (pooled above the
    /// elementwise threshold; the closure must therefore be `Sync`).
    pub fn zip(&self, other: &DenseMatrix, f: impl Fn(f64, f64) -> f64 + Sync) -> DenseMatrix {
        assert_eq!(self.shape(), other.shape(), "zip: shape mismatch");
        if par_elementwise(self.data.len()) {
            let mut out = DenseMatrix::zeros(self.rows, self.cols);
            let ptr = SendPtr(out.data.as_mut_ptr());
            pool::parallel_for(self.data.len(), flat_grain(self.data.len()), |lo, hi| {
                // SAFETY: chunks cover disjoint ranges of `out.data`.
                let dst = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(lo), hi - lo) };
                for ((o, &a), &b) in dst
                    .iter_mut()
                    .zip(&self.data[lo..hi])
                    .zip(&other.data[lo..hi])
                {
                    *o = f(a, b);
                }
            });
            return out;
        }
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Generic elementwise zip in place: `self[i] = f(self[i], other[i])`.
    pub fn zip_inplace(&mut self, other: &DenseMatrix, f: impl Fn(f64, f64) -> f64 + Sync) {
        assert_eq!(self.shape(), other.shape(), "zip_inplace: shape mismatch");
        if par_elementwise(self.data.len()) {
            let ptr = SendPtr(self.data.as_mut_ptr());
            pool::parallel_for(self.data.len(), flat_grain(self.data.len()), |lo, hi| {
                // SAFETY: chunks cover disjoint ranges of `self.data`.
                let dst = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(lo), hi - lo) };
                for (a, &b) in dst.iter_mut().zip(&other.data[lo..hi]) {
                    *a = f(*a, b);
                }
            });
            return;
        }
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a = f(*a, b);
        }
    }

    /// `self += other`, elementwise.
    pub fn add_assign(&mut self, other: &DenseMatrix) {
        self.zip_inplace(other, |a, b| a + b);
    }

    /// `self += alpha * other`, elementwise (axpy).
    pub fn axpy(&mut self, alpha: f64, other: &DenseMatrix) {
        self.zip_inplace(other, |a, b| a + alpha * b);
    }

    /// `alpha * self` into a new matrix.
    pub fn scale(&self, alpha: f64) -> DenseMatrix {
        self.map(|v| v * alpha)
    }

    /// `self *= alpha` in place.
    pub fn scale_inplace(&mut self, alpha: f64) {
        self.map_inplace(|v| v * alpha);
    }

    /// Sum of all entries.
    ///
    /// Above the elementwise threshold this is a chunked reduction: partial
    /// sums are computed per chunk and combined in chunk order, so the result
    /// is deterministic across thread counts but may round differently from a
    /// strict left-to-right serial sum (within ~1e-12 relative).
    pub fn sum(&self) -> f64 {
        if par_elementwise(self.data.len()) {
            let partials = pool::parallel_map_chunks(
                self.data.len(),
                flat_grain(self.data.len()),
                |lo, hi| self.data[lo..hi].iter().sum::<f64>(),
            );
            return partials.iter().sum();
        }
        self.data.iter().sum()
    }

    /// Mean of all entries.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
    }

    /// Frobenius inner product `<self, other>` (chunk-ordered reduction
    /// above the elementwise threshold, see [`DenseMatrix::sum`]).
    pub fn dot(&self, other: &DenseMatrix) -> f64 {
        assert_eq!(self.shape(), other.shape(), "dot: shape mismatch");
        if par_elementwise(self.data.len()) {
            let partials = pool::parallel_map_chunks(
                self.data.len(),
                flat_grain(self.data.len()),
                |lo, hi| {
                    self.data[lo..hi]
                        .iter()
                        .zip(&other.data[lo..hi])
                        .map(|(&a, &b)| a * b)
                        .sum::<f64>()
                },
            );
            return partials.iter().sum();
        }
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a * b)
            .sum()
    }

    /// Trace of a square matrix.
    pub fn trace(&self) -> f64 {
        assert_eq!(self.rows, self.cols, "trace: matrix is not square");
        (0..self.rows).map(|i| self.get(i, i)).sum()
    }

    /// Dense matrix product `self * other` (single-threaded i-k-j kernel).
    ///
    /// For large matrices prefer [`crate::par::matmul`], which splits rows
    /// across threads; this method is kept for small shapes and tests.
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: inner dimension mismatch {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        matmul_into(self, other, &mut out);
        out
    }

    /// `selfᵀ * other` without materializing the transpose.
    pub fn matmul_tn(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn: row mismatch {}x{} vs {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = DenseMatrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = other.row(r);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self * otherᵀ` without materializing the transpose.
    pub fn matmul_nt(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt: column mismatch {}x{} vs {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = DenseMatrix::zeros(self.rows, other.rows);
        for r in 0..self.rows {
            let a_row = self.row(r);
            for c in 0..other.rows {
                let b_row = other.row(c);
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.set(r, c, acc);
            }
        }
        out
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "matvec: dimension mismatch");
        self.rows_iter()
            .map(|row| row.iter().zip(v).map(|(&a, &b)| a * b).sum())
            .collect()
    }

    /// Row-wise softmax (each output row sums to 1). Numerically stabilized.
    pub fn softmax_rows(&self) -> DenseMatrix {
        let mut out = self.clone();
        out.softmax_rows_inplace();
        out
    }

    /// In-place row-wise softmax (rows are independent, so the pooled path
    /// is bit-identical to serial).
    pub fn softmax_rows_inplace(&mut self) {
        let cols = self.cols.max(1);
        // `exp` makes softmax compute-heavier than plain elementwise ops, so
        // weight the work estimate accordingly.
        if self.cols > 0 && par_elementwise(self.data.len() * 8) {
            self.par_rows_mut(8 * self.cols, |_r, row| softmax_row(row));
            return;
        }
        for row in self.data.chunks_exact_mut(cols) {
            softmax_row(row);
        }
    }

    /// Applies `f` to every row in parallel when `rows * work_per_row`
    /// clears the pool threshold, serially otherwise. Rows are disjoint, so
    /// the pooled path produces output identical to the serial path.
    ///
    /// `work_per_row` is an estimate of flops per row used only for the
    /// serial/parallel decision.
    pub fn par_rows_mut(&mut self, work_per_row: usize, f: impl Fn(usize, &mut [f64]) + Sync) {
        let (rows, cols) = (self.rows, self.cols);
        if cols == 0 || rows == 0 {
            return;
        }
        if pool::should_parallelize(rows.saturating_mul(work_per_row.max(1))) {
            let ptr = SendPtr(self.data.as_mut_ptr());
            let grain = pool::row_grain(rows, 1);
            pool::parallel_for(rows, grain, |lo, hi| {
                // SAFETY: row ranges are disjoint across chunks.
                let dst = unsafe {
                    std::slice::from_raw_parts_mut(ptr.get().add(lo * cols), (hi - lo) * cols)
                };
                for (i, row) in dst.chunks_exact_mut(cols).enumerate() {
                    f(lo + i, row);
                }
            });
            return;
        }
        for (r, row) in self.data.chunks_exact_mut(cols).enumerate() {
            f(r, row);
        }
    }

    /// L2-normalizes every row (rows of zero norm are left untouched).
    pub fn l2_normalize_rows(&self) -> DenseMatrix {
        let mut out = self.clone();
        let cols = out.cols;
        for row in out.data.chunks_exact_mut(cols.max(1)) {
            let norm = row.iter().map(|v| v * v).sum::<f64>().sqrt();
            if norm > 0.0 {
                for v in row.iter_mut() {
                    *v /= norm;
                }
            }
        }
        out
    }

    /// Per-row sums.
    pub fn row_sums(&self) -> Vec<f64> {
        self.rows_iter().map(|r| r.iter().sum()).collect()
    }

    /// Per-column sums.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for row in self.rows_iter() {
            for (o, &v) in out.iter_mut().zip(row) {
                *o += v;
            }
        }
        out
    }

    /// Horizontal concatenation `[self | other]`.
    pub fn hstack(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.rows, other.rows, "hstack: row mismatch");
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        DenseMatrix {
            rows: self.rows,
            cols,
            data,
        }
    }

    /// Selects a subset of rows into a new matrix.
    pub fn select_rows(&self, idx: &[usize]) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(idx.len(), self.cols);
        for (i, &r) in idx.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// Index of the maximum entry in each row (ties broken toward the lower
    /// index). Returns an empty vector for zero-column matrices.
    pub fn argmax_rows(&self) -> Vec<usize> {
        if self.cols == 0 {
            return vec![0; self.rows];
        }
        self.rows_iter()
            .map(|row| {
                let mut best = 0;
                for (i, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// True when every entry is finite (no NaN/∞) — useful as a training
    /// sanity check.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

/// Writes `a * b` into `out` (shapes must already agree). The `i-k-j` loop
/// order keeps the inner loop streaming over contiguous rows of `b` and
/// `out`, which auto-vectorizes well.
pub(crate) fn matmul_into(a: &DenseMatrix, b: &DenseMatrix, out: &mut DenseMatrix) {
    debug_assert_eq!(a.cols, b.rows);
    debug_assert_eq!(out.rows, a.rows);
    debug_assert_eq!(out.cols, b.cols);
    matmul_rows_naive(a, b, 0, a.rows, out.data.as_mut_ptr());
}

/// Stabilized softmax of one row, in place.
#[inline]
fn softmax_row(row: &mut [f64]) {
    let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

/// Transposes input rows `lo..hi` of the `rows`×`cols` row-major `src` into
/// the corresponding output *columns* of the `cols`×`rows` buffer at `dst`,
/// one 32×32 cache block at a time so both sides stay cache-resident.
///
/// Callers must guarantee exclusive access to output entries `(c, r)` for
/// `r ∈ lo..hi` — chunks owning disjoint input-row ranges satisfy this.
fn transpose_block(src: &[f64], dst: *mut f64, rows: usize, cols: usize, lo: usize, hi: usize) {
    const TB: usize = 32;
    let mut r0 = lo;
    while r0 < hi {
        let r1 = (r0 + TB).min(hi);
        let mut c0 = 0;
        while c0 < cols {
            let c1 = (c0 + TB).min(cols);
            for r in r0..r1 {
                for c in c0..c1 {
                    // SAFETY: `(c, r)` with `r ∈ lo..hi` is owned by this
                    // call per the contract above, and `dst` has
                    // `rows * cols` entries.
                    unsafe {
                        *dst.add(c * rows + r) = src[r * cols + c];
                    }
                }
            }
            c0 = c1;
        }
        r0 = r1;
    }
}

// ---------------------------------------------------------------------------
// Blocked matmul microkernel
// ---------------------------------------------------------------------------

/// Register-tile height (rows of `a` per microkernel invocation). Tuned by
/// sweep at 512³: 2×12 beats 4×8 — fewer accumulators spill on plain
/// x86-64 (SSE2) codegen while the wider tile keeps `b` reuse high.
const MR: usize = 2;
/// Register-tile width (columns of `b` per microkernel invocation).
const NR: usize = 12;
/// K-dimension cache block: `KC` rows of `b` (~`KC * NR * 8` bytes per tile
/// column panel) stay in L1/L2 while a whole row panel streams past.
const KC: usize = 128;

/// Computes rows `lo..hi` of `a * b`, accumulating into the full
/// `a.rows × b.cols` row-major buffer at `out` (rows `lo..hi` must be
/// zero-initialized or hold a partial sum to accumulate onto).
///
/// Uses an `MR`×`NR` register-blocked microkernel with `KC` k-tiling for
/// shapes that fit it and falls back to the streaming axpy loop otherwise.
/// For a fixed `(lo, hi)` the result does not depend on how other row
/// ranges are scheduled, so pooled calls are deterministic across thread
/// counts.
///
/// Callers must guarantee exclusive access to output rows `lo..hi`.
pub(crate) fn matmul_rows_into(
    a: &DenseMatrix,
    b: &DenseMatrix,
    lo: usize,
    hi: usize,
    out: *mut f64,
) {
    debug_assert_eq!(a.cols, b.rows);
    debug_assert!(hi <= a.rows);
    let (k_dim, n) = (a.cols, b.cols);
    // Small shapes: tile bookkeeping costs more than it saves, and thin
    // matrices can't fill a register tile. Keep the streaming axpy loop.
    if k_dim < 8 || n < NR || hi - lo < MR {
        matmul_rows_naive(a, b, lo, hi, out);
        return;
    }
    // SIMD dispatch is resolved once per call: it depends only on the CPU
    // and `ANECI_NO_SIMD`, so pooled and serial executions of the same
    // ranges stay bit-identical.
    #[cfg(target_arch = "x86_64")]
    let use_avx2 = crate::simd::avx2_active();
    #[cfg(not(target_arch = "x86_64"))]
    let use_avx2 = false;
    let mut kk = 0;
    while kk < k_dim {
        let kc = KC.min(k_dim - kk);
        let mut r = lo;
        while r + MR <= hi {
            let mut c = 0;
            while c + NR <= n {
                // SAFETY: rows `r..r+MR` lie in `lo..hi`, which this call
                // owns exclusively; the AVX2 path additionally has its
                // feature set verified by the dispatch above.
                #[cfg(target_arch = "x86_64")]
                if use_avx2 {
                    unsafe {
                        crate::simd::tile_2x12_avx2(
                            a.data.as_ptr().add(r * a.cols + kk),
                            a.data.as_ptr().add((r + 1) * a.cols + kk),
                            b.data.as_ptr().add(kk * n + c),
                            n,
                            kc,
                            out.add(r * n + c),
                            out.add((r + 1) * n + c),
                        );
                    }
                    c += NR;
                    continue;
                }
                let _ = use_avx2;
                unsafe { tile_mr_nr(a, b, r, c, kk, kc, out) };
                c += NR;
            }
            if c < n {
                for ri in r..r + MR {
                    axpy_row_range(a, b, ri, kk..kk + kc, c..n, out);
                }
            }
            r += MR;
        }
        for ri in r..hi {
            axpy_row_range(a, b, ri, kk..kk + kc, 0..n, out);
        }
        kk += kc;
    }
}

/// `MR`×`NR` register tile: accumulates
/// `out[r..r+MR, c..c+NR] += a[r..r+MR, kk..kk+kc] * b[kk..kk+kc, c..c+NR]`.
///
/// # Safety
/// The caller must own output rows `r..r+MR` exclusively; `r + MR <= a.rows`
/// and `c + NR <= b.cols` must hold.
#[inline]
unsafe fn tile_mr_nr(
    a: &DenseMatrix,
    b: &DenseMatrix,
    r: usize,
    c: usize,
    kk: usize,
    kc: usize,
    out: *mut f64,
) {
    let n = b.cols;
    let mut acc = [[0.0_f64; NR]; MR];
    for p in kk..kk + kc {
        let mut av = [0.0_f64; MR];
        for (i, v) in av.iter_mut().enumerate() {
            *v = *a.data.get_unchecked((r + i) * a.cols + p);
        }
        // Zero-skip, MR rows wide: keeps the sparse-input benefit of the
        // naive kernel's per-element skip at tile granularity. No per-row
        // skip inside the tile — that branch defeats the compiler's
        // software pipelining and costs more than it saves.
        if av == [0.0; MR] {
            continue;
        }
        let b_row = std::slice::from_raw_parts(b.data.as_ptr().add(p * n + c), NR);
        for (acc_row, &ai) in acc.iter_mut().zip(&av) {
            for (o, &bv) in acc_row.iter_mut().zip(b_row) {
                *o += ai * bv;
            }
        }
    }
    for (i, acc_row) in acc.iter().enumerate() {
        let dst = out.add((r + i) * n + c);
        for (j, &v) in acc_row.iter().enumerate() {
            *dst.add(j) += v;
        }
    }
}

/// Scalar edge kernel: accumulates
/// `out[r, ks] += a[r, ks] * b[ks, cs]` over the k-range `ks` and column
/// range `cs`. The caller must own output row `r` exclusively.
fn axpy_row_range(
    a: &DenseMatrix,
    b: &DenseMatrix,
    r: usize,
    ks: std::ops::Range<usize>,
    cs: std::ops::Range<usize>,
    out: *mut f64,
) {
    let n = b.cols;
    let (c0, c1) = (cs.start, cs.end);
    // SAFETY: the caller owns row `r`, and `c0..c1` is in bounds.
    let out_row = unsafe { std::slice::from_raw_parts_mut(out.add(r * n + c0), c1 - c0) };
    for p in ks {
        let av = a.data[r * a.cols + p];
        if av == 0.0 {
            continue;
        }
        let b_row = &b.data[p * n + c0..p * n + c1];
        for (o, &bv) in out_row.iter_mut().zip(b_row) {
            *o += av * bv;
        }
    }
}

/// Streaming `i-k-j` axpy kernel over rows `lo..hi` (the pre-pool serial
/// kernel, kept for small shapes and as the tile fallback). The caller must
/// own output rows `lo..hi` exclusively.
fn matmul_rows_naive(a: &DenseMatrix, b: &DenseMatrix, lo: usize, hi: usize, out: *mut f64) {
    let n = b.cols;
    for r in lo..hi {
        // SAFETY: the caller owns rows `lo..hi`.
        let out_row = unsafe { std::slice::from_raw_parts_mut(out.add(r * n), n) };
        let a_row = a.row(r);
        for (k, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = b.row(k);
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = DenseMatrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = DenseMatrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_result() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = DenseMatrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, DenseMatrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = DenseMatrix::from_fn(5, 3, |r, c| (r * 3 + c) as f64 * 0.5 - 2.0);
        let b = DenseMatrix::from_fn(5, 4, |r, c| (r + c) as f64 * 0.25);
        let fast = a.matmul_tn(&b);
        let slow = a.transpose().matmul(&b);
        assert!(fast.sub(&slow).max_abs() < 1e-12);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = DenseMatrix::from_fn(4, 6, |r, c| (r as f64 - c as f64) * 0.3);
        let b = DenseMatrix::from_fn(5, 6, |r, c| (r * c) as f64 * 0.1 + 1.0);
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transpose());
        assert!(fast.sub(&slow).max_abs() < 1e-12);
    }

    #[test]
    fn transpose_twice_is_identity() {
        let a = DenseMatrix::from_fn(7, 11, |r, c| (r * 13 + c) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_are_positive() {
        let m =
            DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0], &[100.0, 100.0, 100.0]]);
        let s = m.softmax_rows();
        for row in s.rows_iter() {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
            assert!(row.iter().all(|&v| v > 0.0));
        }
        // Uniform logits give uniform probabilities.
        for &v in s.row(2) {
            assert!((v - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let m = DenseMatrix::from_rows(&[&[1e8, 1e8 + 1.0]]);
        let s = m.softmax_rows();
        assert!(s.all_finite());
        assert!((s.row(0).iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn row_and_col_sums() {
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.row_sums(), vec![3.0, 7.0]);
        assert_eq!(m.col_sums(), vec![4.0, 6.0]);
        assert_eq!(m.sum(), 10.0);
        assert!((m.mean() - 2.5).abs() < 1e-15);
    }

    #[test]
    fn trace_and_dot() {
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.trace(), 5.0);
        assert_eq!(m.dot(&m), 1.0 + 4.0 + 9.0 + 16.0);
    }

    #[test]
    fn argmax_rows_breaks_ties_low() {
        let m = DenseMatrix::from_rows(&[&[0.5, 0.5, 0.1], &[0.0, 1.0, 0.2]]);
        assert_eq!(m.argmax_rows(), vec![0, 1]);
    }

    #[test]
    fn select_rows_copies_expected_rows() {
        let m = DenseMatrix::from_fn(5, 2, |r, c| (r * 2 + c) as f64);
        let s = m.select_rows(&[4, 0]);
        assert_eq!(s, DenseMatrix::from_rows(&[&[8.0, 9.0], &[0.0, 1.0]]));
    }

    #[test]
    fn hstack_concatenates() {
        let a = DenseMatrix::from_rows(&[&[1.0], &[2.0]]);
        let b = DenseMatrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let h = a.hstack(&b);
        assert_eq!(
            h,
            DenseMatrix::from_rows(&[&[1.0, 3.0, 4.0], &[2.0, 5.0, 6.0]])
        );
    }

    #[test]
    fn l2_normalize_rows_unit_norm() {
        let m = DenseMatrix::from_rows(&[&[3.0, 4.0], &[0.0, 0.0]]);
        let n = m.l2_normalize_rows();
        assert!((n.get(0, 0) - 0.6).abs() < 1e-12);
        assert!((n.get(0, 1) - 0.8).abs() < 1e-12);
        // Zero rows are preserved, not NaN.
        assert_eq!(n.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = DenseMatrix::filled(2, 2, 1.0);
        let b = DenseMatrix::filled(2, 2, 2.0);
        a.axpy(0.5, &b);
        assert_eq!(a, DenseMatrix::filled(2, 2, 2.0));
        assert_eq!(a.scale(2.0), DenseMatrix::filled(2, 2, 4.0));
    }

    #[test]
    fn matvec_known() {
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn blocked_matmul_rows_matches_naive() {
        // Shapes chosen to hit the tile path, every edge case (row/col/k
        // remainders), and the small-shape fallback.
        for &(m, k, n) in &[
            (1usize, 9usize, 8usize),
            (4, 8, 8),
            (5, 17, 13),
            (12, 135, 33),
            (7, 256, 8),
        ] {
            let a = DenseMatrix::from_fn(m, k, |r, c| ((r * 31 + c * 7) % 11) as f64 - 5.0);
            let b = DenseMatrix::from_fn(k, n, |r, c| ((r * 13 + c * 3) % 7) as f64 * 0.25 - 0.5);
            let mut blocked = DenseMatrix::zeros(m, n);
            matmul_rows_into(&a, &b, 0, m, blocked.as_mut_slice().as_mut_ptr());
            let naive = a.matmul(&b);
            assert!(
                blocked.sub(&naive).max_abs() < 1e-10,
                "blocked kernel diverged on {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn zip_inplace_matches_zip() {
        let a = DenseMatrix::from_fn(6, 5, |r, c| (r + c) as f64);
        let b = DenseMatrix::from_fn(6, 5, |r, c| (r * c) as f64 * 0.5);
        let mut c = a.clone();
        c.zip_inplace(&b, |x, y| x * 2.0 - y);
        assert_eq!(c, a.zip(&b, |x, y| x * 2.0 - y));
    }
}
