//! End-to-end serving test: train → checkpoint → reload → query.
//!
//! Exercises the full path the `aneci_serve` binary takes, asserting the
//! bit-exactness guarantees the subsystem is built around: the reloaded
//! checkpoint equals the saved one, serve-time edge scores equal eval-time
//! scores, and batch answers don't depend on thread count.

use aneci_core::model::AneciModel;
use aneci_core::{train_aneci, AneciConfig};
use aneci_graph::karate_club;
use aneci_serve::engine::{EngineConfig, QueryEngine, Response};
use aneci_serve::store::EmbeddingStore;

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("aneci_serve_test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn trained() -> (aneci_graph::AttributedGraph, AneciModel) {
    let graph = karate_club();
    let mut config = AneciConfig::for_community_detection(2, 42);
    config.epochs = 30; // enough to populate the kept embedding, fast in CI
    let (model, _) = train_aneci(&graph, &config).unwrap();
    (graph, model)
}

#[test]
fn train_save_reload_serve_round_trip() {
    let (graph, model) = trained();
    let path = temp_path("round_trip.aneci");
    model.save_checkpoint(&path).unwrap();

    // Bit-exact reload.
    let ckpt = AneciModel::load_checkpoint(&path).unwrap();
    assert_eq!(ckpt, model.checkpoint().unwrap());

    // A model restored from the checkpoint serves the same embedding.
    let restored = AneciModel::from_checkpoint(&graph, &ckpt).unwrap();
    assert_eq!(restored.checkpoint().unwrap(), ckpt);

    // Serve from the reloaded checkpoint.
    let engine = QueryEngine::new(
        EmbeddingStore::from_checkpoint(&ckpt),
        EngineConfig::default(),
    );

    // Serve-time edge scores equal the eval scorer on the same embedding —
    // the parity the link-prediction harness depends on.
    for (u, v) in [(0usize, 1usize), (5, 30), (33, 0)] {
        let line = format!(r#"{{"op":"edge_score","u":{u},"v":{v}}}"#);
        match serde_json::from_str::<Response>(&engine.run_line(&line)).unwrap() {
            Response::EdgeScore { score, .. } => {
                assert_eq!(
                    score,
                    aneci_eval::linkpred::edge_score(&ckpt.embedding, u, v)
                );
            }
            other => panic!("expected edge_score, got {other:?}"),
        }
    }

    // Served communities are the model's own argmax memberships.
    let communities = restored.communities();
    for node in [0usize, 16, 33] {
        let line = format!(r#"{{"op":"community","node":{node}}}"#);
        match serde_json::from_str::<Response>(&engine.run_line(&line)).unwrap() {
            Response::Community { community, .. } => {
                assert_eq!(community, communities[node]);
            }
            other => panic!("expected community, got {other:?}"),
        }
    }

    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_checkpoint_is_rejected_at_load() {
    let (_, model) = trained();
    let path = temp_path("truncated.aneci");
    model.save_checkpoint(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    let err = AneciModel::load_checkpoint(&path).unwrap_err();
    assert!(
        matches!(err, aneci_core::AneciError::Checkpoint(_)),
        "expected a checkpoint format error, got: {err}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn batch_serving_deterministic_across_thread_counts() {
    use aneci_linalg::pool;
    pool::force_pool();
    let (_, model) = trained();
    let ckpt = model.checkpoint().unwrap();
    let engine = QueryEngine::new(
        EmbeddingStore::from_checkpoint(&ckpt),
        EngineConfig {
            cache_capacity: 32,
            ..EngineConfig::default()
        },
    );
    let lines: Vec<String> = (0..100)
        .map(|i| match i % 3 {
            0 => format!(r#"{{"op":"top_k","node":{},"k":5}}"#, i % 34),
            1 => format!(r#"{{"op":"community","node":{}}}"#, i % 34),
            _ => format!(
                r#"{{"op":"edge_score","u":{},"v":{}}}"#,
                i % 34,
                (i * 11) % 34
            ),
        })
        .collect();

    let multi = engine.run_batch(&lines);
    pool::set_num_threads(1);
    let single = engine.run_batch(&lines);
    pool::set_num_threads(4);
    assert_eq!(multi, single);

    // 100 distinct queries thrash a 32-entry LRU, so whether the batches
    // themselves hit depends on chunk scheduling; assert on a back-to-back
    // repeat instead, which hits deterministically.
    let (hits_before, _) = engine.cache_stats();
    assert_eq!(engine.run_line(&lines[0]), engine.run_line(&lines[0]));
    let (hits, misses) = engine.cache_stats();
    assert!(hits > hits_before, "repeated query should hit the cache");
    assert!(misses > 0);
}
