//! SDNE (Wang, Cui & Zhu 2016) — Structural Deep Network Embedding.
//!
//! Cited by the paper as the deep-autoencoder lineage ([13]): a deep
//! autoencoder over adjacency rows with
//!
//! * a **second-order** term — reconstruct each node's neighborhood row,
//!   with observed entries up-weighted by `β > 1` (the `B`-matrix trick, so
//!   the sparse 1s aren't drowned by the 0s), and
//! * a **first-order** term — Laplacian-style penalty `Σ_(u,v)∈E ‖z_u −
//!   z_v‖²` pulling connected nodes together.
//!
//! Two encoder/decoder layers with tanh, trained with Adam.

use aneci_autograd::train::{TrainError, Trainer};
use aneci_autograd::{Adam, ParamSet, Tape, Var};
use aneci_graph::AttributedGraph;
use aneci_linalg::rng::{derive_seed, seeded_rng, xavier_uniform};
use aneci_linalg::DenseMatrix;
use aneci_obs::span;

/// SDNE hyperparameters.
#[derive(Clone, Debug)]
pub struct SdneConfig {
    /// Hidden layer width.
    pub hidden_dim: usize,
    /// Embedding width.
    pub embed_dim: usize,
    /// Observed-entry reconstruction up-weight `β` (paper default ≫ 1).
    pub beta: f64,
    /// First-order term weight `α`.
    pub alpha: f64,
    /// Learning rate.
    pub lr: f64,
    /// Training epochs.
    pub epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SdneConfig {
    fn default() -> Self {
        Self {
            hidden_dim: 64,
            embed_dim: 16,
            beta: 10.0,
            alpha: 0.2,
            lr: 0.005,
            epochs: 120,
            seed: 0,
        }
    }
}

/// A trained SDNE model.
pub struct Sdne {
    embedding: DenseMatrix,
    /// Loss history.
    pub losses: Vec<f64>,
}

impl Sdne {
    /// Trains SDNE on the graph's adjacency rows. Panics on divergence;
    /// [`Sdne::try_fit`] is the non-panicking variant.
    pub fn fit(graph: &AttributedGraph, config: &SdneConfig) -> Self {
        Self::try_fit(graph, config).expect("SDNE training diverged")
    }

    /// Trains SDNE, surfacing [`TrainError::Diverged`] when the loss goes
    /// non-finite.
    pub fn try_fit(graph: &AttributedGraph, config: &SdneConfig) -> Result<Self, TrainError> {
        let n = graph.num_nodes();
        let adj = {
            let mut m = DenseMatrix::zeros(n, n);
            for (u, v) in graph.edge_list() {
                m.set(u, v, 1.0);
                m.set(v, u, 1.0);
            }
            m
        };
        // B-matrix: β where an edge exists, 1 elsewhere.
        let b_weights = adj.map(|v| if v > 0.0 { config.beta } else { 1.0 });
        let edges = graph.edge_list();
        let first_order_pairs: std::sync::Arc<[aneci_autograd::BcePair]> = edges
            .iter()
            .map(|&(u, v)| (u as u32, v as u32, 1.0))
            .collect::<Vec<_>>()
            .into();

        let mut rng = seeded_rng(derive_seed(config.seed, 0x5D2E));
        let mut params = ParamSet::new();
        params.register("enc1", xavier_uniform(n, config.hidden_dim, &mut rng));
        params.register(
            "enc2",
            xavier_uniform(config.hidden_dim, config.embed_dim, &mut rng),
        );
        params.register(
            "dec1",
            xavier_uniform(config.embed_dim, config.hidden_dim, &mut rng),
        );
        params.register("dec2", xavier_uniform(config.hidden_dim, n, &mut rng));

        let mut opt = Adam::new(config.lr);
        let mut step = |tape: &mut Tape, w: &[Var], _epoch: usize| -> Var {
            let (z, x_hat) = {
                let _s = span("encode");
                let x = tape.constant(adj.clone());
                let h1 = {
                    let xe = tape.matmul(x, w[0]);
                    tape.tanh(xe)
                };
                let z = {
                    let he = tape.matmul(h1, w[1]);
                    tape.tanh(he)
                };
                let d1 = {
                    let zd = tape.matmul(z, w[2]);
                    tape.tanh(zd)
                };
                (z, tape.matmul(d1, w[3]))
            };

            let _s = span("loss");
            // Second-order: ‖(X̂ − X) ⊙ B‖² (mean).
            let x2 = tape.constant(adj.clone());
            let diff = tape.sub(x_hat, x2);
            let bw = tape.constant(b_weights.clone());
            let weighted = tape.hadamard(diff, bw);
            let sq = tape.hadamard(weighted, weighted);
            let second = tape.mean_all(sq);

            // First-order: pull neighbor embeddings together — use the
            // sampled BCE on positive pairs as a smooth attracting proxy
            // for the Laplacian term (σ(z_u·z_v) → 1 for edges).
            let fo = tape.pair_bce(z, &first_order_pairs);
            let fo_scaled = tape.scale(fo, config.alpha / edges.len().max(1) as f64);

            tape.add(second, fo_scaled)
        };
        let run = Trainer::new(config.epochs).observe_as("train.sdne").run(
            &mut params,
            &mut opt,
            &mut step,
        )?;
        let losses = run.losses;

        let embedding = {
            let mut tape = Tape::new();
            let w = params.leaf_all(&mut tape);
            let x = tape.constant(adj);
            let h1 = {
                let xe = tape.matmul(x, w[0]);
                tape.tanh(xe)
            };
            let z = {
                let he = tape.matmul(h1, w[1]);
                tape.tanh(he)
            };
            tape.value(z).clone()
        };
        Ok(Self { embedding, losses })
    }

    /// The learned embedding.
    pub fn embedding(&self) -> &DenseMatrix {
        &self.embedding
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aneci_graph::karate_club;

    #[test]
    fn loss_decreases_and_embedding_finite() {
        let g = karate_club();
        let model = Sdne::fit(
            &g,
            &SdneConfig {
                epochs: 60,
                embed_dim: 8,
                ..Default::default()
            },
        );
        assert!(model.losses.last().unwrap() < &model.losses[0]);
        assert_eq!(model.embedding().shape(), (34, 8));
        assert!(model.embedding().all_finite());
    }

    #[test]
    fn embedding_separates_factions() {
        let g = karate_club();
        let model = Sdne::fit(
            &g,
            &SdneConfig {
                epochs: 120,
                embed_dim: 8,
                seed: 1,
                ..Default::default()
            },
        );
        let z = model.embedding();
        let labels = g.labels.as_ref().unwrap();
        let dist = |a: usize, b: usize| -> f64 {
            z.row(a)
                .iter()
                .zip(z.row(b))
                .map(|(&x, &y)| (x - y) * (x - y))
                .sum()
        };
        let mut same = (0.0, 0);
        let mut diff = (0.0, 0);
        for i in 0..34 {
            for j in (i + 1)..34 {
                if labels[i] == labels[j] {
                    same = (same.0 + dist(i, j), same.1 + 1);
                } else {
                    diff = (diff.0 + dist(i, j), diff.1 + 1);
                }
            }
        }
        let same_avg = same.0 / same.1 as f64;
        let diff_avg = diff.0 / diff.1 as f64;
        assert!(
            same_avg < diff_avg,
            "same {same_avg:.3} vs diff {diff_avg:.3}"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let g = karate_club();
        let cfg = SdneConfig {
            epochs: 15,
            seed: 3,
            ..Default::default()
        };
        assert_eq!(
            Sdne::fit(&g, &cfg).embedding(),
            Sdne::fit(&g, &cfg).embedding()
        );
    }
}
