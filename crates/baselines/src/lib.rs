//! # aneci-baselines
//!
//! The comparison methods of the AnECI paper, implemented from scratch:
//!
//! * [`deepwalk`] — truncated random walks + skip-gram negative sampling;
//! * [`line`] — LINE with first/second-order proximity objectives;
//! * [`gae`] — GAE and VGAE (GCN encoder + inner-product decoder);
//! * [`dgi`] — Deep Graph Infomax (corruption + bilinear discriminator);
//! * [`gcn`] — the semi-supervised GCN classifier (Table III, and the
//!   surrogate for the targeted attacks);
//! * [`spectral`] — Laplacian-eigenmaps-style spectral embedding;
//! * [`node2vec`] — Node2Vec biased second-order walks;
//! * [`sdne`] — SDNE deep autoencoder over adjacency rows;
//! * [`hope`] — HOPE-style spectral factorization of the high-order proximity;
//! * [`robust_gcn`] — DropEdge-regularized GCN (the defense comparator);
//! * [`done`] — DONE-style twin outlier-aware autoencoders;
//! * [`louvain`] — Louvain modularity maximization (Fig. 7 baseline);
//! * [`dominant`] — Dominant GCN autoencoder for anomaly detection (Fig. 6);
//! * [`embedder`] — a uniform [`embedder::Embedder`] trait + default suite.

pub mod deepwalk;
pub mod defense;
pub mod dgi;
pub mod dominant;
pub mod done;
pub mod embedder;
pub mod gae;
pub mod gcn;
pub mod hope;
pub mod line;
pub mod louvain;
pub mod node2vec;
pub mod robust_gcn;
pub mod sdne;
pub mod spectral;

pub use deepwalk::{deepwalk, random_walks, train_skipgram, DeepWalkConfig};
pub use defense::RobustGcnDefense;
pub use dgi::{Dgi, DgiConfig};
pub use dominant::{Dominant, DominantConfig};
pub use done::{Done, DoneConfig};
pub use embedder::{default_suite, Embedder};
pub use gae::{Gae, GaeConfig};
pub use gcn::{GcnClassifier, GcnConfig};
pub use hope::{hope_embedding, HopeConfig};
pub use line::{line, LineConfig, LineOrder};
pub use louvain::louvain;
pub use node2vec::{biased_walks, node2vec, Node2VecConfig};
pub use robust_gcn::{RobustGcn, RobustGcnConfig};
pub use sdne::{Sdne, SdneConfig};
pub use spectral::{spectral_embedding, top_eigenvectors, SpectralConfig};
