//! k-means++ clustering.
//!
//! Used by the community-detection experiment (Fig. 7): baseline embedding
//! methods don't expose a membership matrix, so — exactly as the paper does
//! with "Kmeans++ [45]" — their embeddings are clustered and the resulting
//! partition scored by modularity.

use aneci_linalg::rng::{sample_weighted, seeded_rng};
use aneci_linalg::DenseMatrix;
use rand::Rng;

/// Result of a k-means run.
#[derive(Clone, Debug)]
pub struct KMeansResult {
    /// Cluster index per row.
    pub assignments: Vec<usize>,
    /// Final centroids (k × d).
    pub centroids: DenseMatrix,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
    /// Iterations executed.
    pub iterations: usize,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

/// Runs k-means with k-means++ seeding until assignment convergence or
/// `max_iter`. Deterministic in `seed`.
#[allow(clippy::needless_range_loop)] // centroid/assignment loops read better indexed
pub fn kmeans(data: &DenseMatrix, k: usize, max_iter: usize, seed: u64) -> KMeansResult {
    let n = data.rows();
    let d = data.cols();
    assert!(k >= 1, "kmeans: k must be positive");
    assert!(n >= k, "kmeans: fewer points than clusters");
    let mut rng = seeded_rng(seed);

    // --- k-means++ seeding ---
    let mut centroids = DenseMatrix::zeros(k, d);
    let first = rng.gen_range(0..n);
    centroids.row_mut(0).copy_from_slice(data.row(first));
    let mut d2: Vec<f64> = (0..n)
        .map(|i| sq_dist(data.row(i), centroids.row(0)))
        .collect();
    for c in 1..k {
        let total: f64 = d2.iter().sum();
        let pick = if total <= 0.0 {
            rng.gen_range(0..n) // all points identical to chosen centroids
        } else {
            sample_weighted(&d2, &mut rng)
        };
        centroids.row_mut(c).copy_from_slice(data.row(pick));
        for (i, dist) in d2.iter_mut().enumerate() {
            *dist = dist.min(sq_dist(data.row(i), centroids.row(c)));
        }
    }

    // --- Lloyd iterations ---
    let mut assignments = vec![0usize; n];
    let mut iterations = 0;
    for it in 0..max_iter {
        iterations = it + 1;
        // Assign.
        let mut changed = false;
        for i in 0..n {
            let row = data.row(i);
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for c in 0..k {
                let dist = sq_dist(row, centroids.row(c));
                if dist < best_d {
                    best_d = dist;
                    best = c;
                }
            }
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        if !changed && it > 0 {
            break;
        }
        // Update.
        let mut sums = DenseMatrix::zeros(k, d);
        let mut counts = vec![0usize; k];
        for i in 0..n {
            counts[assignments[i]] += 1;
            for (s, &v) in sums.row_mut(assignments[i]).iter_mut().zip(data.row(i)) {
                *s += v;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster at the farthest point.
                let far = (0..n)
                    .max_by(|&a, &b| {
                        sq_dist(data.row(a), centroids.row(assignments[a]))
                            .partial_cmp(&sq_dist(data.row(b), centroids.row(assignments[b])))
                            .unwrap()
                    })
                    .unwrap();
                centroids.row_mut(c).copy_from_slice(data.row(far));
            } else {
                let inv = 1.0 / counts[c] as f64;
                let src: Vec<f64> = sums.row(c).iter().map(|&v| v * inv).collect();
                centroids.row_mut(c).copy_from_slice(&src);
            }
        }
    }

    let inertia: f64 = (0..n)
        .map(|i| sq_dist(data.row(i), centroids.row(assignments[i])))
        .sum();
    KMeansResult {
        assignments,
        centroids,
        inertia,
        iterations,
    }
}

/// Runs k-means `restarts` times with derived seeds and keeps the lowest
/// inertia — the standard practice the paper's scikit-learn baseline uses.
pub fn kmeans_best_of(
    data: &DenseMatrix,
    k: usize,
    max_iter: usize,
    restarts: usize,
    seed: u64,
) -> KMeansResult {
    assert!(restarts >= 1, "kmeans_best_of: need at least one restart");
    (0..restarts)
        .map(|r| {
            kmeans(
                data,
                k,
                max_iter,
                aneci_linalg::rng::derive_seed(seed, r as u64),
            )
        })
        .min_by(|a, b| a.inertia.partial_cmp(&b.inertia).unwrap())
        .unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aneci_linalg::rng::{gaussian_matrix, seeded_rng};

    fn blobs(k: usize, per: usize, sep: f64, seed: u64) -> (DenseMatrix, Vec<usize>) {
        let mut rng = seeded_rng(seed);
        let noise = gaussian_matrix(k * per, 2, 0.3, &mut rng);
        let x = DenseMatrix::from_fn(k * per, 2, |r, c| {
            let cl = r / per;
            let center = [sep * (cl as f64), sep * ((cl * cl) as f64 % 5.0)];
            center[c] + noise.get(r, c)
        });
        let y = (0..k * per).map(|r| r / per).collect();
        (x, y)
    }

    #[test]
    fn recovers_separated_blobs() {
        let (x, y) = blobs(3, 60, 4.0, 1);
        let result = kmeans_best_of(&x, 3, 100, 5, 7);
        assert!(crate::metrics::nmi(&result.assignments, &y) > 0.95);
    }

    #[test]
    fn inertia_decreases_with_k() {
        let (x, _) = blobs(4, 40, 3.0, 2);
        let i2 = kmeans_best_of(&x, 2, 100, 3, 3).inertia;
        let i4 = kmeans_best_of(&x, 4, 100, 3, 3).inertia;
        let i8 = kmeans_best_of(&x, 8, 100, 3, 3).inertia;
        assert!(i2 > i4 && i4 > i8);
    }

    #[test]
    fn deterministic_in_seed() {
        let (x, _) = blobs(3, 30, 3.0, 4);
        let a = kmeans(&x, 3, 50, 11);
        let b = kmeans(&x, 3, 50, 11);
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let (x, _) = blobs(2, 3, 5.0, 5);
        let r = kmeans(&x, 6, 50, 9);
        assert!(r.inertia < 1e-9);
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let x = DenseMatrix::from_rows(&[&[0.0, 0.0], &[2.0, 4.0]]);
        let r = kmeans(&x, 1, 10, 0);
        assert!((r.centroids.get(0, 0) - 1.0).abs() < 1e-12);
        assert!((r.centroids.get(0, 1) - 2.0).abs() < 1e-12);
        assert!(r.assignments.iter().all(|&a| a == 0));
    }

    #[test]
    #[should_panic(expected = "fewer points than clusters")]
    fn rejects_k_larger_than_n() {
        let x = DenseMatrix::zeros(2, 2);
        kmeans(&x, 3, 10, 0);
    }
}
