//! Small statistics helpers shared by the evaluation and bench crates.

/// Arithmetic mean of a slice (0 for the empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation of a slice.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Minimum of a slice (NaN-free inputs assumed).
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().cloned().fold(f64::INFINITY, f64::min)
}

/// Maximum of a slice (NaN-free inputs assumed).
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
}

/// Median (averaging the middle two for even lengths). Sorts a copy.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Pearson correlation coefficient of two equal-length slices.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson: length mismatch");
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

/// Numerically-stable log-sum-exp.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = max(xs);
    if !m.is_finite() {
        return m;
    }
    m + xs.iter().map(|x| (x - m).exp()).sum::<f64>().ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn median_even_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|v| -v).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn log_sum_exp_stable() {
        let v = log_sum_exp(&[1000.0, 1000.0]);
        assert!((v - (1000.0 + 2.0f64.ln())).abs() < 1e-9);
    }
}
