//! Kernel smoke benchmark: times each hot kernel serially and through the
//! persistent pool, then writes `BENCH_kernels.json` at the repo root so the
//! perf trajectory is machine-readable from PR to PR.
//!
//! Run with `cargo run --release -p aneci-bench --bin bench_report`.
//! `ANECI_NUM_THREADS` caps the pooled measurements as usual.

use aneci_linalg::rng::{gaussian_matrix, seeded_rng};
use aneci_linalg::{par, pool, CsrMatrix};
use rand::Rng;
use std::hint::black_box;
use std::time::Instant;

struct Row {
    kernel: &'static str,
    shape: String,
    serial_ns: u64,
    pooled_ns: u64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.serial_ns as f64 / self.pooled_ns.max(1) as f64
    }
}

/// Best-of-`reps` wall time in nanoseconds.
fn time_best(reps: usize, mut f: impl FnMut()) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_nanos() as u64);
    }
    best
}

/// Times `f` with the pool threshold forced sky-high (serial path) and then
/// forced to 1 (pooled path).
fn time_both(reps: usize, mut f: impl FnMut()) -> (u64, u64) {
    pool::set_par_threshold(usize::MAX);
    let serial = time_best(reps, &mut f);
    pool::set_par_threshold(1);
    let pooled = time_best(reps, &mut f);
    (serial, pooled)
}

/// Random sparse square matrix with ~`deg` entries per row.
fn random_csr(n: usize, deg: usize, seed: u64) -> CsrMatrix {
    let mut rng = seeded_rng(seed);
    let mut trips = Vec::with_capacity(n * deg);
    for r in 0..n {
        for _ in 0..deg {
            let c = rng.gen_range(0..n);
            trips.push((r, c, rng.gen_range(0.1..1.0)));
        }
    }
    CsrMatrix::from_triplets(n, n, &trips)
}

fn main() {
    pool::force_pool();
    let threads = pool::num_threads();
    let mut rng = seeded_rng(7);
    let mut rows: Vec<Row> = Vec::new();

    // Dense matmul: serial reference is the pre-pool naive i-k-j kernel.
    for &n in &[256usize, 512] {
        let a = gaussian_matrix(n, n, 1.0, &mut rng);
        let b = gaussian_matrix(n, n, 1.0, &mut rng);
        let serial = time_best(3, || {
            black_box(a.matmul(&b));
        });
        pool::set_par_threshold(1);
        let pooled = time_best(3, || {
            black_box(par::matmul(&a, &b));
        });
        rows.push(Row {
            kernel: "matmul",
            shape: format!("{n}x{n}x{n}"),
            serial_ns: serial,
            pooled_ns: pooled,
        });
    }

    // matmul_tn at the decoder's tall-skinny shape.
    {
        let a = gaussian_matrix(4000, 128, 1.0, &mut rng);
        let b = gaussian_matrix(4000, 128, 1.0, &mut rng);
        let serial = time_best(3, || {
            black_box(a.matmul_tn(&b));
        });
        pool::set_par_threshold(1);
        let pooled = time_best(3, || {
            black_box(par::matmul_tn(&a, &b));
        });
        rows.push(Row {
            kernel: "matmul_tn",
            shape: "128x4000x128".into(),
            serial_ns: serial,
            pooled_ns: pooled,
        });
    }

    // Sparse × dense (GCN propagation shape).
    {
        let s = random_csr(8192, 16, 11);
        let d = gaussian_matrix(8192, 128, 1.0, &mut rng);
        let serial = time_best(3, || {
            black_box(s.spmm_dense(&d));
        });
        pool::set_par_threshold(1);
        let pooled = time_best(3, || {
            black_box(par::spmm_dense(&s, &d));
        });
        rows.push(Row {
            kernel: "spmm_dense",
            shape: format!("8192x8192(nnz={})x128", s.nnz()),
            serial_ns: serial,
            pooled_ns: pooled,
        });
    }

    // Sparse × sparse (proximity power shape) — same code path both ways,
    // toggled serial/pooled via the threshold.
    {
        let s = random_csr(4096, 12, 13);
        let (serial, pooled) = time_both(3, || {
            black_box(s.spmm(&s));
        });
        rows.push(Row {
            kernel: "spmm",
            shape: format!("4096^2(nnz={})", s.nnz()),
            serial_ns: serial,
            pooled_ns: pooled,
        });
    }

    // CSR transpose and top-k pruning.
    {
        let s = random_csr(8192, 16, 17);
        let (serial, pooled) = time_both(5, || {
            black_box(s.transpose());
        });
        rows.push(Row {
            kernel: "sparse_transpose",
            shape: format!("8192x8192(nnz={})", s.nnz()),
            serial_ns: serial,
            pooled_ns: pooled,
        });
        let (serial, pooled) = time_both(5, || {
            black_box(s.prune_top_k_per_row(8));
        });
        rows.push(Row {
            kernel: "prune_top_k",
            shape: format!("8192x8192(nnz={}) k=8", s.nnz()),
            serial_ns: serial,
            pooled_ns: pooled,
        });
    }

    // Leave the runtime in its default state for anything run afterwards.
    pool::set_par_threshold(1);

    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!("  \"available_cores\": {cores},\n"));
    json.push_str("  \"kernels\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"shape\": \"{}\", \"serial_ns\": {}, \"pooled_ns\": {}, \"speedup\": {:.3}}}{}\n",
            row.kernel,
            row.shape,
            row.serial_ns,
            row.pooled_ns,
            row.speedup(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    std::fs::write(path, &json).expect("failed to write BENCH_kernels.json");

    println!("wrote {path} ({threads} threads)");
    for row in &rows {
        println!(
            "  {:<18} {:<28} serial {:>12} ns  pooled {:>12} ns  {:.2}x",
            row.kernel,
            row.shape,
            row.serial_ns,
            row.pooled_ns,
            row.speedup()
        );
    }
}
