//! Anomaly detection: plant community outliers (structural / attribute /
//! combined, following ONE) in a synthetic benchmark and detect them with
//! AnECI's membership-entropy score vs the Dominant autoencoder and an
//! isolation forest over GAE embeddings — the Fig. 6 protocol.
//!
//! ```sh
//! cargo run --release --example anomaly_detection
//! ```

use aneci::attacks::{seed_outliers, OutlierType};
use aneci::baselines::{Dominant, DominantConfig, Gae, GaeConfig};
use aneci::eval::{isolation_forest_scores, IsolationForestConfig};
use aneci::prelude::*;

fn main() {
    let seed = 11;
    let graph = Benchmark::Citeseer.generate(0.15, seed);
    println!(
        "graph: {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    let panels: [(&str, Vec<OutlierType>); 4] = [
        ("structural (S)", vec![OutlierType::Structural]),
        ("attribute  (A)", vec![OutlierType::Attribute]),
        ("combined (S&A)", vec![OutlierType::Combined]),
        (
            "mixed    (Mix)",
            vec![
                OutlierType::Structural,
                OutlierType::Attribute,
                OutlierType::Combined,
            ],
        ),
    ];

    println!(
        "\n{:<16}{:>10}{:>10}{:>10}",
        "outliers", "GAE+IF", "Dominant", "AnECI"
    );
    for (name, types) in panels {
        // Corrupt 5% of nodes, matching the paper's setting.
        let outcome = seed_outliers(&graph, 0.05, &types, seed);
        let seeded = outcome.apply(&graph).expect("outlier delta");
        let truth = &outcome.outlier_mask(graph.num_nodes());

        // GAE embedding scored with an isolation forest.
        let gae = Gae::fit(
            &seeded,
            &GaeConfig {
                seed,
                ..Default::default()
            },
        );
        let if_scores = isolation_forest_scores(
            gae.embedding(),
            &IsolationForestConfig {
                seed,
                ..Default::default()
            },
        );
        let auc_gae = auc(&if_scores, truth);

        // Dominant's own reconstruction-error score.
        let dominant = Dominant::fit(
            &seeded,
            &DominantConfig {
                seed,
                ..Default::default()
            },
        );
        let auc_dom = auc(dominant.anomaly_scores(), truth);

        // AnECI: anomalous nodes straddle communities → high membership
        // entropy, with the paper's early-stopping-on-modularity protocol.
        let config = AneciConfig::for_anomaly_detection(graph.num_classes(), 20, seed);
        let (model, _) = train_aneci(&seeded, &config).expect("training failed");
        let scores = node_anomaly_scores(&model.membership());
        let auc_aneci = auc(&scores, truth);

        println!("{name:<16}{auc_gae:>10.3}{auc_dom:>10.3}{auc_aneci:>10.3}");
    }
}
