//! HTTP serving demo: train a model, checkpoint it, stand up the HTTP/1.1
//! server on an ephemeral port, and query it over TCP — the full round trip
//! the `aneci_http` binary serves, in one process.
//!
//! ```sh
//! cargo run --release --example serve_http
//! ```

use std::sync::Arc;

use aneci::prelude::*;
use aneci::serve::http::HttpClient;

fn main() {
    // 1. Train and checkpoint (any trained model works; karate club is
    //    instant).
    let graph = karate_club();
    let config = AneciConfig::for_community_detection(2, 42);
    let (model, _) = train_aneci(&graph, &config).expect("training failed");
    let path = std::env::temp_dir().join("serve_http.aneci");
    model.save_checkpoint(&path).expect("saving checkpoint");
    println!("checkpoint written to {}", path.display());

    // 2. Reload it into an engine and start the server. Port 0 picks a free
    //    ephemeral port; the handle reports what was bound.
    let ckpt = AneciModel::load_checkpoint(&path).expect("loading checkpoint");
    let engine = Arc::new(QueryEngine::new(
        EmbeddingStore::from_checkpoint(&ckpt),
        EngineConfig {
            cache_capacity: 64,
            ..EngineConfig::default()
        },
    ));
    let handle = HttpServer::start(engine, HttpConfig::default(), "127.0.0.1:0")
        .expect("starting HTTP server");
    println!("serving on http://{}", handle.addr());

    // 3. Talk to it over a real TCP connection, reused across requests
    //    (keep-alive). `curl http://ADDR/v1/healthz` would see the same bytes.
    let mut client = HttpClient::connect(handle.addr()).expect("connecting");

    let health = client.get("/v1/healthz").expect("healthz");
    println!(
        "GET /v1/healthz       -> {} {}",
        health.status,
        health.text()
    );

    let query = r#"{"op":"top_k","node":0,"k":5}"#;
    let top_k = client.post("/v1/query", query).expect("query");
    println!("POST /v1/query        -> {} {}", top_k.status, top_k.text());

    // Batches are newline-delimited queries; a malformed line answers with
    // a typed error *in place*, keeping responses aligned with requests.
    let batch = "{\"op\":\"community\",\"node\":8}\n\
                 not json at all\n\
                 {\"op\":\"edge_score\",\"u\":0,\"v\":33}";
    let responses = client.post("/v1/query_batch", batch).expect("batch");
    println!("POST /v1/query_batch  -> {}", responses.status);
    for line in responses.text().trim_end().lines() {
        println!("  {line}");
    }

    // The server's own traffic shows up in its telemetry endpoint.
    let metrics = client.get("/v1/metrics").expect("metrics");
    let served = metrics
        .text()
        .lines()
        .filter(|l| l.contains("serve.http."))
        .count();
    println!(
        "GET /v1/metrics       -> {} ({served} serve.http.* series)",
        metrics.status
    );

    // 4. Graceful shutdown: stop accepting, drain in-flight work, join.
    handle.shutdown();
    println!("server drained and shut down");
}
