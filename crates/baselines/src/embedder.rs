//! A uniform interface over every unsupervised embedding method, so the
//! experiment binaries can sweep methods with one loop.

use crate::deepwalk::{deepwalk, DeepWalkConfig};
use crate::dgi::{Dgi, DgiConfig};
use crate::gae::{Gae, GaeConfig};
use crate::line::{line, LineConfig};
use crate::spectral::{spectral_embedding, SpectralConfig};
use aneci_graph::AttributedGraph;
use aneci_linalg::DenseMatrix;

/// An unsupervised node-embedding method.
pub trait Embedder {
    /// Method name as printed in the paper's tables.
    fn name(&self) -> &'static str;
    /// Produces the `N × dim` embedding.
    fn embed(&self, graph: &AttributedGraph) -> DenseMatrix;
}

/// DeepWalk wrapper.
pub struct DeepWalkEmbedder(pub DeepWalkConfig);
impl Embedder for DeepWalkEmbedder {
    fn name(&self) -> &'static str {
        "DeepWalk"
    }
    fn embed(&self, graph: &AttributedGraph) -> DenseMatrix {
        deepwalk(graph, &self.0)
    }
}

/// LINE wrapper.
pub struct LineEmbedder(pub LineConfig);
impl Embedder for LineEmbedder {
    fn name(&self) -> &'static str {
        "LINE"
    }
    fn embed(&self, graph: &AttributedGraph) -> DenseMatrix {
        line(graph, &self.0)
    }
}

/// GAE wrapper.
pub struct GaeEmbedder(pub GaeConfig);
impl Embedder for GaeEmbedder {
    fn name(&self) -> &'static str {
        if self.0.variational {
            "VGAE"
        } else {
            "GAE"
        }
    }
    fn embed(&self, graph: &AttributedGraph) -> DenseMatrix {
        Gae::fit(graph, &self.0).embedding().clone()
    }
}

/// DGI wrapper.
pub struct DgiEmbedder(pub DgiConfig);
impl Embedder for DgiEmbedder {
    fn name(&self) -> &'static str {
        "DGI"
    }
    fn embed(&self, graph: &AttributedGraph) -> DenseMatrix {
        Dgi::fit(graph, &self.0).embedding().clone()
    }
}

/// Spectral-embedding wrapper.
pub struct SpectralEmbedder(pub SpectralConfig);
impl Embedder for SpectralEmbedder {
    fn name(&self) -> &'static str {
        "Spectral"
    }
    fn embed(&self, graph: &AttributedGraph) -> DenseMatrix {
        spectral_embedding(graph, &self.0)
    }
}

/// The default unsupervised baseline suite at a given embedding size and
/// seed — the methods the paper compares against in every experiment.
pub fn default_suite(dim: usize, seed: u64) -> Vec<Box<dyn Embedder>> {
    vec![
        Box::new(DeepWalkEmbedder(DeepWalkConfig {
            dim,
            seed,
            ..Default::default()
        })),
        Box::new(LineEmbedder(LineConfig {
            dim,
            seed,
            ..Default::default()
        })),
        Box::new(GaeEmbedder(GaeConfig {
            embed_dim: dim,
            seed,
            ..Default::default()
        })),
        Box::new(GaeEmbedder(GaeConfig {
            embed_dim: dim,
            variational: true,
            seed,
            ..Default::default()
        })),
        Box::new(DgiEmbedder(DgiConfig {
            dim,
            seed,
            ..Default::default()
        })),
        Box::new(SpectralEmbedder(SpectralConfig {
            dim,
            seed,
            ..Default::default()
        })),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use aneci_graph::karate_club;

    #[test]
    fn suite_names_are_unique_and_stable() {
        let suite = default_suite(8, 0);
        let names: Vec<&str> = suite.iter().map(|e| e.name()).collect();
        assert_eq!(
            names,
            vec!["DeepWalk", "LINE", "GAE", "VGAE", "DGI", "Spectral"]
        );
    }

    #[test]
    fn every_method_produces_a_finite_embedding() {
        let g = karate_club();
        // Small settings to keep the test fast.
        let suite: Vec<Box<dyn Embedder>> = vec![
            Box::new(DeepWalkEmbedder(DeepWalkConfig {
                dim: 4,
                num_walks: 2,
                walk_length: 10,
                epochs: 1,
                ..Default::default()
            })),
            Box::new(LineEmbedder(LineConfig {
                dim: 4,
                samples_per_edge: 20,
                ..Default::default()
            })),
            Box::new(GaeEmbedder(GaeConfig {
                embed_dim: 4,
                epochs: 10,
                ..Default::default()
            })),
            Box::new(DgiEmbedder(DgiConfig {
                dim: 4,
                epochs: 10,
                ..Default::default()
            })),
            Box::new(SpectralEmbedder(SpectralConfig {
                dim: 4,
                iterations: 30,
                seed: 0,
            })),
        ];
        for method in &suite {
            let z = method.embed(&g);
            assert_eq!(z.rows(), 34, "{}", method.name());
            assert!(z.all_finite(), "{}", method.name());
        }
    }
}
