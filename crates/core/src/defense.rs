//! Unified defense API — the mirror image of `aneci_attacks::Attack`.
//!
//! Every robustness strategy in the repo is exposed behind one trait so the
//! bench robustness matrix (`bench_report --robust`) and downstream callers
//! can sweep attacks × defenses without per-strategy glue:
//!
//! * [`NoDefense`] — plain AnECI training, the undefended baseline;
//! * [`AneciPlus`] — the paper's Algorithm 1 two-stage denoiser
//!   ([`aneci_plus`]);
//! * [`SmoothedEncoder`] — randomized smoothing: a majority vote over `K`
//!   DropEdge-style edge-dropped forward passes of the trained encoder,
//!   with a per-vote derived RNG stream so the vote is bit-reproducible;
//! * `RobustGcnDefense` (in `aneci-baselines`) — the DropEdge-trained GCN
//!   baseline behind the same trait.
//!
//! Each defense returns a [`DefenseOutcome`]: the embedding and soft
//! membership it stands behind, hard communities, per-node anomaly scores
//! (the serving layer's poisoned-neighborhood detector consumes these), the
//! edges it removed, and — for certifying defenses — a per-node certificate
//! mask.

use crate::anomaly::combined_anomaly_scores;
use crate::config::AneciConfig;
use crate::denoise::{aneci_plus, DenoiseConfig};
use crate::error::AneciError;
use crate::model::train_aneci;
use aneci_graph::AttributedGraph;
use aneci_linalg::rng::{derive_seed, seeded_rng};
use aneci_linalg::DenseMatrix;
use rand::Rng;

/// RNG stream tag for the smoothing vote (child streams are derived per
/// vote index, so vote `v` sees the same bits regardless of `K`).
const SMOOTHING_STREAM: u64 = 0x5E0D;

/// What a defense produced: the artifacts every downstream consumer
/// (classification probes, the serving snapshot, the bench matrix) needs.
#[derive(Clone, Debug)]
pub struct DefenseOutcome {
    /// The defended embedding `Z` (`N×h`).
    pub embedding: DenseMatrix,
    /// Row-stochastic soft membership the defense stands behind.
    pub membership: DenseMatrix,
    /// Hard community assignment (`argmax` over membership rows).
    pub communities: Vec<usize>,
    /// Per-node anomaly scores in `[0, 1]` — entropy + neighborhood
    /// disagreement; the serving layer carries these into its snapshot for
    /// query-time poisoned-neighborhood detection.
    pub anomaly_scores: Vec<f64>,
    /// Edges the defense physically removed (empty for non-pruning
    /// defenses).
    pub removed_edges: Vec<(usize, usize)>,
    /// For certifying defenses: `certified[i]` means node `i`'s community
    /// was stable across the randomized votes. `None` when the defense does
    /// not certify.
    pub certified: Option<Vec<bool>>,
}

impl DefenseOutcome {
    /// Fraction of nodes carrying a certificate (0 when not certifying).
    pub fn certified_fraction(&self) -> f64 {
        match &self.certified {
            Some(mask) if !mask.is_empty() => {
                mask.iter().filter(|&&c| c).count() as f64 / mask.len() as f64
            }
            _ => 0.0,
        }
    }
}

/// A robustness strategy: takes a (possibly poisoned) graph, returns the
/// embedding and community structure it is willing to defend.
pub trait Defense {
    /// Stable identifier used in bench tables and obs labels.
    fn name(&self) -> &'static str;

    /// Runs the defense end to end on `graph`.
    fn defend(&self, graph: &AttributedGraph) -> Result<DefenseOutcome, AneciError>;
}

/// The undefended baseline: plain AnECI training on the input graph.
#[derive(Clone, Debug)]
pub struct NoDefense {
    /// Training configuration.
    pub config: AneciConfig,
}

impl Defense for NoDefense {
    fn name(&self) -> &'static str {
        "none"
    }

    fn defend(&self, graph: &AttributedGraph) -> Result<DefenseOutcome, AneciError> {
        let (model, _) = train_aneci(graph, &self.config)?;
        let membership = model.membership();
        let anomaly_scores = combined_anomaly_scores(&membership, graph);
        Ok(DefenseOutcome {
            embedding: model.embedding().clone(),
            communities: membership.argmax_rows(),
            membership,
            anomaly_scores,
            removed_edges: Vec::new(),
            certified: None,
        })
    }
}

/// AnECI+ (Algorithm 1): score edges with a first-pass model, drop the most
/// anomalous, retrain on the denoised graph.
#[derive(Clone, Debug)]
pub struct AneciPlus {
    /// Training configuration (both passes).
    pub config: AneciConfig,
    /// Denoising schedule `ψ(x) = γ / (1 + e^{−α(x−β)})`.
    pub denoise: DenoiseConfig,
}

impl Defense for AneciPlus {
    fn name(&self) -> &'static str {
        "aneci_plus"
    }

    fn defend(&self, graph: &AttributedGraph) -> Result<DefenseOutcome, AneciError> {
        let result = aneci_plus(graph, &self.config, &self.denoise, None)?;
        let membership = result.model.membership();
        // Score anomalies against the denoised topology the model trained on.
        let anomaly_scores = combined_anomaly_scores(&membership, &result.denoised_graph);
        Ok(DefenseOutcome {
            embedding: result.model.embedding().clone(),
            communities: membership.argmax_rows(),
            membership,
            anomaly_scores,
            removed_edges: result.removed_edges,
            certified: None,
        })
    }
}

/// Randomized smoothing over the trained encoder: `K` forward passes, each
/// on an independently edge-dropped copy of the graph, vote on every node's
/// community. Nodes whose winning community collects at least
/// `cert_threshold · K` votes are *certified* stable under the drop noise.
///
/// The encoder is trained **once** on the input graph; only the inference
/// adjacency is resampled, so the vote costs `K` sparse forward passes, not
/// `K` trainings. Vote `v` draws from the stream
/// `derive_seed(derive_seed(seed, 0x5E0D), v)` — bit-reproducible and
/// independent of `K`, so enlarging the vote refines, never reshuffles,
/// earlier votes.
#[derive(Clone, Debug)]
pub struct SmoothedEncoder {
    /// Training configuration for the base encoder.
    pub config: AneciConfig,
    /// Number of randomized votes `K`.
    pub votes: usize,
    /// Per-edge drop probability for each vote.
    pub drop_rate: f64,
    /// Fraction of votes the winner must collect for a certificate.
    pub cert_threshold: f64,
}

impl SmoothedEncoder {
    /// The paper-shaped default: 16 votes at 10% edge drop, certificates at
    /// a ⅔ supermajority.
    pub fn with_config(config: AneciConfig) -> Self {
        Self {
            config,
            votes: 16,
            drop_rate: 0.1,
            cert_threshold: 2.0 / 3.0,
        }
    }

    /// One non-tape encoder forward on an arbitrary adjacency:
    /// `Z = Â·leaky_relu(Â·X·W₁)·W₂` with the trained weights.
    fn forward(
        &self,
        graph: &AttributedGraph,
        adj: &aneci_linalg::CsrMatrix,
        w1: &DenseMatrix,
        w2: &DenseMatrix,
    ) -> DenseMatrix {
        let alpha = self.config.leaky_alpha;
        let xw = graph.features().matmul(w1);
        let h1 = adj.spmm_dense(&xw);
        let a1 = h1.map(|x| if x >= 0.0 { x } else { alpha * x });
        let hw = a1.matmul(w2);
        adj.spmm_dense(&hw)
    }
}

impl Defense for SmoothedEncoder {
    fn name(&self) -> &'static str {
        "smoothing"
    }

    fn defend(&self, graph: &AttributedGraph) -> Result<DefenseOutcome, AneciError> {
        if self.votes == 0 {
            return Err(AneciError::Config(
                "SmoothedEncoder needs at least one vote".into(),
            ));
        }
        if !(0.0..1.0).contains(&self.drop_rate) {
            return Err(AneciError::Config(format!(
                "drop_rate must be in [0, 1): {}",
                self.drop_rate
            )));
        }
        let (model, _) = train_aneci(graph, &self.config)?;
        let ckpt = model.checkpoint()?;
        let w1 = &ckpt.weights[0].1;
        let w2 = &ckpt.weights[1].1;

        let n = graph.num_nodes();
        let k = self.config.embed_dim;
        let edges = graph.edge_list();
        let vote_stream = derive_seed(self.config.seed, SMOOTHING_STREAM);
        let mut vote_counts = vec![0usize; n * k];
        let mut z_sum = DenseMatrix::zeros(n, k);
        for v in 0..self.votes {
            let mut rng = seeded_rng(derive_seed(vote_stream, v as u64));
            let dropped: Vec<(usize, usize)> = edges
                .iter()
                .copied()
                .filter(|_| rng.gen::<f64>() < self.drop_rate)
                .collect();
            let sampled = graph.with_edits(&[], &dropped);
            let z = self.forward(graph, &sampled.norm_adjacency(), w1, w2);
            for (i, winner) in z.softmax_rows().argmax_rows().into_iter().enumerate() {
                vote_counts[i * k + winner] += 1;
            }
            z_sum.add_assign(&z);
        }

        let membership = DenseMatrix::from_fn(n, k, |i, c| {
            vote_counts[i * k + c] as f64 / self.votes as f64
        });
        let communities = membership.argmax_rows();
        let needed = (self.cert_threshold * self.votes as f64).ceil() as usize;
        let certified: Vec<bool> = communities
            .iter()
            .enumerate()
            .map(|(i, &c)| vote_counts[i * k + c] >= needed)
            .collect();
        let anomaly_scores = combined_anomaly_scores(&membership, graph);
        z_sum.scale_inplace(1.0 / self.votes as f64);
        Ok(DefenseOutcome {
            embedding: z_sum,
            membership,
            communities,
            anomaly_scores,
            removed_edges: Vec::new(),
            certified: Some(certified),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aneci_graph::{generate_sbm, FeatureKind, SbmConfig};

    fn graph(seed: u64) -> AttributedGraph {
        generate_sbm(
            &SbmConfig {
                num_nodes: 120,
                num_classes: 3,
                target_edges: 700,
                homophily: 0.9,
                degree_exponent: None,
                feature_dim: 40,
                features: FeatureKind::BagOfWords {
                    p_signal: 0.3,
                    p_noise: 0.01,
                },
            },
            seed,
        )
    }

    fn quick_cfg(seed: u64) -> AneciConfig {
        AneciConfig {
            hidden_dim: 16,
            embed_dim: 3,
            epochs: 40,
            stop: crate::config::StopStrategy::FixedEpochs,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn no_defense_outcome_is_consistent() {
        let g = graph(1);
        let out = NoDefense {
            config: quick_cfg(1),
        }
        .defend(&g)
        .unwrap();
        assert_eq!(out.embedding.rows(), g.num_nodes());
        assert_eq!(out.communities.len(), g.num_nodes());
        assert_eq!(out.anomaly_scores.len(), g.num_nodes());
        assert!(out.removed_edges.is_empty());
        assert!(out.certified.is_none());
        assert_eq!(out.certified_fraction(), 0.0);
        for row in out.membership.rows_iter() {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "membership row sums to {s}");
        }
    }

    #[test]
    fn aneci_plus_defense_prunes_edges() {
        let g = graph(2);
        let out = AneciPlus {
            config: quick_cfg(2),
            denoise: DenoiseConfig::default(),
        }
        .defend(&g)
        .unwrap();
        assert!(!out.removed_edges.is_empty(), "denoiser removed nothing");
        assert_eq!(out.communities.len(), g.num_nodes());
    }

    #[test]
    fn smoothing_vote_is_bit_reproducible() {
        let g = graph(3);
        let defense = SmoothedEncoder {
            votes: 8,
            drop_rate: 0.15,
            ..SmoothedEncoder::with_config(quick_cfg(3))
        };
        let a = defense.defend(&g).unwrap();
        let b = defense.defend(&g).unwrap();
        assert_eq!(a.membership, b.membership);
        assert_eq!(a.embedding, b.embedding);
        assert_eq!(a.certified, b.certified);
        // Vote fractions are multiples of 1/K and rows sum to one.
        for row in a.membership.rows_iter() {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
            for &p in row {
                let scaled = p * 8.0;
                assert!((scaled - scaled.round()).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn smoothing_certifies_most_clean_nodes() {
        let g = graph(4);
        let out = SmoothedEncoder::with_config(quick_cfg(4))
            .defend(&g)
            .unwrap();
        let frac = out.certified_fraction();
        assert!(frac > 0.5, "clean-graph certification collapsed: {frac:.3}");
    }

    #[test]
    fn defenses_compose_as_trait_objects() {
        let g = graph(5);
        let defenses: Vec<Box<dyn Defense>> = vec![
            Box::new(NoDefense {
                config: quick_cfg(5),
            }),
            Box::new(SmoothedEncoder {
                votes: 4,
                ..SmoothedEncoder::with_config(quick_cfg(5))
            }),
        ];
        for d in &defenses {
            let out = d.defend(&g).unwrap();
            assert_eq!(out.communities.len(), g.num_nodes(), "{}", d.name());
        }
    }

    #[test]
    fn smoothing_rejects_bad_config() {
        let g = graph(6);
        let zero_votes = SmoothedEncoder {
            votes: 0,
            ..SmoothedEncoder::with_config(quick_cfg(6))
        };
        assert!(zero_votes.defend(&g).is_err());
        let bad_rate = SmoothedEncoder {
            drop_rate: 1.0,
            ..SmoothedEncoder::with_config(quick_cfg(6))
        };
        assert!(bad_rate.defend(&g).is_err());
    }
}
