//! Binary model checkpoints — the `.aneci` format.
//!
//! A trained [`crate::AneciModel`] used to live and die inside one process;
//! the serving layer (`aneci-serve`) needs a durable artifact it can load
//! without retraining. The `.aneci` file stores everything a query engine or
//! a warm-restart needs, **bit-exactly**:
//!
//! * the embedding matrix `Z` kept by training,
//! * the soft community-membership matrix `P = softmax(Z)`,
//! * the encoder weights (so the model can be rebuilt on its graph), and
//! * the full [`AneciConfig`].
//!
//! # Layout (all integers little-endian)
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"ANECIckp"
//! 8       4     format version (u32), currently 1
//! 12      4     section count (u32)
//! 16      …     sections, each: tag [u8;4] | payload_len (u64) | payload
//! end-4   4     CRC-32 (IEEE) of every preceding byte
//! ```
//!
//! Sections (order not significant; unknown tags are skipped so newer
//! writers can extend the format):
//!
//! | tag    | payload |
//! |--------|---------|
//! | `CFG\0` | [`AneciConfig`] as UTF-8 JSON |
//! | `EMB\0` | embedding matrix |
//! | `MEM\0` | membership matrix |
//! | `WTS\0` | weight count (u32), then per weight: name length (u16), UTF-8 name, matrix |
//!
//! A matrix is `rows (u64) | cols (u64) | rows·cols f64 values` in row-major
//! order. `f64`s round-trip through `to_le_bytes`/`from_le_bytes`, which is
//! exact for every bit pattern, so `load(save(m))` reproduces the matrices
//! bit-for-bit. Truncated files, wrong magic, length overruns and checksum
//! mismatches all fail loudly with [`CheckpointError::Format`].

use crate::config::AneciConfig;
use aneci_linalg::DenseMatrix;
use std::fmt;
use std::io;
use std::path::Path;

/// File magic: identifies an AnECI checkpoint regardless of extension.
pub const MAGIC: [u8; 8] = *b"ANECIckp";
/// Current format version.
pub const FORMAT_VERSION: u32 = 1;

const TAG_CONFIG: [u8; 4] = *b"CFG\0";
const TAG_EMBEDDING: [u8; 4] = *b"EMB\0";
const TAG_MEMBERSHIP: [u8; 4] = *b"MEM\0";
const TAG_WEIGHTS: [u8; 4] = *b"WTS\0";

/// Why a checkpoint could not be read or written.
#[derive(Debug)]
pub enum CheckpointError {
    /// OS-level failure (file missing, permissions, disk full…).
    Io(io::Error),
    /// The bytes are not a valid checkpoint (truncated, corrupt, wrong
    /// magic/version, checksum mismatch…). The message says which.
    Format(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Format(m) => write!(f, "invalid checkpoint: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<CheckpointError> for io::Error {
    fn from(e: CheckpointError) -> Self {
        match e {
            CheckpointError::Io(e) => e,
            CheckpointError::Format(m) => io::Error::new(io::ErrorKind::InvalidData, m),
        }
    }
}

fn format_err<T>(msg: impl Into<String>) -> Result<T, CheckpointError> {
    Err(CheckpointError::Format(msg.into()))
}

/// A durable snapshot of a trained model: everything the serving layer needs.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Full training configuration (round-trips through JSON).
    pub config: AneciConfig,
    /// The kept embedding matrix `Z` (`N×h`).
    pub embedding: DenseMatrix,
    /// The soft membership matrix `P = softmax(Z)` (`N×h`).
    pub membership: DenseMatrix,
    /// Named encoder weights in slot order (`w1`, `w2`).
    pub weights: Vec<(String, DenseMatrix)>,
}

impl Checkpoint {
    /// Serializes to the `.aneci` byte format.
    pub fn to_bytes(&self) -> Result<Vec<u8>, CheckpointError> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&4u32.to_le_bytes());

        let cfg_json = serde_json::to_vec(&self.config)
            .map_err(|e| CheckpointError::Format(format!("config serialization: {e}")))?;
        write_section(&mut out, TAG_CONFIG, &cfg_json);
        write_section(&mut out, TAG_EMBEDDING, &encode_matrix(&self.embedding));
        write_section(&mut out, TAG_MEMBERSHIP, &encode_matrix(&self.membership));

        let mut wts = Vec::new();
        wts.extend_from_slice(&(self.weights.len() as u32).to_le_bytes());
        for (name, m) in &self.weights {
            let bytes = name.as_bytes();
            if bytes.len() > u16::MAX as usize {
                return format_err(format!("weight name too long: {} bytes", bytes.len()));
            }
            wts.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
            wts.extend_from_slice(bytes);
            wts.extend_from_slice(&encode_matrix(m));
        }
        write_section(&mut out, TAG_WEIGHTS, &wts);

        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        Ok(out)
    }

    /// Parses the `.aneci` byte format, verifying magic, version, section
    /// framing and the trailing CRC-32.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        if bytes.len() < MAGIC.len() + 4 + 4 + 4 {
            return format_err(format!("file too short ({} bytes)", bytes.len()));
        }
        if bytes[..8] != MAGIC {
            return format_err("bad magic (not an .aneci checkpoint)");
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        let computed = crc32(body);
        if stored != computed {
            return format_err(format!(
                "checksum mismatch (stored {stored:#010x}, computed {computed:#010x}) — file corrupt or truncated"
            ));
        }

        let mut r = Reader::new(&body[8..]);
        let version = r.u32()?;
        if version != FORMAT_VERSION {
            return format_err(format!(
                "unsupported format version {version} (this build reads {FORMAT_VERSION})"
            ));
        }
        let sections = r.u32()?;

        let mut config: Option<AneciConfig> = None;
        let mut embedding: Option<DenseMatrix> = None;
        let mut membership: Option<DenseMatrix> = None;
        let mut weights: Option<Vec<(String, DenseMatrix)>> = None;

        for _ in 0..sections {
            let tag = r.tag()?;
            let len = r.u64()? as usize;
            let payload = r.take(len)?;
            match tag {
                TAG_CONFIG => {
                    let cfg: AneciConfig = serde_json::from_slice(payload)
                        .map_err(|e| CheckpointError::Format(format!("config section: {e}")))?;
                    cfg.validate()
                        .map_err(|e| CheckpointError::Format(e.to_string()))?;
                    config = Some(cfg);
                }
                TAG_EMBEDDING => embedding = Some(decode_matrix(payload, "embedding")?),
                TAG_MEMBERSHIP => membership = Some(decode_matrix(payload, "membership")?),
                TAG_WEIGHTS => {
                    let mut wr = Reader::new(payload);
                    let count = wr.u32()? as usize;
                    let mut ws = Vec::with_capacity(count.min(1024));
                    for _ in 0..count {
                        let name_len = wr.u16()? as usize;
                        let name = std::str::from_utf8(wr.take(name_len)?)
                            .map_err(|_| CheckpointError::Format("weight name not UTF-8".into()))?
                            .to_string();
                        let m = wr.matrix(&name)?;
                        ws.push((name, m));
                    }
                    wr.finish("weights section")?;
                    weights = Some(ws);
                }
                // Unknown tags: skip, so future writers can add sections.
                _ => {}
            }
        }
        r.finish("checkpoint body")?;

        let config = config.ok_or_else(|| CheckpointError::Format("missing CFG section".into()))?;
        let embedding =
            embedding.ok_or_else(|| CheckpointError::Format("missing EMB section".into()))?;
        let membership =
            membership.ok_or_else(|| CheckpointError::Format("missing MEM section".into()))?;
        let weights =
            weights.ok_or_else(|| CheckpointError::Format("missing WTS section".into()))?;
        if embedding.shape() != membership.shape() {
            return format_err(format!(
                "embedding {}x{} and membership {}x{} shapes disagree",
                embedding.rows(),
                embedding.cols(),
                membership.rows(),
                membership.cols()
            ));
        }
        Ok(Self {
            config,
            embedding,
            membership,
            weights,
        })
    }

    /// Writes the checkpoint to a file (conventionally `*.aneci`).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        let bytes = self.to_bytes()?;
        std::fs::write(path, bytes)?;
        Ok(())
    }

    /// Reads a checkpoint from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
    }

    /// Number of nodes covered by the checkpointed embedding.
    pub fn num_nodes(&self) -> usize {
        self.embedding.rows()
    }

    /// Embedding dimensionality `h`.
    pub fn embed_dim(&self) -> usize {
        self.embedding.cols()
    }
}

fn write_section(out: &mut Vec<u8>, tag: [u8; 4], payload: &[u8]) {
    out.extend_from_slice(&tag);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
}

fn encode_matrix(m: &DenseMatrix) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + m.len() * 8);
    out.extend_from_slice(&(m.rows() as u64).to_le_bytes());
    out.extend_from_slice(&(m.cols() as u64).to_le_bytes());
    for &v in m.as_slice() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn decode_matrix(payload: &[u8], what: &str) -> Result<DenseMatrix, CheckpointError> {
    let mut r = Reader::new(payload);
    let m = r.matrix(what)?;
    r.finish(what)?;
    Ok(m)
}

/// Bounds-checked little-endian cursor: every read that would run past the
/// end becomes a `Format` error, so truncated files cannot panic.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| {
                CheckpointError::Format(format!(
                    "truncated: wanted {n} bytes at offset {}, only {} remain",
                    self.pos,
                    self.bytes.len() - self.pos
                ))
            })?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, CheckpointError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn tag(&mut self) -> Result<[u8; 4], CheckpointError> {
        Ok(self.take(4)?.try_into().unwrap())
    }

    fn matrix(&mut self, what: &str) -> Result<DenseMatrix, CheckpointError> {
        let rows = self.u64()? as usize;
        let cols = self.u64()? as usize;
        let count = rows.checked_mul(cols).ok_or_else(|| {
            CheckpointError::Format(format!("{what}: shape {rows}x{cols} overflows"))
        })?;
        let byte_len = count
            .checked_mul(8)
            .ok_or_else(|| CheckpointError::Format(format!("{what}: {count} entries overflow")))?;
        let raw = self.take(byte_len).map_err(|_| {
            CheckpointError::Format(format!(
                "{what}: declares {rows}x{cols} entries but payload is truncated"
            ))
        })?;
        let data: Vec<f64> = raw
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Ok(DenseMatrix::from_vec(rows, cols, data))
    }

    fn finish(&self, what: &str) -> Result<(), CheckpointError> {
        if self.pos != self.bytes.len() {
            return format_err(format!(
                "{what}: {} trailing bytes after the declared content",
                self.bytes.len() - self.pos
            ));
        }
        Ok(())
    }
}

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the same
/// checksum gzip/PNG use. Table-driven, computed once at first use.
pub fn crc32(bytes: &[u8]) -> u32 {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StopStrategy;
    use crate::model::train_aneci;
    use aneci_graph::karate_club;

    fn trained_checkpoint() -> Checkpoint {
        let g = karate_club();
        let cfg = AneciConfig {
            hidden_dim: 8,
            embed_dim: 2,
            epochs: 5,
            stop: StopStrategy::FixedEpochs,
            seed: 3,
            ..Default::default()
        };
        let (model, _) = train_aneci(&g, &cfg).unwrap();
        model.checkpoint().unwrap()
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let ckpt = trained_checkpoint();
        let bytes = ckpt.to_bytes().unwrap();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back.embedding, ckpt.embedding);
        assert_eq!(back.membership, ckpt.membership);
        assert_eq!(back.weights, ckpt.weights);
        assert_eq!(back.config, ckpt.config);
        // Byte-level determinism too: re-serializing reproduces the file.
        assert_eq!(back.to_bytes().unwrap(), bytes);
    }

    #[test]
    fn file_roundtrip() {
        let ckpt = trained_checkpoint();
        let dir = std::env::temp_dir().join("aneci_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.aneci");
        ckpt.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(back, ckpt);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn truncation_and_corruption_fail_loudly() {
        let ckpt = trained_checkpoint();
        let bytes = ckpt.to_bytes().unwrap();

        // Every strict prefix must be rejected (checksum or framing).
        for cut in [0, 4, 12, 40, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                Checkpoint::from_bytes(&bytes[..cut]).is_err(),
                "accepted a {cut}-byte truncation"
            );
        }

        // A single flipped byte anywhere must trip the CRC.
        for pos in [0, 9, 20, bytes.len() / 2, bytes.len() - 5] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            assert!(
                Checkpoint::from_bytes(&bad).is_err(),
                "accepted a flipped byte at {pos}"
            );
        }

        // Wrong magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            Checkpoint::from_bytes(&bad),
            Err(CheckpointError::Format(_))
        ));
    }

    #[test]
    fn error_messages_distinguish_kinds() {
        let err = Checkpoint::from_bytes(b"short").unwrap_err();
        assert!(err.to_string().contains("too short"), "{err}");
        let io_err: io::Error = err.into();
        assert_eq!(io_err.kind(), io::ErrorKind::InvalidData);
    }
}
