//! Table V — running-time comparison.
//!
//! Wall-clock seconds per training epoch and total (training + embedding
//! extraction) per method per dataset, mirroring the paper's two blocks.
//! Criterion microbenches in `benches/` cover the kernel-level numbers.

use crate::{print_table, write_csv, ExpArgs};
use aneci_baselines::{
    deepwalk, line, DeepWalkConfig, Dgi, DgiConfig, Gae, GaeConfig, GcnClassifier, GcnConfig,
    LineConfig,
};
use aneci_core::{train_aneci, AneciConfig, StopStrategy};
use aneci_eval::time_it;

/// Runs the Table V timing sweep (1 round; timings are means over epochs).
pub fn run(args: &ExpArgs) {
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for &dataset in &args.datasets {
        let graph = dataset.generate(args.scale, args.seed);
        eprintln!(
            "[table5] {}: N={} M={}",
            dataset.name(),
            graph.num_nodes(),
            graph.num_edges()
        );
        let mut push = |method: &str, per_epoch: f64, total: f64| {
            rows.push(vec![
                dataset.name().to_string(),
                method.to_string(),
                format!("{per_epoch:.4}"),
                format!("{total:.2}"),
            ]);
            csv_rows.push(vec![
                method.to_string(),
                dataset.name().to_string(),
                format!("{per_epoch:.5}"),
                format!("{total:.3}"),
            ]);
        };

        let (_, t) = time_it(|| {
            deepwalk(
                &graph,
                &DeepWalkConfig {
                    seed: args.seed,
                    ..Default::default()
                },
            )
        });
        push("DeepWalk", t / 2.0, t); // 2 corpus passes ≈ "epochs"

        let (_, t) = time_it(|| {
            line(
                &graph,
                &LineConfig {
                    seed: args.seed,
                    ..Default::default()
                },
            )
        });
        push("LINE", t, t);

        let gae_cfg = GaeConfig {
            seed: args.seed,
            ..Default::default()
        };
        let (_, t) = time_it(|| Gae::fit(&graph, &gae_cfg));
        push("GAE", t / gae_cfg.epochs as f64, t);

        let vgae_cfg = GaeConfig {
            variational: true,
            seed: args.seed,
            ..Default::default()
        };
        let (_, t) = time_it(|| Gae::fit(&graph, &vgae_cfg));
        push("VGAE", t / vgae_cfg.epochs as f64, t);

        let dgi_cfg = DgiConfig {
            seed: args.seed,
            ..Default::default()
        };
        let (_, t) = time_it(|| Dgi::fit(&graph, &dgi_cfg));
        push("DGI", t / dgi_cfg.epochs as f64, t);

        let gcn_cfg = GcnConfig {
            patience: 0,
            seed: args.seed,
            ..Default::default()
        };
        let (model, t) = time_it(|| GcnClassifier::fit(&graph, &gcn_cfg));
        push("GCN", t / model.train_losses.len() as f64, t);

        let aneci_cfg = AneciConfig {
            epochs: 150,
            stop: StopStrategy::FixedEpochs,
            seed: args.seed,
            ..Default::default()
        };
        let ((_, report), t) = time_it(|| train_aneci(&graph, &aneci_cfg).unwrap());
        push("AnECI", t / report.epochs_run as f64, t);
    }
    print_table(
        "Table V — running time (seconds/epoch, total seconds)",
        &["dataset", "method", "s/epoch", "total s"],
        &rows,
    );
    let path = write_csv(
        &args.out_dir,
        "table5.csv",
        "method,dataset,sec_per_epoch,total_sec",
        &csv_rows,
    )
    .expect("write csv");
    println!("wrote {}", path.display());
}
