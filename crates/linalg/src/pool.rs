//! Persistent worker-pool runtime shared by every multi-threaded kernel.
//!
//! Earlier revisions spawned fresh OS threads through `std::thread::scope` on
//! every kernel call; at thousands of small-to-medium products per training
//! epoch the spawn/join overhead dominated. This module keeps a single,
//! lazily-initialized pool of workers alive for the whole process and exposes
//! a chunked [`parallel_for`] on top of it.
//!
//! # Threading policy
//!
//! * **Pool size.** The pool is created on first use with
//!   `available_parallelism()` threads (the calling thread counts as one
//!   worker, so `threads - 1` OS threads are spawned). The environment
//!   variable `ANECI_NUM_THREADS` overrides the size at initialization, and
//!   [`set_num_threads`] overrides both — before the pool exists it fixes the
//!   size, afterwards it caps how many workers participate in each job.
//!   There is deliberately **no hardcoded upper cap** (the old code clamped
//!   at 16 threads): machines with more cores should use them, and users who
//!   want fewer say so explicitly.
//! * **Serial threshold.** Kernels consult [`should_parallelize`] with an
//!   estimate of their scalar work (multiply-adds or element visits); below
//!   the threshold (default `1 << 17`, overridable via `ANECI_PAR_THRESHOLD`
//!   or [`set_par_threshold`]) they run serially on the calling thread. The
//!   persistent pool makes dispatch cheap (a condvar wake, no spawn), so the
//!   threshold is an order of magnitude lower than the old per-call-spawn
//!   value of `1 << 20`.
//! * **Scheduling.** [`parallel_for`] splits the index space into chunks of a
//!   caller-chosen grain. Chunks are claimed with an atomic fetch-add
//!   ("work stealing" by self-scheduling): a worker that drew cheap chunks
//!   simply claims more, so uneven work — e.g. power-law sparse rows — load
//!   balances instead of being pinned to fixed contiguous per-thread slabs.
//! * **Determinism.** The chunk decomposition depends only on `(items,
//!   grain)`, never on the thread count, and every chunk writes disjoint
//!   output (or produces a partial that is reduced in chunk order). Kernel
//!   results are therefore **bit-identical across thread counts**. Chunked
//!   reductions may differ from a strictly sequential summation at the
//!   floating-point rounding level (the partials are associated differently),
//!   but always reproducibly so.
//! * **Nesting.** A `parallel_for` issued from inside another `parallel_for`
//!   (on a worker or on the submitting thread) runs inline and serially on
//!   the current thread instead of re-entering the pool, so recursive or
//!   accidentally nested calls cannot deadlock.
//! * **Panics.** A panic inside the body is caught on the worker, the job is
//!   drained, and the panic is re-raised on the calling thread. The pool
//!   itself survives.
//! * **Lifecycle.** Workers live for the rest of the process and park on a
//!   condvar while idle; there is no shutdown (the OS reclaims them at exit).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};

/// Default serial/parallel cutoff in scalar work units (see module docs).
const DEFAULT_PAR_THRESHOLD: usize = 1 << 17;

/// Runtime override for the thread count (0 = not set).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);
/// Runtime override for the work threshold (0 = not set).
static THRESHOLD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// True while this thread is executing inside a pool job (either as a
    /// worker or as the submitting thread): nested calls must run inline.
    static IN_PARALLEL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Sets the number of threads kernels may use. Takes effect immediately: if
/// the pool already exists the value caps participation per job (it cannot
/// grow past the size the pool was created with); otherwise it fixes the
/// pool size. `n` is clamped to at least 1.
pub fn set_num_threads(n: usize) {
    THREAD_OVERRIDE.store(n.max(1), Ordering::SeqCst);
}

/// Sets the scalar-work threshold below which kernels run serially.
pub fn set_par_threshold(work: usize) {
    THRESHOLD_OVERRIDE.store(work.max(1), Ordering::SeqCst);
}

/// The current serial/parallel work threshold.
pub fn par_threshold() -> usize {
    match THRESHOLD_OVERRIDE.load(Ordering::Relaxed) {
        0 => *env_threshold(),
        n => n,
    }
}

fn env_threshold() -> &'static usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    ENV.get_or_init(|| {
        std::env::var("ANECI_PAR_THRESHOLD")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&v| v > 0)
            .unwrap_or(DEFAULT_PAR_THRESHOLD)
    })
}

/// Thread count requested by override/env/hardware, ignoring any live pool.
fn configured_threads() -> usize {
    let explicit = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    if let Some(n) = *ENV.get_or_init(|| {
        std::env::var("ANECI_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&v| v > 0)
    }) {
        return n;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The number of threads a kernel dispatched right now would use.
pub fn num_threads() -> usize {
    match POOL.get() {
        Some(pool) => configured_threads().min(pool.n_workers + 1),
        None => configured_threads(),
    }
}

/// True when `work` scalar operations are worth dispatching to the pool.
#[inline]
pub fn should_parallelize(work: usize) -> bool {
    work >= par_threshold() && num_threads() > 1
}

/// Raw pointer wrapper that lets disjoint-region writers cross the closure
/// `Sync` bound. Safety contract: every chunk must touch a region no other
/// chunk touches, and the pointee must outlive the `parallel_for` call.
pub(crate) struct SendPtr<T>(pub *mut T);
// Manual impls: the derive would put a spurious `T: Copy` bound on the
// wrapper, but copying a raw pointer never copies the pointee.
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}
impl<T> SendPtr<T> {
    #[inline]
    pub(crate) fn get(self) -> *mut T {
        self.0
    }
}

/// A published job: a type-erased pointer to the chunk-draining closure that
/// lives on the submitting thread's stack. The submitter blocks until every
/// worker has finished with it, which keeps the borrow alive.
#[derive(Clone, Copy)]
struct Job {
    task: *const (dyn Fn() + Sync),
}
unsafe impl Send for Job {}

struct JobSlot {
    job: Option<Job>,
    /// Monotone job id so a worker never runs the same job twice.
    epoch: u64,
    /// Workers still executing (or yet to pick up) the current job.
    active: usize,
}

struct Shared {
    slot: Mutex<JobSlot>,
    work_cv: Condvar,
    done_cv: Condvar,
}

struct Pool {
    shared: &'static Shared,
    n_workers: usize,
    /// Serializes job submission; held for the whole `parallel_for`.
    submit: Mutex<()>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let threads = configured_threads().max(1);
        let n_workers = threads - 1;
        let shared: &'static Shared = Box::leak(Box::new(Shared {
            slot: Mutex::new(JobSlot {
                job: None,
                epoch: 0,
                active: 0,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        }));
        for i in 0..n_workers {
            std::thread::Builder::new()
                .name(format!("aneci-pool-{i}"))
                .spawn(move || worker_loop(shared))
                .expect("aneci-linalg pool: failed to spawn worker");
        }
        Pool {
            shared,
            n_workers,
            submit: Mutex::new(()),
        }
    })
}

fn worker_loop(shared: &'static Shared) {
    // Anything the worker runs is by definition inside a job: nested
    // parallel_for calls from kernel bodies must run inline.
    IN_PARALLEL.with(|f| f.set(true));
    let mut seen = 0u64;
    loop {
        let job = {
            let mut guard = lock(&shared.slot);
            loop {
                match guard.job {
                    Some(job) if guard.epoch != seen => {
                        seen = guard.epoch;
                        break job;
                    }
                    _ => {
                        guard = shared
                            .work_cv
                            .wait(guard)
                            .unwrap_or_else(|p| p.into_inner())
                    }
                }
            }
        };
        // The task closure handles user panics itself; this catch is a last
        // line of defense so a worker can never die and strand the pool.
        let _ = catch_unwind(AssertUnwindSafe(|| unsafe { (*job.task)() }));
        let mut guard = lock(&shared.slot);
        guard.active -= 1;
        if guard.active == 0 {
            guard.job = None;
            shared.done_cv.notify_all();
        }
    }
}

impl Pool {
    /// Publishes `task` to all workers, runs it on the calling thread too,
    /// and blocks until every worker has finished with it.
    fn execute(&self, task: &(dyn Fn() + Sync)) {
        let _submit = lock(&self.submit);
        // SAFETY: erasing the borrow's lifetime is sound because this
        // function blocks (done_cv below) until every worker has finished
        // running the job, so the pointee strictly outlives all uses.
        let erased: *const (dyn Fn() + Sync) = unsafe {
            std::mem::transmute::<*const (dyn Fn() + Sync + '_), *const (dyn Fn() + Sync + 'static)>(
                task as *const _,
            )
        };
        {
            let mut guard = lock(&self.shared.slot);
            guard.job = Some(Job { task: erased });
            guard.epoch = guard.epoch.wrapping_add(1);
            guard.active = self.n_workers;
            self.shared.work_cv.notify_all();
        }
        let was = IN_PARALLEL.with(|f| f.replace(true));
        let caller_result = catch_unwind(AssertUnwindSafe(task));
        IN_PARALLEL.with(|f| f.set(was));
        let mut guard = lock(&self.shared.slot);
        while guard.active > 0 {
            guard = self
                .shared
                .done_cv
                .wait(guard)
                .unwrap_or_else(|p| p.into_inner());
        }
        guard.job = None;
        drop(guard);
        if let Err(payload) = caller_result {
            std::panic::resume_unwind(payload);
        }
    }
}

/// Number of chunks `parallel_for` will use for `(items, grain)`.
#[inline]
pub fn chunk_count(items: usize, grain: usize) -> usize {
    items.div_ceil(grain.max(1))
}

/// Runs `f(lo, hi)` over disjoint index ranges covering `0..items`, each of
/// length `grain` (the last possibly shorter). Chunks are claimed dynamically
/// by an atomic index so uneven per-index work load balances. Runs inline
/// serially when the pool has one thread, the range fits one chunk, or the
/// call is nested inside another `parallel_for`.
pub fn parallel_for(items: usize, grain: usize, f: impl Fn(usize, usize) + Sync) {
    run_chunks(items, grain, &|_chunk, lo, hi| f(lo, hi));
}

/// Like [`parallel_for`] but also hands the chunk index to `f(chunk, lo,
/// hi)`, for kernels that keep per-chunk scratch or output buffers.
pub fn parallel_for_chunks(items: usize, grain: usize, f: impl Fn(usize, usize, usize) + Sync) {
    run_chunks(items, grain, &f);
}

/// Maps every chunk to a value and returns them in **chunk order** (index
/// order), so reductions over the result are deterministic for a fixed
/// `(items, grain)` regardless of thread count.
pub fn parallel_map_chunks<T: Send>(
    items: usize,
    grain: usize,
    f: impl Fn(usize, usize) -> T + Sync,
) -> Vec<T> {
    let n_chunks = chunk_count(items, grain);
    let mut out: Vec<Option<T>> = Vec::with_capacity(n_chunks);
    out.resize_with(n_chunks, || None);
    {
        let ptr = SendPtr(out.as_mut_ptr());
        run_chunks(items, grain, &move |chunk, lo, hi| {
            // SAFETY: each chunk index is claimed exactly once, so every
            // slot is written by exactly one executor; `out` outlives the
            // call because `run_chunks` joins before returning.
            unsafe { *ptr.get().add(chunk) = Some(f(lo, hi)) };
        });
    }
    out.into_iter()
        .map(|slot| slot.expect("parallel_map_chunks: chunk skipped"))
        .collect()
}

/// Cached handles for the serial/pooled dispatch-decision counters.
/// Dispatch choice depends on the thread count, so these metrics live under
/// a `dispatch` segment and are excluded from deterministic snapshots.
fn dispatch_counters() -> &'static (aneci_obs::Counter, aneci_obs::Counter) {
    static COUNTERS: OnceLock<(aneci_obs::Counter, aneci_obs::Counter)> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        (
            aneci_obs::counter("linalg.pool.dispatch.serial"),
            aneci_obs::counter("linalg.pool.dispatch.pooled"),
        )
    })
}

fn run_chunks(items: usize, grain: usize, f: &(dyn Fn(usize, usize, usize) + Sync)) {
    if items == 0 {
        return;
    }
    let grain = grain.max(1);
    let n_chunks = items.div_ceil(grain);
    let serial = n_chunks == 1 || num_threads() <= 1 || IN_PARALLEL.with(|flag| flag.get());
    if serial {
        dispatch_counters().0.inc();
        for chunk in 0..n_chunks {
            let lo = chunk * grain;
            f(chunk, lo, (lo + grain).min(items));
        }
        return;
    }
    let pool = pool();
    // Re-read the cap now that the pool definitely exists.
    let cap = configured_threads().min(pool.n_workers + 1);
    if cap <= 1 {
        dispatch_counters().0.inc();
        for chunk in 0..n_chunks {
            let lo = chunk * grain;
            f(chunk, lo, (lo + grain).min(items));
        }
        return;
    }
    dispatch_counters().1.inc();
    let next = AtomicUsize::new(0);
    let executors = AtomicUsize::new(0);
    let panicked = AtomicBool::new(false);
    let task = || {
        // Honor a reduced thread cap: surplus workers bow out immediately.
        if executors.fetch_add(1, Ordering::Relaxed) >= cap {
            return;
        }
        loop {
            if panicked.load(Ordering::Relaxed) {
                break;
            }
            let chunk = next.fetch_add(1, Ordering::Relaxed);
            if chunk >= n_chunks {
                break;
            }
            let lo = chunk * grain;
            let hi = (lo + grain).min(items);
            if catch_unwind(AssertUnwindSafe(|| f(chunk, lo, hi))).is_err() {
                panicked.store(true, Ordering::SeqCst);
                break;
            }
        }
    };
    pool.execute(&task);
    if panicked.load(Ordering::SeqCst) {
        panic!("aneci-linalg pool: a parallel_for body panicked");
    }
}

/// A deterministic row grain: at most 64 chunks, at least `min_rows` rows
/// per chunk, independent of the thread count (see module docs).
#[inline]
pub fn row_grain(rows: usize, min_rows: usize) -> usize {
    rows.div_ceil(64).max(min_rows).max(1)
}

/// Cached hardware core count (`std::thread::available_parallelism`, 1 on
/// error). A machine property, not a runtime knob: unlike [`num_threads`]
/// it never changes during a process, so kernels whose *output* is
/// chunking-invariant may scale their chunk count by it without breaking
/// the cross-thread-count determinism guarantee.
#[inline]
pub fn hardware_parallelism() -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| std::thread::available_parallelism().map_or(1, |c| c.get()))
}

/// Test/bench helper: forces a real multi-thread pool into existence (even
/// on a single-core machine) and drops the threshold to 1 so parallel code
/// paths are genuinely exercised. Not part of the public API surface.
#[doc(hidden)]
pub fn force_pool() {
    static INIT: std::sync::Once = std::sync::Once::new();
    INIT.call_once(|| {
        if POOL.get().is_none() && configured_threads() < 4 {
            set_num_threads(4);
        }
        set_par_threshold(1);
        let _ = pool();
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallel_for_covers_every_index_once() {
        force_pool();
        let hits: Vec<AtomicU64> = (0..1003).map(|_| AtomicU64::new(0)).collect();
        parallel_for(1003, 17, |lo, hi| {
            for h in &hits[lo..hi] {
                h.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_map_chunks_returns_chunk_order() {
        force_pool();
        let out = parallel_map_chunks(100, 9, |lo, hi| (lo, hi));
        assert_eq!(out.len(), chunk_count(100, 9));
        let mut expect_lo = 0;
        for &(lo, hi) in &out {
            assert_eq!(lo, expect_lo);
            expect_lo = hi;
        }
        assert_eq!(expect_lo, 100);
    }

    #[test]
    fn nested_parallel_for_runs_inline() {
        force_pool();
        let total = AtomicU64::new(0);
        parallel_for(8, 1, |lo, hi| {
            for _ in lo..hi {
                // Nested call must complete (inline) rather than deadlock.
                parallel_for(10, 2, |ilo, ihi| {
                    total.fetch_add((ihi - ilo) as u64, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 80);
    }

    #[test]
    fn panic_propagates_and_pool_survives() {
        force_pool();
        let result = catch_unwind(AssertUnwindSafe(|| {
            parallel_for(64, 1, |lo, _| {
                if lo == 13 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool must still work after a panicking job.
        let count = AtomicU64::new(0);
        parallel_for(64, 4, |lo, hi| {
            count.fetch_add((hi - lo) as u64, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn zero_items_is_a_noop() {
        force_pool();
        parallel_for(0, 8, |_, _| panic!("must not run"));
    }

    #[test]
    fn thresholds_are_configurable() {
        force_pool();
        set_par_threshold(12345);
        assert_eq!(par_threshold(), 12345);
        set_par_threshold(1);
        assert_eq!(par_threshold(), 1);
        assert!(num_threads() >= 1);
    }
}
