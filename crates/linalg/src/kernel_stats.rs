//! Always-on per-kernel counters (calls, elements/flops, wall time), backed
//! by the [`aneci_obs`] global registry.
//!
//! Every kernel wrapped in [`record`] bumps three relaxed atomic counters in
//! the process-wide registry:
//!
//! * `linalg.kernel.<name>.calls` — invocations;
//! * `linalg.kernel.<name>.elems` — scalar work (flops or element visits)
//!   reported by the caller;
//! * `linalg.kernel.<name>.wall_ns` — accumulated wall time (excluded from
//!   [`aneci_obs::Snapshot::deterministic`], like every `_ns` metric).
//!
//! These used to be compiled out behind the `kernel-stats` feature; with the
//! persistent-handle registry the cost is two `Instant` reads and three
//! relaxed `fetch_add`s per kernel call, so they now run permanently (the
//! feature remains as an accepted no-op). [`snapshot`] / [`reset`] keep the
//! historical window semantics by subtracting a baseline instead of zeroing
//! the shared registry.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use aneci_obs::Counter;

/// Instrumented kernels. Extend this (and [`Kernel::name`], and
/// [`Kernel::ALL`]) when new kernels are wrapped in [`record`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Kernel {
    /// Dense × dense product (`par::matmul`).
    Matmul = 0,
    /// Dense transposed product (`par::matmul_tn`).
    MatmulTn,
    /// CSR × dense product (`par::spmm_dense`).
    SpmmDense,
    /// CSR × CSR product (`CsrMatrix::spmm`).
    Spmm,
    /// CSR transpose.
    SparseTranspose,
    /// Top-k row pruning.
    PruneTopK,
    /// Induced-subgraph gather with node relabeling
    /// (`CsrMatrix::extract_submatrix` / `select_columns` / `gather_rows`).
    SubgraphExtract,
}

/// Number of [`Kernel`] variants (size of the counter table).
const KERNEL_COUNT: usize = 7;

impl Kernel {
    /// Stable display name used in metric names and bench reports.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Matmul => "matmul",
            Kernel::MatmulTn => "matmul_tn",
            Kernel::SpmmDense => "spmm_dense",
            Kernel::Spmm => "spmm",
            Kernel::SparseTranspose => "sparse_transpose",
            Kernel::PruneTopK => "prune_top_k",
            Kernel::SubgraphExtract => "subgraph_extract",
        }
    }

    /// Every instrumented kernel, in table order.
    pub const ALL: [Kernel; KERNEL_COUNT] = [
        Kernel::Matmul,
        Kernel::MatmulTn,
        Kernel::SpmmDense,
        Kernel::Spmm,
        Kernel::SparseTranspose,
        Kernel::PruneTopK,
        Kernel::SubgraphExtract,
    ];
}

/// One kernel's accumulated totals since the last [`reset`], as returned by
/// [`snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KernelStat {
    /// Kernel display name.
    pub kernel: &'static str,
    /// Number of [`record`] invocations.
    pub calls: u64,
    /// Total scalar work (flops / element visits) reported by callers.
    pub flops: u64,
    /// Total wall time spent inside the kernel, in nanoseconds.
    pub wall_ns: u64,
}

/// Cached registry handles plus the `reset` baseline for one kernel.
struct Row {
    calls: Counter,
    elems: Counter,
    wall_ns: Counter,
    base_calls: AtomicU64,
    base_elems: AtomicU64,
    base_wall_ns: AtomicU64,
}

fn table() -> &'static [Row; KERNEL_COUNT] {
    static TABLE: OnceLock<[Row; KERNEL_COUNT]> = OnceLock::new();
    TABLE.get_or_init(|| {
        Kernel::ALL.map(|k| {
            let name = k.name();
            Row {
                calls: aneci_obs::counter(&format!("linalg.kernel.{name}.calls")),
                elems: aneci_obs::counter(&format!("linalg.kernel.{name}.elems")),
                wall_ns: aneci_obs::counter(&format!("linalg.kernel.{name}.wall_ns")),
                base_calls: AtomicU64::new(0),
                base_elems: AtomicU64::new(0),
                base_wall_ns: AtomicU64::new(0),
            }
        })
    })
}

/// Runs `f`, charging its wall time and `flops` scalar-work units to
/// `kernel` in the global observability registry.
#[inline]
pub fn record<R>(kernel: Kernel, flops: u64, f: impl FnOnce() -> R) -> R {
    let row = &table()[kernel as usize];
    let start = Instant::now();
    let out = f();
    row.calls.add(1);
    row.elems.add(flops);
    row.wall_ns.add(start.elapsed().as_nanos() as u64);
    out
}

/// Totals for every kernel since the last [`reset`] (process start if never
/// reset), in [`Kernel::ALL`] order.
pub fn snapshot() -> Vec<KernelStat> {
    table()
        .iter()
        .zip(Kernel::ALL)
        .map(|(row, k)| KernelStat {
            kernel: k.name(),
            calls: row
                .calls
                .get()
                .saturating_sub(row.base_calls.load(Ordering::Relaxed)),
            flops: row
                .elems
                .get()
                .saturating_sub(row.base_elems.load(Ordering::Relaxed)),
            wall_ns: row
                .wall_ns
                .get()
                .saturating_sub(row.base_wall_ns.load(Ordering::Relaxed)),
        })
        .collect()
}

/// Starts a fresh measurement window: subsequent [`snapshot`]s report only
/// activity after this call. The shared registry counters stay monotone —
/// only this module's baseline moves.
pub fn reset() {
    for row in table().iter() {
        row.base_calls.store(row.calls.get(), Ordering::Relaxed);
        row.base_elems.store(row.elems.get(), Ordering::Relaxed);
        row.base_wall_ns.store(row.wall_ns.get(), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Other tests in this binary run kernels concurrently and share the
    /// global registry, so assert monotone deltas rather than exact totals.
    #[test]
    fn record_accumulates_and_reset_windows() {
        let before = snapshot();
        let b = before
            .iter()
            .find(|s| s.kernel == "matmul")
            .unwrap()
            .clone();
        let v = record(Kernel::Matmul, 100, || 41 + 1);
        assert_eq!(v, 42);
        record(Kernel::Matmul, 50, || ());
        let after = snapshot();
        let a = after.iter().find(|s| s.kernel == "matmul").unwrap().clone();
        assert!(a.calls >= b.calls + 2);
        assert!(a.flops >= b.flops + 150);
        // The registry counter matches the pre-baseline total.
        let snap = aneci_obs::global().snapshot();
        assert!(snap.counter("linalg.kernel.matmul.calls").unwrap() >= a.calls);
    }
}
