//! Louvain community detection (Blondel et al. 2008).
//!
//! Greedy modularity maximization with the classic two-phase scheme: local
//! moving until no gain, then community aggregation, repeated until the
//! partition stabilizes. Serves as the strong classical baseline in the
//! community-detection experiment (Fig. 7) — our stand-in for the vGraph /
//! ComE comparisons (see DESIGN.md substitutions).

use aneci_graph::AttributedGraph;
use aneci_linalg::rng::{seeded_rng, shuffle};
use std::collections::HashMap;

/// Weighted undirected multigraph used internally during aggregation.
struct WeightedGraph {
    /// adjacency[u] = (neighbor, weight); self-loops carry intra-weight.
    adjacency: Vec<Vec<(usize, f64)>>,
    total_weight: f64, // = 2m (sum of all degrees incl. self-loop double count)
}

impl WeightedGraph {
    fn from_attributed(g: &AttributedGraph) -> Self {
        let n = g.num_nodes();
        let mut adjacency = vec![Vec::new(); n];
        for (u, v) in g.edge_list() {
            adjacency[u].push((v, 1.0));
            adjacency[v].push((u, 1.0));
        }
        let total_weight = 2.0 * g.num_edges() as f64;
        Self {
            adjacency,
            total_weight,
        }
    }

    fn num_nodes(&self) -> usize {
        self.adjacency.len()
    }

    /// Weighted degree including 2× self-loop weight.
    fn degree(&self, u: usize) -> f64 {
        self.adjacency[u]
            .iter()
            .map(|&(v, w)| if v == u { 2.0 * w } else { w })
            .sum()
    }
}

/// One local-moving pass; mutates `community` and returns whether any node
/// moved.
fn local_moving(g: &WeightedGraph, community: &mut [usize], seed: u64) -> bool {
    let n = g.num_nodes();
    let m2 = g.total_weight;
    if m2 == 0.0 {
        return false;
    }
    // Community aggregates.
    let mut comm_degree = vec![0.0; n];
    for u in 0..n {
        comm_degree[community[u]] += g.degree(u);
    }
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = seeded_rng(seed);
    shuffle(&mut order, &mut rng);

    let mut moved_any = false;
    let mut improved = true;
    while improved {
        improved = false;
        for &u in &order {
            let ku = g.degree(u);
            let current = community[u];
            // Links from u to each neighboring community.
            let mut links: HashMap<usize, f64> = HashMap::new();
            for &(v, w) in &g.adjacency[u] {
                if v != u {
                    *links.entry(community[v]).or_insert(0.0) += w;
                }
            }
            // Remove u from its community.
            comm_degree[current] -= ku;
            let base_links = links.get(&current).copied().unwrap_or(0.0);
            let base_gain = base_links - comm_degree[current] * ku / m2;
            // Best alternative.
            let mut best_comm = current;
            let mut best_gain = base_gain;
            for (&c, &l) in &links {
                if c == current {
                    continue;
                }
                let gain = l - comm_degree[c] * ku / m2;
                if gain > best_gain + 1e-12 {
                    best_gain = gain;
                    best_comm = c;
                }
            }
            comm_degree[best_comm] += ku;
            if best_comm != current {
                community[u] = best_comm;
                improved = true;
                moved_any = true;
            }
        }
    }
    moved_any
}

/// Renumbers community labels to a dense 0..k range.
fn compact_labels(labels: &mut [usize]) -> usize {
    let mut map = HashMap::new();
    let mut next = 0usize;
    for l in labels.iter_mut() {
        let entry = map.entry(*l).or_insert_with(|| {
            let id = next;
            next += 1;
            id
        });
        *l = *entry;
    }
    next
}

/// Aggregates communities into a smaller weighted graph.
fn aggregate(g: &WeightedGraph, community: &[usize], k: usize) -> WeightedGraph {
    let mut weights: HashMap<(usize, usize), f64> = HashMap::new();
    for u in 0..g.num_nodes() {
        for &(v, w) in &g.adjacency[u] {
            if v < u {
                continue; // each undirected edge once (self-loops: v == u kept)
            }
            let (cu, cv) = (community[u], community[v]);
            let key = (cu.min(cv), cu.max(cv));
            *weights.entry(key).or_insert(0.0) += w;
        }
    }
    let mut adjacency = vec![Vec::new(); k];
    for (&(a, b), &w) in &weights {
        if a == b {
            adjacency[a].push((a, w));
        } else {
            adjacency[a].push((b, w));
            adjacency[b].push((a, w));
        }
    }
    WeightedGraph {
        adjacency,
        total_weight: g.total_weight,
    }
}

/// Runs Louvain; returns the node → community assignment (labels compacted
/// to `0..k`). Deterministic in `seed`.
pub fn louvain(graph: &AttributedGraph, seed: u64) -> Vec<usize> {
    let n = graph.num_nodes();
    let mut node_to_comm: Vec<usize> = (0..n).collect();
    let mut g = WeightedGraph::from_attributed(graph);
    let mut level = 0u64;
    loop {
        let mut community: Vec<usize> = (0..g.num_nodes()).collect();
        let moved = local_moving(&g, &mut community, seed.wrapping_add(level));
        let k = compact_labels(&mut community);
        // Map original nodes through this level's assignment.
        for c in node_to_comm.iter_mut() {
            *c = community[*c];
        }
        if !moved || k == g.num_nodes() {
            break;
        }
        g = aggregate(&g, &community, k);
        level += 1;
    }
    compact_labels(&mut node_to_comm);
    node_to_comm
}

#[cfg(test)]
mod tests {
    use super::*;
    use aneci_graph::{generate_sbm, karate_club, AttributedGraph, SbmConfig};

    /// Local modularity helper (avoids a dev-dependency on aneci-eval).
    fn modularity(g: &AttributedGraph, part: &[usize]) -> f64 {
        let m = g.num_edges() as f64;
        let k = part.iter().copied().max().unwrap_or(0) + 1;
        let mut intra = vec![0.0; k];
        let mut deg = vec![0.0; k];
        for (u, v) in g.edge_list() {
            if part[u] == part[v] {
                intra[part[u]] += 1.0;
            }
        }
        for u in 0..g.num_nodes() {
            deg[part[u]] += g.degree(u) as f64;
        }
        (0..k)
            .map(|c| intra[c] / m - (deg[c] / (2.0 * m)).powi(2))
            .sum()
    }

    #[test]
    fn two_cliques_found_exactly() {
        let g = AttributedGraph::from_edges_plain(
            6,
            &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3)],
            None,
        );
        let labels = louvain(&g, 1);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_eq!(labels[4], labels[5]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn karate_reaches_high_modularity() {
        let g = karate_club();
        let labels = louvain(&g, 2);
        let q = modularity(&g, &labels);
        // The known Louvain optimum on karate is ≈ 0.41–0.42.
        assert!(q > 0.38, "Q = {q}");
        let k = labels.iter().copied().max().unwrap() + 1;
        assert!((2..=6).contains(&k), "found {k} communities");
    }

    #[test]
    fn beats_ground_truth_modularity_on_karate() {
        // Louvain optimizes Q directly, so it should match or exceed the
        // 2-faction ground truth's Q ≈ 0.358.
        let g = karate_club();
        let labels = louvain(&g, 3);
        assert!(modularity(&g, &labels) >= 0.358 - 1e-9);
    }

    #[test]
    fn recovers_planted_sbm_communities() {
        let mut cfg = SbmConfig::small();
        cfg.num_nodes = 300;
        cfg.num_classes = 4;
        cfg.target_edges = 1800;
        cfg.homophily = 0.85;
        let g = generate_sbm(&cfg, 7);
        let pred = louvain(&g, 4);
        let truth = g.labels.as_ref().unwrap();
        // Count pair-agreement (Rand index style, cheap local check).
        let mut agree = 0usize;
        let mut total = 0usize;
        for i in (0..300).step_by(3) {
            for j in (i + 1..300).step_by(7) {
                total += 1;
                if (pred[i] == pred[j]) == (truth[i] == truth[j]) {
                    agree += 1;
                }
            }
        }
        let rand = agree as f64 / total as f64;
        assert!(rand > 0.8, "Rand agreement {rand}");
    }

    #[test]
    fn empty_graph_degrades_gracefully() {
        let g = AttributedGraph::from_edges_plain(5, &[], None);
        let labels = louvain(&g, 5);
        assert_eq!(labels.len(), 5);
    }

    #[test]
    fn deterministic_in_seed() {
        let g = karate_club();
        assert_eq!(louvain(&g, 11), louvain(&g, 11));
    }
}
