//! Regenerates Table III (node classification on clean graphs).
fn main() {
    aneci_bench::exp::table3::run(&aneci_bench::ExpArgs::parse());
}
