//! The crate-wide error type.
//!
//! Hand-rolled (no `thiserror`): one enum, `Display` + `std::error::Error`
//! impls, and `From` conversions from the lower-level error types so `?`
//! composes across the checkpoint and graph-IO layers. This replaces the
//! `Result<_, String>` signatures that used to leak out of
//! `AneciConfig::validate`, `AneciModel::checkpoint` / `from_checkpoint`
//! and `train_aneci`.

use crate::checkpoint::CheckpointError;
use aneci_autograd::train::TrainError;
use std::error::Error;
use std::fmt;
use std::io;

/// Everything that can go wrong constructing, training or persisting an
/// AnECI model.
#[derive(Debug)]
pub enum AneciError {
    /// A configuration parameter failed validation.
    Config(String),
    /// Reading or writing a `.aneci` checkpoint failed.
    Checkpoint(CheckpointError),
    /// A tensor / graph dimension did not match what the architecture
    /// expects (e.g. a checkpoint trained on a different graph).
    Shape(String),
    /// An underlying I/O operation failed (graph files, checkpoint files).
    Io(io::Error),
    /// The model has no kept embedding yet — `train()` has not run.
    Untrained,
    /// Training produced a non-finite loss; the parameters were rolled back
    /// to the last state that produced a finite loss (see
    /// [`aneci_autograd::train::TrainError::Diverged`]).
    Diverged {
        /// Epoch at which the non-finite value appeared.
        epoch: usize,
        /// The offending loss value (NaN or ±∞).
        loss: f64,
    },
    /// The drift guard tripped: after warm-start fine-tuning, the model's
    /// community structure fell outside tolerance of a full-retrain oracle
    /// (see `AneciModel::drift_check`). The fine-tuned model is left as-is —
    /// the caller decides whether to retrain from scratch.
    Drift {
        /// Generalized modularity Q̃ of the fine-tuned model's communities.
        q_tilde: f64,
        /// Q̃ of the full-retrain oracle's communities on the same graph.
        oracle_q_tilde: f64,
        /// NMI between the fine-tuned and oracle community assignments.
        nmi: f64,
    },
}

impl fmt::Display for AneciError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AneciError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            AneciError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            AneciError::Shape(msg) => write!(f, "shape mismatch: {msg}"),
            AneciError::Io(e) => write!(f, "i/o error: {e}"),
            AneciError::Untrained => {
                write!(f, "model has no kept embedding — call train() first")
            }
            AneciError::Diverged { epoch, loss } => write!(
                f,
                "training diverged at epoch {epoch} (loss = {loss}); \
                 parameters restored to the last finite state"
            ),
            AneciError::Drift {
                q_tilde,
                oracle_q_tilde,
                nmi,
            } => write!(
                f,
                "fine-tuned model drifted from the full-retrain oracle: \
                 Q̃ = {q_tilde:.4} vs oracle {oracle_q_tilde:.4}, NMI = {nmi:.4}"
            ),
        }
    }
}

/// Graph-layer failures (delta application, streaming config) surface
/// through the core API: config problems stay `Config`, malformed deltas
/// are dimension/reference mismatches and map to `Shape`.
impl From<aneci_graph::GraphError> for AneciError {
    fn from(e: aneci_graph::GraphError) -> Self {
        match e {
            aneci_graph::GraphError::Config(msg) => AneciError::Config(msg),
            aneci_graph::GraphError::Delta(msg) => AneciError::Shape(msg),
        }
    }
}

impl Error for AneciError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AneciError::Checkpoint(e) => Some(e),
            AneciError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckpointError> for AneciError {
    fn from(e: CheckpointError) -> Self {
        // An I/O failure inside the checkpoint layer is still an I/O
        // failure; only format problems stay `Checkpoint`.
        match e {
            CheckpointError::Io(io) => AneciError::Io(io),
            other => AneciError::Checkpoint(other),
        }
    }
}

/// Graph loaders (`aneci-graph::io`) report failures as `io::Error`.
impl From<io::Error> for AneciError {
    fn from(e: io::Error) -> Self {
        AneciError::Io(e)
    }
}

/// The shared training engine's failures surface through the core API.
impl From<TrainError> for AneciError {
    fn from(e: TrainError) -> Self {
        match e {
            TrainError::Diverged { epoch, loss } => AneciError::Diverged { epoch, loss },
            TrainError::DuplicateParam(name) => {
                AneciError::Config(format!("duplicate parameter name '{name}'"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_are_wired() {
        let e = AneciError::Config("epochs must be positive".into());
        assert!(e.to_string().contains("epochs must be positive"));
        assert!(e.source().is_none());

        let io_err = io::Error::new(io::ErrorKind::NotFound, "missing");
        let e = AneciError::from(io_err);
        assert!(matches!(e, AneciError::Io(_)));
        assert!(e.source().is_some());

        let e = AneciError::from(CheckpointError::Format("bad magic".into()));
        assert!(matches!(e, AneciError::Checkpoint(_)));
        assert!(e.to_string().contains("bad magic"));

        // Checkpoint-level I/O failures normalize to `Io`.
        let e = AneciError::from(CheckpointError::Io(io::Error::new(
            io::ErrorKind::PermissionDenied,
            "ro",
        )));
        assert!(matches!(e, AneciError::Io(_)));

        assert!(AneciError::Untrained.to_string().contains("train()"));
    }

    #[test]
    fn error_trait_object_compatible() {
        fn takes_err(_: &dyn Error) {}
        takes_err(&AneciError::Shape("2x3 vs 3x2".into()));
        let boxed: Box<dyn Error> = Box::new(AneciError::Untrained);
        assert!(boxed.to_string().contains("embedding"));
    }
}
