//! # aneci — Robust Attributed Network Embedding Preserving Community Information
//!
//! A complete, from-scratch Rust reproduction of the ICDE 2022 paper
//! *"Robust Attributed Network Embedding Preserving Community Information"*
//! (AnECI). This facade crate re-exports the whole workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`obs`] | zero-dependency metrics registry, span timers, JSONL telemetry |
//! | [`linalg`] | dense / CSR sparse matrices, multi-threaded kernels, seeded RNG |
//! | [`autograd`] | tape-based reverse-mode autodiff + optimizers |
//! | [`graph`] | attributed graphs, high-order proximity, SBM benchmark generators |
//! | [`core`] | the AnECI model, AnECI+ denoising, anomaly & defense scores |
//! | [`baselines`] | DeepWalk, LINE, GAE/VGAE, DGI, GCN, Dominant, spectral, Louvain |
//! | [`attacks`] | random / FGA / NETTACK-style attacks, outlier seeding |
//! | [`eval`] | metrics, logistic regression, k-means++, isolation forest, t-SNE |
//! | [`serve`] | `.aneci` checkpoints, exact + HNSW ANN queries, JSONL engine, HTTP/1.1 server |
//!
//! ## Quickstart
//!
//! ```
//! use aneci::prelude::*;
//!
//! let graph = karate_club();
//! let config = AneciConfig::builder()
//!     .embed_dim(2)
//!     .epochs(40)
//!     .stop(StopStrategy::FixedEpochs)
//!     .seed(0)
//!     .build()
//!     .unwrap();
//! let (model, _report) = train_aneci(&graph, &config).unwrap();
//! let communities = model.communities();
//! assert_eq!(communities.len(), 34);
//! ```

pub use aneci_attacks as attacks;
pub use aneci_autograd as autograd;
pub use aneci_baselines as baselines;
pub use aneci_core as core;
pub use aneci_eval as eval;
pub use aneci_graph as graph;
pub use aneci_linalg as linalg;
pub use aneci_obs as obs;
pub use aneci_serve as serve;

/// The names most programs need, in one import: graph loading and
/// generation, model configuration (struct presets and the builder),
/// training, anomaly/denoise scoring, the standard metrics, and the
/// serving engine. Examples open with `use aneci::prelude::*;`.
pub mod prelude {
    pub use aneci_core::{
        aneci_plus, defense_score, node_anomaly_scores, train_aneci, AneciConfig,
        AneciConfigBuilder, AneciError, AneciModel, AneciPlus, BatchStrategy, Defense,
        DefenseOutcome, DenoiseConfig, DriftGuard, DriftStats, MiniBatchTrainer, NoDefense,
        ReconMode, SmoothedEncoder, StopStrategy, TrainReport,
    };
    pub use aneci_eval::{accuracy, auc, kmeans_best_of, modularity, nmi};
    pub use aneci_graph::{
        generate_lfr, generate_sbm, generate_streamed, karate_club, AttributedGraph, Benchmark,
        DeltaReport, FeatureKind, GraphDelta, GraphError, LfrConfig, SbmConfig, StreamingConfig,
    };
    pub use aneci_linalg::DenseMatrix;
    pub use aneci_serve::{
        EmbeddingStore, EngineConfig, EngineConfigBuilder, HttpConfig, HttpConfigBuilder,
        HttpServer, QueryEngine, QueryRequest, QueryResponse, ServerHandle, Snapshot,
        SnapshotHandle, SnapshotUpdate, VectorUpsert,
    };
}
