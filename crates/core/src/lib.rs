//! # aneci-core
//!
//! The paper's contribution: **A**ttributed **n**etwork **E**mbedding
//! preserving **C**ommunity **I**nformation (AnECI, ICDE 2022).
//!
//! * [`config::AneciConfig`] — hyperparameters with the paper's per-task
//!   presets (classification / community detection / anomaly detection);
//! * [`model::AneciModel`] — GCN encoder (Eq. 2–3), fused generalized
//!   modularity `Q̃` over high-order proximity and overlapping communities
//!   (Eq. 13–14), high-order reconstruction decoder (Eq. 15–17), joint
//!   objective (Eq. 18), training with the paper's three stopping
//!   strategies;
//! * [`minibatch`] — million-node scale: community-aware / neighbor-sampled
//!   mini-batch training of the same objective on induced subgraphs
//!   ([`AneciModel::train_minibatch`](model::AneciModel::train_minibatch)),
//!   bit-exact with full-batch training under the `FullGraph` strategy;
//! * [`anomaly`] — membership-entropy node anomaly scores, edge anomaly
//!   scores, the defense score `DS(δ)` of Sec. VI-B1;
//! * [`denoise`] — **AnECI+**, the two-stage denoising variant
//!   (Algorithm 1);
//! * [`checkpoint`] — the versioned, checksummed `.aneci` binary format
//!   that persists a trained model (embedding, membership, encoder weights,
//!   config) bit-exactly for the serving layer (`aneci-serve`).
//!
//! ```no_run
//! use aneci_core::{AneciConfig, train_aneci};
//! use aneci_graph::karate_club;
//!
//! let graph = karate_club();
//! let config = AneciConfig::for_community_detection(2, 0);
//! let (model, report) = train_aneci(&graph, &config).unwrap();
//! println!("Q̃ = {:.3}", report.modularity.last().unwrap());
//! println!("communities: {:?}", model.communities());
//! ```

pub mod anomaly;
pub mod checkpoint;
pub mod config;
pub mod defense;
pub mod denoise;
pub mod error;
pub mod minibatch;
pub mod model;
pub mod modularity_defs;

pub use anomaly::{
    combined_anomaly_scores, defense_score, edge_anomaly_scores, neighborhood_anomaly_scores,
    node_anomaly_scores,
};
pub use checkpoint::{Checkpoint, CheckpointError};
pub use config::{AneciConfig, AneciConfigBuilder, ReconMode, StopStrategy};
pub use defense::{AneciPlus, Defense, DefenseOutcome, NoDefense, SmoothedEncoder};
pub use denoise::{aneci_plus, DenoiseConfig, DenoiseResult};
pub use error::AneciError;
pub use minibatch::{BatchStrategy, MiniBatchTrainer};
pub use model::{rigidity, train_aneci, AneciModel, DriftGuard, DriftStats, TrainReport, ValProbe};
pub use modularity_defs::{
    classic_modularity, eq_modularity, generalized_modularity, one_hot_membership, qstar_modularity,
};

#[cfg(test)]
mod proptests {
    use crate::model::rigidity;
    use aneci_linalg::DenseMatrix;
    use proptest::prelude::*;

    proptest! {
        /// For any row-stochastic P, rigidity lies in [1/k, 1] — the bounds
        /// Fig. 9b relies on.
        #[test]
        fn rigidity_bounds_for_stochastic_rows(v in prop::collection::vec(-5.0..5.0f64, 20)) {
            let p = DenseMatrix::from_vec(5, 4, v).softmax_rows();
            let r = rigidity(&p);
            prop_assert!(r >= 0.25 - 1e-9, "r = {r}");
            prop_assert!(r <= 1.0 + 1e-9, "r = {r}");
        }

        /// Node anomaly entropy scores are permutation-equivariant in the
        /// community axis.
        #[test]
        fn entropy_scores_invariant_to_community_relabel(v in prop::collection::vec(-4.0..4.0f64, 12)) {
            let p = DenseMatrix::from_vec(4, 3, v).softmax_rows();
            let base = crate::anomaly::node_anomaly_scores(&p);
            // Reverse the community axis.
            let flipped = DenseMatrix::from_fn(4, 3, |r, c| p.get(r, 2 - c));
            let flipped_scores = crate::anomaly::node_anomaly_scores(&flipped);
            for (a, b) in base.iter().zip(&flipped_scores) {
                prop_assert!((a - b).abs() < 1e-12);
            }
        }
    }
}
