//! Flat vector kernels for embedding similarity queries.
//!
//! The serving layer (`aneci-serve`) scores a query vector against every row
//! of an embedding matrix (exact top-k) or against a neighborhood of rows
//! (the ANN index). Those inner loops live here, next to the other kernels,
//! so the store and the index share one implementation — and one set of
//! parity tests — instead of each growing its own dot product.
//!
//! All kernels are serial: callers parallelize at the *batch* level (one
//! query per pool chunk), so per-pair scoring must stay dependency-free and
//! cheap to inline.
//!
//! The reduction kernels ([`dot`], [`axpy`], [`squared_euclidean`] and
//! everything built on them) dispatch to the AVX2/FMA versions in
//! [`crate::simd`] when the CPU supports them; the `*_scalar` variants are
//! the portable references, used directly when dispatch falls back (no
//! AVX2+FMA, or `ANECI_NO_SIMD` set) and kept public so the parity suite
//! can compare the two. SIMD results agree with scalar to within a few ULP
//! (fused multiply-add, different association) — see the [`crate::simd`]
//! module docs for the exact guarantees.

/// Dot product of two equal-length slices (SIMD-dispatched).
///
/// # Panics
/// Panics if the lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    #[cfg(target_arch = "x86_64")]
    if crate::simd::avx2_active() {
        // SAFETY: dispatch verified avx2+fma; lengths checked above.
        return unsafe { crate::simd::dot_avx2(a, b) };
    }
    dot_scalar(a, b)
}

/// Portable scalar dot product — the reference the SIMD path is tested
/// against, and the kernel used when dispatch falls back.
#[inline]
pub fn dot_scalar(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    // Four accumulators: breaks the add dependency chain so the compiler
    // can keep the loop pipelined without -ffast-math style reassociation.
    let mut acc = [0.0f64; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let base = i * 4;
        for lane in 0..4 {
            acc[lane] += a[base + lane] * b[base + lane];
        }
    }
    let mut tail = 0.0;
    for i in chunks * 4..a.len() {
        tail += a[i] * b[i];
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// `y[i] += alpha * x[i]` over equal-length slices (SIMD-dispatched). This
/// is the accumulation step of the row-oriented products (`spmm_dense`,
/// `matmul_tn`), so it sees long contiguous rows.
///
/// # Panics
/// Panics if the lengths differ.
#[inline]
pub fn axpy(y: &mut [f64], alpha: f64, x: &[f64]) {
    assert_eq!(y.len(), x.len(), "axpy: length mismatch");
    #[cfg(target_arch = "x86_64")]
    if crate::simd::avx2_active() {
        // SAFETY: dispatch verified avx2+fma; lengths checked above.
        unsafe { crate::simd::axpy_avx2(y, alpha, x) };
        return;
    }
    axpy_scalar(y, alpha, x);
}

/// Portable scalar axpy — reference for the SIMD path.
#[inline]
pub fn axpy_scalar(y: &mut [f64], alpha: f64, x: &[f64]) {
    assert_eq!(y.len(), x.len(), "axpy: length mismatch");
    for (o, &v) in y.iter_mut().zip(x) {
        *o += alpha * v;
    }
}

/// Euclidean (L2) norm of a slice.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Cosine similarity `a·b / (‖a‖‖b‖)`; 0 when either vector is all-zero.
#[inline]
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let na = norm2(a);
    let nb = norm2(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot(a, b) / (na * nb)
}

/// Cosine similarity when both norms are already known (the store caches
/// per-row norms). Zero-norm inputs score 0.
#[inline]
pub fn cosine_with_norms(dot_ab: f64, norm_a: f64, norm_b: f64) -> f64 {
    if norm_a == 0.0 || norm_b == 0.0 {
        0.0
    } else {
        dot_ab / (norm_a * norm_b)
    }
}

/// Batched cosine scan (SIMD-dispatched): `out[i]` becomes the cosine
/// similarity of `q` against row `i` of `rows` (a flat row-major block of
/// `q.len()`-length rows, e.g. a [`crate::DenseMatrix`] row range), given
/// the query norm `qn` and the per-row norms. Dispatch happens once per
/// scan rather than once per row, which is what makes the SIMD path pay
/// off on short rows (`#[target_feature]` kernels can't inline into
/// portable callers). Zero norms score 0, as in [`cosine_with_norms`].
///
/// # Panics
/// Panics if `rows.len() != norms.len() * q.len()` or
/// `out.len() != norms.len()`.
pub fn cosine_scores(q: &[f64], qn: f64, rows: &[f64], norms: &[f64], out: &mut [f64]) {
    assert_eq!(
        rows.len(),
        norms.len() * q.len(),
        "cosine_scores: rows/norms shape mismatch"
    );
    assert_eq!(out.len(), norms.len(), "cosine_scores: out length mismatch");
    if q.is_empty() {
        out.fill(0.0);
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if crate::simd::avx2_active() {
        // SAFETY: dispatch verified avx2+fma; shapes checked above.
        unsafe { crate::simd::cosine_scores_avx2(q, qn, rows, norms, out) };
        return;
    }
    cosine_scores_scalar(q, qn, rows, norms, out);
}

/// Portable scalar batched cosine scan — reference for the SIMD path.
pub fn cosine_scores_scalar(q: &[f64], qn: f64, rows: &[f64], norms: &[f64], out: &mut [f64]) {
    assert_eq!(
        rows.len(),
        norms.len() * q.len(),
        "cosine_scores: rows/norms shape mismatch"
    );
    assert_eq!(out.len(), norms.len(), "cosine_scores: out length mismatch");
    if q.is_empty() {
        out.fill(0.0);
        return;
    }
    for ((row, &nr), o) in rows.chunks_exact(q.len()).zip(norms).zip(out.iter_mut()) {
        *o = cosine_with_norms(dot_scalar(q, row), qn, nr);
    }
}

/// Batched dot scan (SIMD-dispatched): `out[i] = q · rows[i]` over a flat
/// row-major block; one dispatch per scan, like [`cosine_scores`].
///
/// # Panics
/// Panics if `rows.len() != out.len() * q.len()`.
pub fn dot_scores(q: &[f64], rows: &[f64], out: &mut [f64]) {
    assert_eq!(
        rows.len(),
        out.len() * q.len(),
        "dot_scores: rows/out shape mismatch"
    );
    if q.is_empty() {
        out.fill(0.0);
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if crate::simd::avx2_active() {
        // SAFETY: dispatch verified avx2+fma; shapes checked above.
        unsafe { crate::simd::dot_scores_avx2(q, rows, out) };
        return;
    }
    dot_scores_scalar(q, rows, out);
}

/// Portable scalar batched dot scan — reference for the SIMD path.
pub fn dot_scores_scalar(q: &[f64], rows: &[f64], out: &mut [f64]) {
    assert_eq!(
        rows.len(),
        out.len() * q.len(),
        "dot_scores: rows/out shape mismatch"
    );
    if q.is_empty() {
        out.fill(0.0);
        return;
    }
    for (row, o) in rows.chunks_exact(q.len()).zip(out.iter_mut()) {
        *o = dot_scalar(q, row);
    }
}

/// Squared Euclidean distance `‖a − b‖²` (SIMD-dispatched).
#[inline]
pub fn squared_euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "squared_euclidean: length mismatch");
    #[cfg(target_arch = "x86_64")]
    if crate::simd::avx2_active() {
        // SAFETY: dispatch verified avx2+fma; lengths checked above.
        return unsafe { crate::simd::squared_euclidean_avx2(a, b) };
    }
    squared_euclidean_scalar(a, b)
}

/// Portable scalar squared Euclidean distance — reference for the SIMD path.
#[inline]
pub fn squared_euclidean_scalar(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "squared_euclidean: length mismatch");
    let mut s = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        let d = x - y;
        s += d * d;
    }
    s
}

/// Scales `a` to unit L2 norm in place; leaves all-zero vectors untouched.
#[inline]
pub fn normalize_inplace(a: &mut [f64]) {
    let n = norm2(a);
    if n > 0.0 {
        for x in a.iter_mut() {
            *x /= n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive_on_odd_lengths() {
        for len in [0usize, 1, 3, 4, 5, 7, 8, 13] {
            let a: Vec<f64> = (0..len).map(|i| (i as f64 + 1.0) * 0.5).collect();
            let b: Vec<f64> = (0..len).map(|i| (i as f64) - 2.0).collect();
            let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!((dot(&a, &b) - naive).abs() < 1e-12, "len {len}");
            assert!((dot_scalar(&a, &b) - naive).abs() < 1e-12, "len {len}");
        }
    }

    #[test]
    fn axpy_matches_scalar_reference() {
        for len in [0usize, 1, 3, 4, 5, 7, 8, 12, 13, 100] {
            let x: Vec<f64> = (0..len).map(|i| (i as f64) * 0.25 - 3.0).collect();
            let mut y: Vec<f64> = (0..len).map(|i| (i as f64) * -0.5 + 1.0).collect();
            let mut y_ref = y.clone();
            axpy(&mut y, -1.75, &x);
            axpy_scalar(&mut y_ref, -1.75, &x);
            for (i, (&a, &b)) in y.iter().zip(&y_ref).enumerate() {
                assert!((a - b).abs() < 1e-12, "len {len} lane {i}");
            }
        }
    }

    #[test]
    fn cosine_basics() {
        let a = [1.0, 0.0];
        let b = [0.0, 2.0];
        assert!((cosine(&a, &a) - 1.0).abs() < 1e-12);
        assert!(cosine(&a, &b).abs() < 1e-12);
        assert!((cosine(&a, &[-3.0, 0.0]) + 1.0).abs() < 1e-12);
        assert_eq!(cosine(&[0.0, 0.0], &a), 0.0);
    }

    #[test]
    fn cosine_with_norms_matches_direct() {
        let a = [1.0, 2.0, 3.0];
        let b = [-4.0, 0.5, 2.0];
        let via_norms = cosine_with_norms(dot(&a, &b), norm2(&a), norm2(&b));
        assert!((via_norms - cosine(&a, &b)).abs() < 1e-12);
    }

    #[test]
    fn normalize_makes_unit_norm() {
        let mut v = vec![3.0, 4.0];
        normalize_inplace(&mut v);
        assert!((norm2(&v) - 1.0).abs() < 1e-12);
        let mut z = vec![0.0, 0.0];
        normalize_inplace(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn squared_euclidean_basics() {
        assert!((squared_euclidean(&[0.0, 0.0], &[3.0, 4.0]) - 25.0).abs() < 1e-12);
        assert_eq!(squared_euclidean(&[1.0], &[1.0]), 0.0);
        assert_eq!(squared_euclidean_scalar(&[1.0], &[1.0]), 0.0);
    }
}
