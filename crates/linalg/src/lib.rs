//! # aneci-linalg
//!
//! Dense and sparse linear-algebra substrate for the AnECI reproduction.
//!
//! The paper's models are all expressed in terms of a handful of kernels:
//! symmetric-normalized sparse propagation (`D^-1/2 A D^-1/2 · H`), dense
//! weight products, row softmax, and sparse matrix powers for the high-order
//! proximity `Ã`. This crate provides exactly those, with no external BLAS:
//!
//! * [`DenseMatrix`] — row-major `f64` matrices with the usual elementwise,
//!   product, reduction and normalization operations;
//! * [`CsrMatrix`] — compressed-sparse-row matrices with sparse×sparse /
//!   sparse×dense products, normalizations, and pruning;
//! * [`par`] — multi-threaded versions of the hot products;
//! * [`pool`] — the persistent worker-pool runtime every multi-threaded
//!   kernel dispatches through (`ANECI_NUM_THREADS` / `ANECI_PAR_THRESHOLD`);
//! * [`kernel_stats`] — always-on per-kernel counters recorded into the
//!   `aneci-obs` global registry (`linalg.kernel.*`);
//! * [`rng`] — explicit-seed randomness, Xavier/He initializers, alias-table
//!   sampling;
//! * [`simd`] — runtime-dispatched AVX2/FMA kernels behind the portable
//!   scalar entry points (`ANECI_NO_SIMD` forces the fallbacks);
//! * [`vector`] — flat similarity kernels (dot / cosine / L2) shared by the
//!   serving layer's exact scorer and ANN index;
//! * [`stats`] — small statistics shared across the workspace.

pub mod dense;
pub mod kernel_stats;
pub mod par;
pub mod pool;
pub mod rng;
pub mod simd;
pub mod sparse;
pub mod stats;
pub mod vector;

pub use dense::DenseMatrix;
pub use sparse::CsrMatrix;

#[cfg(test)]
mod proptests {
    use crate::{CsrMatrix, DenseMatrix};
    use proptest::prelude::*;

    /// Strategy: random triplet lists for an `r`×`c` sparse matrix.
    fn triplets(r: usize, c: usize) -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
        prop::collection::vec((0..r, 0..c, -10.0..10.0f64), 0..40)
    }

    proptest! {
        #[test]
        fn csr_roundtrips_through_dense(t in triplets(8, 6)) {
            let s = CsrMatrix::from_triplets(8, 6, &t);
            let d = s.to_dense();
            let mut back_trips = Vec::new();
            for r in 0..8 {
                for c in 0..6 {
                    if d.get(r, c) != 0.0 {
                        back_trips.push((r, c, d.get(r, c)));
                    }
                }
            }
            let back = CsrMatrix::from_triplets(8, 6, &back_trips);
            prop_assert_eq!(back, s);
        }

        #[test]
        fn csr_transpose_involutive(t in triplets(7, 9)) {
            let s = CsrMatrix::from_triplets(7, 9, &t);
            prop_assert_eq!(s.transpose().transpose(), s);
        }

        #[test]
        fn spmm_agrees_with_dense(a in triplets(6, 5), b in triplets(5, 7)) {
            let sa = CsrMatrix::from_triplets(6, 5, &a);
            let sb = CsrMatrix::from_triplets(5, 7, &b);
            let sparse = sa.spmm(&sb).to_dense();
            let dense = sa.to_dense().matmul(&sb.to_dense());
            prop_assert!(sparse.sub(&dense).max_abs() < 1e-9);
        }

        #[test]
        fn matmul_distributes_over_add(
            a in prop::collection::vec(-5.0..5.0f64, 12),
            b in prop::collection::vec(-5.0..5.0f64, 12),
            c in prop::collection::vec(-5.0..5.0f64, 12),
        ) {
            let a = DenseMatrix::from_vec(3, 4, a);
            let b = DenseMatrix::from_vec(4, 3, b);
            let c = DenseMatrix::from_vec(4, 3, c);
            let lhs = a.matmul(&b.add(&c));
            let rhs = a.matmul(&b).add(&a.matmul(&c));
            prop_assert!(lhs.sub(&rhs).max_abs() < 1e-9);
        }

        #[test]
        fn softmax_rows_always_normalized(v in prop::collection::vec(-50.0..50.0f64, 20)) {
            let m = DenseMatrix::from_vec(4, 5, v);
            let s = m.softmax_rows();
            for row in s.rows_iter() {
                let sum: f64 = row.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-9);
                prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
            }
        }

        #[test]
        fn row_normalize_unit_rows(t in triplets(6, 6)) {
            let s = CsrMatrix::from_triplets(6, 6, &t).row_normalize();
            for r in 0..6 {
                let sum: f64 = s.row_entries(r).map(|(_, v)| v).sum();
                if s.row_nnz(r) > 0 {
                    prop_assert!((sum - 1.0).abs() < 1e-9);
                }
            }
        }
    }
}
