//! Exact t-SNE (van der Maaten & Hinton 2008).
//!
//! Used to regenerate Fig. 8 (2-D visualization of the learned embeddings).
//! This is the exact `O(N²)` formulation — fine at Cora scale — with the
//! standard machinery: perplexity-calibrated conditional Gaussians via
//! per-point binary search on the bandwidth, symmetrized `P`, early
//! exaggeration, and momentum gradient descent on the Student-t similarities.

use aneci_linalg::rng::{gaussian_matrix, seeded_rng};
use aneci_linalg::DenseMatrix;

/// t-SNE hyperparameters.
#[derive(Clone, Debug)]
pub struct TsneConfig {
    /// Target perplexity (effective neighbour count).
    pub perplexity: f64,
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Early-exaggeration factor applied for the first quarter of training.
    pub exaggeration: f64,
    /// RNG seed for the initial layout.
    pub seed: u64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        Self {
            perplexity: 30.0,
            iterations: 400,
            learning_rate: 100.0,
            exaggeration: 12.0,
            seed: 0,
        }
    }
}

/// Pairwise squared Euclidean distances between rows.
fn pairwise_sq_dists(x: &DenseMatrix) -> DenseMatrix {
    let n = x.rows();
    let norms: Vec<f64> = (0..n)
        .map(|i| x.row(i).iter().map(|v| v * v).sum())
        .collect();
    let gram = aneci_linalg::par::matmul(x, &x.transpose());
    DenseMatrix::from_fn(n, n, |i, j| {
        (norms[i] + norms[j] - 2.0 * gram.get(i, j)).max(0.0)
    })
}

/// Computes the symmetrized, normalized affinity matrix `P` for a given
/// perplexity via per-row binary search on the Gaussian bandwidth.
fn joint_probabilities(d2: &DenseMatrix, perplexity: f64) -> DenseMatrix {
    let n = d2.rows();
    let target_entropy = perplexity.ln();
    let mut p = DenseMatrix::zeros(n, n);
    for i in 0..n {
        let mut beta = 1.0; // precision = 1/(2σ²)
        let (mut beta_lo, mut beta_hi) = (0.0f64, f64::INFINITY);
        let row = d2.row(i).to_vec();
        for _ in 0..64 {
            // Conditional distribution and its entropy at this beta.
            let mut sum = 0.0;
            let mut sum_dp = 0.0;
            for (j, &d) in row.iter().enumerate() {
                if j == i {
                    continue;
                }
                let e = (-beta * d).exp();
                sum += e;
                sum_dp += d * e;
            }
            if sum <= 0.0 {
                break;
            }
            let entropy = beta * sum_dp / sum + sum.ln();
            let diff = entropy - target_entropy;
            if diff.abs() < 1e-5 {
                break;
            }
            if diff > 0.0 {
                beta_lo = beta;
                beta = if beta_hi.is_finite() {
                    (beta + beta_hi) / 2.0
                } else {
                    beta * 2.0
                };
            } else {
                beta_hi = beta;
                beta = (beta + beta_lo) / 2.0;
            }
        }
        let mut sum = 0.0;
        for (j, &d) in row.iter().enumerate() {
            if j != i {
                sum += (-beta * d).exp();
            }
        }
        if sum > 0.0 {
            for (j, &d) in row.iter().enumerate() {
                if j != i {
                    p.set(i, j, (-beta * d).exp() / sum);
                }
            }
        }
    }
    // Symmetrize and normalize: P = (P + Pᵀ) / 2n, floored for stability.
    let pt = p.transpose();
    let n2 = 2.0 * n as f64;
    DenseMatrix::from_fn(n, n, |i, j| ((p.get(i, j) + pt.get(i, j)) / n2).max(1e-12))
}

/// Embeds the rows of `x` into 2-D.
pub fn tsne(x: &DenseMatrix, config: &TsneConfig) -> DenseMatrix {
    let n = x.rows();
    assert!(n >= 4, "tsne: need at least 4 points");
    let d2 = pairwise_sq_dists(x);
    let p = joint_probabilities(&d2, config.perplexity.min((n - 1) as f64 / 3.0));

    let mut rng = seeded_rng(config.seed);
    let mut y = gaussian_matrix(n, 2, 1e-2, &mut rng);
    let mut velocity = DenseMatrix::zeros(n, 2);
    let exaggeration_end = config.iterations / 4;

    for it in 0..config.iterations {
        let exag = if it < exaggeration_end {
            config.exaggeration
        } else {
            1.0
        };
        let momentum = if it < exaggeration_end { 0.5 } else { 0.8 };

        // Student-t similarities Q and the normalizer.
        let mut num = DenseMatrix::zeros(n, n);
        let mut z = 0.0;
        for i in 0..n {
            let yi = y.row(i).to_vec();
            for j in (i + 1)..n {
                let yj = y.row(j);
                let d = (yi[0] - yj[0]) * (yi[0] - yj[0]) + (yi[1] - yj[1]) * (yi[1] - yj[1]);
                let t = 1.0 / (1.0 + d);
                num.set(i, j, t);
                num.set(j, i, t);
                z += 2.0 * t;
            }
        }
        let z = z.max(1e-12);

        // Gradient: 4 Σ_j (exag·p_ij − q_ij) t_ij (y_i − y_j).
        let mut grad = DenseMatrix::zeros(n, 2);
        for i in 0..n {
            let yi = y.row(i).to_vec();
            let mut gx = 0.0;
            let mut gy = 0.0;
            for j in 0..n {
                if i == j {
                    continue;
                }
                let t = num.get(i, j);
                let q = t / z;
                let coeff = 4.0 * (exag * p.get(i, j) - q) * t;
                let yj = y.row(j);
                gx += coeff * (yi[0] - yj[0]);
                gy += coeff * (yi[1] - yj[1]);
            }
            grad.set(i, 0, gx);
            grad.set(i, 1, gy);
        }

        velocity.scale_inplace(momentum);
        velocity.axpy(-config.learning_rate, &grad);
        y.add_assign(&velocity);

        // Re-center to keep the layout bounded.
        let means = y
            .col_sums()
            .iter()
            .map(|s| s / n as f64)
            .collect::<Vec<_>>();
        for r in 0..n {
            for (v, &m) in y.row_mut(r).iter_mut().zip(&means) {
                *v -= m;
            }
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use aneci_linalg::rng::seeded_rng;

    fn two_blobs(per: usize, sep: f64, seed: u64) -> (DenseMatrix, Vec<usize>) {
        let mut rng = seeded_rng(seed);
        let x = DenseMatrix::from_fn(2 * per, 5, |r, _| {
            let center = if r < per { 0.0 } else { sep };
            center + 0.3 * aneci_linalg::rng::standard_normal(&mut rng)
        });
        let y = (0..2 * per).map(|r| usize::from(r >= per)).collect();
        (x, y)
    }

    #[test]
    fn preserves_cluster_structure() {
        let (x, labels) = two_blobs(30, 6.0, 1);
        let cfg = TsneConfig {
            iterations: 250,
            seed: 2,
            ..Default::default()
        };
        let y = tsne(&x, &cfg);
        // Mean within-cluster distance must be well below between-cluster.
        let dist = |a: usize, b: usize| -> f64 {
            let (ra, rb) = (y.row(a), y.row(b));
            ((ra[0] - rb[0]).powi(2) + (ra[1] - rb[1]).powi(2)).sqrt()
        };
        let mut within = (0.0, 0usize);
        let mut between = (0.0, 0usize);
        for i in 0..60 {
            for j in (i + 1)..60 {
                if labels[i] == labels[j] {
                    within = (within.0 + dist(i, j), within.1 + 1);
                } else {
                    between = (between.0 + dist(i, j), between.1 + 1);
                }
            }
        }
        let w = within.0 / within.1 as f64;
        let b = between.0 / between.1 as f64;
        assert!(b > 1.5 * w, "within {w}, between {b}");
    }

    #[test]
    fn output_is_centered_and_finite() {
        let (x, _) = two_blobs(20, 3.0, 3);
        let y = tsne(
            &x,
            &TsneConfig {
                iterations: 100,
                seed: 4,
                ..Default::default()
            },
        );
        assert!(y.all_finite());
        for s in y.col_sums() {
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn joint_probabilities_are_symmetric_distribution() {
        let (x, _) = two_blobs(10, 2.0, 5);
        let d2 = pairwise_sq_dists(&x);
        let p = joint_probabilities(&d2, 5.0);
        // Sums to ~1 (up to the stability floor).
        assert!((p.sum() - 1.0).abs() < 1e-3);
        assert!(p.sub(&p.transpose()).max_abs() < 1e-12);
    }

    #[test]
    fn pairwise_distances_match_direct() {
        let x = DenseMatrix::from_rows(&[&[0.0, 0.0], &[3.0, 4.0], &[1.0, 1.0]]);
        let d2 = pairwise_sq_dists(&x);
        assert!((d2.get(0, 1) - 25.0).abs() < 1e-12);
        assert!((d2.get(0, 2) - 2.0).abs() < 1e-12);
        assert_eq!(d2.get(1, 1), 0.0);
    }
}
