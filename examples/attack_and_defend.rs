//! Attack & defend: poison a citation-style graph with random fake edges
//! and watch AnECI (and its denoising variant AnECI+) hold up where GAE
//! degrades — the paper's central claim (Figs. 2 & 5).
//!
//! ```sh
//! cargo run --release --example attack_and_defend
//! ```

use aneci::attacks::random_attack;
use aneci::baselines::{Gae, GaeConfig};
use aneci::eval::logreg::evaluate_embedding;
use aneci::prelude::*;

fn test_accuracy(graph: &AttributedGraph, z: &DenseMatrix, seed: u64) -> f64 {
    let labels = graph.labels.as_ref().unwrap();
    evaluate_embedding(
        z,
        labels,
        &graph.split.train,
        &graph.split.test,
        graph.num_classes(),
        seed,
    )
}

fn main() {
    let seed = 7;
    // A Cora-statistics synthetic benchmark at 20% scale (see DESIGN.md for
    // the dataset-substitution rationale).
    let graph = Benchmark::Cora.generate(0.2, seed);
    println!(
        "clean graph: {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    let aneci_cfg = AneciConfig::builder()
        .epochs(150)
        .stop(StopStrategy::FixedEpochs)
        .seed(seed)
        .build()
        .expect("valid AnECI configuration");
    let gae_cfg = GaeConfig {
        seed,
        ..Default::default()
    };

    // Baseline accuracies on the clean graph.
    let (clean_aneci, _) = train_aneci(&graph, &aneci_cfg).expect("training failed");
    let clean_gae = Gae::fit(&graph, &gae_cfg);
    println!("\n{:<28}{:>8}{:>8}", "", "GAE", "AnECI");
    println!(
        "{:<28}{:>8.3}{:>8.3}",
        "clean accuracy",
        test_accuracy(&graph, clean_gae.embedding(), seed),
        test_accuracy(&graph, clean_aneci.embedding(), seed),
    );

    // Poison with 30% fake edges and retrain everything (poisoning attack).
    let attack = random_attack(&graph, 0.3, seed);
    let poisoned_graph = attack.apply(&graph).expect("random attack delta");
    let fake_edges = attack.fake_edges();
    println!("injected {} fake edges (30% of |E|)", fake_edges.len());

    let (atk_aneci, _) = train_aneci(&poisoned_graph, &aneci_cfg).expect("training failed");
    let atk_gae = Gae::fit(&poisoned_graph, &gae_cfg);
    println!(
        "{:<28}{:>8.3}{:>8.3}",
        "poisoned accuracy",
        test_accuracy(&poisoned_graph, atk_gae.embedding(), seed),
        test_accuracy(&poisoned_graph, atk_aneci.embedding(), seed),
    );

    // Defense score: how well does each embedding isolate the fake edges?
    let clean_edges = graph.edge_list();
    println!(
        "{:<28}{:>8.3}{:>8.3}",
        "defense score DS(0.3)",
        defense_score(atk_gae.embedding(), &clean_edges, fake_edges),
        defense_score(atk_aneci.embedding(), &clean_edges, fake_edges),
    );

    // AnECI+ (Algorithm 1): score edges, drop the most anomalous, retrain.
    let plus = aneci_plus(&poisoned_graph, &aneci_cfg, &DenoiseConfig::default(), None)
        .expect("AnECI+ failed");
    let removed_fakes = plus
        .removed_edges
        .iter()
        .filter(|e| fake_edges.contains(e) || fake_edges.contains(&(e.1, e.0)))
        .count();
    println!(
        "\nAnECI+ dropped {} edges (ρ = {:.2}); {} of them were fakes ({:.0}% of removals)",
        plus.removed_edges.len(),
        plus.drop_ratio,
        removed_fakes,
        100.0 * removed_fakes as f64 / plus.removed_edges.len().max(1) as f64
    );
    println!(
        "AnECI+ poisoned accuracy: {:.3}",
        test_accuracy(&poisoned_graph, plus.model.embedding(), seed)
    );
}
