//! Runs every experiment in the paper's order. Expect this to take a while
//! at default scale; pass a smaller `--scale` for a smoke run.
use aneci_bench::exp;
use aneci_bench::ExpArgs;

fn main() {
    let args = ExpArgs::parse();
    println!(
        "# AnECI full experiment sweep (scale {}, seed {})",
        args.scale, args.seed
    );
    exp::table3::run(&args);
    exp::fig2::run(&args);
    exp::targeted::run(&args, exp::targeted::AttackKind::Nettack);
    exp::targeted::run(&args, exp::targeted::AttackKind::Fga);
    exp::fig5::run(&args);
    exp::fig6::run(&args);
    exp::fig7::run(&args);
    exp::table4::run(&args);
    exp::fig8::run(&args);
    exp::fig9::run(&args);
    exp::table5::run(&args);
}
