//! # aneci-bench
//!
//! Shared harness for the experiment binaries (one per table/figure of the
//! paper — see `DESIGN.md` §3 and the `src/bin/` directory):
//!
//! | binary | artifact |
//! |---|---|
//! | `exp_table3` | Table III — node classification on clean graphs |
//! | `exp_fig2`   | Fig. 2 — defense score vs perturbation rate |
//! | `exp_fig3`   | Fig. 3 — accuracy under NETTACK |
//! | `exp_fig4`   | Fig. 4 — accuracy under FGA |
//! | `exp_fig5`   | Fig. 5 — accuracy under random attack |
//! | `exp_fig6`   | Fig. 6 — anomaly detection AUC |
//! | `exp_fig7`   | Fig. 7 — community detection modularity |
//! | `exp_table4` | Table IV — ablation study |
//! | `exp_fig8`   | Fig. 8 — t-SNE coordinates (CSV) |
//! | `exp_fig9`   | Fig. 9 — proximity order & rigidity curves |
//! | `exp_table5` | Table V — running-time comparison |
//! | `run_all`    | everything above, sequentially |
//!
//! Every binary accepts `--scale <f>` (dataset down-scaling, default 0.25),
//! `--seed <u64>`, `--rounds <n>` (independent repetitions) and
//! `--datasets a,b,c`.

use aneci_core::{AneciConfig, AneciModel, StopStrategy};
use aneci_eval::logreg::evaluate_embedding;
use aneci_graph::{AttributedGraph, Benchmark};
use aneci_linalg::DenseMatrix;

/// Parsed command-line arguments shared by every experiment binary.
#[derive(Clone, Debug)]
pub struct ExpArgs {
    /// Dataset scale factor in `(0, 1]`.
    pub scale: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Number of independent repetitions to average.
    pub rounds: usize,
    /// Datasets to run.
    pub datasets: Vec<Benchmark>,
    /// Output directory for CSV artifacts.
    pub out_dir: String,
}

impl Default for ExpArgs {
    fn default() -> Self {
        Self {
            scale: 0.25,
            seed: 7,
            rounds: 3,
            datasets: Benchmark::ALL.to_vec(),
            out_dir: "results".to_string(),
        }
    }
}

impl ExpArgs {
    /// Parses `std::env::args()`; prints a usage message and exits with
    /// status 2 on bad input.
    pub fn parse() -> Self {
        match Self::try_parse(std::env::args().skip(1).collect()) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("error: {msg}");
                eprintln!(
                    "usage: <exp> [--scale f] [--seed u64] [--rounds n] \
                     [--datasets cora,citeseer,polblogs,pubmed] [--out-dir dir]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Fallible parser over an explicit argument vector (unit-testable).
    pub fn try_parse(args: Vec<String>) -> Result<Self, String> {
        let mut out = Self::default();
        let mut i = 0;
        while i < args.len() {
            let value = |i: &mut usize| -> Result<String, String> {
                *i += 1;
                args.get(*i)
                    .cloned()
                    .ok_or_else(|| format!("missing value after {}", args[*i - 1]))
            };
            match args[i].as_str() {
                "--scale" => {
                    out.scale = value(&mut i)?
                        .parse()
                        .map_err(|e| format!("bad --scale: {e}"))?
                }
                "--seed" => {
                    out.seed = value(&mut i)?
                        .parse()
                        .map_err(|e| format!("bad --seed: {e}"))?
                }
                "--rounds" => {
                    out.rounds = value(&mut i)?
                        .parse()
                        .map_err(|e| format!("bad --rounds: {e}"))?
                }
                "--out-dir" => out.out_dir = value(&mut i)?,
                "--datasets" => {
                    out.datasets = value(&mut i)?
                        .split(',')
                        .map(|s| {
                            Benchmark::parse(s).ok_or_else(|| {
                                format!(
                                    "unknown dataset {s} (expected cora, citeseer, polblogs or pubmed)"
                                )
                            })
                        })
                        .collect::<Result<_, _>>()?;
                }
                "--help" | "-h" => {
                    eprintln!(
                        "usage: <exp> [--scale f] [--seed u64] [--rounds n] \
                         [--datasets cora,citeseer,polblogs,pubmed] [--out-dir dir]"
                    );
                    std::process::exit(0);
                }
                other => return Err(format!("unknown argument {other}")),
            }
            i += 1;
        }
        if !(out.scale > 0.0 && out.scale <= 1.0) {
            return Err("--scale must be in (0, 1]".into());
        }
        if out.rounds == 0 {
            return Err("--rounds must be at least 1".into());
        }
        Ok(out)
    }
}

/// Renders an aligned text table to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (w, cell) in widths.iter().zip(cells) {
            s.push_str(&format!("{cell:<width$}  ", width = w));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Formats `mean ± std` the way the paper's tables do (accuracy in %).
pub fn fmt_pct(samples: &[f64]) -> String {
    let mean = aneci_linalg::stats::mean(samples) * 100.0;
    let std = aneci_linalg::stats::std_dev(samples) * 100.0;
    format!("{mean:.1}±{std:.1}")
}

/// Trains AnECI with the node-classification protocol (validation-probed
/// checkpointing via logistic regression on the validation split) and
/// returns the kept embedding.
pub fn aneci_classification_embedding(graph: &AttributedGraph, seed: u64) -> DenseMatrix {
    let config = AneciConfig {
        stop: StopStrategy::ValidationBest { eval_every: 15 },
        seed,
        ..AneciConfig::for_classification(seed)
    };
    let labels = graph.labels.clone().expect("needs labels");
    let k = graph.num_classes();
    let (train, val) = (graph.split.train.clone(), graph.split.val.clone());
    let mut model = AneciModel::new(graph, &config);
    if val.is_empty() {
        model.train(None).expect("training failed");
    } else {
        let mut probe =
            |_epoch: usize, z: &DenseMatrix| evaluate_embedding(z, &labels, &train, &val, k, seed);
        model.train(Some(&mut probe)).expect("training failed");
    }
    model.embedding().clone()
}

/// The classification protocol of Sec. VI-A: logistic regression on the
/// frozen embedding, accuracy on the test split.
pub fn classify(graph: &AttributedGraph, embedding: &DenseMatrix, seed: u64) -> f64 {
    let labels = graph.labels.as_ref().expect("needs labels");
    evaluate_embedding(
        embedding,
        labels,
        &graph.split.train,
        &graph.split.test,
        graph.num_classes(),
        seed,
    )
}

/// Like [`classify`], but evaluates accuracy on an arbitrary node subset
/// (the targeted-attack experiments score target nodes only).
pub fn classify_subset(
    graph: &AttributedGraph,
    embedding: &DenseMatrix,
    nodes: &[usize],
    seed: u64,
) -> f64 {
    let labels = graph.labels.as_ref().expect("needs labels");
    evaluate_embedding(
        embedding,
        labels,
        &graph.split.train,
        nodes,
        graph.num_classes(),
        seed,
    )
}

/// Writes CSV rows to a file under `out_dir`.
pub fn write_csv(
    out_dir: &str,
    file: &str,
    header: &str,
    rows: &[Vec<String>],
) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(out_dir)?;
    let path = std::path::Path::new(out_dir).join(file);
    let mut text = String::from(header);
    text.push('\n');
    for row in rows {
        text.push_str(&row.join(","));
        text.push('\n');
    }
    std::fs::write(&path, text)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aneci_graph::{karate_club, Split};

    #[test]
    fn try_parse_accepts_valid_args() {
        let a = ExpArgs::try_parse(
            [
                "--scale",
                "0.5",
                "--seed",
                "9",
                "--rounds",
                "2",
                "--datasets",
                "cora,pubmed",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        )
        .unwrap();
        assert_eq!(a.scale, 0.5);
        assert_eq!(a.seed, 9);
        assert_eq!(a.rounds, 2);
        assert_eq!(a.datasets.len(), 2);
    }

    #[test]
    fn try_parse_rejects_bad_input() {
        let parse =
            |args: &[&str]| ExpArgs::try_parse(args.iter().map(|s| s.to_string()).collect());
        assert!(parse(&["--datasets", "bogus"])
            .unwrap_err()
            .contains("unknown dataset"));
        assert!(parse(&["--scale", "0"]).unwrap_err().contains("(0, 1]"));
        assert!(parse(&["--scale", "1.5"]).unwrap_err().contains("(0, 1]"));
        assert!(parse(&["--seed"]).unwrap_err().contains("missing value"));
        assert!(parse(&["--seed", "abc"])
            .unwrap_err()
            .contains("bad --seed"));
        assert!(parse(&["--rounds", "0"])
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse(&["--frobnicate"])
            .unwrap_err()
            .contains("unknown argument"));
    }

    #[test]
    fn fmt_pct_shape() {
        assert_eq!(fmt_pct(&[0.8, 0.8, 0.8]), "80.0±0.0");
        let s = fmt_pct(&[0.7, 0.9]);
        assert!(s.starts_with("80.0±"));
    }

    #[test]
    fn classify_pipeline_runs_on_karate() {
        let mut g = karate_club();
        g.set_split(Split {
            train: vec![0, 33, 1, 32],
            val: vec![2, 31],
            test: (3..31).collect(),
        });
        let z = aneci_classification_embedding(&g, 1);
        assert_eq!(z.rows(), 34);
        let acc = classify(&g, &z, 1);
        assert!(acc > 0.6, "karate classification accuracy {acc}");
    }

    #[test]
    fn csv_writer_roundtrip() {
        let dir = std::env::temp_dir().join("aneci_bench_test");
        let path = write_csv(
            dir.to_str().unwrap(),
            "t.csv",
            "a,b",
            &[vec!["1".into(), "2".into()]],
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n1,2\n");
        std::fs::remove_file(path).ok();
    }
}
pub mod exp;
