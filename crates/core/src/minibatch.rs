//! Mini-batch training for [`AneciModel`] (million-node scale).
//!
//! The full-batch path ([`AneciModel::train`]) materializes one loss over
//! all `N` nodes per epoch; every operator it touches (`Â`, `Ã`, the dense
//! reconstruction target) is sized `N×N`-ish, which caps it around the
//! exact-recon threshold. This module trains the *same* objective on
//! induced subgraphs instead:
//!
//! 1. a [`BatchSampler`] plans each epoch's batches — community-aware
//!    subgraph sampling (sample communities, expand `l` hops) or
//!    GraphSAGE-style uniform neighbor sampling;
//! 2. per batch, the propagation operator is rebuilt from the raw adjacency
//!    (`extract_submatrix` → `add_identity` → `sym_normalize`, mirroring
//!    [`AttributedGraph::norm_adjacency`](aneci_graph::AttributedGraph::norm_adjacency)),
//!    and the high-order proximity rows come from
//!    [`HighOrder::build_rows`] — only the sampled rows, never `N×N`;
//! 3. the per-batch loss is the exact AnECI objective (`−β₁Q̃ + β₂L_R`) on
//!    the induced subgraph, driven through
//!    [`Trainer::run_batched`](aneci_autograd::train::Trainer).
//!
//! **Parity contract** (pinned by `tests/trainer_parity.rs`): with
//! [`BatchStrategy::FullGraph`] the per-batch operators are bit-exact
//! copies of the full-batch ones, the tape op order matches
//! `AneciModel::train_reference` exactly, and the negative-sampling RNG
//! walks the same `(seed, 0x5A3)` stream — so a one-batch "mini-batch" run
//! reproduces the reference trajectory bit-for-bit.
//!
//! For genuinely partial batches the kept embedding cannot be tracked
//! per-epoch (each batch only sees its own rows), so the model keeps the
//! post-training full forward pass instead.

use crate::config::{AneciConfig, ReconMode, StopStrategy};
use crate::error::AneciError;
use crate::model::{rigidity, AneciModel, TrainReport};
use aneci_autograd::train::{EpochStats, Objective, StepOutput, StopRule, Trainer};
use aneci_autograd::train_batch::{BatchSampler, BatchTrainStep};
use aneci_autograd::{Adam, BcePair, ParamSet, Tape, Var};
use aneci_graph::HighOrder;
use aneci_linalg::rng::{derive_seed, seeded_rng, xavier_uniform};
use aneci_linalg::{CsrMatrix, DenseMatrix};
use aneci_obs::span;
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;

pub use aneci_autograd::train_batch::BatchStrategy;

/// Everything a batch's loss needs, extracted once from the global graph.
/// Cached under the batch's node list so repeated plans (notably
/// [`BatchStrategy::FullGraph`], which replays the same batch every epoch)
/// skip the extraction entirely.
struct BatchArtifacts {
    nodes: Vec<usize>,
    /// Feature rows of the batch, in batch order.
    features: DenseMatrix,
    /// `sym_normalize(extract(A)[batch] + I)` — the batch GCN operator.
    norm_adj: Arc<CsrMatrix>,
    /// High-order proximity restricted to the batch (rows *and* columns).
    a_tilde: Arc<CsrMatrix>,
    /// Row sums of the batch `Ã` as a column vector.
    k_tilde: DenseMatrix,
    /// Total mass of the batch `Ã`.
    m_tilde: f64,
    /// Dense reconstruction target when the batch is small enough.
    dense_target: Option<Arc<DenseMatrix>>,
    /// Stored entries of the batch `Ã` (positive BCE pairs).
    positives: Arc<[BcePair]>,
}

/// The minimal inputs mini-batch training needs — shared by the
/// [`AneciModel`]-attached path and the standalone [`MiniBatchTrainer`]
/// (which never builds the global `N×N` proximity or dense target).
struct MbContext<'a> {
    config: &'a AneciConfig,
    adjacency: &'a Arc<CsrMatrix>,
    features: &'a DenseMatrix,
}

impl MbContext<'_> {
    fn num_nodes(&self) -> usize {
        self.adjacency.rows()
    }
}

impl BatchArtifacts {
    fn build(ctx: &MbContext<'_>, nodes: &[usize]) -> Self {
        let _s = span("batch.prepare");
        let sub = ctx.adjacency.extract_submatrix(nodes);
        let norm_adj = Arc::new(sub.add_identity().sym_normalize());
        let ho = HighOrder::build_rows(ctx.adjacency, &ctx.config.proximity, nodes);
        let k_tilde = DenseMatrix::column(&ho.k_tilde);
        let m_tilde = ho.m_tilde;
        let a_tilde = Arc::new(ho.a_tilde);
        let exact = match ctx.config.recon {
            ReconMode::Exact => true,
            ReconMode::Sampled { .. } => false,
            ReconMode::Auto => nodes.len() <= ctx.config.exact_recon_threshold,
        };
        let dense_target = exact.then(|| Arc::new(a_tilde.to_dense()));
        let positives: Arc<[BcePair]> = a_tilde
            .iter()
            .map(|(i, j, v)| (i as u32, j as u32, v))
            .collect::<Vec<_>>()
            .into();
        Self {
            nodes: nodes.to_vec(),
            features: ctx.features.select_rows(nodes),
            norm_adj,
            a_tilde,
            k_tilde,
            m_tilde,
            dense_target,
            positives,
        }
    }
}

/// [`BatchTrainStep`] driver: the AnECI objective on one induced subgraph
/// per batch, with the same tape op order and RNG consumption as the
/// full-batch `AneciStep` so the FullGraph plan is bit-exact with it.
struct MiniBatchStep<'m> {
    ctx: &'m MbContext<'m>,
    rng: StdRng,
    report: TrainReport,
    obs_q: aneci_obs::Histogram,
    obs_dq: aneci_obs::Histogram,
    prev_q: Option<f64>,
    /// Per-epoch accumulators, reset by `on_epoch`.
    q_sum: f64,
    rig_sum: f64,
    batches_seen: usize,
    cache: Option<BatchArtifacts>,
    /// Z of the most recent batch *iff* it covered every node.
    cur_z: Option<DenseMatrix>,
    best_z: Option<DenseMatrix>,
}

impl MiniBatchStep<'_> {
    /// A scalar `0` variable (no gradient): the degenerate-batch fallback
    /// for an empty `Ã` restriction or an empty BCE pair set.
    fn zero(tape: &mut Tape) -> Var {
        let z = tape.constant(DenseMatrix::zeros(1, 1));
        tape.sum(z)
    }
}

impl BatchTrainStep for MiniBatchStep<'_> {
    fn step(
        &mut self,
        tape: &mut Tape,
        w: &[Var],
        _epoch: usize,
        _batch_index: usize,
        _batch_count: usize,
        nodes: &[usize],
    ) -> StepOutput {
        let m = self.ctx;
        if self.cache.as_ref().is_none_or(|c| c.nodes != nodes) {
            self.cache = Some(BatchArtifacts::build(m, nodes));
        }
        let art = self.cache.as_ref().unwrap();

        // Encoder on the induced subgraph — op-for-op `AneciModel::forward`.
        let (z, p) = {
            let _s = span("encode");
            let x = tape.constant(art.features.clone());
            let xw = tape.matmul(x, w[0]);
            let h1 = tape.spmm(&art.norm_adj, xw);
            let a1 = tape.leaky_relu(h1, m.config.leaky_alpha);
            let hw = tape.matmul(a1, w[1]);
            let z = tape.spmm(&art.norm_adj, hw);
            let p = tape.softmax_rows(z);
            (z, p)
        };

        // Generalized modularity on the batch `Ã` — op-for-op
        // `AneciModel::modularity_var` with the batch mass.
        let q = {
            let _s = span("modularity");
            if art.m_tilde == 0.0 {
                Self::zero(tape)
            } else {
                let mass = art.m_tilde;
                let sp = tape.spmm(&art.a_tilde, p);
                let term1 = {
                    let h = tape.hadamard(p, sp);
                    tape.sum(h)
                };
                let k = tape.constant(art.k_tilde.clone());
                let y = tape.matmul_tn(p, k);
                let term2 = tape.frob_sq(y);
                let t2 = tape.scale(term2, 1.0 / mass);
                let diff = tape.sub(term1, t2);
                tape.scale(diff, 1.0 / mass)
            }
        };

        // Reconstruction on the batch `Ã` — `AneciModel::recon_var` with
        // the batch pair set; negatives walk the shared serial RNG stream.
        let recon = {
            let _s = span("decode");
            match &art.dense_target {
                Some(target) => {
                    let nb = nodes.len();
                    let loss = tape.dense_recon_bce(p, target, 1.0);
                    tape.scale(loss, 1.0 / (nb * nb) as f64)
                }
                None => {
                    let neg_ratio = match m.config.recon {
                        ReconMode::Sampled { neg_ratio } => neg_ratio,
                        _ => 1,
                    };
                    let nb = nodes.len() as u32;
                    let mut pairs: Vec<BcePair> =
                        Vec::with_capacity(art.positives.len() * (1 + neg_ratio));
                    pairs.extend_from_slice(&art.positives);
                    let num_neg = art.positives.len() * neg_ratio;
                    for _ in 0..num_neg {
                        let i = self.rng.gen_range(0..nb);
                        let j = self.rng.gen_range(0..nb);
                        if art.a_tilde.get(i as usize, j as usize) == 0.0 {
                            pairs.push((i, j, 0.0));
                        }
                    }
                    if pairs.is_empty() {
                        Self::zero(tape)
                    } else {
                        let count = pairs.len() as f64;
                        let pairs: Arc<[BcePair]> = pairs.into();
                        let loss = tape.pair_bce(p, &pairs);
                        tape.scale(loss, 1.0 / count)
                    }
                }
            }
        };

        let neg_q = tape.neg(q);
        let q_term = tape.scale(neg_q, m.config.beta1);
        let r_term = tape.scale(recon, m.config.beta2);
        let loss = tape.add(q_term, r_term);

        let q_val = tape.scalar(q);
        let p_val = tape.value(p).clone();
        self.q_sum += q_val;
        self.rig_sum += rigidity(&p_val);
        self.batches_seen += 1;
        self.cur_z = (nodes.len() == m.num_nodes()).then(|| tape.value(z).clone());

        let monitor = match m.config.stop {
            StopStrategy::FixedEpochs => None,
            // Batch Q̃ values are epoch-averaged by `run_batched`.
            StopStrategy::EarlyStopModularity { .. } => Some(q_val),
            // Rejected up front by `train_minibatch`.
            StopStrategy::ValidationBest { .. } => None,
        };
        StepOutput { loss, monitor }
    }

    fn on_best(&mut self, _epoch: usize, _params: &ParamSet) {
        // Only full-coverage batches yield a complete Z to keep; partial
        // plans fall back to the post-training forward pass.
        if self.cur_z.is_some() {
            self.best_z = self.cur_z.clone();
        }
    }

    fn on_epoch(&mut self, _stats: &EpochStats) {
        let nb = self.batches_seen.max(1) as f64;
        let q_mean = self.q_sum / nb;
        let rig_mean = self.rig_sum / nb;
        self.obs_q.observe(q_mean);
        self.obs_dq.observe(q_mean - self.prev_q.unwrap_or(q_mean));
        self.prev_q = Some(q_mean);
        self.report.modularity.push(q_mean);
        self.report.rigidity.push(rig_mean);
        self.q_sum = 0.0;
        self.rig_sum = 0.0;
        self.batches_seen = 0;
    }
}

/// The shared mini-batch driver behind [`AneciModel::train_minibatch`] and
/// [`MiniBatchTrainer::train`]. On success returns the filled report and
/// the kept full-coverage `Z` (None for genuinely partial plans — the
/// caller falls back to a post-training forward pass).
fn run_minibatch(
    ctx: &MbContext<'_>,
    params: &mut ParamSet,
    strategy: BatchStrategy,
    communities: Option<&[usize]>,
) -> Result<(TrainReport, Option<DenseMatrix>), AneciError> {
    if let StopStrategy::ValidationBest { .. } = ctx.config.stop {
        return Err(AneciError::Config(
            "mini-batch training does not support StopStrategy::ValidationBest; \
             use FixedEpochs or EarlyStopModularity"
                .into(),
        ));
    }
    let stop = match ctx.config.stop {
        StopStrategy::FixedEpochs | StopStrategy::ValidationBest { .. } => StopRule::FixedEpochs,
        // Same mapping as `AneciModel::train`.
        StopStrategy::EarlyStopModularity { patience } => StopRule::BestMonitor {
            objective: Objective::Maximize,
            patience: patience.max(1),
            min_delta: 1e-9,
        },
    };
    let trainer = Trainer::new(ctx.config.epochs)
        .stop(stop)
        .observe_as("core.train");
    let mut opt = Adam::new(ctx.config.lr).with_weight_decay(ctx.config.weight_decay);

    let sampler = BatchSampler::new(ctx.adjacency, strategy, communities, ctx.config.seed);
    let mut driver = MiniBatchStep {
        ctx,
        rng: seeded_rng(derive_seed(ctx.config.seed, 0x5A3)),
        report: TrainReport::default(),
        obs_q: aneci_obs::histogram("core.train.q_tilde"),
        obs_dq: aneci_obs::histogram("core.train.delta_q"),
        prev_q: None,
        q_sum: 0.0,
        rig_sum: 0.0,
        batches_seen: 0,
        cache: None,
        cur_z: None,
        best_z: None,
    };
    let outcome = trainer.run_batched(
        params,
        &mut opt,
        &mut |e| sampler.epoch_plan(e),
        &mut driver,
    );
    let MiniBatchStep {
        mut report, best_z, ..
    } = driver;
    let run = outcome?;
    report.losses = run.losses;
    report.best_epoch = run.best_epoch;
    report.epochs_run = run.epochs_run;
    Ok((report, best_z))
}

/// A full (all-node) encoder forward pass with the given parameters — the
/// final-embedding fallback when no batch covered every node. Builds the
/// normalized propagation operator on demand from the raw adjacency.
fn full_forward(
    adjacency: &CsrMatrix,
    features: &DenseMatrix,
    params: &ParamSet,
    config: &AneciConfig,
) -> DenseMatrix {
    let norm_adj = Arc::new(adjacency.add_identity().sym_normalize());
    let mut tape = Tape::new();
    let w = params.leaf_all(&mut tape);
    let x = tape.constant(features.clone());
    let xw = tape.matmul(x, w[0]);
    let h1 = tape.spmm(&norm_adj, xw);
    let a1 = tape.leaky_relu(h1, config.leaky_alpha);
    let hw = tape.matmul(a1, w[1]);
    let z = tape.spmm(&norm_adj, hw);
    tape.value(z).clone()
}

impl AneciModel {
    /// Trains through the mini-batch engine: per epoch, `strategy` plans a
    /// deterministic batch sequence (seeded from the model's config seed)
    /// and every batch optimizes the AnECI objective on its induced
    /// subgraph. `communities` (node → community id) is required by
    /// [`BatchStrategy::CommunityAware`] and ignored otherwise.
    ///
    /// [`StopStrategy::ValidationBest`] is not supported here (validation
    /// probes need a full embedding every probe epoch, defeating the point
    /// of batching) and reports [`AneciError::Config`]; use
    /// [`StopStrategy::FixedEpochs`] or
    /// [`StopStrategy::EarlyStopModularity`] — the latter monitors the
    /// epoch-mean batch Q̃.
    ///
    /// With [`BatchStrategy::FullGraph`] this reproduces
    /// [`AneciModel::train`] bit-exactly (same operators, same tape op
    /// order, same RNG streams) — the parity tests pin that contract.
    pub fn train_minibatch(
        &mut self,
        strategy: BatchStrategy,
        communities: Option<&[usize]>,
    ) -> Result<TrainReport, AneciError> {
        let mut params = std::mem::take(&mut self.params);
        let result = {
            let ctx = MbContext {
                config: &self.config,
                adjacency: &self.adjacency,
                features: &self.features,
            };
            run_minibatch(&ctx, &mut params, strategy, communities)
        };
        self.params = params;
        let (report, best_z) = result?;
        self.best_embedding = Some(match best_z {
            Some(z) => z,
            // Partial batches never see a full Z: keep the post-training
            // forward pass (the standard GraphSAGE-style serving answer).
            None => self.forward_embedding(),
        });
        Ok(report)
    }
}

/// Standalone mini-batch trainer for graphs too large for [`AneciModel`]'s
/// full-batch precomputation (global high-order proximity, dense targets,
/// the full positive-pair list — all `O(N·deg^l)` or worse). Holds only
/// the raw CSR adjacency and the feature matrix; every training-time
/// operator is batch-local.
///
/// Weight initialization walks the same `(seed, 0xA0EC1)` Xavier stream as
/// [`AneciModel::try_new`], so a `MiniBatchTrainer` and an `AneciModel`
/// with the same config start from identical parameters.
pub struct MiniBatchTrainer {
    config: AneciConfig,
    adjacency: Arc<CsrMatrix>,
    features: DenseMatrix,
    params: ParamSet,
    best_embedding: Option<DenseMatrix>,
}

impl MiniBatchTrainer {
    /// Builds a trainer from a raw symmetric adjacency and node features.
    /// Errors with [`AneciError::Config`] on an invalid configuration and
    /// [`AneciError::Shape`] on mismatched dimensions.
    pub fn try_new(
        adjacency: CsrMatrix,
        features: DenseMatrix,
        config: &AneciConfig,
    ) -> Result<Self, AneciError> {
        config.validate()?;
        if adjacency.rows() != adjacency.cols() {
            return Err(AneciError::Shape(format!(
                "adjacency must be square, got {}x{}",
                adjacency.rows(),
                adjacency.cols()
            )));
        }
        if features.rows() != adjacency.rows() {
            return Err(AneciError::Shape(format!(
                "feature rows ({}) must match the node count ({})",
                features.rows(),
                adjacency.rows()
            )));
        }
        let mut rng = seeded_rng(derive_seed(config.seed, 0xA0EC1));
        let mut params = ParamSet::new();
        params.register(
            "w1",
            xavier_uniform(features.cols(), config.hidden_dim, &mut rng),
        );
        params.register(
            "w2",
            xavier_uniform(config.hidden_dim, config.embed_dim, &mut rng),
        );
        Ok(Self {
            config: config.clone(),
            adjacency: Arc::new(adjacency),
            features,
            params,
            best_embedding: None,
        })
    }

    /// Mini-batch training; see [`AneciModel::train_minibatch`] for the
    /// strategy/stop semantics.
    pub fn train(
        &mut self,
        strategy: BatchStrategy,
        communities: Option<&[usize]>,
    ) -> Result<TrainReport, AneciError> {
        let result = {
            let ctx = MbContext {
                config: &self.config,
                adjacency: &self.adjacency,
                features: &self.features,
            };
            run_minibatch(&ctx, &mut self.params, strategy, communities)
        };
        let (report, best_z) = result?;
        self.best_embedding = Some(match best_z {
            Some(z) => z,
            None => full_forward(&self.adjacency, &self.features, &self.params, &self.config),
        });
        Ok(report)
    }

    /// The kept embedding matrix `Z` (after [`MiniBatchTrainer::train`]).
    pub fn embedding(&self) -> &DenseMatrix {
        self.best_embedding
            .as_ref()
            .expect("call train() before embedding()")
    }

    /// Hard community assignment `argmax_k softmax(Z)_i^k`.
    pub fn communities(&self) -> Vec<usize> {
        self.embedding().softmax_rows().argmax_rows()
    }

    /// The model configuration.
    pub fn config(&self) -> &AneciConfig {
        &self.config
    }

    /// Trainable parameter count.
    pub fn num_parameters(&self) -> usize {
        self.params.num_scalars()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AneciConfig;
    use aneci_graph::{generate_sbm, karate_club, SbmConfig};

    fn fixed_cfg(seed: u64) -> AneciConfig {
        AneciConfig {
            hidden_dim: 16,
            embed_dim: 4,
            epochs: 30,
            stop: StopStrategy::FixedEpochs,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn full_graph_minibatch_matches_reference_bit_exactly() {
        let g = karate_club();
        let cfg = fixed_cfg(7);

        let mut reference = AneciModel::new(&g, &cfg);
        let ref_report = reference.train_reference(None);

        let mut mini = AneciModel::new(&g, &cfg);
        let mini_report = mini
            .train_minibatch(BatchStrategy::FullGraph, None)
            .unwrap();

        assert_eq!(ref_report.losses, mini_report.losses);
        assert_eq!(ref_report.modularity, mini_report.modularity);
        assert_eq!(ref_report.rigidity, mini_report.rigidity);
        assert_eq!(ref_report.best_epoch, mini_report.best_epoch);
        assert_eq!(ref_report.epochs_run, mini_report.epochs_run);
        assert_eq!(reference.embedding(), mini.embedding());
    }

    #[test]
    fn community_aware_minibatch_trains_and_keeps_full_embedding() {
        let mut sbm = SbmConfig::small();
        sbm.num_nodes = 60;
        sbm.num_classes = 3;
        sbm.target_edges = 240;
        let g = generate_sbm(&sbm, 11);
        let mut cfg = fixed_cfg(3);
        cfg.embed_dim = 3;
        cfg.epochs = 20;
        let labels: Vec<usize> = (0..g.num_nodes()).map(|i| i % 3).collect();
        let mut model = AneciModel::new(&g, &cfg);
        let report = model
            .train_minibatch(
                BatchStrategy::CommunityAware {
                    communities_per_batch: 1,
                    hops: 1,
                    max_batch_nodes: 0,
                },
                Some(&labels),
            )
            .unwrap();
        assert_eq!(report.epochs_run, 20);
        assert!(report.losses.iter().all(|l| l.is_finite()));
        assert_eq!(model.embedding().shape(), (60, 3));
    }

    #[test]
    fn neighbor_sampling_minibatch_trains() {
        let g = karate_club();
        let mut cfg = fixed_cfg(5);
        cfg.epochs = 10;
        let mut model = AneciModel::new(&g, &cfg);
        let report = model
            .train_minibatch(
                BatchStrategy::NeighborSampling {
                    seeds_per_batch: 8,
                    fanout: 3,
                    hops: 2,
                },
                None,
            )
            .unwrap();
        assert_eq!(report.epochs_run, 10);
        assert!(report.losses.iter().all(|l| l.is_finite()));
        assert_eq!(model.embedding().shape(), (34, 4));
    }

    #[test]
    fn standalone_trainer_matches_model_minibatch_bit_exactly() {
        // Same seed stream → same Xavier init → the standalone trainer
        // (which never builds the global proximity) retraces the
        // model-attached mini-batch path exactly.
        let g = karate_club();
        let cfg = fixed_cfg(13);

        let mut via_model = AneciModel::new(&g, &cfg);
        let rep_model = via_model
            .train_minibatch(BatchStrategy::FullGraph, None)
            .unwrap();

        let mut standalone =
            MiniBatchTrainer::try_new(g.adjacency().clone(), g.features().clone(), &cfg).unwrap();
        let rep_sa = standalone.train(BatchStrategy::FullGraph, None).unwrap();

        assert_eq!(rep_model.losses, rep_sa.losses);
        assert_eq!(rep_model.modularity, rep_sa.modularity);
        assert_eq!(via_model.embedding(), standalone.embedding());
    }

    #[test]
    fn validation_best_is_rejected() {
        let g = karate_club();
        let mut cfg = fixed_cfg(1);
        cfg.stop = StopStrategy::ValidationBest { eval_every: 5 };
        let mut model = AneciModel::new(&g, &cfg);
        let err = model
            .train_minibatch(BatchStrategy::FullGraph, None)
            .unwrap_err();
        assert!(matches!(err, AneciError::Config(_)));
    }
}
