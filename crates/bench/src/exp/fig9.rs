//! Fig. 9 — (a) effect of the proximity order on attacked-graph accuracy;
//! (b) rigidity and test accuracy over training (overlapped vs hard
//! partition).

use crate::{classify, print_table, write_csv, ExpArgs};
use aneci_attacks::random_attack;
use aneci_core::{AneciConfig, AneciModel, StopStrategy};
use aneci_eval::logreg::evaluate_embedding;
use aneci_graph::ProximityConfig;
use aneci_linalg::rng::derive_seed;
use aneci_linalg::stats::mean;

/// Runs both panels (first requested dataset; paper uses Cora).
pub fn run(args: &ExpArgs) {
    let dataset = args.datasets[0];

    // ---- Panel (a): accuracy vs proximity order under attack. ----
    let mut rows_a = Vec::new();
    let mut csv_a = Vec::new();
    for hops in 1..=5usize {
        let mut accs = Vec::new();
        for round in 0..args.rounds {
            let seed = derive_seed(args.seed, (hops * 100 + round) as u64);
            let graph = dataset.generate(args.scale, seed);
            let attacked = random_attack(&graph, 0.2, seed)
                .apply(&graph)
                .expect("random attack delta");
            let config = AneciConfig {
                proximity: ProximityConfig::uniform(hops),
                epochs: 150,
                stop: StopStrategy::FixedEpochs,
                seed,
                ..Default::default()
            };
            let mut model = AneciModel::new(&attacked, &config);
            model.train(None).expect("training failed");
            accs.push(classify(&attacked, model.embedding(), seed));
        }
        rows_a.push(vec![hops.to_string(), format!("{:.3}", mean(&accs))]);
        csv_a.push(vec![hops.to_string(), format!("{:.4}", mean(&accs))]);
        eprintln!("[fig9a] hops {hops} done");
    }
    print_table(
        &format!(
            "Fig. 9(a) — accuracy vs proximity order, 20% random attack ({})",
            dataset.name()
        ),
        &["hops l", "ACC"],
        &rows_a,
    );
    let path = write_csv(
        &args.out_dir,
        &format!("fig9a_{}.csv", dataset.name()),
        "hops,accuracy",
        &csv_a,
    )
    .expect("write csv");
    println!("wrote {}", path.display());

    // ---- Panel (b): rigidity + test accuracy during training. ----
    let seed = derive_seed(args.seed, 9000);
    let graph = dataset.generate(args.scale, seed);
    let labels = graph.labels.clone().unwrap();
    let k = graph.num_classes();
    let (train, test) = (graph.split.train.clone(), graph.split.test.clone());
    let config = AneciConfig {
        epochs: 300,
        stop: StopStrategy::ValidationBest { eval_every: 10 },
        seed,
        ..Default::default()
    };
    let mut model = AneciModel::new(&graph, &config);
    let mut probe = |_epoch: usize, z: &aneci_linalg::DenseMatrix| {
        evaluate_embedding(z, &labels, &train, &test, k, seed)
    };
    let report = model.train(Some(&mut probe)).expect("training failed");

    let mut rows_b = Vec::new();
    let mut csv_b = Vec::new();
    for &(epoch, acc) in &report.val_scores {
        let rigidity = report.rigidity[epoch];
        let q = report.modularity[epoch];
        rows_b.push(vec![
            epoch.to_string(),
            format!("{rigidity:.3}"),
            format!("{q:.4}"),
            format!("{acc:.3}"),
        ]);
        csv_b.push(vec![
            epoch.to_string(),
            format!("{rigidity:.4}"),
            format!("{q:.4}"),
            format!("{acc:.4}"),
        ]);
    }
    print_table(
        &format!(
            "Fig. 9(b) — rigidity tr(PᵀP)/N, Q̃ and test ACC during training ({})",
            dataset.name()
        ),
        &["epoch", "rigidity", "Q̃", "test ACC"],
        &rows_b,
    );
    // Highlight the paper's observation: the best accuracy occurs before
    // the partition hardens.
    if let Some(&(best_epoch, best_acc)) = report
        .val_scores
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
    {
        let final_rigidity = report.rigidity.last().copied().unwrap_or(0.0);
        println!(
            "peak test ACC {best_acc:.3} at epoch {best_epoch} (rigidity {:.3}); final rigidity {final_rigidity:.3}",
            report.rigidity[best_epoch]
        );
    }
    let path = write_csv(
        &args.out_dir,
        &format!("fig9b_{}.csv", dataset.name()),
        "epoch,rigidity,q_tilde,test_acc",
        &csv_b,
    )
    .expect("write csv");
    println!("wrote {}", path.display());
}
