//! Multinomial logistic regression.
//!
//! This is the downstream classifier the paper trains on frozen embeddings
//! for every unsupervised method (Sec. VI-A): "we train a logistic
//! regression classifier with node embeddings as input features". Implemented
//! directly (closed-form softmax gradients + full-batch gradient descent with
//! momentum and L2), no autograd dependency.

use aneci_linalg::rng::{seeded_rng, xavier_uniform};
use aneci_linalg::DenseMatrix;

/// Hyperparameters for [`LogisticRegression::fit`].
#[derive(Clone, Debug)]
pub struct LogRegConfig {
    /// Learning rate.
    pub lr: f64,
    /// Number of full-batch epochs.
    pub epochs: usize,
    /// L2 regularization strength on the weights (not the bias).
    pub l2: f64,
    /// Whether to z-score each input dimension before training (statistics
    /// are estimated on the training rows and reused at prediction).
    pub standardize: bool,
    /// RNG seed for weight initialization.
    pub seed: u64,
}

impl Default for LogRegConfig {
    fn default() -> Self {
        Self {
            lr: 0.5,
            epochs: 300,
            l2: 1e-4,
            standardize: true,
            seed: 0,
        }
    }
}

/// A fitted multinomial logistic-regression model.
#[derive(Clone, Debug)]
pub struct LogisticRegression {
    weights: DenseMatrix, // d × k
    bias: Vec<f64>,       // k
    mean: Vec<f64>,
    std: Vec<f64>,
    standardize: bool,
    num_classes: usize,
}

impl LogisticRegression {
    /// Fits on `(features, labels)`; `labels` must lie in `0..num_classes`.
    pub fn fit(
        features: &DenseMatrix,
        labels: &[usize],
        num_classes: usize,
        config: &LogRegConfig,
    ) -> Self {
        assert_eq!(features.rows(), labels.len(), "logreg: row/label mismatch");
        assert!(num_classes >= 2, "logreg: need at least two classes");
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "logreg: label out of range"
        );
        let n = features.rows();
        let d = features.cols();

        // Standardization statistics from the training rows.
        let (mean, std) = if config.standardize {
            let mut mean = vec![0.0; d];
            for row in features.rows_iter() {
                for (m, &v) in mean.iter_mut().zip(row) {
                    *m += v;
                }
            }
            for m in &mut mean {
                *m /= n as f64;
            }
            let mut var = vec![0.0; d];
            for row in features.rows_iter() {
                for ((s, &v), &m) in var.iter_mut().zip(row).zip(&mean) {
                    *s += (v - m) * (v - m);
                }
            }
            // Dimensions that are (near-)constant on the training rows carry
            // no signal; dividing by a tiny std would explode them, so they
            // are left centered but unscaled.
            let std: Vec<f64> = var
                .iter()
                .map(|&v| {
                    let s = (v / n as f64).sqrt();
                    if s < 1e-6 {
                        1.0
                    } else {
                        s
                    }
                })
                .collect();
            (mean, std)
        } else {
            (vec![0.0; d], vec![1.0; d])
        };

        let x = Self::apply_standardize(features, &mean, &std, config.standardize);

        let mut rng = seeded_rng(config.seed);
        let mut w = xavier_uniform(d, num_classes, &mut rng);
        let mut b = vec![0.0; num_classes];

        let mut vel_w = DenseMatrix::zeros(d, num_classes);
        let mut vel_b = vec![0.0; num_classes];
        let momentum = 0.9;

        for _ in 0..config.epochs {
            // Forward: probs = softmax(XW + b).
            let mut logits = aneci_linalg::par::matmul(&x, &w);
            for r in 0..n {
                for (lv, &bv) in logits.row_mut(r).iter_mut().zip(&b) {
                    *lv += bv;
                }
            }
            logits.softmax_rows_inplace();
            // Gradient: Xᵀ(probs − Y)/n + l2·W.
            for (r, &label) in labels.iter().enumerate() {
                logits.add_at(r, label, -1.0);
            }
            let mut gw = aneci_linalg::par::matmul_tn(&x, &logits);
            gw.scale_inplace(1.0 / n as f64);
            gw.axpy(config.l2, &w);
            let mut gb = logits.col_sums();
            for g in &mut gb {
                *g /= n as f64;
            }
            // Momentum update.
            vel_w.scale_inplace(momentum);
            vel_w.axpy(1.0, &gw);
            w.axpy(-config.lr, &vel_w);
            for ((vb, gb), bb) in vel_b.iter_mut().zip(&gb).zip(&mut b) {
                *vb = momentum * *vb + gb;
                *bb -= config.lr * *vb;
            }
        }

        Self {
            weights: w,
            bias: b,
            mean,
            std,
            standardize: config.standardize,
            num_classes,
        }
    }

    fn apply_standardize(x: &DenseMatrix, mean: &[f64], std: &[f64], enabled: bool) -> DenseMatrix {
        if !enabled {
            return x.clone();
        }
        let mut out = x.clone();
        for r in 0..out.rows() {
            for ((v, &m), &s) in out.row_mut(r).iter_mut().zip(mean).zip(std) {
                *v = (*v - m) / s;
            }
        }
        out
    }

    /// Class-probability matrix for new rows.
    pub fn predict_proba(&self, features: &DenseMatrix) -> DenseMatrix {
        let x = Self::apply_standardize(features, &self.mean, &self.std, self.standardize);
        let mut logits = aneci_linalg::par::matmul(&x, &self.weights);
        for r in 0..logits.rows() {
            for (lv, &bv) in logits.row_mut(r).iter_mut().zip(&self.bias) {
                *lv += bv;
            }
        }
        logits.softmax_rows_inplace();
        logits
    }

    /// Hard class predictions.
    pub fn predict(&self, features: &DenseMatrix) -> Vec<usize> {
        self.predict_proba(features).argmax_rows()
    }

    /// Number of classes the model was fitted with.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }
}

/// The full embedding-evaluation protocol of the paper: fit logistic
/// regression on the training rows of `embedding`, return accuracy on the
/// test rows.
pub fn evaluate_embedding(
    embedding: &DenseMatrix,
    labels: &[usize],
    train: &[usize],
    test: &[usize],
    num_classes: usize,
    seed: u64,
) -> f64 {
    let x_train = embedding.select_rows(train);
    let y_train: Vec<usize> = train.iter().map(|&i| labels[i]).collect();
    let config = LogRegConfig {
        seed,
        ..Default::default()
    };
    let model = LogisticRegression::fit(&x_train, &y_train, num_classes, &config);
    let x_test = embedding.select_rows(test);
    let y_test: Vec<usize> = test.iter().map(|&i| labels[i]).collect();
    let pred = model.predict(&x_test);
    crate::metrics::accuracy(&pred, &y_test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aneci_linalg::rng::{gaussian_matrix, seeded_rng};

    /// Two well-separated Gaussian blobs must be almost perfectly separable.
    fn blobs(n_per: usize, d: usize, sep: f64, seed: u64) -> (DenseMatrix, Vec<usize>) {
        let mut rng = seeded_rng(seed);
        let noise = gaussian_matrix(2 * n_per, d, 1.0, &mut rng);
        let x = DenseMatrix::from_fn(2 * n_per, d, |r, c| {
            let center = if r < n_per { -sep } else { sep };
            center + noise.get(r, c)
        });
        let y: Vec<usize> = (0..2 * n_per).map(|r| usize::from(r >= n_per)).collect();
        (x, y)
    }

    #[test]
    fn separable_blobs_reach_high_accuracy() {
        let (x, y) = blobs(100, 4, 2.0, 1);
        let model = LogisticRegression::fit(&x, &y, 2, &LogRegConfig::default());
        let pred = model.predict(&x);
        assert!(crate::metrics::accuracy(&pred, &y) > 0.97);
    }

    #[test]
    fn three_class_problem() {
        let mut rng = seeded_rng(2);
        let n = 120;
        let noise = gaussian_matrix(n, 3, 0.3, &mut rng);
        let x = DenseMatrix::from_fn(n, 3, |r, c| {
            let class = r % 3;
            (if c == class { 2.0 } else { 0.0 }) + noise.get(r, c)
        });
        let y: Vec<usize> = (0..n).map(|r| r % 3).collect();
        let model = LogisticRegression::fit(&x, &y, 3, &LogRegConfig::default());
        let pred = model.predict(&x);
        assert!(crate::metrics::accuracy(&pred, &y) > 0.95);
    }

    #[test]
    fn probabilities_are_normalized() {
        let (x, y) = blobs(30, 2, 1.0, 3);
        let model = LogisticRegression::fit(&x, &y, 2, &LogRegConfig::default());
        let p = model.predict_proba(&x);
        for row in p.rows_iter() {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn standardization_helps_with_scale_mismatch() {
        // One informative dimension at tiny scale, one noise dimension huge.
        let mut rng = seeded_rng(4);
        let n = 200;
        let x = DenseMatrix::from_fn(n, 2, |r, c| {
            if c == 0 {
                (if r < n / 2 { -1.0 } else { 1.0 }) * 1e-3
                    + 1e-4 * aneci_linalg::rng::standard_normal(&mut rng)
            } else {
                1e3 * aneci_linalg::rng::standard_normal(&mut rng)
            }
        });
        let y: Vec<usize> = (0..n).map(|r| usize::from(r >= n / 2)).collect();
        let cfg = LogRegConfig {
            standardize: true,
            ..Default::default()
        };
        let model = LogisticRegression::fit(&x, &y, 2, &cfg);
        assert!(crate::metrics::accuracy(&model.predict(&x), &y) > 0.95);
    }

    #[test]
    fn deterministic_in_seed() {
        let (x, y) = blobs(50, 3, 1.0, 5);
        let cfg = LogRegConfig::default();
        let m1 = LogisticRegression::fit(&x, &y, 2, &cfg);
        let m2 = LogisticRegression::fit(&x, &y, 2, &cfg);
        assert_eq!(m1.predict_proba(&x), m2.predict_proba(&x));
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_labels() {
        let (x, _) = blobs(10, 2, 1.0, 6);
        let bad = vec![5; 20];
        LogisticRegression::fit(&x, &bad, 2, &LogRegConfig::default());
    }
}
