//! Compressed sparse row (CSR) matrices.
//!
//! Adjacency matrices, normalized propagation operators and high-order
//! proximity matrices are all stored in CSR form. Column indices inside every
//! row are kept **sorted and deduplicated** — every constructor enforces this
//! invariant and the property tests in this module defend it.

use crate::dense::DenseMatrix;
use crate::kernel_stats::{self, Kernel};
use crate::pool::{self, SendPtr};
use serde::{Deserialize, Serialize};

/// Chunk-nnz floor below which `spmm_rows` skips its output pre-sizing
/// pass. The estimate costs one degree lookup per stored entry — about a
/// tenth of the multiply work on sparse rows — which only pays for itself
/// once the output is big enough for doubling-growth reallocs to dominate.
const SPMM_PRESIZE_MIN_NNZ: usize = 1 << 16;

/// Per-row-range kernel output: per-row entry counts plus the concatenated
/// indices/values for those rows. Chunks of these are stitched back together
/// in row order, so pooled kernels produce output identical to serial.
type RowChunk = (Vec<usize>, Vec<u32>, Vec<f64>);

/// A CSR sparse matrix of `f64`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// Row pointers, length `rows + 1`.
    indptr: Vec<usize>,
    /// Column indices, sorted within each row.
    indices: Vec<u32>,
    /// Values aligned with `indices`.
    values: Vec<f64>,
}

impl CsrMatrix {
    /// An empty (all-zero) matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            indptr: vec![0; rows + 1],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The `n`×`n` identity.
    pub fn identity(n: usize) -> Self {
        Self {
            rows: n,
            cols: n,
            indptr: (0..=n).collect(),
            indices: (0..n as u32).collect(),
            values: vec![1.0; n],
        }
    }

    /// Builds from `(row, col, value)` triplets. Duplicate coordinates are
    /// summed; explicit zeros (including sums cancelling to zero) are dropped.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        let mut by_row: Vec<Vec<(u32, f64)>> = vec![Vec::new(); rows];
        for &(r, c, v) in triplets {
            assert!(
                r < rows && c < cols,
                "triplet ({r},{c}) out of bounds {rows}x{cols}"
            );
            by_row[r].push((c as u32, v));
        }
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        indptr.push(0);
        for row in &mut by_row {
            row.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < row.len() {
                let c = row[i].0;
                let mut v = row[i].1;
                let mut j = i + 1;
                while j < row.len() && row[j].0 == c {
                    v += row[j].1;
                    j += 1;
                }
                if v != 0.0 {
                    indices.push(c);
                    values.push(v);
                }
                i = j;
            }
            indptr.push(indices.len());
        }
        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// Builds directly from raw CSR parts, validating the invariants.
    ///
    /// # Panics
    /// Panics when `indptr` is not monotone, lengths disagree, or indices
    /// within a row are unsorted / duplicated / out of range.
    pub fn from_raw(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(indptr.len(), rows + 1, "indptr length must be rows+1");
        assert_eq!(
            indices.len(),
            values.len(),
            "indices/values length mismatch"
        );
        assert_eq!(
            *indptr.last().unwrap(),
            indices.len(),
            "indptr end must equal nnz"
        );
        for r in 0..rows {
            assert!(indptr[r] <= indptr[r + 1], "indptr must be monotone");
            let row = &indices[indptr[r]..indptr[r + 1]];
            for w in row.windows(2) {
                assert!(w[0] < w[1], "row {r}: indices must be strictly increasing");
            }
            if let Some(&last) = row.last() {
                assert!((last as usize) < cols, "row {r}: column index out of range");
            }
        }
        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// Checks the CSR invariants without panicking: `indptr` monotone with
    /// the right length and end, `indices`/`values` aligned, and every row's
    /// indices strictly increasing and in range. Constructors enforce all of
    /// this, so the check exists for matrices that *bypassed* a constructor —
    /// chiefly serde-deserialized ones, where a malformed file must surface
    /// as `Err` from the load path instead of an out-of-bounds panic later.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.indptr.len() != self.rows + 1 {
            return Err(format!(
                "indptr length {} != rows+1 = {}",
                self.indptr.len(),
                self.rows + 1
            ));
        }
        if self.indices.len() != self.values.len() {
            return Err(format!(
                "indices/values length mismatch: {} vs {}",
                self.indices.len(),
                self.values.len()
            ));
        }
        if self.indptr[0] != 0 || *self.indptr.last().unwrap() != self.indices.len() {
            return Err("indptr must start at 0 and end at nnz".into());
        }
        // Full monotonicity first: together with the endpoint check above it
        // bounds every indptr value by nnz, making the row slicing below safe.
        for r in 0..self.rows {
            if self.indptr[r] > self.indptr[r + 1] {
                return Err(format!("indptr not monotone at row {r}"));
            }
        }
        for r in 0..self.rows {
            let row = &self.indices[self.indptr[r]..self.indptr[r + 1]];
            for w in row.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("row {r}: indices not strictly increasing"));
                }
            }
            if let Some(&last) = row.last() {
                if last as usize >= self.cols {
                    return Err(format!("row {r}: column {last} out of range"));
                }
            }
        }
        Ok(())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored (non-zero) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Raw row pointers.
    #[inline]
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Raw column indices.
    #[inline]
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Raw values.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable values (structure stays fixed).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// `(column, value)` pairs of row `r`.
    #[inline]
    pub fn row_entries(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let range = self.indptr[r]..self.indptr[r + 1];
        self.indices[range.clone()]
            .iter()
            .zip(&self.values[range])
            .map(|(&c, &v)| (c as usize, v))
    }

    /// Number of stored entries in row `r`.
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        self.indptr[r + 1] - self.indptr[r]
    }

    /// Value at `(r, c)` (binary-searching the row); zero if absent.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let range = self.indptr[r]..self.indptr[r + 1];
        match self.indices[range.clone()].binary_search(&(c as u32)) {
            Ok(pos) => self.values[range.start + pos],
            Err(_) => 0.0,
        }
    }

    /// Iterates over all `(row, col, value)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |r| self.row_entries(r).map(move |(c, v)| (r, c, v)))
    }

    /// Converts to a dense matrix.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            out.set(r, c, v);
        }
        out
    }

    /// Transposes the matrix — an O(nnz) counting sort, chunked over the
    /// pool above the threshold. Every entry lands at exactly the position
    /// the straightforward serial counting sort ([`Self::transpose_reference`])
    /// would put it, for *any* chunk decomposition, so the output is
    /// bit-identical across thread counts and machines.
    pub fn transpose(&self) -> CsrMatrix {
        kernel_stats::record(Kernel::SparseTranspose, self.nnz() as u64, || {
            self.transpose_chunked()
        })
    }

    /// Retained straightforward transpose (checked indexing, `usize`
    /// histograms): the correctness oracle for the parity tests and the
    /// serial baseline `bench_report` times the production kernel against.
    pub fn transpose_reference(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.indices {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let indptr = counts.clone();
        let mut indices = vec![0u32; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = counts;
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                let pos = next[c];
                indices[pos] = r as u32;
                values[pos] = v;
                next[c] += 1;
            }
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            indptr,
            indices,
            values,
        }
    }

    /// Two-pass chunked transpose: pass 1 builds a per-chunk column
    /// histogram; the histograms are prefix-summed into per-chunk write
    /// offsets, so pass 2 scatters with no atomics and lands every entry at
    /// exactly the position the serial counting sort would (entries within
    /// an output row stay ordered by source row).
    ///
    /// Chunking is deliberately coarse — at most one chunk per hardware
    /// core, capped at 8: every extra chunk costs a `cols`-sized histogram
    /// in pass 1 and another `cols`-sized cursor walk in the offset merge,
    /// which is what made a finer-grained version of this kernel *lose* to
    /// the serial counting sort. Counts and cursors are `u32` — half the
    /// cache footprint of the reference's `usize` arrays — which together
    /// with unchecked scatter indexing keeps this path ahead of the
    /// reference even single-chunk on one core. Scaling chunks by
    /// [`pool::hardware_parallelism`] (a machine constant) and by the
    /// threshold is safe precisely because the output is chunk-invariant.
    fn transpose_chunked(&self) -> CsrMatrix {
        let nnz = self.nnz();
        if nnz > u32::MAX as usize {
            // u32 write cursors can't address the output; the reference
            // counting sort handles the (unreachable in practice) huge case.
            return self.transpose_reference();
        }
        let max_chunks = if pool::should_parallelize(nnz) {
            pool::hardware_parallelism().min(8)
        } else {
            1
        };
        let grain = self.rows.div_ceil(max_chunks.max(1)).max(1024);
        let mut hists = pool::parallel_map_chunks(self.rows, grain, |lo, hi| {
            let mut counts = vec![0u32; self.cols];
            for &c in &self.indices[self.indptr[lo]..self.indptr[hi]] {
                // SAFETY: the CSR invariant bounds column indices by `cols`.
                unsafe { *counts.get_unchecked_mut(c as usize) += 1 };
            }
            counts
        });
        let mut indptr = vec![0usize; self.cols + 1];
        for hist in &hists {
            for (c, &n) in hist.iter().enumerate() {
                indptr[c + 1] += n as usize;
            }
        }
        for c in 0..self.cols {
            indptr[c + 1] += indptr[c];
        }
        // Per-column running offset over chunks: hists[k][c] becomes the
        // position where chunk k writes its first entry for column c.
        let mut running: Vec<u32> = indptr[..self.cols].iter().map(|&x| x as u32).collect();
        for hist in &mut hists {
            for (c, slot) in hist.iter_mut().enumerate() {
                let n = *slot;
                *slot = running[c];
                running[c] += n;
            }
        }
        let mut indices = vec![0u32; nnz];
        let mut values = vec![0.0f64; nnz];
        {
            let iptr = SendPtr(indices.as_mut_ptr());
            let vptr = SendPtr(values.as_mut_ptr());
            let hptr = SendPtr(hists.as_mut_ptr());
            pool::parallel_for_chunks(self.rows, grain, |chunk, lo, hi| {
                // SAFETY: each chunk index is claimed exactly once, so this
                // is the only live borrow of `hists[chunk]`, which becomes
                // the chunk's private write-cursor array.
                let next = unsafe { &mut *hptr.get().add(chunk) };
                for r in lo..hi {
                    let rr = r as u32;
                    for j in self.indptr[r]..self.indptr[r + 1] {
                        // SAFETY: `j` is in bounds by the CSR invariant;
                        // cursor positions are disjoint across chunks by
                        // construction of the per-chunk histograms.
                        unsafe {
                            let c = *self.indices.get_unchecked(j) as usize;
                            let cur = next.get_unchecked_mut(c);
                            let pos = *cur as usize;
                            *cur += 1;
                            *iptr.get().add(pos) = rr;
                            *vptr.get().add(pos) = *self.values.get_unchecked(j);
                        }
                    }
                }
            });
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            indptr,
            indices,
            values,
        }
    }

    /// Sparse × dense vector product.
    pub fn spmv(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "spmv: dimension mismatch");
        (0..self.rows)
            .map(|r| self.row_entries(r).map(|(c, val)| val * v[c]).sum())
            .collect()
    }

    /// Sparse × dense matrix product `self * d`.
    pub fn spmm_dense(&self, d: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, d.rows(), "spmm_dense: inner dimension mismatch");
        let mut out = DenseMatrix::zeros(self.rows, d.cols());
        for r in 0..self.rows {
            let out_row = out.row_mut(r);
            for (c, v) in self.row_entries(r) {
                let d_row = d.row(c);
                for (o, &dv) in out_row.iter_mut().zip(d_row) {
                    *o += v * dv;
                }
            }
        }
        out
    }

    /// Sparse × sparse matrix product (classic Gustavson row-merge), pooled
    /// over output rows above the pool threshold.
    pub fn spmm(&self, other: &CsrMatrix) -> CsrMatrix {
        let mut out = CsrMatrix::zeros(self.rows, other.cols);
        self.spmm_into(other, &mut out);
        out
    }

    /// [`CsrMatrix::spmm`] writing into `out`, reusing its buffers (the
    /// proximity power loop calls this every order; reuse keeps it from
    /// re-materializing multi-million-entry vectors each time).
    pub fn spmm_into(&self, other: &CsrMatrix, out: &mut CsrMatrix) {
        assert_eq!(self.cols, other.rows, "spmm: inner dimension mismatch");
        // Expected multiply-adds: every stored entry of `self` expands one
        // average row of `other`.
        let est = self.nnz() * other.nnz() / other.rows.max(1);
        kernel_stats::record(Kernel::Spmm, 2 * est as u64, || {
            let chunks = if pool::should_parallelize(est) {
                let grain = pool::row_grain(self.rows, 16);
                pool::parallel_map_chunks(self.rows, grain, |lo, hi| self.spmm_rows(other, lo, hi))
            } else {
                vec![self.spmm_rows(other, 0, self.rows)]
            };
            assemble_rows_into(self.rows, other.cols, &chunks, out);
        });
    }

    /// Gustavson row-merge of rows `lo..hi` with chunk-local scratch.
    /// Explicit zeros (sums cancelling exactly) are dropped, matching the
    /// constructor invariant.
    fn spmm_rows(&self, other: &CsrMatrix, lo: usize, hi: usize) -> RowChunk {
        let mut lens = Vec::with_capacity(hi - lo);
        // Pre-size the output from degree counts when the chunk is large:
        // every stored entry of rows `lo..hi` expands at most one full row
        // of `other` (and a row never exceeds `other.cols` distinct
        // columns), which is what keeps the proximity power loop from
        // paying doubling-growth reallocs on multi-million-entry products.
        // The estimation pass is O(chunk nnz) — roughly one multiply-row's
        // worth of work per entry — so small chunks skip it and let vector
        // doubling do its (cheap at that size) thing.
        let chunk_nnz = self.indptr[hi] - self.indptr[lo];
        let est = if chunk_nnz >= SPMM_PRESIZE_MIN_NNZ {
            let mut est = 0usize;
            for r in lo..hi {
                for pos in self.indptr[r]..self.indptr[r + 1] {
                    est = est.saturating_add(other.row_nnz(self.indices[pos] as usize));
                }
            }
            est.min((hi - lo).saturating_mul(other.cols))
        } else {
            0
        };
        let mut indices: Vec<u32> = Vec::with_capacity(est);
        let mut values: Vec<f64> = Vec::with_capacity(est);
        // Dense accumulator with an O(1) "touched" marker array.
        let mut acc = vec![0.0f64; other.cols];
        let mut mark = vec![false; other.cols];
        let mut touched: Vec<u32> = Vec::new();
        for r in lo..hi {
            touched.clear();
            let before = indices.len();
            for (k, a) in self.row_entries(r) {
                for (c, b) in other.row_entries(k) {
                    if !mark[c] {
                        mark[c] = true;
                        touched.push(c as u32);
                    }
                    acc[c] += a * b;
                }
            }
            touched.sort_unstable();
            for &c in &touched {
                let v = acc[c as usize];
                if v != 0.0 {
                    indices.push(c);
                    values.push(v);
                }
                acc[c as usize] = 0.0;
                mark[c as usize] = false;
            }
            lens.push(indices.len() - before);
        }
        (lens, indices, values)
    }

    /// Elementwise sum `self + alpha * other` on matching shapes.
    pub fn add_scaled(&self, other: &CsrMatrix, alpha: f64) -> CsrMatrix {
        let mut out = CsrMatrix::zeros(self.rows, self.cols);
        self.add_scaled_into(other, alpha, &mut out);
        out
    }

    /// [`CsrMatrix::add_scaled`] writing into `out`, reusing its buffers.
    pub fn add_scaled_into(&self, other: &CsrMatrix, alpha: f64, out: &mut CsrMatrix) {
        assert_eq!(self.shape(), other.shape(), "add_scaled: shape mismatch");
        out.rows = self.rows;
        out.cols = self.cols;
        out.indptr.clear();
        out.indptr.reserve(self.rows + 1);
        out.indptr.push(0);
        out.indices.clear();
        out.values.clear();
        let cap = self.nnz() + other.nnz();
        out.indices.reserve(cap);
        out.values.reserve(cap);
        for r in 0..self.rows {
            let mut a = self.indptr[r];
            let a_end = self.indptr[r + 1];
            let mut b = other.indptr[r];
            let b_end = other.indptr[r + 1];
            while a < a_end || b < b_end {
                let (c, v) = if b >= b_end || (a < a_end && self.indices[a] < other.indices[b]) {
                    let entry = (self.indices[a], self.values[a]);
                    a += 1;
                    entry
                } else if a >= a_end || other.indices[b] < self.indices[a] {
                    let entry = (other.indices[b], alpha * other.values[b]);
                    b += 1;
                    entry
                } else {
                    let entry = (self.indices[a], self.values[a] + alpha * other.values[b]);
                    a += 1;
                    b += 1;
                    entry
                };
                if v != 0.0 {
                    out.indices.push(c);
                    out.values.push(v);
                }
            }
            out.indptr.push(out.indices.len());
        }
    }

    /// Scales every value by `alpha` in place.
    pub fn scale_inplace(&mut self, alpha: f64) {
        for v in &mut self.values {
            *v *= alpha;
        }
    }

    /// Row sums (the "degrees" of a weighted adjacency matrix).
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows)
            .map(|r| self.row_entries(r).map(|(_, v)| v).sum())
            .collect()
    }

    /// Sum of all stored values.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Row-normalizes: every nonempty row is divided by its sum so it sums
    /// to 1. This is the `f(·)` of Definition 3 in the paper.
    pub fn row_normalize(&self) -> CsrMatrix {
        let mut out = self.clone();
        out.row_normalize_inplace();
        out
    }

    /// In-place row normalization (rows own disjoint value ranges, so the
    /// pooled path is bit-identical to serial).
    pub fn row_normalize_inplace(&mut self) {
        let nnz = self.nnz();
        let rows = self.rows;
        let indptr = &self.indptr;
        let vptr = SendPtr(self.values.as_mut_ptr());
        let body = |lo: usize, hi: usize| {
            for r in lo..hi {
                let (s, e) = (indptr[r], indptr[r + 1]);
                // SAFETY: each row's value range is touched by exactly one
                // chunk.
                let row = unsafe { std::slice::from_raw_parts_mut(vptr.get().add(s), e - s) };
                let sum: f64 = row.iter().sum();
                if sum != 0.0 {
                    for v in row {
                        *v /= sum;
                    }
                }
            }
        };
        if pool::should_parallelize(nnz) {
            pool::parallel_for(rows, pool::row_grain(rows, 64), body);
        } else {
            body(0, rows);
        }
    }

    /// Symmetric normalization `D^-1/2 * self * D^-1/2` where `D` is the
    /// diagonal of row sums. Rows with zero sum are left zeroed. Pooled over
    /// rows above the pool threshold (bit-identical to serial).
    pub fn sym_normalize(&self) -> CsrMatrix {
        let deg = self.row_sums();
        let inv_sqrt: Vec<f64> = deg
            .iter()
            .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
            .collect();
        let mut out = self.clone();
        let rows = out.rows;
        let indptr = &out.indptr;
        let indices = &out.indices;
        let vptr = SendPtr(out.values.as_mut_ptr());
        let inv = &inv_sqrt;
        let body = |lo: usize, hi: usize| {
            for r in lo..hi {
                let dr = inv[r];
                for pos in indptr[r]..indptr[r + 1] {
                    // SAFETY: each row's value range is touched by exactly
                    // one chunk.
                    unsafe {
                        *vptr.get().add(pos) *= dr * inv[indices[pos] as usize];
                    }
                }
            }
        };
        if pool::should_parallelize(self.nnz()) {
            pool::parallel_for(rows, pool::row_grain(rows, 64), body);
        } else {
            body(0, rows);
        }
        out
    }

    /// Keeps the `k` largest-magnitude entries of every row (used to bound
    /// densification of high-order proximity matrices). Pooled over rows
    /// above the pool threshold.
    pub fn prune_top_k_per_row(&self, k: usize) -> CsrMatrix {
        let mut out = CsrMatrix::zeros(self.rows, self.cols);
        self.prune_top_k_into(k, &mut out);
        out
    }

    /// [`CsrMatrix::prune_top_k_per_row`] writing into `out`, reusing its
    /// buffers. Pruning is per-row, so the output is identical for any
    /// chunk decomposition; chunks are capped at one per hardware core
    /// (≤16) because the per-chunk output vectors and the assemble pass are
    /// pure overhead on top of the row work, which is what made a
    /// finer-grained version of this kernel lose to serial.
    pub fn prune_top_k_into(&self, k: usize, out: &mut CsrMatrix) {
        // Selecting each row costs ~nnz; nnz is a fine work proxy.
        kernel_stats::record(Kernel::PruneTopK, self.nnz() as u64, || {
            let max_chunks = if pool::should_parallelize(self.nnz()) {
                pool::hardware_parallelism().min(16)
            } else {
                1
            };
            let grain = self.rows.div_ceil(max_chunks.max(1)).max(64);
            if self.rows <= grain {
                // Single chunk: write rows straight into `out` instead of
                // paying the chunk-buffer + assemble copy (which on short
                // rows costs as much as the selection saves).
                self.prune_rows_into(k, out);
                return;
            }
            let chunks =
                pool::parallel_map_chunks(self.rows, grain, |lo, hi| self.prune_rows(k, lo, hi));
            assemble_rows_into(self.rows, self.cols, &chunks, out);
        });
    }

    /// Serial single-chunk pruning written directly into `out`'s buffers —
    /// same per-row selection as [`CsrMatrix::prune_rows`], no intermediate
    /// chunk vectors.
    fn prune_rows_into(&self, k: usize, out: &mut CsrMatrix) {
        out.rows = self.rows;
        out.cols = self.cols;
        out.indptr.clear();
        out.indptr.reserve(self.rows + 1);
        out.indptr.push(0);
        out.indices.clear();
        out.values.clear();
        let est = self.nnz().min(self.rows.saturating_mul(k));
        out.indices.reserve(est);
        out.values.reserve(est);
        let mut row_buf: Vec<(u128, f64)> = Vec::new();
        for r in 0..self.rows {
            let (start, end) = (self.indptr[r], self.indptr[r + 1]);
            let len = end - start;
            if k == 0 {
                out.indptr.push(out.indices.len());
                continue;
            }
            if len <= k {
                out.indices.extend_from_slice(&self.indices[start..end]);
                out.values.extend_from_slice(&self.values[start..end]);
                out.indptr.push(out.indices.len());
                continue;
            }
            row_buf.clear();
            row_buf.extend(
                self.row_entries(r)
                    .map(|(c, v)| (prune_key(c as u32, v), v)),
            );
            select_top_k(&mut row_buf, k);
            for &(key, v) in row_buf.iter() {
                out.indices.push(key as u32);
                out.values.push(v);
            }
            out.indptr.push(out.indices.len());
        }
    }

    /// Retained straightforward top-k pruning (full per-row sort, per-entry
    /// copies): the correctness oracle for the parity tests and the serial
    /// baseline `bench_report` times the production kernel against.
    pub fn prune_top_k_reference(&self, k: usize) -> CsrMatrix {
        let mut indptr = Vec::with_capacity(self.rows + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        let mut row_buf: Vec<(u32, f64)> = Vec::new();
        for r in 0..self.rows {
            row_buf.clear();
            if k > 0 {
                row_buf.extend(self.row_entries(r).map(|(c, v)| (c as u32, v)));
                if row_buf.len() > k {
                    row_buf.sort_unstable_by(|a, b| {
                        b.1.abs()
                            .partial_cmp(&a.1.abs())
                            .unwrap()
                            .then(a.0.cmp(&b.0))
                    });
                    row_buf.truncate(k);
                    row_buf.sort_unstable_by_key(|&(c, _)| c);
                }
            }
            for &(c, v) in row_buf.iter() {
                indices.push(c);
                values.push(v);
            }
            indptr.push(indices.len());
        }
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            indptr,
            indices,
            values,
        }
    }

    /// Top-k pruning of rows `lo..hi` with chunk-local scratch. Rows that
    /// already fit (`len <= k`) are copied through as whole slices; longer
    /// rows are cut with a selection (`select_nth_unstable_by`) under the
    /// same strict total order the reference's full sort uses (|value|
    /// descending, column ascending), so the surviving set is identical
    /// while the per-row cost drops from O(len·log len) to O(len + k·log k).
    fn prune_rows(&self, k: usize, lo: usize, hi: usize) -> RowChunk {
        let mut lens = Vec::with_capacity(hi - lo);
        let est = (self.indptr[hi] - self.indptr[lo]).min((hi - lo).saturating_mul(k));
        let mut indices: Vec<u32> = Vec::with_capacity(est);
        let mut values: Vec<f64> = Vec::with_capacity(est);
        let mut row_buf: Vec<(u128, f64)> = Vec::new();
        for r in lo..hi {
            let (start, end) = (self.indptr[r], self.indptr[r + 1]);
            let len = end - start;
            if k == 0 {
                lens.push(0);
                continue;
            }
            if len <= k {
                indices.extend_from_slice(&self.indices[start..end]);
                values.extend_from_slice(&self.values[start..end]);
                lens.push(len);
                continue;
            }
            row_buf.clear();
            row_buf.extend(
                self.row_entries(r)
                    .map(|(c, v)| (prune_key(c as u32, v), v)),
            );
            select_top_k(&mut row_buf, k);
            for &(key, v) in row_buf.iter() {
                indices.push(key as u32);
                values.push(v);
            }
            lens.push(k);
        }
        (lens, indices, values)
    }

    /// Drops entries with `|value| < eps`.
    pub fn prune_eps(&self, eps: f64) -> CsrMatrix {
        let triplets: Vec<(usize, usize, f64)> =
            self.iter().filter(|&(_, _, v)| v.abs() >= eps).collect();
        CsrMatrix::from_triplets(self.rows, self.cols, &triplets)
    }

    /// True if `self` equals its transpose (exact value comparison).
    pub fn is_symmetric(&self) -> bool {
        if self.rows != self.cols {
            return false;
        }
        let t = self.transpose();
        self == &t
    }

    /// Adds the identity (self-loops): `self + I`. Existing diagonal entries
    /// are incremented.
    pub fn add_identity(&self) -> CsrMatrix {
        assert_eq!(self.rows, self.cols, "add_identity: matrix must be square");
        self.add_scaled(&CsrMatrix::identity(self.rows), 1.0)
    }

    /// Density = nnz / (rows*cols).
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
        }
    }

    /// Row gather: `out[i] = self[rows[i]]`, keeping all columns. `rows` may
    /// repeat and need not be sorted — this is a straight per-row copy,
    /// pooled over the selected rows.
    pub fn gather_rows(&self, rows: &[usize]) -> CsrMatrix {
        let est: usize = rows.iter().map(|&r| self.row_nnz(r)).sum();
        kernel_stats::record(Kernel::SubgraphExtract, est as u64, || {
            let copy = |lo: usize, hi: usize| -> RowChunk {
                let mut lens = Vec::with_capacity(hi - lo);
                let cap: usize = rows[lo..hi].iter().map(|&r| self.row_nnz(r)).sum();
                let mut indices: Vec<u32> = Vec::with_capacity(cap);
                let mut values: Vec<f64> = Vec::with_capacity(cap);
                for &r in &rows[lo..hi] {
                    let (s, e) = (self.indptr[r], self.indptr[r + 1]);
                    indices.extend_from_slice(&self.indices[s..e]);
                    values.extend_from_slice(&self.values[s..e]);
                    lens.push(e - s);
                }
                (lens, indices, values)
            };
            let chunks = if pool::should_parallelize(est) {
                let grain = pool::row_grain(rows.len(), 64);
                pool::parallel_map_chunks(rows.len(), grain, copy)
            } else {
                vec![copy(0, rows.len())]
            };
            let mut out = CsrMatrix::zeros(rows.len(), self.cols);
            assemble_rows_into(rows.len(), self.cols, &chunks, &mut out);
            out
        })
    }

    /// Column restriction with relabeling: keeps every row but only the
    /// columns in `keep` (sorted strictly increasing), renumbering column
    /// `keep[j]` to `j`. Pooled over rows; per-row filtering makes the
    /// output identical for any chunk decomposition.
    pub fn select_columns(&self, keep: &[usize]) -> CsrMatrix {
        let colmap = inverse_column_map(self.cols, keep);
        kernel_stats::record(Kernel::SubgraphExtract, self.nnz() as u64, || {
            let filter = |lo: usize, hi: usize| -> RowChunk {
                self.filter_columns_rows(&colmap, lo, hi, |r| r)
            };
            let chunks = if pool::should_parallelize(self.nnz()) {
                let grain = pool::row_grain(self.rows, 64);
                pool::parallel_map_chunks(self.rows, grain, filter)
            } else {
                vec![filter(0, self.rows)]
            };
            let mut out = CsrMatrix::zeros(self.rows, keep.len());
            assemble_rows_into(self.rows, keep.len(), &chunks, &mut out);
            out
        })
    }

    /// Induced-subgraph extraction with node relabeling:
    /// `out[i][j] = self[nodes[i]][nodes[j]]` for `nodes` sorted strictly
    /// increasing. This is the mini-batch subgraph kernel: a fused row
    /// gather + column restriction, pooled over the selected rows with the
    /// same per-row-chunk stitching the transpose/prune kernels use, with
    /// chunk buffers pre-sized from the selected rows' degree counts.
    pub fn extract_submatrix(&self, nodes: &[usize]) -> CsrMatrix {
        assert_eq!(
            self.rows, self.cols,
            "extract_submatrix: matrix must be square"
        );
        let colmap = inverse_column_map(self.cols, nodes);
        let est: usize = nodes.iter().map(|&r| self.row_nnz(r)).sum();
        kernel_stats::record(Kernel::SubgraphExtract, est as u64, || {
            let extract = |lo: usize, hi: usize| -> RowChunk {
                self.filter_columns_rows(&colmap, lo, hi, |i| nodes[i])
            };
            let chunks = if pool::should_parallelize(est) {
                let grain = pool::row_grain(nodes.len(), 64);
                pool::parallel_map_chunks(nodes.len(), grain, extract)
            } else {
                vec![extract(0, nodes.len())]
            };
            let mut out = CsrMatrix::zeros(nodes.len(), nodes.len());
            assemble_rows_into(nodes.len(), nodes.len(), &chunks, &mut out);
            out
        })
    }

    /// Retained straightforward extraction (per-entry binary search into the
    /// node list, triplet assembly): the correctness oracle for the parity
    /// tests and the serial baseline `bench_report` times the pooled kernel
    /// against.
    pub fn extract_submatrix_reference(&self, nodes: &[usize]) -> CsrMatrix {
        assert_eq!(
            self.rows, self.cols,
            "extract_submatrix: matrix must be square"
        );
        let mut triplets = Vec::new();
        for (i, &r) in nodes.iter().enumerate() {
            for (c, v) in self.row_entries(r) {
                if let Ok(j) = nodes.binary_search(&c) {
                    triplets.push((i, j, v));
                }
            }
        }
        CsrMatrix::from_triplets(nodes.len(), nodes.len(), &triplets)
    }

    /// Shared chunk body for the extraction kernels: copies the surviving
    /// (remapped) entries of logical rows `lo..hi`, where `row_of` maps the
    /// logical index to the source row.
    fn filter_columns_rows(
        &self,
        colmap: &[u32],
        lo: usize,
        hi: usize,
        row_of: impl Fn(usize) -> usize,
    ) -> RowChunk {
        let mut lens = Vec::with_capacity(hi - lo);
        let cap: usize = (lo..hi).map(|i| self.row_nnz(row_of(i))).sum();
        let mut indices: Vec<u32> = Vec::with_capacity(cap);
        let mut values: Vec<f64> = Vec::with_capacity(cap);
        for i in lo..hi {
            let r = row_of(i);
            let before = indices.len();
            for pos in self.indptr[r]..self.indptr[r + 1] {
                let nc = colmap[self.indices[pos] as usize];
                if nc != u32::MAX {
                    indices.push(nc);
                    values.push(self.values[pos]);
                }
            }
            lens.push(indices.len() - before);
        }
        (lens, indices, values)
    }
}

/// Dense old→new column map for the extraction kernels: `map[keep[j]] = j`,
/// `u32::MAX` everywhere else. Validates that `keep` is sorted strictly
/// increasing and in bounds.
fn inverse_column_map(cols: usize, keep: &[usize]) -> Vec<u32> {
    assert!(
        keep.len() < u32::MAX as usize,
        "extract: too many selected nodes"
    );
    let mut map = vec![u32::MAX; cols];
    let mut prev: Option<usize> = None;
    for (new, &old) in keep.iter().enumerate() {
        assert!(old < cols, "extract: node {old} out of bounds ({cols})");
        assert!(
            prev.is_none_or(|p| p < old),
            "extract: nodes must be sorted strictly increasing"
        );
        map[old] = new as u32;
        prev = Some(old);
    }
    map
}

/// Packed top-k sort key: `!|v|.to_bits()` in the high 64 bits, the column
/// in the low 32. `to_bits` of a non-negative, non-NaN float is
/// order-isomorphic to its value, so ascending key order is exactly the
/// reference comparator's `|v| desc, col asc` — but computed *once* per
/// entry instead of on every comparison, and compared as one integer.
#[inline]
fn prune_key(c: u32, v: f64) -> u128 {
    ((!v.abs().to_bits()) as u128) << 32 | c as u128
}

/// Cuts `row` (assumed longer than `k`, keyed by [`prune_key`]) down to its
/// `k` largest-magnitude entries, sorted by column.
fn select_top_k(row: &mut Vec<(u128, f64)>, k: usize) {
    if row.len() <= 32 {
        // Short rows: quickselect's partition machinery costs more than the
        // insertion sort `sort_unstable` uses at this size.
        row.sort_unstable_by_key(|&(key, _)| key);
    } else {
        row.select_nth_unstable_by_key(k - 1, |&(key, _)| key);
    }
    row.truncate(k);
    // The low 32 bits are the column, so this restores CSR column order.
    row.sort_unstable_by_key(|&(key, _)| key as u32);
}

/// Stitches per-row-range kernel outputs (in row order) into `out`, reusing
/// its buffers. The concatenation order matches the serial loop exactly.
fn assemble_rows_into(rows: usize, cols: usize, chunks: &[RowChunk], out: &mut CsrMatrix) {
    out.rows = rows;
    out.cols = cols;
    out.indptr.clear();
    out.indptr.reserve(rows + 1);
    out.indptr.push(0);
    let nnz: usize = chunks.iter().map(|(_, idx, _)| idx.len()).sum();
    out.indices.clear();
    out.indices.reserve(nnz);
    out.values.clear();
    out.values.reserve(nnz);
    let mut total = 0usize;
    for (lens, indices, values) in chunks {
        debug_assert_eq!(indices.len(), values.len());
        for &len in lens {
            total += len;
            out.indptr.push(total);
        }
        out.indices.extend_from_slice(indices);
        out.values.extend_from_slice(values);
    }
    debug_assert_eq!(out.indptr.len(), rows + 1);
    debug_assert_eq!(out.indices.len(), nnz);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [1 0 2]
        // [0 0 3]
        // [4 5 0]
        CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 1.0),
                (0, 2, 2.0),
                (1, 2, 3.0),
                (2, 0, 4.0),
                (2, 1, 5.0),
            ],
        )
    }

    #[test]
    fn extract_submatrix_matches_reference_and_dense() {
        let m = sample();
        for nodes in [vec![0usize, 2], vec![1], vec![0, 1, 2], vec![]] {
            let sub = m.extract_submatrix(&nodes);
            assert_eq!(sub, m.extract_submatrix_reference(&nodes));
            for (i, &r) in nodes.iter().enumerate() {
                for (j, &c) in nodes.iter().enumerate() {
                    assert_eq!(sub.get(i, j), m.get(r, c));
                }
            }
        }
        // Extracting every node is a bit-exact copy.
        assert_eq!(m.extract_submatrix(&[0, 1, 2]), m);
    }

    #[test]
    fn gather_and_select_columns_round_trip() {
        let m = sample();
        let g = m.gather_rows(&[2, 0, 2]);
        assert_eq!(g.rows(), 3);
        assert_eq!(g.get(0, 1), 5.0);
        assert_eq!(g.get(1, 2), 2.0);
        assert_eq!(g.get(2, 0), 4.0);
        let s = m.select_columns(&[0, 2]);
        assert_eq!(s.shape(), (3, 2));
        assert_eq!(s.get(0, 1), 2.0);
        assert_eq!(s.get(2, 0), 4.0);
        assert_eq!(s.get(2, 1), 0.0);
        // gather(all rows) then select(all cols) is the identity.
        assert_eq!(m.gather_rows(&[0, 1, 2]).select_columns(&[0, 1, 2]), m);
    }

    #[test]
    #[should_panic(expected = "sorted strictly increasing")]
    fn extract_submatrix_rejects_unsorted_nodes() {
        sample().extract_submatrix(&[2, 0]);
    }

    #[test]
    fn triplets_dedup_and_sum() {
        let m =
            CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (0, 1, 2.0), (1, 0, -1.0), (1, 0, 1.0)]);
        assert_eq!(m.get(0, 1), 3.0);
        // Entries cancelling to zero are dropped entirely.
        assert_eq!(m.get(1, 0), 0.0);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn get_and_iter_roundtrip() {
        let m = sample();
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(2, 1), 5.0);
        let trips: Vec<_> = m.iter().collect();
        let back = CsrMatrix::from_triplets(3, 3, &trips);
        assert_eq!(back, m);
    }

    #[test]
    fn to_dense_matches() {
        let d = sample().to_dense();
        assert_eq!(
            d,
            DenseMatrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 0.0, 3.0], &[4.0, 5.0, 0.0]])
        );
    }

    #[test]
    fn transpose_matches_dense() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.to_dense(), m.to_dense().transpose());
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn spmv_matches_dense() {
        let m = sample();
        let v = [1.0, 2.0, 3.0];
        assert_eq!(m.spmv(&v), m.to_dense().matvec(&v));
    }

    #[test]
    fn spmm_dense_matches_dense_matmul() {
        let m = sample();
        let d = DenseMatrix::from_fn(3, 4, |r, c| (r + c) as f64 * 0.5);
        let fast = m.spmm_dense(&d);
        let slow = m.to_dense().matmul(&d);
        assert!(fast.sub(&slow).max_abs() < 1e-12);
    }

    #[test]
    fn spmm_matches_dense_matmul() {
        let a = sample();
        let b = sample().transpose();
        let fast = a.spmm(&b).to_dense();
        let slow = a.to_dense().matmul(&b.to_dense());
        assert!(fast.sub(&slow).max_abs() < 1e-12);
    }

    #[test]
    fn identity_spmm_is_noop() {
        let a = sample();
        let i = CsrMatrix::identity(3);
        assert_eq!(i.spmm(&a), a);
        assert_eq!(a.spmm(&i), a);
    }

    #[test]
    fn add_scaled_matches_dense() {
        let a = sample();
        let b = sample().transpose();
        let fast = a.add_scaled(&b, 2.0).to_dense();
        let slow = a.to_dense().add(&b.to_dense().scale(2.0));
        assert!(fast.sub(&slow).max_abs() < 1e-12);
    }

    #[test]
    fn add_scaled_drops_cancellations() {
        let a = CsrMatrix::from_triplets(1, 2, &[(0, 0, 1.0)]);
        let b = CsrMatrix::from_triplets(1, 2, &[(0, 0, -0.5)]);
        let sum = a.add_scaled(&b, 2.0);
        assert_eq!(sum.nnz(), 0);
    }

    #[test]
    fn row_normalize_rows_sum_to_one() {
        let m = sample().row_normalize();
        for r in 0..3 {
            let s: f64 = m.row_entries(r).map(|(_, v)| v).sum();
            assert!((s - 1.0).abs() < 1e-12, "row {r} sums to {s}");
        }
    }

    #[test]
    fn sym_normalize_karate_style() {
        // Path graph 0-1-2 with self loops: degrees 2,3,2 after A+I.
        let a =
            CsrMatrix::from_triplets(3, 3, &[(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0)]);
        let ai = a.add_identity();
        let n = ai.sym_normalize();
        // Entry (0,0) = 1 / (sqrt(2)*sqrt(2)) = 0.5
        assert!((n.get(0, 0) - 0.5).abs() < 1e-12);
        // Entry (0,1) = 1 / (sqrt(2)*sqrt(3))
        assert!((n.get(0, 1) - 1.0 / (2.0f64.sqrt() * 3.0f64.sqrt())).abs() < 1e-12);
        // Symmetric input stays symmetric.
        assert!(n.is_symmetric());
    }

    #[test]
    fn prune_top_k_keeps_largest() {
        let m =
            CsrMatrix::from_triplets(1, 5, &[(0, 0, 0.1), (0, 1, 0.5), (0, 2, -0.9), (0, 3, 0.3)]);
        let p = m.prune_top_k_per_row(2);
        assert_eq!(p.nnz(), 2);
        assert_eq!(p.get(0, 2), -0.9);
        assert_eq!(p.get(0, 1), 0.5);
        assert_eq!(p.get(0, 0), 0.0);
    }

    #[test]
    fn prune_eps_drops_small() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1e-9), (1, 1, 1.0)]);
        let p = m.prune_eps(1e-6);
        assert_eq!(p.nnz(), 1);
        assert_eq!(p.get(1, 1), 1.0);
    }

    #[test]
    fn add_identity_increments_diagonal() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (0, 1, 1.0)]);
        let mi = m.add_identity();
        assert_eq!(mi.get(0, 0), 3.0);
        assert_eq!(mi.get(1, 1), 1.0);
        assert_eq!(mi.get(0, 1), 1.0);
    }

    #[test]
    fn is_symmetric_detects_asymmetry() {
        assert!(!sample().is_symmetric());
        let s = CsrMatrix::from_triplets(2, 2, &[(0, 1, 2.0), (1, 0, 2.0)]);
        assert!(s.is_symmetric());
    }

    #[test]
    fn from_raw_validates() {
        let ok = CsrMatrix::from_raw(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 2.0]);
        assert_eq!(ok.get(0, 0), 1.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_raw_rejects_unsorted() {
        let _ = CsrMatrix::from_raw(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]);
    }

    #[test]
    fn into_variants_reuse_buffers_and_match() {
        let a = sample();
        let b = sample().transpose();
        // One shared output buffer reused across three different kernels.
        let mut out = CsrMatrix::zeros(0, 0);
        a.spmm_into(&b, &mut out);
        assert_eq!(out, a.spmm(&b));
        a.add_scaled_into(&b, 0.5, &mut out);
        assert_eq!(out, a.add_scaled(&b, 0.5));
        a.prune_top_k_into(1, &mut out);
        assert_eq!(out, a.prune_top_k_per_row(1));
    }

    #[test]
    fn pooled_sparse_kernels_match_serial() {
        crate::pool::force_pool();
        let trips: Vec<(usize, usize, f64)> = (0..4000)
            .map(|i| ((i * 37) % 200, (i * 61) % 200, ((i % 9) as f64) - 4.0))
            .collect();
        let s = CsrMatrix::from_triplets(200, 200, &trips);
        // With force_pool the threshold is 1, so these all take the pooled
        // path; compare against the serial implementations.
        assert_eq!(s.transpose(), s.transpose_reference());
        let spmm_par = s.spmm(&s);
        assert_eq!(s.prune_top_k_per_row(3), s.prune_top_k_reference(3));
        let spmm_ser = {
            let chunk = s.spmm_rows(&s, 0, s.rows());
            let mut out = CsrMatrix::zeros(0, 0);
            assemble_rows_into(s.rows(), s.cols(), &[chunk], &mut out);
            out
        };
        assert_eq!(spmm_par, spmm_ser);
        let pr = s.prune_top_k_per_row(3);
        let pr_ser = {
            let chunk = s.prune_rows(3, 0, s.rows());
            let mut out = CsrMatrix::zeros(0, 0);
            assemble_rows_into(s.rows(), s.cols(), &[chunk], &mut out);
            out
        };
        assert_eq!(pr, pr_ser);
    }

    #[test]
    fn density_and_row_nnz() {
        let m = sample();
        assert_eq!(m.nnz(), 5);
        assert!((m.density() - 5.0 / 9.0).abs() < 1e-12);
        assert_eq!(m.row_nnz(0), 2);
        assert_eq!(m.row_nnz(1), 1);
    }

    #[test]
    fn check_invariants_accepts_valid_and_rejects_malformed() {
        assert!(sample().check_invariants().is_ok());
        assert!(CsrMatrix::zeros(0, 0).check_invariants().is_ok());

        // Hand-build malformed matrices through serde (the only way invalid
        // state can enter), mirroring what a corrupt JSON file produces.
        let bad_indptr: CsrMatrix = serde_json::from_str(
            r#"{"rows":2,"cols":2,"indptr":[0,50,1],"indices":[0],"values":[1.0]}"#,
        )
        .unwrap();
        assert!(bad_indptr.check_invariants().is_err());

        let bad_col: CsrMatrix = serde_json::from_str(
            r#"{"rows":1,"cols":2,"indptr":[0,1],"indices":[7],"values":[1.0]}"#,
        )
        .unwrap();
        assert!(bad_col.check_invariants().is_err());

        let unsorted: CsrMatrix = serde_json::from_str(
            r#"{"rows":1,"cols":3,"indptr":[0,2],"indices":[2,0],"values":[1.0,1.0]}"#,
        )
        .unwrap();
        assert!(unsorted.check_invariants().is_err());

        let misaligned: CsrMatrix = serde_json::from_str(
            r#"{"rows":1,"cols":3,"indptr":[0,1],"indices":[0],"values":[1.0,2.0]}"#,
        )
        .unwrap();
        assert!(misaligned.check_invariants().is_err());
    }
}
