#!/bin/sh
set -x
B=./target/release
$B/exp_fig2   --scale 0.1 --rounds 1 --datasets cora                   > results/fig2.log   2>&1
$B/exp_fig7   --scale 0.1 --rounds 1                                   > results/fig7.log   2>&1
$B/exp_fig5   --scale 0.1 --rounds 1 --datasets cora,polblogs          > results/fig5.log   2>&1
$B/exp_fig6   --scale 0.1 --rounds 1 --datasets cora,citeseer          > results/fig6.log   2>&1
$B/exp_table4 --scale 0.1 --rounds 2 --datasets cora                   > results/table4.log 2>&1
$B/exp_fig9   --scale 0.1 --rounds 1 --datasets cora                   > results/fig9.log   2>&1
$B/exp_fig3   --scale 0.1 --rounds 1 --datasets cora                   > results/fig3.log   2>&1
$B/exp_fig4   --scale 0.1 --rounds 1 --datasets cora                   > results/fig4.log   2>&1
$B/exp_fig8   --scale 0.1 --rounds 1 --datasets cora                   > results/fig8.log   2>&1
$B/exp_table5 --scale 0.1 --rounds 1                                   > results/table5.log 2>&1
echo SWEEP_DONE
