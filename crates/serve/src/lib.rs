//! # aneci-serve
//!
//! The serving subsystem: everything needed to take a trained AnECI model
//! from a `.aneci` checkpoint to answering embedding queries online.
//!
//! * [`store`] — [`store::EmbeddingStore`]: exact (brute-force, pooled)
//!   top-k cosine/dot neighbors, community lookups, and edge scores that
//!   reuse the `aneci-eval` link-prediction scorer verbatim;
//! * [`hnsw`] — [`hnsw::HnswIndex`]: a from-scratch, deterministic HNSW
//!   approximate-nearest-neighbor index over the embedding matrix;
//! * [`cache`] — [`cache::LruCache`]: O(1) LRU response cache with hit/miss
//!   counters;
//! * [`engine`] — [`engine::QueryEngine`]: JSONL in, JSONL out, batched
//!   concurrently on the persistent pool with deterministic output order;
//! * [`http`] — [`http::HttpServer`]: a from-scratch, zero-dependency
//!   HTTP/1.1 front end over the engine (bounded-queue worker dispatch,
//!   keep-alive, load shedding, graceful shutdown).
//!
//! Two binaries wire these together behind CLIs: `aneci_serve`
//! (`src/bin/aneci_serve.rs`) answers JSONL queries from a file or stdin;
//! `aneci_http` (`src/bin/aneci_http.rs`) serves the same queries over a
//! TCP socket (`GET /healthz`, `GET /metrics`, `POST /query`,
//! `POST /query_batch`).
//!
//! ```no_run
//! use aneci_core::model::AneciModel;
//! use aneci_serve::engine::{EngineConfig, QueryEngine};
//! use aneci_serve::store::EmbeddingStore;
//!
//! let ckpt = AneciModel::load_checkpoint("model.aneci").unwrap();
//! let engine = QueryEngine::new(EmbeddingStore::from_checkpoint(&ckpt), EngineConfig::default());
//! println!("{}", engine.run_line(r#"{"op":"top_k","node":0,"k":5}"#));
//! ```

pub mod cache;
pub mod engine;
pub mod hnsw;
pub mod http;
pub mod store;

pub use cache::LruCache;
pub use engine::{EngineConfig, ErrorCode, Neighbor, Query, QueryEngine, Response};
pub use hnsw::{recall_at_k, HnswConfig, HnswIndex};
pub use http::{HttpConfig, HttpServer, ServerHandle};
pub use store::{EmbeddingStore, Metric, Scored};
