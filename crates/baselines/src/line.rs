//! LINE (Tang et al. 2015) — first- and second-order proximity embedding.
//!
//! Edge-sampling SGD with negative sampling:
//!
//! * **First order** — for an edge `(u, v)`, maximize `σ(z_u · z_v)` against
//!   `k` degree^0.75-sampled negatives on the same table.
//! * **Second order** — separate context table; maximize `σ(z_u · c_v)`.
//!
//! `LineOrder::Both` concatenates the two halves, the configuration the
//! paper's comparisons use.

use aneci_graph::AttributedGraph;
use aneci_linalg::rng::{derive_seed, seeded_rng, uniform_matrix, AliasTable};
use aneci_linalg::DenseMatrix;
use rand::rngs::StdRng;
use rand::Rng;

/// Which proximity order(s) to train.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LineOrder {
    /// Only the first-order objective.
    First,
    /// Only the second-order objective.
    Second,
    /// Train both and concatenate (each gets `dim/2`).
    Both,
}

/// LINE hyperparameters.
#[derive(Clone, Debug)]
pub struct LineConfig {
    /// Total embedding dimensionality.
    pub dim: usize,
    /// Proximity order(s).
    pub order: LineOrder,
    /// Edge samples (total SGD steps) per order, as a multiple of |E|.
    pub samples_per_edge: usize,
    /// Negative samples per positive.
    pub negatives: usize,
    /// Initial learning rate.
    pub lr: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LineConfig {
    fn default() -> Self {
        Self {
            dim: 16,
            order: LineOrder::Both,
            samples_per_edge: 200,
            negatives: 5,
            lr: 0.025,
            seed: 0,
        }
    }
}

#[inline]
fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

fn train_order(
    edges: &[(usize, usize)],
    n: usize,
    dim: usize,
    second_order: bool,
    config: &LineConfig,
    rng: &mut StdRng,
    degrees: &[f64],
) -> DenseMatrix {
    let bound = 0.5 / dim as f64;
    let mut vertex = uniform_matrix(n, dim, bound, rng);
    let mut context = if second_order {
        DenseMatrix::zeros(n, dim)
    } else {
        uniform_matrix(n, dim, bound, rng)
    };
    let noise = AliasTable::new(degrees);

    let total = edges.len() * config.samples_per_edge;
    for step in 0..total {
        let lr = config.lr * (1.0 - step as f64 / total as f64).max(1e-4);
        let &(u, v) = &edges[rng.gen_range(0..edges.len())];
        // Undirected: pick a random direction.
        let (src, dst) = if rng.gen::<bool>() { (u, v) } else { (v, u) };
        update(&mut vertex, &mut context, src, dst, 1.0, lr, second_order);
        for _ in 0..config.negatives {
            let neg = noise.sample(rng);
            if neg != dst {
                update(&mut vertex, &mut context, src, neg, 0.0, lr, second_order);
            }
        }
    }
    vertex
}

#[inline]
fn update(
    vertex: &mut DenseMatrix,
    context: &mut DenseMatrix,
    src: usize,
    dst: usize,
    label: f64,
    lr: f64,
    second_order: bool,
) {
    // First order shares one table (context aliases vertex conceptually);
    // we keep two tables but symmetrize updates for order 1.
    let dot: f64 = if second_order {
        vertex
            .row(src)
            .iter()
            .zip(context.row(dst))
            .map(|(&a, &b)| a * b)
            .sum()
    } else {
        vertex
            .row(src)
            .iter()
            .zip(vertex.row(dst))
            .map(|(&a, &b)| a * b)
            .sum()
    };
    let coeff = lr * (label - sigmoid(dot));
    if second_order {
        let src_copy: Vec<f64> = vertex.row(src).to_vec();
        let dst_row: Vec<f64> = context.row(dst).to_vec();
        for (v, d) in vertex.row_mut(src).iter_mut().zip(&dst_row) {
            *v += coeff * d;
        }
        for (c, s) in context.row_mut(dst).iter_mut().zip(&src_copy) {
            *c += coeff * s;
        }
    } else {
        let src_copy: Vec<f64> = vertex.row(src).to_vec();
        let dst_copy: Vec<f64> = vertex.row(dst).to_vec();
        for (v, d) in vertex.row_mut(src).iter_mut().zip(&dst_copy) {
            *v += coeff * d;
        }
        for (v, s) in vertex.row_mut(dst).iter_mut().zip(&src_copy) {
            *v += coeff * s;
        }
    }
}

/// Trains LINE and returns the embedding.
pub fn line(graph: &AttributedGraph, config: &LineConfig) -> DenseMatrix {
    let n = graph.num_nodes();
    let edges = graph.edge_list();
    assert!(!edges.is_empty(), "LINE needs at least one edge");
    let mut rng = seeded_rng(derive_seed(config.seed, 0x11E));
    let degrees: Vec<f64> = (0..n)
        .map(|u| (graph.degree(u) as f64).max(1e-3).powf(0.75))
        .collect();

    match config.order {
        LineOrder::First => train_order(&edges, n, config.dim, false, config, &mut rng, &degrees),
        LineOrder::Second => train_order(&edges, n, config.dim, true, config, &mut rng, &degrees),
        LineOrder::Both => {
            let half = (config.dim / 2).max(1);
            let first = train_order(&edges, n, half, false, config, &mut rng, &degrees);
            let second = train_order(&edges, n, half, true, config, &mut rng, &degrees);
            first.hstack(&second)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aneci_graph::karate_club;

    fn faction_separation(z: &DenseMatrix, labels: &[usize]) -> f64 {
        let cos = |a: usize, b: usize| {
            let (ra, rb) = (z.row(a), z.row(b));
            let dot: f64 = ra.iter().zip(rb).map(|(&x, &y)| x * y).sum();
            let na: f64 = ra.iter().map(|v| v * v).sum::<f64>().sqrt();
            let nb: f64 = rb.iter().map(|v| v * v).sum::<f64>().sqrt();
            dot / (na * nb).max(1e-12)
        };
        let mut same = (0.0, 0);
        let mut diff = (0.0, 0);
        for i in 0..labels.len() {
            for j in (i + 1)..labels.len() {
                if labels[i] == labels[j] {
                    same = (same.0 + cos(i, j), same.1 + 1);
                } else {
                    diff = (diff.0 + cos(i, j), diff.1 + 1);
                }
            }
        }
        same.0 / same.1 as f64 - diff.0 / diff.1 as f64
    }

    #[test]
    fn first_order_separates_factions() {
        let g = karate_club();
        let cfg = LineConfig {
            dim: 8,
            order: LineOrder::First,
            seed: 1,
            ..Default::default()
        };
        let z = line(&g, &cfg);
        assert!(z.all_finite());
        let sep = faction_separation(&z, g.labels.as_ref().unwrap());
        assert!(sep > 0.05, "separation {sep}");
    }

    #[test]
    fn both_orders_concatenate() {
        let g = karate_club();
        let cfg = LineConfig {
            dim: 16,
            order: LineOrder::Both,
            seed: 2,
            ..Default::default()
        };
        let z = line(&g, &cfg);
        assert_eq!(z.shape(), (34, 16));
    }

    #[test]
    fn second_order_trains_finite() {
        let g = karate_club();
        let cfg = LineConfig {
            dim: 8,
            order: LineOrder::Second,
            samples_per_edge: 100,
            seed: 3,
            ..Default::default()
        };
        let z = line(&g, &cfg);
        assert!(z.all_finite());
    }

    #[test]
    fn deterministic_in_seed() {
        let g = karate_club();
        let cfg = LineConfig {
            dim: 4,
            samples_per_edge: 50,
            seed: 4,
            ..Default::default()
        };
        assert_eq!(line(&g, &cfg), line(&g, &cfg));
    }
}
