//! NETTACK-style targeted poisoning (Zügner et al. 2018), structure
//! perturbations, direct attack.
//!
//! Follows Nettack's key design: attack a **linearized** 2-layer GCN
//! surrogate `logits = Ŝ² X W` (the nonlinearity dropped), greedily picking
//! the single edge flip incident to the target that most reduces the
//! surrogate's classification margin
//! `margin(u) = logit_{true} − max_{c≠true} logit_c`.
//!
//! Unlike a gradient approximation, every candidate flip is scored
//! **exactly**: the target row of `Ŝ²XW` is recomputed under the flipped
//! adjacency (degrees of both endpoints updated), which costs only
//! `O(deg(u) · d̄ · K)` per candidate thanks to the row-local structure of
//! the product.

use aneci_autograd::{Adam, ParamSet, Tape};
use aneci_baselines::GcnConfig;
use aneci_graph::AttributedGraph;
use aneci_linalg::rng::{derive_seed, sample_distinct, seeded_rng, xavier_uniform};
use aneci_linalg::DenseMatrix;
use std::collections::HashSet;

use crate::attack::{delta_between, AttackOutcome};
use crate::fga::EdgeFlip;

/// NETTACK hyperparameters.
#[derive(Clone, Debug)]
pub struct NettackConfig {
    /// Surrogate training settings (epochs / lr reused; hidden_dim ignored —
    /// the surrogate is linear).
    pub surrogate: GcnConfig,
    /// Edge flips per target.
    pub perturbations_per_target: usize,
    /// Candidate non-neighbors sampled per step (all current neighbors are
    /// always candidates for removal). Keeps each greedy step bounded on
    /// large graphs.
    pub candidate_pool: usize,
    /// RNG seed for candidate sampling.
    pub seed: u64,
}

impl Default for NettackConfig {
    fn default() -> Self {
        Self {
            surrogate: GcnConfig::default(),
            perturbations_per_target: 1,
            candidate_pool: 400,
            seed: 0,
        }
    }
}

/// Mutable adjacency-set view used during the greedy search.
struct AdjView {
    neighbors: Vec<HashSet<u32>>,
}

impl AdjView {
    fn new(graph: &AttributedGraph) -> Self {
        let neighbors = (0..graph.num_nodes())
            .map(|u| graph.neighbors(u).into_iter().map(|v| v as u32).collect())
            .collect();
        Self { neighbors }
    }

    fn degree(&self, u: usize) -> usize {
        self.neighbors[u].len()
    }

    fn has_edge(&self, u: usize, v: usize) -> bool {
        self.neighbors[u].contains(&(v as u32))
    }

    fn flip(&mut self, u: usize, v: usize) {
        if self.has_edge(u, v) {
            self.neighbors[u].remove(&(v as u32));
            self.neighbors[v].remove(&(u as u32));
        } else {
            self.neighbors[u].insert(v as u32);
            self.neighbors[v].insert(u as u32);
        }
    }
}

/// Trains the linear surrogate `logits = Ŝ²XW` by softmax regression.
fn train_linear_surrogate(graph: &AttributedGraph, config: &GcnConfig) -> DenseMatrix {
    let labels = graph
        .labels
        .as_ref()
        .expect("surrogate needs labels")
        .clone();
    let k = graph.num_classes();
    let s = graph.norm_adjacency();
    let sx = s.spmm_dense(graph.features());
    let s2x = s.spmm_dense(&sx);

    let mut rng = seeded_rng(derive_seed(config.seed, 0x2377));
    let mut params = ParamSet::new();
    params.register("w", xavier_uniform(s2x.cols(), k, &mut rng));
    let mut opt = Adam::new(config.lr).with_weight_decay(config.weight_decay);
    for _ in 0..config.epochs {
        let mut tape = Tape::new();
        let w = params.leaf_all(&mut tape);
        let f = tape.constant(s2x.clone());
        let logits = tape.matmul(f, w[0]);
        let loss = tape.softmax_cross_entropy(logits, &labels, &graph.split.train);
        tape.backward(loss);
        let grads = params.grads(&tape, &w);
        drop(tape);
        opt.step(&mut params, &grads);
    }
    params.get(0).clone()
}

/// Exactly evaluates the logits of `target` under the current `adj` view:
/// `(Ŝ²XW)_u = Σ_w Ŝ_uw Σ_t Ŝ_wt (XW)_t`, where `Ŝ` includes self-loops
/// and symmetric normalization with the *current* degrees.
fn target_logits(adj: &AdjView, xw: &DenseMatrix, target: usize) -> Vec<f64> {
    let k = xw.cols();
    let d = |u: usize| (adj.degree(u) + 1) as f64;
    let inv = |u: usize| 1.0 / d(u).sqrt();

    // Row u of Ŝ: self + neighbors.
    let mut logits = vec![0.0; k];
    let iu = inv(target);
    let mut row_u: Vec<(usize, f64)> = vec![(target, iu * iu)];
    for &w in &adj.neighbors[target] {
        row_u.push((w as usize, iu * inv(w as usize)));
    }
    // (Ŝ X W)_w for each needed w.
    for (w, s_uw) in row_u {
        let iw = inv(w);
        // self term
        let sw_self = iw * iw;
        for (l, acc) in logits.iter_mut().enumerate() {
            *acc += s_uw * sw_self * xw.get(w, l);
        }
        for &t in &adj.neighbors[w] {
            let t = t as usize;
            let s_wt = iw * inv(t);
            for (l, acc) in logits.iter_mut().enumerate() {
                *acc += s_uw * s_wt * xw.get(t, l);
            }
        }
    }
    logits
}

/// Classification margin of the target: `logit_true − max_{c≠true}`.
fn margin(logits: &[f64], true_class: usize) -> f64 {
    let best_other = logits
        .iter()
        .enumerate()
        .filter(|&(c, _)| c != true_class)
        .map(|(_, &v)| v)
        .fold(f64::NEG_INFINITY, f64::max);
    logits[true_class] - best_other
}

/// Runs the NETTACK-style attack against every target.
pub fn nettack_attack(
    graph: &AttributedGraph,
    targets: &[usize],
    config: &NettackConfig,
) -> AttackOutcome {
    let labels = graph.labels.as_ref().expect("NETTACK needs labels").clone();
    let n = graph.num_nodes();
    let w = train_linear_surrogate(graph, &config.surrogate);
    let xw = aneci_linalg::par::matmul(graph.features(), &w);

    let mut adj = AdjView::new(graph);
    let mut rng = seeded_rng(derive_seed(config.seed, 0x7A26));
    let mut flips = Vec::new();

    for &target in targets {
        let true_class = labels[target];
        for _ in 0..config.perturbations_per_target {
            // Candidate set: sampled non-neighbors + all current neighbors.
            let mut candidates: Vec<usize> =
                adj.neighbors[target].iter().map(|&v| v as usize).collect();
            let pool = config.candidate_pool.min(n.saturating_sub(1));
            for idx in sample_distinct(n, pool, &mut rng) {
                if idx != target && !adj.has_edge(target, idx) {
                    candidates.push(idx);
                }
            }
            // Greedy: pick the flip minimizing the margin.
            let base_margin = margin(&target_logits(&adj, &xw, target), true_class);
            let mut best: Option<(usize, f64)> = None;
            for &v in &candidates {
                adj.flip(target, v);
                let m = margin(&target_logits(&adj, &xw, target), true_class);
                adj.flip(target, v); // revert
                if m < base_margin - 1e-12 && best.is_none_or(|b| m < b.1) {
                    best = Some((v, m));
                }
            }
            let Some((v, _)) = best else { break };
            let added = !adj.has_edge(target, v);
            adj.flip(target, v);
            flips.push(EdgeFlip {
                target,
                other: v,
                added,
            });
        }
    }

    // Materialize the poisoned graph to derive the net delta (flips across
    // targets can overlap, so the flip list is not itself the net edit).
    let added: Vec<(usize, usize)> = flips
        .iter()
        .filter(|f| f.added)
        .map(|f| (f.target, f.other))
        .collect();
    let removed: Vec<(usize, usize)> = flips
        .iter()
        .filter(|f| !f.added)
        .map(|f| (f.target, f.other))
        .collect();
    let poisoned = graph.with_edits(&added, &removed);
    AttackOutcome {
        delta: delta_between(graph, &poisoned),
        budget_spent: flips.len(),
        targets: targets.to_vec(),
        flips,
        outliers: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aneci_graph::{generate_sbm, sample_split, SbmConfig};

    fn attack_setup(seed: u64) -> AttributedGraph {
        let mut cfg = SbmConfig::small();
        cfg.num_nodes = 150;
        cfg.num_classes = 3;
        cfg.target_edges = 900;
        cfg.homophily = 0.9;
        let mut g = generate_sbm(&cfg, seed);
        let labels = g.labels.clone().unwrap();
        g.set_split(sample_split(&labels, 10, 30, 80, seed));
        g
    }

    #[test]
    fn target_logits_match_dense_computation() {
        let g = attack_setup(1);
        let w = train_linear_surrogate(
            &g,
            &GcnConfig {
                epochs: 30,
                ..Default::default()
            },
        );
        let xw = aneci_linalg::par::matmul(g.features(), &w);
        let adj = AdjView::new(&g);
        let s = g.norm_adjacency();
        let dense = s.spmm_dense(&s.spmm_dense(&xw));
        for &u in &[0usize, 7, 50, 149] {
            let fast = target_logits(&adj, &xw, u);
            for (c, &want) in dense.row(u).iter().enumerate() {
                assert!((fast[c] - want).abs() < 1e-10, "node {u} class {c}");
            }
        }
    }

    #[test]
    fn margin_definition() {
        assert!((margin(&[2.0, 5.0, 1.0], 1) - 3.0).abs() < 1e-12);
        assert!((margin(&[2.0, 5.0, 1.0], 0) + 3.0).abs() < 1e-12);
    }

    #[test]
    fn attack_reduces_surrogate_margin() {
        let g = attack_setup(2);
        let target = g.split.test[0];
        let cfg = NettackConfig {
            surrogate: GcnConfig {
                epochs: 60,
                ..Default::default()
            },
            perturbations_per_target: 4,
            ..Default::default()
        };
        let labels = g.labels.clone().unwrap();
        let w = train_linear_surrogate(&g, &cfg.surrogate);
        let xw = aneci_linalg::par::matmul(g.features(), &w);
        let before = margin(
            &target_logits(&AdjView::new(&g), &xw, target),
            labels[target],
        );
        let attacked = nettack_attack(&g, &[target], &cfg).apply(&g).unwrap();
        let after = margin(
            &target_logits(&AdjView::new(&attacked), &xw, target),
            labels[target],
        );
        assert!(
            after < before,
            "margin should fall: {before:.3} -> {after:.3}"
        );
        attacked.validate().unwrap();
    }

    #[test]
    fn flips_incident_to_targets_and_within_budget() {
        let g = attack_setup(3);
        let targets = [g.split.test[0], g.split.test[2]];
        let cfg = NettackConfig {
            surrogate: GcnConfig {
                epochs: 40,
                ..Default::default()
            },
            perturbations_per_target: 2,
            ..Default::default()
        };
        let atk = nettack_attack(&g, &targets, &cfg);
        let attacked = atk.apply(&g).unwrap();
        assert!(atk.flips.len() <= 4);
        assert_eq!(atk.budget_spent, atk.flips.len());
        for f in &atk.flips {
            assert!(targets.contains(&f.target));
            assert_eq!(attacked.has_edge(f.target, f.other), f.added);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let g = attack_setup(4);
        let targets = [g.split.test[1]];
        let cfg = NettackConfig {
            surrogate: GcnConfig {
                epochs: 30,
                ..Default::default()
            },
            perturbations_per_target: 2,
            ..Default::default()
        };
        let a = nettack_attack(&g, &targets, &cfg);
        let b = nettack_attack(&g, &targets, &cfg);
        assert_eq!(a.flips, b.flips);
    }
}
