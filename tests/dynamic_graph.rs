//! End-to-end contract of the dynamic-graph pipeline (ISSUE 9): delta
//! mutations, incremental refresh, live index churn, zero-downtime snapshot
//! swaps, and the fine-tune drift guard.
//!
//! 1. **CSR patch-and-compact parity** — applying a [`GraphDelta`] to an
//!    adjacency matrix equals rebuilding the matrix from the mutated edge
//!    list, bit for bit.
//! 2. **Incremental proximity refresh** — `HighOrder::refresh` over the
//!    dirty rows reproduces a from-scratch `HighOrder::build` of the new
//!    adjacency exactly (`Ã`, `k̃`, and `M̃`).
//! 3. **ANN churn** — an HNSW index that lives through 20% edge-churn-style
//!    vector updates and deletions keeps recall@10 ≥ 0.95 against the
//!    exact scan, before and after compaction.
//! 4. **Whole-generation reads** — readers hammering a `QueryEngine` during
//!    concurrent snapshot publishes only ever observe complete
//!    generations, never a half-swapped state.
//! 5. **Drift guard** — an adversarial delta plus a one-epoch fine-tune
//!    trips `AneciError::Drift` against the full-retrain oracle.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use aneci::core::{train_aneci, AneciConfig, AneciError, DriftGuard};
use aneci::graph::delta::apply_to_csr;
use aneci::graph::{generate_sbm, karate_club, GraphDelta, HighOrder, ProximityConfig, SbmConfig};
use aneci::linalg::rng::{gaussian_matrix, seeded_rng};
use aneci::linalg::DenseMatrix;
use aneci::serve::hnsw::{recall_at_k, HnswConfig, HnswIndex};
use aneci::serve::store::{EmbeddingStore, Metric};
use aneci::serve::{EngineConfig, QueryEngine, SnapshotUpdate};

/// The undirected edge set of a CSR adjacency, as sorted (u, v) pairs.
fn edge_set(adj: &aneci::linalg::CsrMatrix) -> BTreeSet<(usize, usize)> {
    adj.iter()
        .filter(|&(u, v, _)| u < v)
        .map(|(u, v, _)| (u, v))
        .collect()
}

#[test]
fn delta_patch_and_compact_matches_full_rebuild() {
    let graph = karate_club();
    let n = graph.num_nodes();

    let delta = GraphDelta::new()
        .add_edge(0, 33) // new edge across the split
        .add_edge(5, 25)
        .remove_edge(0, 1) // existing edge
        .add_node(vec![0.0; graph.features().cols()]) // node 34
        .add_edge(34, 2)
        .add_edge(34, 8)
        .remove_node(16); // isolate a node
    let (patched, report) = apply_to_csr(graph.adjacency(), &delta).unwrap();
    assert_eq!(report.nodes_before, n);
    assert_eq!(report.nodes_after, n + 1);

    // Reference: mutate the edge list by hand and rebuild from scratch.
    let mut edges = edge_set(graph.adjacency());
    for &(u, v) in &[(0, 33), (5, 25), (2, 34), (8, 34)] {
        edges.insert((u.min(v), u.max(v)));
    }
    edges.remove(&(0, 1));
    edges.retain(|&(u, v)| u != 16 && v != 16);
    let edges: Vec<(usize, usize)> = edges.into_iter().collect();
    let rebuilt = aneci::graph::AttributedGraph::from_edges_plain(n + 1, &edges, None);

    assert_eq!(
        &patched,
        rebuilt.adjacency(),
        "patch-and-compact must equal a from-scratch CSR build"
    );
    // The report's touched set covers every row whose adjacency changed.
    for &u in &[0usize, 1, 33, 5, 25, 2, 8, 34, 16] {
        assert!(report.touched.contains(&u), "row {u} missing from touched");
    }
}

#[test]
fn high_order_refresh_is_bit_exact_against_full_build() {
    let cfg = SbmConfig {
        num_nodes: 120,
        num_classes: 4,
        target_edges: 480,
        ..SbmConfig::small()
    };
    let graph = generate_sbm(&cfg, 7);
    let prox = ProximityConfig::default();
    let mut ho = HighOrder::build(graph.adjacency(), &prox);

    // A mixed delta: inter-community edges in, intra edges out, one append,
    // one removal.
    let feat_dim = graph.features().cols();
    let delta = GraphDelta::new()
        .add_edge(0, 45)
        .add_edge(10, 95)
        .add_edge(61, 119)
        .remove_edge(0, 1)
        .add_node(vec![0.5; feat_dim])
        .add_edge(120, 3)
        .add_edge(120, 33)
        .remove_node(77);
    let (new_adj, report) = apply_to_csr(graph.adjacency(), &delta).unwrap();

    let refreshed_rows = ho.refresh(&new_adj, &prox, &report);
    assert!(refreshed_rows > 0);
    assert!(
        refreshed_rows < new_adj.rows(),
        "a local delta must not refresh every row ({refreshed_rows} of {})",
        new_adj.rows()
    );

    let full = HighOrder::build(&new_adj, &prox);
    assert_eq!(ho.a_tilde, full.a_tilde, "Ã must refresh bit-exactly");
    assert_eq!(ho.k_tilde, full.k_tilde, "k̃ must refresh bit-exactly");
    assert_eq!(ho.m_tilde, full.m_tilde, "M̃ must refresh bit-exactly");
}

#[test]
fn hnsw_keeps_recall_through_twenty_percent_churn() {
    let n = 400;
    let dim = 16;
    let k = 10;
    let mut rng = seeded_rng(23);
    let embedding = gaussian_matrix(n, dim, 1.0, &mut rng);
    let config = HnswConfig::default();
    let mut index = HnswIndex::build(&embedding, Metric::Cosine, &config);

    // 20% churn: half of it vector rewrites, half deletions.
    let mut data = embedding.as_slice().to_vec();
    let mut deleted = vec![false; n];
    let churn = n / 5;
    let fresh_vectors = gaussian_matrix(churn / 2, dim, 1.0, &mut rng);
    for i in 0..churn / 2 {
        let node = (i * 13) % n;
        let fresh = fresh_vectors.row(i);
        data[node * dim..(node + 1) * dim].copy_from_slice(fresh);
        index.update(node, fresh);
    }
    for i in 0..churn / 2 {
        let node = (i * 17 + 5) % n;
        deleted[node] = true;
        index.remove(node);
    }

    let store = EmbeddingStore::with_tombstones(
        DenseMatrix::from_vec(n, dim, data),
        None,
        Some(deleted.clone()),
    );
    let mean_recall = |index: &HnswIndex| {
        let mut total = 0.0;
        let mut queries = 0;
        for node in (0..n).step_by(7).filter(|&i| !deleted[i]) {
            let exact = store.top_k_node(node, k, Metric::Cosine);
            let query = store.vector_of(node);
            let approx = index.search(query, k, 128, Some(node));
            total += recall_at_k(&exact, &approx);
            queries += 1;
        }
        total / queries as f64
    };

    let before = mean_recall(&index);
    assert!(
        before >= 0.95,
        "recall@{k} {before:.3} < 0.95 after 20% churn (pre-compact)"
    );
    index.compact();
    assert_eq!(index.ghosts(), 0);
    let after = mean_recall(&index);
    assert!(
        after >= 0.95,
        "recall@{k} {after:.3} < 0.95 after compaction"
    );
}

#[test]
fn concurrent_readers_only_observe_whole_generations() {
    // Invariant: within one generation, node 0 and node 1 always hold the
    // same constant vector (both rewritten in every update). A reader that
    // ever sees them disagree has observed a half-applied swap.
    let n = 64;
    let dim = 8;
    let store = EmbeddingStore::new(DenseMatrix::zeros(n, dim), None);
    let engine = Arc::new(QueryEngine::new(store, EngineConfig::default()));
    let stop = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..4)
        .map(|_| {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut observed = 0u64;
                let mut last_generation = 0u64;
                // Check-then-test ordering guarantees at least one pinned
                // read even if the publisher finishes before this thread
                // gets scheduled.
                loop {
                    let snap = engine.snapshot();
                    assert_eq!(
                        snap.store.vector_of(0),
                        snap.store.vector_of(1),
                        "generation {} exposed a torn update",
                        snap.generation
                    );
                    assert!(
                        snap.generation >= last_generation,
                        "generation went backwards"
                    );
                    last_generation = snap.generation;
                    observed += 1;
                    if stop.load(Ordering::Relaxed) {
                        return observed;
                    }
                }
            })
        })
        .collect();

    for round in 1..=50u64 {
        let fill = round as f64;
        let update = SnapshotUpdate::new()
            .upsert(0, vec![fill; dim])
            .upsert(1, vec![fill; dim]);
        let generation = engine.apply_update(&update).unwrap();
        assert_eq!(generation, round);
        // Keep publishes and reads genuinely interleaved.
        std::thread::yield_now();
    }
    stop.store(true, Ordering::Relaxed);
    for reader in readers {
        let observed = reader.join().unwrap();
        assert!(observed > 0, "reader never pinned a snapshot");
    }
    assert_eq!(engine.generation(), 50);
}

#[test]
fn adversarial_delta_trips_the_drift_guard() {
    let graph = karate_club();
    let mut config = AneciConfig::for_community_detection(2, 42);
    config.epochs = 30;
    let (mut model, _) = train_aneci(&graph, &config).unwrap();

    // Adversarial rewiring: stitch the two factions together through their
    // leaders and cut the leaders off from their own followers, then allow
    // only a single warm epoch — nowhere near enough to re-converge.
    let mut delta = GraphDelta::new();
    for v in 18..34 {
        delta = delta.add_edge(0, v);
    }
    for v in 1..16 {
        delta = delta.add_edge(33, v);
    }
    for v in [1usize, 2, 3, 4, 5, 6, 7] {
        delta = delta.remove_edge(0, v);
    }
    let guard = DriftGuard {
        check_every: 1,
        q_tolerance: 0.01,
        min_nmi: 0.9,
    };
    let result = model.fine_tune_guarded(&delta, 1, &guard);
    match result {
        Err(AneciError::Drift {
            q_tilde,
            oracle_q_tilde,
            nmi,
        }) => {
            assert!(
                q_tilde < oracle_q_tilde - guard.q_tolerance || nmi < guard.min_nmi,
                "drift error carried non-tripping stats: {q_tilde} vs {oracle_q_tilde}, nmi {nmi}"
            );
        }
        other => panic!("expected AneciError::Drift, got {other:?}"),
    }

    // A benign no-op-scale delta with a generous guard passes.
    let benign = GraphDelta::new().add_edge(0, 1).remove_edge(0, 1);
    let relaxed = DriftGuard {
        check_every: 1,
        q_tolerance: 0.2,
        min_nmi: 0.0,
    };
    let (_, stats) = model.fine_tune_guarded(&benign, 30, &relaxed).unwrap();
    assert!(stats.is_some(), "check_every=1 must run the oracle");
}
