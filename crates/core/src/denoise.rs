//! AnECI+ — the two-stage denoising variant (Algorithm 1, Sec. VI-B2).
//!
//! Stage 1 trains AnECI on the (possibly attacked) graph, scores every edge
//! with `s(e_{ij}) = 1 − cos(z_i, z_j)`, and removes the top-`ρ` fraction.
//! Stage 2 retrains AnECI from scratch on the cleaned graph with identical
//! hyperparameters.
//!
//! The drop ratio is data-driven: `ρ = ψ(s̄)` where `s̄` is the mean edge
//! anomaly score over the observed edge set and
//! `ψ(x) = γ / (1 + exp(−α (x − β)))` — an increasing squashing of the
//! estimated attack scale into `[0, γ]`. (The paper prints the exponent
//! without the minus sign but describes ψ as "an incremental function"; we
//! use the increasing form.) Paper defaults: `β = 0.5`, `γ = 0.75`, with
//! `α` tuned per dataset/attack.

use crate::anomaly::edge_anomaly_scores;
use crate::config::AneciConfig;
use crate::error::AneciError;
use crate::model::{AneciModel, TrainReport, ValProbe};
use aneci_graph::AttributedGraph;
use serde::{Deserialize, Serialize};

/// Drop-ratio smoothing parameters of ψ.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DenoiseConfig {
    /// Steepness `α` of ψ (paper: per-dataset, 2–18).
    pub alpha: f64,
    /// Midpoint `β` of ψ (paper: 0.5).
    pub beta: f64,
    /// Ceiling `γ` of the drop ratio (paper: 0.75) — "to ensure the
    /// denoising process maintains the basic community structure".
    pub gamma: f64,
}

impl Default for DenoiseConfig {
    fn default() -> Self {
        Self {
            alpha: 4.0,
            beta: 0.5,
            gamma: 0.75,
        }
    }
}

impl DenoiseConfig {
    /// The smoothing function `ψ(x) = γ / (1 + e^{−α(x−β)})`.
    pub fn psi(&self, x: f64) -> f64 {
        self.gamma / (1.0 + (-self.alpha * (x - self.beta)).exp())
    }
}

/// Outcome of an AnECI+ run.
pub struct DenoiseResult {
    /// The denoised graph used in stage 2.
    pub denoised_graph: AttributedGraph,
    /// Edges removed by the denoising phase.
    pub removed_edges: Vec<(usize, usize)>,
    /// Drop ratio ρ actually applied.
    pub drop_ratio: f64,
    /// Stage-1 (noisy-graph) training report.
    pub stage1_report: TrainReport,
    /// Stage-2 (denoised-graph) training report.
    pub stage2_report: TrainReport,
    /// The stage-2 model — its embedding is the AnECI+ output.
    pub model: AneciModel,
}

/// Runs AnECI+ (Algorithm 1). `val_score` is the same optional validation
/// probe accepted by [`AneciModel::train`], applied in both stages. Errors
/// propagate from either training stage (e.g. [`AneciError::Diverged`]).
pub fn aneci_plus(
    graph: &AttributedGraph,
    config: &AneciConfig,
    denoise: &DenoiseConfig,
    mut val_score: Option<ValProbe<'_>>,
) -> Result<DenoiseResult, AneciError> {
    // --- Stage 1: embed the observed graph. ---
    let mut stage1 = AneciModel::new(graph, config);
    let stage1_report = match val_score.as_mut() {
        Some(f) => stage1.train(Some(&mut **f)),
        None => stage1.train(None),
    }?;
    let z = stage1.embedding();

    // --- Score edges and pick the drop ratio. ---
    let edges = graph.edge_list();
    let scores = edge_anomaly_scores(z, &edges);
    let mean_score = if scores.is_empty() {
        0.0
    } else {
        scores.iter().sum::<f64>() / scores.len() as f64
    };
    let drop_ratio = denoise.psi(mean_score).clamp(0.0, 1.0);
    let drop_count = ((edges.len() as f64) * drop_ratio).floor() as usize;

    // Rank edges by descending anomaly score; remove the top drop_count.
    let mut order: Vec<usize> = (0..edges.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap());
    let removed_edges: Vec<(usize, usize)> =
        order[..drop_count].iter().map(|&i| edges[i]).collect();

    let denoised_graph = graph.with_edits(&[], &removed_edges);

    // --- Stage 2: retrain on the cleaned graph. ---
    let mut model = AneciModel::new(&denoised_graph, config);
    let stage2_report = match val_score.as_mut() {
        Some(f) => model.train(Some(&mut **f)),
        None => model.train(None),
    }?;

    Ok(DenoiseResult {
        denoised_graph,
        removed_edges,
        drop_ratio,
        stage1_report,
        stage2_report,
        model,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StopStrategy;
    use aneci_graph::karate_club;
    use aneci_linalg::rng::{seeded_rng, shuffle};

    fn quick_config(seed: u64) -> AneciConfig {
        AneciConfig {
            hidden_dim: 16,
            embed_dim: 2,
            epochs: 60,
            stop: StopStrategy::FixedEpochs,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn psi_is_increasing_and_bounded() {
        let d = DenoiseConfig {
            alpha: 5.0,
            beta: 0.5,
            gamma: 0.75,
        };
        assert!(d.psi(0.0) < d.psi(0.5));
        assert!(d.psi(0.5) < d.psi(1.0));
        assert!((d.psi(0.5) - 0.375).abs() < 1e-12); // γ/2 at the midpoint
        assert!(d.psi(10.0) <= 0.75);
        assert!(d.psi(-10.0) >= 0.0);
    }

    #[test]
    fn denoising_preferentially_removes_fake_edges() {
        let g = karate_club();
        // Inject cross-faction fake edges (the hardest random attack).
        let labels = g.labels.clone().unwrap();
        let mut fakes = Vec::new();
        let mut rng = seeded_rng(42);
        let mut candidates: Vec<(usize, usize)> = (0..34)
            .flat_map(|u| (0..34).map(move |v| (u, v)))
            .filter(|&(u, v)| u < v && labels[u] != labels[v] && !g.has_edge(u, v))
            .collect();
        shuffle(&mut candidates, &mut rng);
        fakes.extend(candidates.into_iter().take(20));
        let attacked = g.with_edits(&fakes, &[]);

        let result = aneci_plus(
            &attacked,
            &quick_config(3),
            &DenoiseConfig {
                alpha: 6.0,
                beta: 0.4,
                gamma: 0.75,
            },
            None,
        )
        .unwrap();
        // The removed set must be enriched in fakes relative to chance:
        // fakes are 20/98 ≈ 20% of edges; demand ≥ 1.4× enrichment. (The
        // removal set holds ~10 edges, so the observable fraction moves in
        // 0.1 steps — a bar that lands between two achievable values would
        // make the test flip on harmless reorderings.)
        let removed_fakes = result
            .removed_edges
            .iter()
            .filter(|e| fakes.contains(e) || fakes.contains(&(e.1, e.0)))
            .count();
        let frac = removed_fakes as f64 / result.removed_edges.len().max(1) as f64;
        let base_rate = fakes.len() as f64 / attacked.num_edges() as f64;
        assert!(
            frac >= 1.4 * base_rate,
            "fake-edge enrichment too low: removed {frac:.2} vs base {base_rate:.2}"
        );
    }

    #[test]
    fn drop_ratio_respects_gamma_ceiling() {
        let g = karate_club();
        let d = DenoiseConfig {
            alpha: 100.0,
            beta: 0.0,
            gamma: 0.3,
        };
        let result = aneci_plus(&g, &quick_config(4), &d, None).unwrap();
        assert!(result.drop_ratio <= 0.3 + 1e-12);
        assert!(
            result.removed_edges.len() <= (0.3 * g.num_edges() as f64).floor() as usize,
            "removed {} of {}",
            result.removed_edges.len(),
            g.num_edges()
        );
        result.denoised_graph.validate().unwrap();
    }

    #[test]
    fn stage2_model_is_trained() {
        let g = karate_club();
        let result = aneci_plus(&g, &quick_config(5), &DenoiseConfig::default(), None).unwrap();
        // Embedding accessible and finite — train() ran on stage 2.
        assert!(result.model.embedding().all_finite());
        assert_eq!(result.stage2_report.epochs_run, 60);
    }
}
