//! End-to-end integration tests spanning every crate: dataset generation →
//! model training → attack → defense → evaluation.
//!
//! These run in release mode comfortably; under `cargo test` (debug) they
//! are still sized to finish in seconds each.

use aneci::attacks::random_attack;
use aneci::baselines::{Gae, GaeConfig};
use aneci::core::{train_aneci, AneciConfig, StopStrategy};
use aneci::eval::logreg::evaluate_embedding;
use aneci::eval::{modularity, nmi};
use aneci::graph::{generate_sbm, sample_split, Benchmark, FeatureKind, SbmConfig};

fn small_benchmark(seed: u64) -> aneci::graph::AttributedGraph {
    let config = SbmConfig {
        num_nodes: 240,
        num_classes: 3,
        target_edges: 1100,
        homophily: 0.88,
        degree_exponent: Some(2.6),
        feature_dim: 96,
        features: FeatureKind::BagOfWords {
            p_signal: 0.3,
            p_noise: 0.01,
        },
    };
    let mut g = generate_sbm(&config, seed);
    let labels = g.labels.clone().unwrap();
    g.set_split(sample_split(&labels, 15, 45, 120, seed));
    g
}

fn quick_aneci(seed: u64) -> AneciConfig {
    AneciConfig {
        hidden_dim: 32,
        embed_dim: 8,
        epochs: 80,
        stop: StopStrategy::FixedEpochs,
        seed,
        ..Default::default()
    }
}

/// The headline pipeline: AnECI embeddings classify well above chance and
/// above the raw-feature baseline under the paper's logreg protocol.
#[test]
fn classification_pipeline_beats_raw_features() {
    let g = small_benchmark(1);
    let labels = g.labels.clone().unwrap();
    let (model, report) = train_aneci(&g, &quick_aneci(1)).unwrap();
    assert!(report.losses.last().unwrap().is_finite());

    let acc_aneci = evaluate_embedding(
        model.embedding(),
        &labels,
        &g.split.train,
        &g.split.test,
        3,
        1,
    );
    let acc_raw = evaluate_embedding(g.features(), &labels, &g.split.train, &g.split.test, 3, 1);
    assert!(
        acc_aneci > 1.0 / 3.0 + 0.2,
        "AnECI accuracy too low: {acc_aneci}"
    );
    assert!(
        acc_aneci >= acc_raw - 0.05,
        "AnECI ({acc_aneci}) should not trail raw features ({acc_raw}) meaningfully"
    );
}

/// Community pipeline: the learned membership recovers the planted
/// partition with positive modularity and solid NMI.
#[test]
fn community_pipeline_recovers_planted_partition() {
    let g = small_benchmark(2);
    let mut cfg = quick_aneci(2);
    cfg.embed_dim = 3;
    cfg.epochs = 150;
    let (model, _) = train_aneci(&g, &cfg).unwrap();
    let communities = model.communities();
    let truth = g.labels.as_ref().unwrap();
    let q = modularity(&g, &communities);
    let agreement = nmi(&communities, truth);
    assert!(q > 0.3, "modularity {q}");
    assert!(agreement > 0.5, "NMI {agreement}");
}

/// Robustness ordering (the paper's central claim, Fig. 2): under a heavy
/// random attack, AnECI's embedding isolates fake edges better than GAE's.
#[test]
fn aneci_defense_score_beats_gae_under_attack() {
    let g = small_benchmark(3);
    let attack = random_attack(&g, 0.3, 3);
    let poisoned = attack.apply(&g).unwrap();
    let clean_edges = g.edge_list();

    let (aneci, _) = train_aneci(&poisoned, &quick_aneci(3)).unwrap();
    let ds_aneci = aneci::core::defense_score(aneci.embedding(), &clean_edges, attack.fake_edges());

    let gae = Gae::fit(
        &poisoned,
        &GaeConfig {
            epochs: 80,
            seed: 3,
            ..Default::default()
        },
    );
    let ds_gae = aneci::core::defense_score(gae.embedding(), &clean_edges, attack.fake_edges());

    assert!(
        ds_aneci > ds_gae,
        "expected AnECI defense score ({ds_aneci:.3}) > GAE ({ds_gae:.3})"
    );
    assert!(
        ds_aneci > 1.1,
        "AnECI should clearly separate fakes: DS = {ds_aneci:.3}"
    );
}

/// Attacks degrade accuracy; the drop must be visible for a pairwise
/// method retrained on the poisoned graph.
#[test]
fn random_attack_degrades_gae_accuracy() {
    let g = small_benchmark(4);
    let labels = g.labels.clone().unwrap();
    let eval = |graph: &aneci::graph::AttributedGraph| {
        let gae = Gae::fit(
            graph,
            &GaeConfig {
                epochs: 80,
                seed: 4,
                ..Default::default()
            },
        );
        evaluate_embedding(
            gae.embedding(),
            &labels,
            &g.split.train,
            &g.split.test,
            3,
            4,
        )
    };
    let clean = eval(&g);
    let poisoned = eval(&random_attack(&g, 0.5, 4).apply(&g).unwrap());
    assert!(
        poisoned < clean + 0.02,
        "50% noise should not improve GAE: clean {clean:.3}, poisoned {poisoned:.3}"
    );
}

/// The scaled benchmark generators expose the paper's Table II statistics.
#[test]
fn benchmark_generation_respects_table_ii_shape() {
    for dataset in Benchmark::ALL {
        let g = dataset.generate(0.1, 5);
        let cfg = dataset.config(0.1);
        assert_eq!(g.num_nodes(), cfg.num_nodes, "{}", dataset.name());
        let m = g.num_edges() as f64;
        let want = cfg.target_edges as f64;
        assert!(
            (m - want).abs() / want < 0.15,
            "{}: {m} edges vs target {want}",
            dataset.name()
        );
        assert_eq!(g.num_classes(), cfg.num_classes);
        g.validate().unwrap();
        assert!(!g.split.train.is_empty() && !g.split.test.is_empty());
    }
}
