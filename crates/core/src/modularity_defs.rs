//! The modularity-function landscape of Sec. IV-C, implemented side by side.
//!
//! The paper motivates its generalized modularity `Q̃` (Eq. 13) by analyzing
//! three earlier definitions:
//!
//! * [`classic_modularity`] — Newman's `Q` (Eq. 4): first-order proximity,
//!   hard partitions;
//! * [`eq_modularity`] — `EQ` of Shen et al. (Eq. 11): overlap handled by
//!   the `1/(O_i O_j)` factor — satisfies Property 1 but **not** Property 2
//!   (it cannot weight a node's communities differently);
//! * [`qstar_modularity`] — `Q*` of Chen et al. (Eq. 12) — the paper proves
//!   by contradiction it violates Property 1 (it never reduces to the
//!   classic `Q` on hard partitions with more than one community);
//! * [`generalized_modularity`] — the paper's `Q̃` (Eq. 13) with
//!   `γ = α_i α_j`: satisfies both properties and extends to high-order
//!   proximity.
//!
//! The tests in this module machine-check each of those claims, which pins
//! the implementation to the paper's theory section.

use aneci_linalg::{CsrMatrix, DenseMatrix};

/// Newman's modularity `Q` (Eq. 4) on an arbitrary weighted proximity
/// matrix with a hard partition. `proximity` plays the role of `A`; the
/// degrees and mass are derived from it.
pub fn classic_modularity(proximity: &CsrMatrix, partition: &[usize]) -> f64 {
    assert_eq!(
        proximity.rows(),
        partition.len(),
        "partition length mismatch"
    );
    let k: Vec<f64> = proximity.row_sums();
    let two_m: f64 = k.iter().sum();
    if two_m == 0.0 {
        return 0.0;
    }
    // Q = (1/2m) Σ_ij (A_ij − k_i k_j / 2m) δ(c_i, c_j)
    //   = (1/2m) [Σ_intra A_ij − Σ_c (d_c)²/2m].
    let mut intra = 0.0;
    for (i, j, v) in proximity.iter() {
        if partition[i] == partition[j] {
            intra += v;
        }
    }
    let num_comms = partition.iter().copied().max().map_or(0, |m| m + 1);
    let mut comm_degree = vec![0.0; num_comms];
    for (i, &c) in partition.iter().enumerate() {
        comm_degree[c] += k[i];
    }
    let expected: f64 = comm_degree.iter().map(|d| d * d / two_m).sum();
    (intra - expected) / two_m
}

/// `EQ` (Eq. 11): overlapping extension weighting each pair by
/// `1/(O_i O_j)` where `O_i` is the number of communities node `i` belongs
/// to. `memberships[i]` lists the communities of node `i`.
pub fn eq_modularity(proximity: &CsrMatrix, memberships: &[Vec<usize>], num_comms: usize) -> f64 {
    assert_eq!(
        proximity.rows(),
        memberships.len(),
        "membership length mismatch"
    );
    let n = proximity.rows();
    let k: Vec<f64> = proximity.row_sums();
    let two_m: f64 = k.iter().sum();
    if two_m == 0.0 {
        return 0.0;
    }
    let dense = proximity.to_dense();
    let mut q = 0.0;
    for c in 0..num_comms {
        for i in 0..n {
            if !memberships[i].contains(&c) {
                continue;
            }
            for j in 0..n {
                if !memberships[j].contains(&c) {
                    continue;
                }
                let oi = memberships[i].len() as f64;
                let oj = memberships[j].len() as f64;
                q += (dense.get(i, j) - k[i] * k[j] / two_m) / (oi * oj);
            }
        }
    }
    q / two_m
}

/// `Q*` (Eq. 12): the soft-weight definition of [36], with
/// `γ_{i,j,c} = α_{i,c} α_{j,c}` for the observed term and the averaged
/// product form for the expected term. `alpha` is the `N × K` soft
/// membership (rows sum to 1).
pub fn qstar_modularity(proximity: &CsrMatrix, alpha: &DenseMatrix) -> f64 {
    let n = proximity.rows();
    assert_eq!(alpha.rows(), n, "membership row mismatch");
    let kc = alpha.cols();
    let dense = proximity.to_dense();
    let m: f64 = proximity.sum();
    if m == 0.0 {
        return 0.0;
    }
    let mut q = 0.0;
    for c in 0..kc {
        // Observed: Σ_ij γ_ijc E_ij with γ = α_ic α_jc.
        for i in 0..n {
            for j in 0..n {
                q += alpha.get(i, c) * alpha.get(j, c) * dense.get(i, j);
            }
        }
        // Expected: (1/N²) Σ_ij [Σ_l γ_ilc E_il][Σ_l γ_ljc E_lj]  — the
        // doubly-averaged form of Eq. 12.
        let mut row_mass = vec![0.0; n];
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            for l in 0..n {
                row_mass[i] += alpha.get(i, c) * alpha.get(l, c) * dense.get(i, l);
            }
        }
        let total: f64 = row_mass.iter().sum();
        q -= total * total / (n as f64 * n as f64);
    }
    q / m
}

/// The paper's generalized modularity `Q̃` (Eq. 13) on an arbitrary
/// proximity matrix: `Q̃ = (1/2M̃) Σ_c Σ_ij α_ic α_jc (Ã_ij − k̃_i k̃_j / 2M̃)`,
/// evaluated in the fused `O(nnz·K + N·K)` form.
pub fn generalized_modularity(proximity: &CsrMatrix, alpha: &DenseMatrix) -> f64 {
    let n = proximity.rows();
    assert_eq!(alpha.rows(), n, "membership row mismatch");
    let k_tilde: Vec<f64> = proximity.row_sums();
    let two_m: f64 = k_tilde.iter().sum();
    if two_m == 0.0 {
        return 0.0;
    }
    // term1 = Σ_ij Ã_ij (α_i · α_j) = Σ(α ⊙ Ãα)
    let s_alpha = proximity.spmm_dense(alpha);
    let term1 = alpha.dot(&s_alpha);
    // term2 = ‖αᵀ k̃‖² / 2M̃
    let k_col = DenseMatrix::column(&k_tilde);
    let y = alpha.matmul_tn(&k_col);
    let term2 = y.dot(&y) / two_m;
    (term1 - term2) / two_m
}

/// Converts a hard partition into the one-hot membership matrix.
pub fn one_hot_membership(partition: &[usize], num_comms: usize) -> DenseMatrix {
    let mut p = DenseMatrix::zeros(partition.len(), num_comms);
    for (i, &c) in partition.iter().enumerate() {
        assert!(c < num_comms, "community label out of range");
        p.set(i, c, 1.0);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use aneci_graph::karate_club;
    use aneci_linalg::rng::{gaussian_matrix, seeded_rng};

    fn karate_proximity() -> (CsrMatrix, Vec<usize>) {
        let g = karate_club();
        (g.adjacency().clone(), g.labels.clone().unwrap())
    }

    /// Sanity: the classic form here equals the evaluation crate's.
    #[test]
    fn classic_matches_eval_crate_definition() {
        let g = karate_club();
        let partition = g.labels.clone().unwrap();
        let here = classic_modularity(g.adjacency(), &partition);
        // Known karate faction modularity.
        assert!((here - 0.3582).abs() < 0.01, "Q = {here}");
    }

    /// **Property 1 for Q̃** (the paper's central theoretical claim): with
    /// one-hot memberships the generalized modularity *equals* the classic
    /// modularity exactly.
    #[test]
    fn generalized_reduces_to_classic_on_hard_partitions() {
        let (a, partition) = karate_proximity();
        let alpha = one_hot_membership(&partition, 2);
        let q_soft = generalized_modularity(&a, &alpha);
        let q_hard = classic_modularity(&a, &partition);
        assert!(
            (q_soft - q_hard).abs() < 1e-12,
            "Property 1 violated: Q̃ = {q_soft}, Q = {q_hard}"
        );
    }

    /// **Property 1 for EQ**: with disjoint memberships (O_i = 1) EQ also
    /// degenerates to the classic modularity — the paper concedes this.
    #[test]
    fn eq_reduces_to_classic_on_hard_partitions() {
        let (a, partition) = karate_proximity();
        let memberships: Vec<Vec<usize>> = partition.iter().map(|&c| vec![c]).collect();
        let eq = eq_modularity(&a, &memberships, 2);
        let q = classic_modularity(&a, &partition);
        assert!((eq - q).abs() < 1e-12, "EQ = {eq}, Q = {q}");
    }

    /// **Property 1 fails for Q\*** (the paper's proof-by-contradiction,
    /// Sec. IV-C4): on a hard 2-community partition Q* does NOT equal the
    /// classic modularity.
    #[test]
    fn qstar_violates_property_one() {
        let (a, partition) = karate_proximity();
        let alpha = one_hot_membership(&partition, 2);
        let qstar = qstar_modularity(&a, &alpha);
        let q = classic_modularity(&a, &partition);
        assert!(
            (qstar - q).abs() > 1e-3,
            "expected Q* ({qstar}) ≠ Q ({q}) on a hard partition with |C| > 1"
        );
    }

    /// **Property 2 for Q̃**: changing the *weights* of an overlapping node
    /// changes the modularity — the function is sensitive to how strongly a
    /// node belongs to each community.
    #[test]
    fn generalized_satisfies_property_two() {
        let (a, partition) = karate_proximity();
        let mut alpha = one_hot_membership(&partition, 2);
        // Make node 8 (a bridge) overlap with different weightings.
        alpha.set(8, 0, 0.7);
        alpha.set(8, 1, 0.3);
        let q_a = generalized_modularity(&a, &alpha);
        alpha.set(8, 0, 0.3);
        alpha.set(8, 1, 0.7);
        let q_b = generalized_modularity(&a, &alpha);
        assert!(
            (q_a - q_b).abs() > 1e-6,
            "Property 2 violated: weights don't matter ({q_a} vs {q_b})"
        );
    }

    /// **Property 2 fails for EQ**: membership lists carry no weights, so
    /// any two weightings of the same overlap are indistinguishable — the
    /// paper's criticism of Eq. 11 — which we witness through the API shape:
    /// EQ of an overlapping node is strictly between the two hard
    /// assignments but cannot interpolate continuously.
    #[test]
    fn eq_is_weight_blind() {
        let (a, partition) = karate_proximity();
        let mut memberships: Vec<Vec<usize>> = partition.iter().map(|&c| vec![c]).collect();
        memberships[8] = vec![0, 1]; // overlap with NO possible weighting
        let eq_overlap = eq_modularity(&a, &memberships, 2);
        // Whatever "70/30" or "30/70" a user intends, EQ gives one number.
        // Check it differs from both hard assignments (so the overlap did
        // something) yet admits no second value.
        memberships[8] = vec![0];
        let eq_hard0 = eq_modularity(&a, &memberships, 2);
        memberships[8] = vec![1];
        let eq_hard1 = eq_modularity(&a, &memberships, 2);
        assert!((eq_overlap - eq_hard0).abs() > 1e-9);
        assert!((eq_overlap - eq_hard1).abs() > 1e-9);
    }

    /// Q̃ prefers the true communities over random soft memberships.
    #[test]
    fn generalized_discriminates_structure() {
        let (a, partition) = karate_proximity();
        let truth = one_hot_membership(&partition, 2);
        let mut rng = seeded_rng(5);
        let random = gaussian_matrix(34, 2, 1.0, &mut rng).softmax_rows();
        assert!(generalized_modularity(&a, &truth) > generalized_modularity(&a, &random) + 0.1);
    }

    /// The fused generalized form matches the brute-force triple sum of
    /// Eq. 13 on random soft memberships.
    #[test]
    fn generalized_matches_bruteforce_eq13() {
        let (a, _) = karate_proximity();
        let mut rng = seeded_rng(6);
        let alpha = gaussian_matrix(34, 3, 1.0, &mut rng).softmax_rows();
        let fast = generalized_modularity(&a, &alpha);

        let dense = a.to_dense();
        let k: Vec<f64> = a.row_sums();
        let two_m: f64 = k.iter().sum();
        let mut slow = 0.0;
        for c in 0..3 {
            for i in 0..34 {
                for j in 0..34 {
                    slow +=
                        alpha.get(i, c) * alpha.get(j, c) * (dense.get(i, j) - k[i] * k[j] / two_m);
                }
            }
        }
        slow /= two_m;
        assert!((fast - slow).abs() < 1e-10, "fast {fast} slow {slow}");
    }

    /// High-order flavour: Q̃ on `Ã = ½(A + A²)` of the karate factions is
    /// also strongly positive — the quantity the training loss maximizes.
    #[test]
    fn generalized_on_high_order_proximity() {
        let g = karate_club();
        let ho =
            aneci_graph::HighOrder::build(g.adjacency(), &aneci_graph::ProximityConfig::uniform(2));
        let alpha = one_hot_membership(g.labels.as_ref().unwrap(), 2);
        let q = generalized_modularity(&ho.a_tilde, &alpha);
        assert!(q > 0.2, "high-order Q̃ = {q}");
    }
}
