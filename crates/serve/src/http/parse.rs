//! Hand-rolled HTTP/1.1 request parser and response writer.
//!
//! Implements exactly the subset the serving front end needs, from scratch
//! on `std::io`: the request line, header fields, `Content-Length` and
//! `Transfer-Encoding: chunked` bodies, and a `Content-Length`-framed
//! response writer. Every limit is explicit ([`ParseLimits`]) and every
//! malformed input maps to a typed [`ParseError`] — the server turns those
//! into clean 4xx/5xx responses instead of panicking or hanging.

use std::io::{BufRead, Read, Write};

use crate::engine::ErrorCode;

/// Hard caps applied while reading one request.
#[derive(Clone, Copy, Debug)]
pub struct ParseLimits {
    /// Budget for the request line + all header bytes (CRLFs included).
    pub max_header_bytes: usize,
    /// Maximum accepted body size, whether length-framed or chunked.
    pub max_body_bytes: usize,
}

impl Default for ParseLimits {
    fn default() -> Self {
        Self {
            max_header_bytes: 8 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// Upper bound on header count, independent of the byte budget.
const MAX_HEADER_COUNT: usize = 100;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, ...).
    pub method: String,
    /// The request target as sent (path + optional query string).
    pub target: String,
    /// `true` for `HTTP/1.1`, `false` for `HTTP/1.0`.
    pub http11: bool,
    /// Header fields in arrival order; names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// First header value with this (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The path component of the target (query string stripped).
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// Whether the client asked to keep the connection open: HTTP/1.1
    /// defaults to keep-alive unless `Connection: close`; HTTP/1.0 requires
    /// an explicit `Connection: keep-alive`.
    pub fn wants_keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.http11,
        }
    }
}

/// Why a request could not be read. Everything except the first two
/// variants maps to a response via [`ParseError::error_code`].
#[derive(Debug)]
pub enum ParseError {
    /// Clean EOF before the first byte of a request — the normal end of a
    /// keep-alive connection. Not an error; close quietly.
    ConnectionClosed,
    /// The socket died mid-request (reset, broken pipe, ...). Close
    /// quietly; there is usually nobody left to answer.
    Io(std::io::Error),
    /// EOF or a read timeout after the request had started → 408.
    Truncated(String),
    /// Syntactically invalid request → 400.
    Malformed(String),
    /// Request line + headers exceeded `max_header_bytes` → 431.
    HeadersTooLarge,
    /// Declared or chunked body exceeded `max_body_bytes` → 413.
    BodyTooLarge,
    /// A `Transfer-Encoding` other than `chunked` → 501.
    Unsupported(String),
}

impl ParseError {
    /// The typed error class to answer with, or `None` when the connection
    /// should just be closed (clean EOF, hard I/O failure).
    pub fn error_code(&self) -> Option<ErrorCode> {
        match self {
            ParseError::ConnectionClosed | ParseError::Io(_) => None,
            ParseError::Truncated(_) => Some(ErrorCode::Timeout),
            ParseError::Malformed(_) => Some(ErrorCode::BadRequest),
            ParseError::HeadersTooLarge => Some(ErrorCode::HeadersTooLarge),
            ParseError::BodyTooLarge => Some(ErrorCode::PayloadTooLarge),
            ParseError::Unsupported(_) => Some(ErrorCode::Unsupported),
        }
    }

    /// Human-readable detail for the error body.
    pub fn message(&self) -> String {
        match self {
            ParseError::ConnectionClosed => "connection closed".into(),
            ParseError::Io(e) => format!("i/o error: {e}"),
            ParseError::Truncated(what) => format!("request truncated: {what}"),
            ParseError::Malformed(what) => format!("malformed request: {what}"),
            ParseError::HeadersTooLarge => "request headers exceed the configured limit".into(),
            ParseError::BodyTooLarge => "request body exceeds the configured limit".into(),
            ParseError::Unsupported(what) => format!("unsupported protocol feature: {what}"),
        }
    }
}

/// True for the error kinds a blocking socket read returns on timeout.
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Reads one CRLF- (or bare-LF-) terminated line, charging the consumed
/// bytes against `budget`. `headers: true` maps an exhausted budget to
/// [`ParseError::HeadersTooLarge`], otherwise to a malformed-line error.
fn read_line_limited(
    reader: &mut impl BufRead,
    budget: &mut usize,
    headers: bool,
) -> Result<String, ParseError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let available = match reader.fill_buf() {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(&e) => {
                return Err(ParseError::Truncated("timed out reading a line".into()))
            }
            Err(e) => return Err(ParseError::Io(e)),
        };
        if available.is_empty() {
            return Err(ParseError::Truncated("connection closed mid-line".into()));
        }
        let newline = available.iter().position(|&b| b == b'\n');
        let take = newline.map_or(available.len(), |p| p + 1);
        if take > *budget {
            return Err(if headers {
                ParseError::HeadersTooLarge
            } else {
                ParseError::Malformed("line exceeds the configured limit".into())
            });
        }
        let found = newline.is_some();
        line.extend_from_slice(&available[..take]);
        reader.consume(take);
        *budget -= take;
        if found {
            line.pop(); // \n
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return String::from_utf8(line)
                .map_err(|_| ParseError::Malformed("non-UTF-8 bytes in a header line".into()));
        }
    }
}

/// Reads exactly `buf.len()` body bytes, mapping EOF/timeouts to
/// [`ParseError::Truncated`].
fn read_exact_body(reader: &mut impl Read, buf: &mut [u8], what: &str) -> Result<(), ParseError> {
    reader.read_exact(buf).map_err(|e| {
        if is_timeout(&e) || e.kind() == std::io::ErrorKind::UnexpectedEof {
            ParseError::Truncated(what.into())
        } else {
            ParseError::Io(e)
        }
    })
}

/// Reads a `Transfer-Encoding: chunked` body: `size-in-hex CRLF data CRLF`
/// repeated, a zero-size chunk, then (ignored) trailers up to a blank line.
fn read_chunked_body(
    reader: &mut impl BufRead,
    max_body_bytes: usize,
) -> Result<Vec<u8>, ParseError> {
    let mut body = Vec::new();
    loop {
        let mut size_budget = 256;
        let line = read_line_limited(reader, &mut size_budget, false)?;
        // Chunk extensions (";name=value") are legal; ignore them.
        let size_str = line.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_str, 16)
            .map_err(|_| ParseError::Malformed(format!("bad chunk size {size_str:?}")))?;
        if size == 0 {
            loop {
                let mut trailer_budget = 1024;
                if read_line_limited(reader, &mut trailer_budget, false)?.is_empty() {
                    return Ok(body);
                }
            }
        }
        if body.len() + size > max_body_bytes {
            return Err(ParseError::BodyTooLarge);
        }
        let start = body.len();
        body.resize(start + size, 0);
        read_exact_body(reader, &mut body[start..], "chunked body data")?;
        let mut crlf = [0u8; 2];
        read_exact_body(reader, &mut crlf, "chunk terminator")?;
        if &crlf != b"\r\n" {
            return Err(ParseError::Malformed(
                "chunk data not terminated by CRLF".into(),
            ));
        }
    }
}

/// Reads one full request. The caller must already have confirmed that at
/// least one byte is buffered (the idle-wait loop in the server does); a
/// clean EOF here therefore reports as truncation, not as a closed
/// connection.
pub fn read_request(
    reader: &mut impl BufRead,
    limits: &ParseLimits,
) -> Result<Request, ParseError> {
    let mut header_budget = limits.max_header_bytes;

    let request_line = read_line_limited(reader, &mut header_budget, true)?;
    let mut parts = request_line.split(' ').filter(|p| !p.is_empty());
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => {
            return Err(ParseError::Malformed(format!(
                "bad request line {request_line:?}"
            )))
        }
    };
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => {
            return Err(ParseError::Malformed(format!(
                "unsupported HTTP version {other:?}"
            )))
        }
    };
    if !method.bytes().all(|b| b.is_ascii_alphabetic()) {
        return Err(ParseError::Malformed(format!("bad method {method:?}")));
    }

    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = read_line_limited(reader, &mut header_budget, true)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADER_COUNT {
            return Err(ParseError::HeadersTooLarge);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ParseError::Malformed(format!("header without a colon: {line:?}")))?;
        if name.is_empty() || name.contains(' ') {
            return Err(ParseError::Malformed(format!("bad header name {name:?}")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let request = Request {
        method: method.to_ascii_uppercase(),
        target: target.to_string(),
        http11,
        headers,
        body: Vec::new(),
    };

    let transfer_encoding = request.header("transfer-encoding");
    let content_length = request.header("content-length");
    let body = match (transfer_encoding, content_length) {
        (Some(_), Some(_)) => {
            // Both present is a request-smuggling vector; refuse outright.
            return Err(ParseError::Malformed(
                "both transfer-encoding and content-length present".into(),
            ));
        }
        (Some(te), None) => {
            if !te.eq_ignore_ascii_case("chunked") {
                return Err(ParseError::Unsupported(format!(
                    "transfer-encoding {te:?} (only chunked)"
                )));
            }
            read_chunked_body(reader, limits.max_body_bytes)?
        }
        (None, Some(cl)) => {
            let n: usize = cl
                .trim()
                .parse()
                .map_err(|_| ParseError::Malformed(format!("bad content-length {cl:?}")))?;
            if n > limits.max_body_bytes {
                return Err(ParseError::BodyTooLarge);
            }
            let mut body = vec![0u8; n];
            read_exact_body(reader, &mut body, "length-framed body")?;
            body
        }
        (None, None) => Vec::new(),
    };

    Ok(Request { body, ..request })
}

/// The reason phrase for every status this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        301 => "Moved Permanently",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        412 => "Precondition Failed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one `Content-Length`-framed response and flushes it.
pub fn write_response(
    writer: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    write_response_with_headers(writer, status, content_type, body, keep_alive, &[])
}

/// [`write_response`] plus extra header fields (e.g. `location` on a 301).
/// Names must already be lowercase; values must be header-safe.
pub fn write_response_with_headers(
    writer: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    extra_headers: &[(&str, &str)],
) -> std::io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        status,
        reason_phrase(status),
        content_type,
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    for (name, value) in extra_headers {
        write!(writer, "{name}: {value}\r\n")?;
    }
    writer.write_all(b"\r\n")?;
    writer.write_all(body)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Request, ParseError> {
        read_request(&mut BufReader::new(raw), &ParseLimits::default())
    }

    #[test]
    fn parses_request_line_headers_and_length_framed_body() {
        let req =
            parse(b"POST /query?x=1 HTTP/1.1\r\nHost: localhost\r\nContent-Length: 5\r\n\r\nhello")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/query?x=1");
        assert_eq!(req.path(), "/query");
        assert!(req.http11);
        assert_eq!(req.header("host"), Some("localhost"));
        assert_eq!(req.body, b"hello");
        assert!(req.wants_keep_alive());
    }

    #[test]
    fn parses_chunked_body_with_extension_and_trailer() {
        let req = parse(
            b"POST /query HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n\
              5;ext=1\r\nhello\r\n6\r\n world\r\n0\r\nx-trailer: 1\r\n\r\n",
        )
        .unwrap();
        assert_eq!(req.body, b"hello world");
    }

    #[test]
    fn zero_length_and_absent_bodies_are_empty() {
        let req = parse(b"POST /query HTTP/1.1\r\nContent-Length: 0\r\n\r\n").unwrap();
        assert!(req.body.is_empty());
        let req = parse(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert!(req.body.is_empty());
    }

    #[test]
    fn connection_header_controls_keep_alive() {
        let req = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!req.wants_keep_alive());
        let req = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!req.wants_keep_alive());
        let req = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(req.wants_keep_alive());
    }

    #[test]
    fn malformed_inputs_map_to_bad_request() {
        for raw in [
            b"GARBAGE\r\n\r\n".as_slice(),
            b"GET / HTTP/2.0\r\n\r\n",
            b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"POST / HTTP/1.1\r\ncontent-length: nope\r\n\r\n",
            b"POST / HTTP/1.1\r\ncontent-length: 1\r\ntransfer-encoding: chunked\r\n\r\nx",
            b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\nzz\r\n",
            b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n5\r\nhelloXX",
        ] {
            let err = parse(raw).unwrap_err();
            assert_eq!(
                err.error_code(),
                Some(ErrorCode::BadRequest),
                "{raw:?} gave {err:?}"
            );
        }
    }

    #[test]
    fn oversized_headers_and_bodies_are_rejected() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend_from_slice(format!("x-big: {}\r\n\r\n", "a".repeat(10_000)).as_bytes());
        assert!(matches!(
            parse(&raw).unwrap_err(),
            ParseError::HeadersTooLarge
        ));

        let raw = b"POST / HTTP/1.1\r\ncontent-length: 9999999\r\n\r\n";
        assert!(matches!(parse(raw).unwrap_err(), ParseError::BodyTooLarge));

        let mut raw = b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n".to_vec();
        raw.extend_from_slice(format!("{:x}\r\n", 2_000_000).as_bytes());
        raw.extend_from_slice(&[b'a'; 64]);
        assert!(matches!(parse(&raw).unwrap_err(), ParseError::BodyTooLarge));
    }

    #[test]
    fn truncated_bodies_report_truncation() {
        let err = parse(b"POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nhalf").unwrap_err();
        assert!(matches!(err, ParseError::Truncated(_)), "{err:?}");
        assert_eq!(err.error_code(), Some(ErrorCode::Timeout));

        let err = parse(b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n10\r\nonly-some")
            .unwrap_err();
        assert!(matches!(err, ParseError::Truncated(_)), "{err:?}");
    }

    #[test]
    fn unsupported_transfer_encoding_maps_to_not_implemented() {
        let err = parse(b"POST / HTTP/1.1\r\ntransfer-encoding: gzip\r\n\r\n").unwrap_err();
        assert_eq!(err.error_code(), Some(ErrorCode::Unsupported));
    }

    #[test]
    fn pipelined_requests_parse_back_to_back_from_one_buffer() {
        let raw: &[u8] =
            b"GET /healthz HTTP/1.1\r\n\r\nPOST /query HTTP/1.1\r\ncontent-length: 2\r\n\r\nhi";
        let mut reader = BufReader::new(raw);
        let first = read_request(&mut reader, &ParseLimits::default()).unwrap();
        assert_eq!(first.path(), "/healthz");
        let second = read_request(&mut reader, &ParseLimits::default()).unwrap();
        assert_eq!(second.path(), "/query");
        assert_eq!(second.body, b"hi");
    }

    #[test]
    fn response_writer_frames_with_content_length() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", b"{\"ok\":true}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn response_writer_emits_extra_headers() {
        let mut out = Vec::new();
        write_response_with_headers(
            &mut out,
            301,
            "application/json",
            b"{}",
            true,
            &[("location", "/v1/healthz")],
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 301 Moved Permanently\r\n"));
        assert!(text.contains("location: /v1/healthz\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
