//! The metrics registry: named counters, gauges and fixed-bucket histograms
//! with cheap atomic handles and deterministic snapshots.
//!
//! Registration (name → handle) takes a mutex; recording through a handle is
//! lock-free (relaxed atomics), so callers cache handles for hot paths and
//! look them up by name only for cold ones. [`Registry::reset`] zeroes every
//! metric **in place** — existing handles stay valid — which is what lets
//! benchmarks and tests isolate runs without re-plumbing instrumentation.
//!
//! Snapshots order metrics by name (the registry stores them in `BTreeMap`s)
//! so two snapshots of identical state serialize to identical bytes.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::sink::json;

/// Adds `v` to an `f64` stored as bits in an atomic cell (CAS loop).
fn f64_add(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + v).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// Lowers (or raises, per `keep`) an `f64`-as-bits atomic cell to `v`.
fn f64_update(cell: &AtomicU64, v: f64, keep: impl Fn(f64, f64) -> bool) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        if keep(f64::from_bits(cur), v) {
            return;
        }
        match cell.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A monotone event counter. Cloning shares the underlying cell.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds `n` (no-op while recording is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A last-value-wins `f64` gauge. Cloning shares the underlying cell.
#[derive(Clone)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Sets the gauge (no-op while recording is disabled).
    #[inline]
    pub fn set(&self, v: f64) {
        if crate::enabled() {
            self.cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.cell.load(Ordering::Relaxed))
    }
}

struct HistogramCore {
    /// Ascending bucket upper bounds; an implicit overflow bucket follows.
    bounds: Vec<f64>,
    /// `bounds.len() + 1` per-bucket observation counts.
    bucket_counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl HistogramCore {
    fn new(bounds: Vec<f64>) -> Self {
        let n = bounds.len() + 1;
        Self {
            bounds,
            bucket_counts: (0..n).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    fn reset(&self) {
        for c in &self.bucket_counts {
            c.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0.0f64.to_bits(), Ordering::Relaxed);
        self.min_bits
            .store(f64::INFINITY.to_bits(), Ordering::Relaxed);
        self.max_bits
            .store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
    }
}

/// A fixed-bucket distribution. Cloning shares the underlying cells.
///
/// With an empty bound list the histogram degrades gracefully to a running
/// stat (count / sum / min / max; percentiles interpolate min→max), which is
/// what value metrics with unknown range (training loss, gradient norms)
/// use. Latency metrics use the exponential bounds of
/// [`Registry::histogram_time_ns`].
#[derive(Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// Records one observation (no-op while recording is disabled; NaN is
    /// ignored — a poisoned measurement must not wedge min/max forever).
    pub fn observe(&self, v: f64) {
        if !crate::enabled() || v.is_nan() {
            return;
        }
        let core = &self.core;
        let idx = core.bounds.partition_point(|&b| b < v);
        core.bucket_counts[idx].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        f64_add(&core.sum_bits, v);
        f64_update(&core.min_bits, v, |cur, new| cur <= new);
        f64_update(&core.max_bits, v, |cur, new| cur >= new);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }
}

/// Exponential (factor-2) nanosecond latency bounds: 256 ns … ~34 s.
pub fn time_bounds_ns() -> Vec<f64> {
    (0..28).map(|i| 256.0 * f64::powi(2.0, i)).collect()
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicU64>>,
    histograms: BTreeMap<String, Arc<HistogramCore>>,
}

/// A collection of named metrics. Most code uses the process-wide
/// [`crate::global`] registry; tests and embedders can hold their own.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = lock(&self.inner);
        let cell = inner
            .counters
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .clone();
        Counter { cell }
    }

    /// The gauge named `name`, created on first use (initial value 0.0).
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = lock(&self.inner);
        let cell = inner
            .gauges
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0.0f64.to_bits())))
            .clone();
        Gauge { cell }
    }

    /// The stat-only histogram named `name` (no buckets), created on first
    /// use. If the name already exists, the existing histogram is returned
    /// regardless of its bounds.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, &[])
    }

    /// The latency histogram named `name` with the [`time_bounds_ns`]
    /// buckets, created on first use.
    pub fn histogram_time_ns(&self, name: &str) -> Histogram {
        self.histogram_with(name, &time_bounds_ns())
    }

    /// The histogram named `name` with the given ascending bucket upper
    /// bounds, created on first use (first registration wins the bounds).
    pub fn histogram_with(&self, name: &str, bounds: &[f64]) -> Histogram {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let mut inner = lock(&self.inner);
        let core = inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(HistogramCore::new(bounds.to_vec())))
            .clone();
        Histogram { core }
    }

    /// Zeroes every metric in place. Handles held by instrumented code stay
    /// valid and keep recording into the same cells.
    pub fn reset(&self) {
        let inner = lock(&self.inner);
        for c in inner.counters.values() {
            c.store(0, Ordering::Relaxed);
        }
        for g in inner.gauges.values() {
            g.store(0.0f64.to_bits(), Ordering::Relaxed);
        }
        for h in inner.histograms.values() {
            h.reset();
        }
    }

    /// A point-in-time copy of every metric, ordered by name.
    pub fn snapshot(&self) -> Snapshot {
        let inner = lock(&self.inner);
        Snapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| {
                    let count = h.count.load(Ordering::Relaxed);
                    (
                        k.clone(),
                        HistogramSnapshot {
                            count,
                            sum: f64::from_bits(h.sum_bits.load(Ordering::Relaxed)),
                            min: if count == 0 {
                                0.0
                            } else {
                                f64::from_bits(h.min_bits.load(Ordering::Relaxed))
                            },
                            max: if count == 0 {
                                0.0
                            } else {
                                f64::from_bits(h.max_bits.load(Ordering::Relaxed))
                            },
                            bounds: h.bounds.clone(),
                            bucket_counts: h
                                .bucket_counts
                                .iter()
                                .map(|c| c.load(Ordering::Relaxed))
                                .collect(),
                        },
                    )
                })
                .collect(),
        }
    }
}

/// A point-in-time copy of one histogram.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (0.0 when empty).
    pub min: f64,
    /// Largest observation (0.0 when empty).
    pub max: f64,
    /// Bucket upper bounds (ascending); an overflow bucket follows.
    pub bounds: Vec<f64>,
    /// `bounds.len() + 1` per-bucket counts.
    pub bucket_counts: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimates the `p`-quantile (`p ∈ [0, 1]`) by nearest-rank bucket
    /// lookup with linear interpolation inside the bucket, clamped to the
    /// observed `[min, max]`. Exact when a bucket holds one distinct value;
    /// otherwise accurate to the bucket width.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        // Nearest-rank target, 0-based — same convention as the percentile
        // helpers this replaces in `aneci_serve` / `bench_report`.
        let target = (p.clamp(0.0, 1.0) * (self.count - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.bucket_counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if target < seen + c {
                // Bucket i spans (lo, hi]; clamp to observed extremes.
                let lo = if i == 0 { self.min } else { self.bounds[i - 1] }.max(self.min);
                let hi = if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                }
                .min(self.max)
                .max(lo);
                // Midpoint-of-rank interpolation within the bucket.
                let frac = ((target - seen) as f64 + 0.5) / c as f64;
                return lo + (hi - lo) * frac;
            }
            seen += c;
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> f64 {
        self.percentile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> f64 {
        self.percentile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.percentile(0.99)
    }
}

/// True for metric names whose values legitimately vary run-to-run: wall
/// times (`*_ns`) and anything under a `dispatch` or `cache` path segment
/// (thread-count- or scheduling-dependent). See the crate docs.
fn is_nondeterministic(name: &str) -> bool {
    name.ends_with("_ns")
        || name
            .split('.')
            .any(|seg| seg == "dispatch" || seg == "cache")
}

/// A point-in-time copy of a whole registry, ordered by metric name.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` counters.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges.
    pub gauges: Vec<(String, f64)>,
    /// `(name, state)` histograms.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// Value of a counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Value of a gauge, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// State of a histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Names of all metrics (all three kinds), ascending.
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self
            .counters
            .iter()
            .map(|(n, _)| n.as_str())
            .chain(self.gauges.iter().map(|(n, _)| n.as_str()))
            .chain(self.histograms.iter().map(|(n, _)| n.as_str()))
            .collect();
        names.sort_unstable();
        names
    }

    /// Projects onto the thread-count- and wall-clock-independent metrics
    /// (see the crate docs for the naming rule). Two runs with the same seed
    /// and workload produce **equal** deterministic views regardless of
    /// `ANECI_NUM_THREADS`.
    pub fn deterministic(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .iter()
                .filter(|(n, _)| !is_nondeterministic(n))
                .cloned()
                .collect(),
            gauges: self
                .gauges
                .iter()
                .filter(|(n, _)| !is_nondeterministic(n))
                .cloned()
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter(|(n, _)| !is_nondeterministic(n))
                .cloned()
                .collect(),
        }
    }

    /// One JSON object for the whole snapshot (used by `BENCH_obs.json`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (n, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {v}", json::string(n)));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (n, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {}", json::string(n), json::number(*v)));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (n, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {}: {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                json::string(n),
                h.count,
                json::number(h.sum),
                json::number(h.min),
                json::number(h.max),
                json::number(h.mean()),
                json::number(h.p50()),
                json::number(h.p95()),
                json::number(h.p99()),
            ));
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// One JSON line per metric — the JSONL telemetry form.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (n, v) in &self.counters {
            out.push_str(&format!(
                "{{\"type\":\"counter\",\"name\":{},\"value\":{v}}}\n",
                json::string(n)
            ));
        }
        for (n, v) in &self.gauges {
            out.push_str(&format!(
                "{{\"type\":\"gauge\",\"name\":{},\"value\":{}}}\n",
                json::string(n),
                json::number(*v)
            ));
        }
        for (n, h) in &self.histograms {
            out.push_str(&format!(
                "{{\"type\":\"histogram\",\"name\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}\n",
                json::string(n),
                h.count,
                json::number(h.sum),
                json::number(h.min),
                json::number(h.max),
                json::number(h.p50()),
                json::number(h.p95()),
                json::number(h.p99()),
            ));
        }
        out
    }

    /// Human-readable summary, aligned into sections.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            let w = self
                .counters
                .iter()
                .map(|(n, _)| n.len())
                .max()
                .unwrap_or(0);
            for (n, v) in &self.counters {
                out.push_str(&format!("  {n:<w$}  {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            let w = self.gauges.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
            for (n, v) in &self.gauges {
                out.push_str(&format!("  {n:<w$}  {v:.6}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            let w = self
                .histograms
                .iter()
                .map(|(n, _)| n.len())
                .max()
                .unwrap_or(0);
            for (n, h) in &self.histograms {
                out.push_str(&format!(
                    "  {n:<w$}  n={:<8} mean={:<12.4} p50={:<12.4} p95={:<12.4} p99={:<12.4} min={:<12.4} max={:.4}\n",
                    h.count,
                    h.mean(),
                    h.p50(),
                    h.p95(),
                    h.p99(),
                    h.min,
                    h.max,
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let reg = Registry::new();
        let c = reg.counter("a.calls");
        c.inc();
        c.add(4);
        // A second handle to the same name shares the cell.
        reg.counter("a.calls").inc();
        reg.gauge("a.level").set(2.5);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a.calls"), Some(6));
        assert_eq!(snap.gauge("a.level"), Some(2.5));
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn reset_zeroes_in_place_and_handles_survive() {
        let reg = Registry::new();
        let c = reg.counter("x");
        let h = reg.histogram("y");
        c.add(7);
        h.observe(3.0);
        reg.reset();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("x"), Some(0));
        assert_eq!(snap.histogram("y").unwrap().count, 0);
        // Old handles still record into the same metric.
        c.inc();
        h.observe(1.0);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("x"), Some(1));
        assert_eq!(snap.histogram("y").unwrap().count, 1);
    }

    #[test]
    fn histogram_buckets_match_brute_force() {
        let reg = Registry::new();
        let bounds = [1.0, 2.0, 4.0, 8.0];
        let h = reg.histogram_with("lat", &bounds);
        let samples: Vec<f64> = (0..1000).map(|i| (i as f64 * 7919.0) % 10.0).collect();
        for &s in &samples {
            h.observe(s);
        }
        let snap = reg.snapshot();
        let hs = snap.histogram("lat").unwrap();

        // Brute-force reference bucketing: first bound >= v, overflow last.
        let mut expect = vec![0u64; bounds.len() + 1];
        for &s in &samples {
            let idx = bounds.iter().position(|&b| s <= b).unwrap_or(bounds.len());
            expect[idx] += 1;
        }
        assert_eq!(hs.bucket_counts, expect);
        assert_eq!(hs.count, 1000);
        let sum: f64 = samples.iter().sum();
        assert!((hs.sum - sum).abs() < 1e-9 * sum.abs().max(1.0));
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(hs.min, min);
        assert_eq!(hs.max, max);
    }

    #[test]
    fn percentile_estimates_land_in_the_right_bucket() {
        let reg = Registry::new();
        let bounds: Vec<f64> = (1..100).map(|i| i as f64).collect();
        let h = reg.histogram_with("p", &bounds);
        // 0..1000 scaled to 0..100, uniformly.
        let mut samples: Vec<f64> = (0..1000).map(|i| i as f64 / 10.0).collect();
        for &s in &samples {
            h.observe(s);
        }
        samples.sort_by(f64::total_cmp);
        let hs = reg.snapshot().histogram("p").cloned().unwrap();
        for p in [0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let est = hs.percentile(p);
            // Brute-force nearest-rank sample quantile.
            let exact = samples[((samples.len() - 1) as f64 * p).round() as usize];
            assert!(
                (est - exact).abs() <= 1.0 + 1e-9,
                "p={p}: estimate {est} vs exact {exact} (bucket width 1)"
            );
        }
        // Degenerate single-value histogram is exact at every quantile.
        let one = reg.histogram_with("one", &bounds);
        for _ in 0..5 {
            one.observe(42.5);
        }
        let hs = reg.snapshot().histogram("one").cloned().unwrap();
        for p in [0.0, 0.5, 0.99, 1.0] {
            assert!((hs.percentile(p) - 42.5).abs() < 1e-9);
        }
    }

    #[test]
    fn statonly_histogram_interpolates_min_max() {
        let reg = Registry::new();
        let h = reg.histogram("loss");
        for v in [-4.0, -2.0, 0.0, 2.0, 4.0] {
            h.observe(v);
        }
        let hs = reg.snapshot().histogram("loss").cloned().unwrap();
        assert_eq!(hs.count, 5);
        assert_eq!(hs.min, -4.0);
        assert_eq!(hs.max, 4.0);
        assert!((hs.mean() - 0.0).abs() < 1e-12);
        let p50 = hs.p50();
        assert!((-4.0..=4.0).contains(&p50));
    }

    #[test]
    fn nan_observations_are_ignored() {
        let reg = Registry::new();
        let h = reg.histogram("v");
        h.observe(f64::NAN);
        h.observe(1.0);
        let hs = reg.snapshot().histogram("v").cloned().unwrap();
        assert_eq!(hs.count, 1);
        assert_eq!(hs.min, 1.0);
    }

    #[test]
    fn deterministic_view_filters_times_dispatch_and_cache() {
        let reg = Registry::new();
        reg.counter("linalg.kernel.matmul.calls").inc();
        reg.counter("linalg.pool.dispatch.pooled").inc();
        reg.counter("serve.cache.hits").inc();
        reg.histogram_time_ns("span.core.train.encode_ns")
            .observe(5.0);
        reg.histogram("core.train.loss").observe(1.0);
        let det = reg.snapshot().deterministic();
        let names = det.names();
        assert!(names.contains(&"linalg.kernel.matmul.calls"));
        assert!(names.contains(&"core.train.loss"));
        assert!(!names.contains(&"linalg.pool.dispatch.pooled"));
        assert!(!names.contains(&"serve.cache.hits"));
        assert!(!names.contains(&"span.core.train.encode_ns"));
    }

    #[test]
    fn snapshots_of_identical_state_are_equal() {
        let mk = || {
            let reg = Registry::new();
            reg.counter("b").add(2);
            reg.counter("a").add(1);
            reg.histogram_with("h", &[1.0, 2.0]).observe(1.5);
            reg.gauge("g").set(0.25);
            reg.snapshot()
        };
        let (s1, s2) = (mk(), mk());
        assert_eq!(s1, s2);
        assert_eq!(s1.to_json(), s2.to_json());
        assert_eq!(s1.to_jsonl(), s2.to_jsonl());
        // Name ordering is sorted regardless of registration order.
        assert_eq!(
            s1.counters
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>(),
            vec!["a", "b"]
        );
    }

    #[test]
    fn json_render_is_well_formed_enough() {
        let reg = Registry::new();
        reg.counter("c.one").inc();
        reg.gauge("g.two").set(1.5);
        reg.histogram("h.three").observe(2.0);
        let snap = reg.snapshot();
        let json = snap.to_json();
        assert!(json.contains("\"c.one\": 1"));
        assert!(json.contains("\"g.two\": 1.5"));
        assert!(json.contains("\"count\": 1"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces:\n{json}"
        );
        let rendered = snap.render();
        assert!(rendered.contains("c.one"));
        assert!(rendered.contains("h.three"));
    }

    #[test]
    fn time_bounds_are_ascending() {
        let b = time_bounds_ns();
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(b[0], 256.0);
    }
}
