//! Quickstart: train AnECI on Zachary's karate club and inspect what it
//! learned.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use aneci::prelude::*;

fn main() {
    // 1. Load the (real, embedded) karate-club network: 34 nodes, 78 edges,
    //    two ground-truth factions.
    let graph = karate_club();
    println!(
        "graph: {} nodes, {} edges, homophily {:.2}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.edge_homophily().unwrap()
    );

    // 2. Train AnECI with the community-detection preset (embedding size =
    //    number of communities, so softmax(Z) is the membership matrix).
    let config = AneciConfig::for_community_detection(2, 42);
    let (model, report) = train_aneci(&graph, &config).expect("training failed");
    println!(
        "trained {} epochs; final loss {:.4}, final Q̃ {:.4}",
        report.epochs_run,
        report.losses.last().unwrap(),
        report.modularity.last().unwrap()
    );

    // 3. Read out the hard community assignment and score it.
    let communities = model.communities();
    let truth = graph.labels.as_ref().unwrap();
    println!(
        "modularity of learned partition: {:.3}",
        modularity(&graph, &communities)
    );
    println!(
        "NMI vs the real factions:        {:.3}",
        nmi(&communities, truth)
    );

    // 4. The soft membership also gives an anomaly score per node: nodes
    //    straddling both factions have high membership entropy.
    let scores = node_anomaly_scores(&model.membership());
    let mut ranked: Vec<(usize, f64)> = scores.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("most community-ambiguous members (the bridge nodes):");
    for (node, score) in ranked.iter().take(5) {
        println!(
            "  node {node:2}  entropy {score:.3}  degree {}",
            graph.degree(*node)
        );
    }

    // 5. Persist the trained model as a `.aneci` checkpoint and reload it.
    //    The round trip is bit-exact; `aneci_serve` can answer queries from
    //    this file (see the serve_queries example).
    let path = std::env::temp_dir().join("quickstart.aneci");
    model.save_checkpoint(&path).expect("saving checkpoint");
    let reloaded = AneciModel::load_checkpoint(&path).expect("loading checkpoint");
    assert_eq!(
        reloaded,
        model.checkpoint().unwrap(),
        "checkpoint round trip must be bit-exact"
    );
    println!(
        "checkpoint: saved + reloaded {} nodes x {} dims bit-exactly at {}",
        reloaded.num_nodes(),
        reloaded.embed_dim(),
        path.display()
    );
}
