//! DropEdge-regularized GCN — the semi-supervised *defense* comparator.
//!
//! The paper's Table III / Figs. 3–5 include RGCN, a defense-hardened
//! semi-supervised model. Per DESIGN.md we substitute the simpler,
//! well-established **DropEdge** defense (Rong et al. 2020): every training
//! epoch samples a random edge-subgraph and propagates over its normalized
//! adjacency. Randomizing the propagation support prevents the model from
//! leaning on any individual (possibly adversarial) edge — the same
//! robustness mechanism RGCN's variance-based attention pursues, with a
//! fraction of the machinery.

use aneci_autograd::train::{TrainError, Trainer};
use aneci_autograd::{Adam, ParamSet, Tape, Var};
use aneci_graph::AttributedGraph;
use aneci_linalg::rng::{derive_seed, seeded_rng, xavier_uniform};
use aneci_linalg::{CsrMatrix, DenseMatrix};
use aneci_obs::span;
use rand::Rng;
use std::sync::Arc;

/// DropEdge-GCN hyperparameters.
#[derive(Clone, Debug)]
pub struct RobustGcnConfig {
    /// Hidden layer width.
    pub hidden_dim: usize,
    /// Fraction of edges dropped per epoch.
    pub drop_edge_rate: f64,
    /// Learning rate.
    pub lr: f64,
    /// Weight decay.
    pub weight_decay: f64,
    /// Training epochs.
    pub epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RobustGcnConfig {
    fn default() -> Self {
        Self {
            hidden_dim: 16,
            drop_edge_rate: 0.3,
            lr: 0.01,
            weight_decay: 5e-4,
            epochs: 200,
            seed: 0,
        }
    }
}

/// A trained DropEdge-GCN classifier.
pub struct RobustGcn {
    params: ParamSet,
    norm_adj: Arc<CsrMatrix>,
    features: DenseMatrix,
    /// Training-loss history.
    pub train_losses: Vec<f64>,
}

/// Normalized adjacency of a random edge-subgraph.
fn sampled_norm_adjacency(
    graph: &AttributedGraph,
    drop_rate: f64,
    rng: &mut rand::rngs::StdRng,
) -> CsrMatrix {
    let n = graph.num_nodes();
    let mut trips = Vec::new();
    for (u, v) in graph.edge_list() {
        if rng.gen::<f64>() >= drop_rate {
            trips.push((u, v, 1.0));
            trips.push((v, u, 1.0));
        }
    }
    CsrMatrix::from_triplets(n, n, &trips)
        .add_identity()
        .sym_normalize()
}

impl RobustGcn {
    /// Trains on the graph's labelled training split with per-epoch edge
    /// dropping; inference uses the full graph. Panics on divergence;
    /// [`RobustGcn::try_fit`] is the non-panicking variant.
    pub fn fit(graph: &AttributedGraph, config: &RobustGcnConfig) -> Self {
        Self::try_fit(graph, config).expect("DropEdge-GCN training diverged")
    }

    /// Trains with per-epoch edge dropping, surfacing
    /// [`TrainError::Diverged`] when the loss goes non-finite.
    pub fn try_fit(graph: &AttributedGraph, config: &RobustGcnConfig) -> Result<Self, TrainError> {
        assert!(
            (0.0..1.0).contains(&config.drop_edge_rate),
            "drop rate must be in [0, 1)"
        );
        let labels = graph
            .labels
            .as_ref()
            .expect("RobustGcn needs labels")
            .clone();
        let num_classes = graph.num_classes();
        assert!(num_classes >= 2, "need at least two classes");
        let features = graph.features().clone();
        let norm_adj = Arc::new(graph.norm_adjacency());

        let mut rng = seeded_rng(derive_seed(config.seed, 0x26C1));
        let mut params = ParamSet::new();
        params.register(
            "w1",
            xavier_uniform(features.cols(), config.hidden_dim, &mut rng),
        );
        params.register(
            "w2",
            xavier_uniform(config.hidden_dim, num_classes, &mut rng),
        );

        let mut opt = Adam::new(config.lr).with_weight_decay(config.weight_decay);
        let mut step = |tape: &mut Tape, w: &[Var], _epoch: usize| -> Var {
            let s = Arc::new(sampled_norm_adjacency(
                graph,
                config.drop_edge_rate,
                &mut rng,
            ));
            let logits = {
                let _s = span("encode");
                let x = tape.constant(features.clone());
                let xw = tape.matmul(x, w[0]);
                let h1 = tape.spmm(&s, xw);
                let a1 = tape.relu(h1);
                let hw = tape.matmul(a1, w[1]);
                tape.spmm(&s, hw)
            };
            let _s = span("loss");
            tape.softmax_cross_entropy(logits, &labels, &graph.split.train)
        };
        let run = Trainer::new(config.epochs)
            .observe_as("train.robust_gcn")
            .run(&mut params, &mut opt, &mut step)?;
        Ok(Self {
            params,
            norm_adj,
            features,
            train_losses: run.losses,
        })
    }

    /// Full-graph logits (inference mode, no edge dropping).
    pub fn logits(&self) -> DenseMatrix {
        let mut tape = Tape::new();
        let w = self.params.leaf_all(&mut tape);
        let x = tape.constant(self.features.clone());
        let xw = tape.matmul(x, w[0]);
        let h1 = tape.spmm(&self.norm_adj, xw);
        let a1 = tape.relu(h1);
        let hw = tape.matmul(a1, w[1]);
        let out = tape.spmm(&self.norm_adj, hw);
        tape.value(out).clone()
    }

    /// Hard predictions for every node.
    pub fn predict(&self) -> Vec<usize> {
        self.logits().argmax_rows()
    }

    /// Accuracy on a node subset.
    pub fn accuracy_on(&self, graph: &AttributedGraph, nodes: &[usize]) -> f64 {
        let labels = graph.labels.as_ref().expect("needs labels");
        let pred = self.predict();
        if nodes.is_empty() {
            return 0.0;
        }
        nodes.iter().filter(|&&i| pred[i] == labels[i]).count() as f64 / nodes.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aneci_graph::{generate_sbm, sample_split, FeatureKind, SbmConfig};

    fn bench(seed: u64) -> AttributedGraph {
        let cfg = SbmConfig {
            num_nodes: 260,
            num_classes: 3,
            target_edges: 1300,
            homophily: 0.85,
            degree_exponent: Some(2.5),
            feature_dim: 64,
            features: FeatureKind::BagOfWords {
                p_signal: 0.2,
                p_noise: 0.02,
            },
        };
        let mut g = generate_sbm(&cfg, seed);
        let labels = g.labels.clone().unwrap();
        g.set_split(sample_split(&labels, 15, 45, 140, seed));
        g
    }

    #[test]
    fn learns_despite_edge_dropping() {
        let g = bench(1);
        let model = RobustGcn::fit(
            &g,
            &RobustGcnConfig {
                epochs: 150,
                ..Default::default()
            },
        );
        let acc = model.accuracy_on(&g, &g.split.test);
        assert!(acc > 0.8, "DropEdge-GCN accuracy {acc}");
    }

    #[test]
    fn sampled_adjacency_drops_roughly_requested_fraction() {
        let g = bench(2);
        let mut rng = seeded_rng(9);
        let s = sampled_norm_adjacency(&g, 0.4, &mut rng);
        // nnz = kept directed edges + N self loops.
        let kept = (s.nnz() - g.num_nodes()) / 2;
        let frac = kept as f64 / g.num_edges() as f64;
        assert!((frac - 0.6).abs() < 0.07, "kept fraction {frac}");
        assert!(s.is_symmetric());
    }

    #[test]
    fn more_robust_than_plain_gcn_under_heavy_attack() {
        // The point of the defense: after a 60% random edge injection, the
        // DropEdge model should hold up at least as well as the plain GCN.
        use crate::gcn::{GcnClassifier, GcnConfig};
        let g = bench(3);
        // Inject noise edges manually (avoid a dependency on aneci-attacks).
        let mut rng = seeded_rng(3);
        let mut fakes = Vec::new();
        let want = (0.6 * g.num_edges() as f64) as usize;
        while fakes.len() < want {
            let u = rng.gen_range(0..g.num_nodes());
            let v = rng.gen_range(0..g.num_nodes());
            if u != v && !g.has_edge(u, v) {
                fakes.push((u, v));
            }
        }
        let attacked = g.with_edits(&fakes, &[]);

        let mut plain = 0.0;
        let mut robust = 0.0;
        for seed in [0u64, 1, 2] {
            let p = GcnClassifier::fit(
                &attacked,
                &GcnConfig {
                    epochs: 150,
                    patience: 0,
                    seed,
                    ..Default::default()
                },
            );
            plain += p.accuracy_on(&attacked, &attacked.split.test);
            let r = RobustGcn::fit(
                &attacked,
                &RobustGcnConfig {
                    epochs: 150,
                    seed,
                    ..Default::default()
                },
            );
            robust += r.accuracy_on(&attacked, &attacked.split.test);
        }
        assert!(
            robust >= plain - 0.05,
            "DropEdge ({:.3}) should not trail plain GCN ({:.3}) under attack",
            robust / 3.0,
            plain / 3.0
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let g = bench(4);
        let cfg = RobustGcnConfig {
            epochs: 25,
            seed: 5,
            ..Default::default()
        };
        assert_eq!(
            RobustGcn::fit(&g, &cfg).predict(),
            RobustGcn::fit(&g, &cfg).predict()
        );
    }
}
