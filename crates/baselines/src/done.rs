//! DONE-style outlier-aware autoencoder (Bandyopadhyay et al. 2020),
//! simplified.
//!
//! The paper compares against DONE/ADONE [15]: twin autoencoders — one over
//! adjacency rows (structure), one over attribute rows — whose losses are
//! reweighted by per-node outlier scores `o_i`, alternately optimized in
//! closed form (`o_i ∝` the node's share of the total reconstruction
//! error). Nodes that refuse to reconstruct are declared outliers and
//! progressively down-weighted so they cannot distort the embedding.
//!
//! This implementation keeps that alternating structure with single-hidden-
//! layer autoencoders and a homophily term pulling neighbor embeddings
//! together; the adversarial discriminator of ADONE is out of scope (noted
//! in DESIGN.md).

use aneci_autograd::train::{TrainError, Trainer};
use aneci_autograd::{Adam, ParamSet, Tape, Var};
use aneci_graph::AttributedGraph;
use aneci_linalg::rng::{derive_seed, seeded_rng, xavier_uniform};
use aneci_linalg::DenseMatrix;
use aneci_obs::span;

/// DONE hyperparameters.
#[derive(Clone, Debug)]
pub struct DoneConfig {
    /// Embedding dimensionality (per autoencoder; the final embedding is
    /// the concatenation, `2 × embed_dim` wide).
    pub embed_dim: usize,
    /// Outer alternating rounds (retrain AEs ↔ refresh outlier scores).
    pub rounds: usize,
    /// Gradient epochs per round.
    pub epochs_per_round: usize,
    /// Learning rate.
    pub lr: f64,
    /// Weight of the homophily (neighbor-closeness) term.
    pub homophily_weight: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DoneConfig {
    fn default() -> Self {
        Self {
            embed_dim: 8,
            rounds: 4,
            epochs_per_round: 30,
            lr: 0.005,
            homophily_weight: 0.5,
            seed: 0,
        }
    }
}

/// A trained DONE model.
pub struct Done {
    embedding: DenseMatrix,
    outlier_scores: Vec<f64>,
    /// Loss at the end of each round.
    pub round_losses: Vec<f64>,
}

/// One single-hidden-layer autoencoder's parameters (slots into a ParamSet).
struct AeSlots {
    enc: usize,
    dec: usize,
}

fn register_ae(
    params: &mut ParamSet,
    name: &str,
    input_dim: usize,
    embed_dim: usize,
    rng: &mut rand::rngs::StdRng,
) -> AeSlots {
    let enc = params.register(
        format!("{name}_enc"),
        xavier_uniform(input_dim, embed_dim, rng),
    );
    let dec = params.register(
        format!("{name}_dec"),
        xavier_uniform(embed_dim, input_dim, rng),
    );
    AeSlots { enc, dec }
}

/// Forward through one AE: returns `(embedding, weighted reconstruction
/// loss)` where rows are weighted by the constant `weight` matrix.
fn ae_forward(
    tape: &mut Tape,
    w: &[Var],
    slots: &AeSlots,
    input: &DenseMatrix,
    row_weights: &DenseMatrix,
) -> (Var, Var) {
    let x = tape.constant(input.clone());
    let xe = tape.matmul(x, w[slots.enc]);
    let h = tape.tanh(xe);
    let hd = tape.matmul(h, w[slots.dec]);
    let x2 = tape.constant(input.clone());
    let diff = tape.sub(hd, x2);
    let sq = tape.hadamard(diff, diff);
    let weights = tape.constant(row_weights.clone());
    let weighted = tape.hadamard(sq, weights);
    let loss = tape.mean_all(weighted);
    (h, loss)
}

impl Done {
    /// Trains the twin autoencoders with alternating outlier reweighting.
    /// Panics on divergence; [`Done::try_fit`] is the non-panicking variant.
    pub fn fit(graph: &AttributedGraph, config: &DoneConfig) -> Self {
        Self::try_fit(graph, config).expect("DONE training diverged")
    }

    /// Trains the twin autoencoders, surfacing [`TrainError::Diverged`] when
    /// the loss goes non-finite (instead of silently training through NaNs).
    pub fn try_fit(graph: &AttributedGraph, config: &DoneConfig) -> Result<Self, TrainError> {
        let n = graph.num_nodes();
        // Structure view: row-normalized adjacency rows (dense).
        let adj_rows = {
            let a = graph.adjacency().add_identity().row_normalize();
            a.to_dense()
        };
        let attrs = graph.features().clone();
        let edges = graph.edge_list();

        let mut rng = seeded_rng(derive_seed(config.seed, 0xD0E));
        let mut params = ParamSet::new();
        let s_slots = register_ae(&mut params, "str", n, config.embed_dim, &mut rng);
        let a_slots = register_ae(
            &mut params,
            "attr",
            attrs.cols(),
            config.embed_dim,
            &mut rng,
        );

        let mut opt = Adam::new(config.lr);
        // o_i initialized uniform; the loss weight is log(1/o_i).
        let mut outliers = vec![1.0 / n as f64; n];
        let mut round_losses = Vec::new();

        for _ in 0..config.rounds {
            // Row weights w_i = log(1/o_i), broadcast to both input widths.
            let log_w: Vec<f64> = outliers
                .iter()
                .map(|&o| (1.0 / o.max(1e-12)).ln())
                .collect();
            let max_w = log_w.iter().cloned().fold(f64::MIN, f64::max).max(1e-12);
            let norm_w: Vec<f64> = log_w.iter().map(|&w| w / max_w).collect();
            let str_weights = DenseMatrix::from_fn(n, n, |r, _| norm_w[r]);
            let attr_weights = DenseMatrix::from_fn(n, attrs.cols(), |r, _| norm_w[r]);

            let mut step = |tape: &mut Tape, w: &[Var], _epoch: usize| -> Var {
                let (hs, ls, ha, la) = {
                    let _s = span("encode");
                    let (hs, ls) = ae_forward(tape, w, &s_slots, &adj_rows, &str_weights);
                    let (ha, la) = ae_forward(tape, w, &a_slots, &attrs, &attr_weights);
                    (hs, ls, ha, la)
                };
                let _s = span("loss");
                // Homophily: neighbors should embed nearby in both views,
                // plus the two views of the same node should agree.
                let hom_pairs: Vec<aneci_autograd::BcePair> = edges
                    .iter()
                    .map(|&(u, v)| (u as u32, v as u32, 1.0))
                    .collect();
                let hom: std::sync::Arc<[aneci_autograd::BcePair]> = hom_pairs.into();
                let hom_s = tape.pair_bce(hs, &hom);
                let hom_a = tape.pair_bce(ha, &hom);
                let hom_total = {
                    let sum = tape.add(hom_s, hom_a);
                    tape.scale(
                        sum,
                        config.homophily_weight / (2 * edges.len().max(1)) as f64,
                    )
                };
                let recon = tape.add(ls, la);
                tape.add(recon, hom_total)
            };
            let run = Trainer::new(config.epochs_per_round)
                .observe_as("train.done")
                .run(&mut params, &mut opt, &mut step)?;
            round_losses.push(run.losses.last().copied().unwrap_or(0.0));

            // Closed-form outlier refresh: o_i ∝ the node's error share
            // across both views (reconstruction + homophily, as in DONE's
            // six-term objective).
            let errors =
                Self::per_node_errors(&params, &s_slots, &a_slots, &adj_rows, &attrs, &edges);
            let total: f64 = errors.iter().sum::<f64>().max(1e-12);
            for (o, e) in outliers.iter_mut().zip(&errors) {
                *o = (e / total).max(1e-9);
            }
        }

        // Final embedding: concatenated view embeddings.
        let embedding = {
            let mut tape = Tape::new();
            let w = params.leaf_all(&mut tape);
            let x = tape.constant(adj_rows.clone());
            let xe = tape.matmul(x, w[s_slots.enc]);
            let hs = tape.tanh(xe);
            let y = tape.constant(attrs.clone());
            let ye = tape.matmul(y, w[a_slots.enc]);
            let ha = tape.tanh(ye);
            tape.value(hs).hstack(tape.value(ha))
        };

        Ok(Self {
            embedding,
            outlier_scores: outliers,
            round_losses,
        })
    }

    fn per_node_errors(
        params: &ParamSet,
        s_slots: &AeSlots,
        a_slots: &AeSlots,
        adj_rows: &DenseMatrix,
        attrs: &DenseMatrix,
        edges: &[(usize, usize)],
    ) -> Vec<f64> {
        let encode = |input: &DenseMatrix, slots: &AeSlots| -> DenseMatrix {
            aneci_linalg::par::matmul(input, params.get(slots.enc)).map(f64::tanh)
        };
        let decode = |h: &DenseMatrix, slots: &AeSlots| -> DenseMatrix {
            aneci_linalg::par::matmul(h, params.get(slots.dec))
        };
        let hs = encode(adj_rows, s_slots);
        let ha = encode(attrs, a_slots);
        let s_hat = decode(&hs, s_slots);
        let a_hat = decode(&ha, a_slots);

        let n = adj_rows.rows();
        let row_err = |truth: &DenseMatrix, pred: &DenseMatrix, i: usize| -> f64 {
            truth
                .row(i)
                .iter()
                .zip(pred.row(i))
                .map(|(&x, &y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt()
        };
        // Homophily errors: a node whose embedding sits far from its
        // neighbors' embeddings (in either view) is suspicious — this is
        // the term that exposes structure/attribute inconsistency.
        let mut hom = vec![0.0f64; n];
        let mut deg = vec![0usize; n];
        let sq_dist = |z: &DenseMatrix, a: usize, b: usize| -> f64 {
            z.row(a)
                .iter()
                .zip(z.row(b))
                .map(|(&x, &y)| (x - y) * (x - y))
                .sum()
        };
        for &(u, v) in edges {
            let d = sq_dist(&hs, u, v) + sq_dist(&ha, u, v);
            hom[u] += d;
            hom[v] += d;
            deg[u] += 1;
            deg[v] += 1;
        }
        // Normalize each error family to comparable scale before summing.
        let mut recon_err: Vec<f64> = (0..n)
            .map(|i| row_err(adj_rows, &s_hat, i) + row_err(attrs, &a_hat, i))
            .collect();
        let mut hom_err: Vec<f64> = (0..n).map(|i| hom[i] / deg[i].max(1) as f64).collect();
        let normalize = |v: &mut Vec<f64>| {
            let max = v.iter().cloned().fold(0.0f64, f64::max).max(1e-12);
            for x in v.iter_mut() {
                *x /= max;
            }
        };
        normalize(&mut recon_err);
        normalize(&mut hom_err);
        (0..n).map(|i| recon_err[i] + hom_err[i]).collect()
    }

    /// The concatenated structure‖attribute embedding.
    pub fn embedding(&self) -> &DenseMatrix {
        &self.embedding
    }

    /// Per-node outlier probabilities `o_i` (sum to ≈ 1; higher = more
    /// anomalous) — DONE's native anomaly score.
    pub fn anomaly_scores(&self) -> &[f64] {
        &self.outlier_scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aneci_graph::karate_club;

    #[test]
    fn trains_with_decreasing_loss() {
        let g = karate_club();
        let model = Done::fit(&g, &DoneConfig::default());
        assert!(model.round_losses.last().unwrap() <= &model.round_losses[0]);
        assert_eq!(model.embedding().shape(), (34, 16));
        assert!(model.embedding().all_finite());
    }

    #[test]
    fn outlier_scores_form_distribution() {
        let g = karate_club();
        let model = Done::fit(
            &g,
            &DoneConfig {
                rounds: 2,
                ..Default::default()
            },
        );
        let sum: f64 = model.anomaly_scores().iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "scores sum to {sum}");
        assert!(model.anomaly_scores().iter().all(|&o| o > 0.0));
    }

    #[test]
    fn flags_attribute_outliers_on_sbm() {
        // Nodes whose attributes come from a foreign community reconstruct
        // inconsistently with their structural context. Corrupt 10 nodes'
        // features and demand better-than-chance ranking.
        use aneci_graph::{generate_sbm, FeatureKind, SbmConfig};
        let cfg = SbmConfig {
            num_nodes: 150,
            num_classes: 3,
            target_edges: 700,
            homophily: 0.9,
            degree_exponent: None,
            feature_dim: 60,
            features: FeatureKind::BagOfWords {
                p_signal: 0.5,
                p_noise: 0.005,
            },
        };
        let mut g = generate_sbm(&cfg, 11);
        let labels = g.labels.clone().unwrap();
        let mut features = g.features().clone();
        let mut truth = [false; 150];
        // Swap the features of 10 nodes with a donor from another
        // community (the ONE-style attribute outlier): individually normal
        // rows, inconsistent with their structural neighborhood.
        for i in (0..150).step_by(15) {
            let donor = (0..150)
                .find(|&j| labels[j] != labels[i] && !truth[j])
                .expect("donor exists");
            let row: Vec<f64> = features.row(donor).to_vec();
            features.row_mut(i).copy_from_slice(&row);
            truth[i] = true;
        }
        g.set_features(features);

        let model = Done::fit(
            &g,
            &DoneConfig {
                rounds: 5,
                epochs_per_round: 40,
                seed: 2,
                ..Default::default()
            },
        );
        let scores: Vec<f64> = model.anomaly_scores().to_vec();
        // AUC of the outlier ranking must clearly beat chance.
        let mut pairs_better = 0usize;
        let mut pairs_total = 0usize;
        for i in 0..150 {
            for j in 0..150 {
                if truth[i] && !truth[j] {
                    pairs_total += 1;
                    if scores[i] > scores[j] {
                        pairs_better += 1;
                    }
                }
            }
        }
        let auc = pairs_better as f64 / pairs_total as f64;
        assert!(auc > 0.8, "DONE attribute-outlier AUC only {auc:.3}");
    }

    #[test]
    fn deterministic_in_seed() {
        let g = karate_club();
        let cfg = DoneConfig {
            rounds: 2,
            epochs_per_round: 10,
            seed: 7,
            ..Default::default()
        };
        let a = Done::fit(&g, &cfg);
        let b = Done::fit(&g, &cfg);
        assert_eq!(a.anomaly_scores(), b.anomaly_scores());
        assert_eq!(a.embedding(), b.embedding());
    }
}
