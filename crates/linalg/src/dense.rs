//! Dense, row-major, `f64` matrices.
//!
//! This is the workhorse type of the whole reproduction: GCN activations,
//! weight matrices, embeddings and membership matrices are all [`DenseMatrix`].
//! The layout is plain row-major `Vec<f64>` so rows are contiguous and can be
//! handed out as slices, which the multi-threaded kernels in [`crate::par`]
//! rely on.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense row-major matrix of `f64`.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMatrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(6);
        for r in 0..show_rows {
            let row = self.row(r);
            let shown: Vec<String> = row.iter().take(8).map(|v| format!("{v:.4}")).collect();
            let ellipsis = if self.cols > 8 { ", …" } else { "" };
            writeln!(f, "  [{}{}]", shown.join(", "), ellipsis)?;
        }
        if self.rows > show_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl DenseMatrix {
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with a constant.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from a generator function over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: data length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from nested row slices (convenient in tests).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a single-column matrix from a vector.
    pub fn column(values: &[f64]) -> Self {
        Self {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the matrix has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the backing row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning the backing storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Reads entry `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Writes entry `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Adds `v` to entry `(r, c)`.
    #[inline]
    pub fn add_at(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] += v;
    }

    /// Row `r` as a contiguous slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        let start = r * self.cols;
        &self.data[start..start + self.cols]
    }

    /// Row `r` as a mutable contiguous slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        let start = r * self.cols;
        &mut self.data[start..start + self.cols]
    }

    /// Copies column `c` out into a new vector.
    pub fn col_to_vec(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Iterator over row slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        // Block the transpose for cache friendliness on large matrices.
        const B: usize = 32;
        for rb in (0..self.rows).step_by(B) {
            for cb in (0..self.cols).step_by(B) {
                for r in rb..(rb + B).min(self.rows) {
                    for c in cb..(cb + B).min(self.cols) {
                        out.data[c * self.rows + r] = self.data[r * self.cols + c];
                    }
                }
            }
        }
        out
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> DenseMatrix {
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Elementwise map in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// `self + other`, elementwise.
    pub fn add(&self, other: &DenseMatrix) -> DenseMatrix {
        self.zip(other, |a, b| a + b)
    }

    /// `self - other`, elementwise.
    pub fn sub(&self, other: &DenseMatrix) -> DenseMatrix {
        self.zip(other, |a, b| a - b)
    }

    /// `self ⊙ other` (Hadamard product).
    pub fn hadamard(&self, other: &DenseMatrix) -> DenseMatrix {
        self.zip(other, |a, b| a * b)
    }

    /// Generic elementwise zip of two same-shape matrices.
    pub fn zip(&self, other: &DenseMatrix, f: impl Fn(f64, f64) -> f64) -> DenseMatrix {
        assert_eq!(self.shape(), other.shape(), "zip: shape mismatch");
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// `self += other`, elementwise.
    pub fn add_assign(&mut self, other: &DenseMatrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += alpha * other`, elementwise (axpy).
    pub fn axpy(&mut self, alpha: f64, other: &DenseMatrix) {
        assert_eq!(self.shape(), other.shape(), "axpy: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// `alpha * self` into a new matrix.
    pub fn scale(&self, alpha: f64) -> DenseMatrix {
        self.map(|v| v * alpha)
    }

    /// `self *= alpha` in place.
    pub fn scale_inplace(&mut self, alpha: f64) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all entries.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
    }

    /// Frobenius inner product `<self, other>`.
    pub fn dot(&self, other: &DenseMatrix) -> f64 {
        assert_eq!(self.shape(), other.shape(), "dot: shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a * b)
            .sum()
    }

    /// Trace of a square matrix.
    pub fn trace(&self) -> f64 {
        assert_eq!(self.rows, self.cols, "trace: matrix is not square");
        (0..self.rows).map(|i| self.get(i, i)).sum()
    }

    /// Dense matrix product `self * other` (single-threaded i-k-j kernel).
    ///
    /// For large matrices prefer [`crate::par::matmul`], which splits rows
    /// across threads; this method is kept for small shapes and tests.
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: inner dimension mismatch {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        matmul_into(self, other, &mut out);
        out
    }

    /// `selfᵀ * other` without materializing the transpose.
    pub fn matmul_tn(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn: row mismatch {}x{} vs {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = DenseMatrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = other.row(r);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self * otherᵀ` without materializing the transpose.
    pub fn matmul_nt(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt: column mismatch {}x{} vs {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = DenseMatrix::zeros(self.rows, other.rows);
        for r in 0..self.rows {
            let a_row = self.row(r);
            for c in 0..other.rows {
                let b_row = other.row(c);
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.set(r, c, acc);
            }
        }
        out
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "matvec: dimension mismatch");
        self.rows_iter()
            .map(|row| row.iter().zip(v).map(|(&a, &b)| a * b).sum())
            .collect()
    }

    /// Row-wise softmax (each output row sums to 1). Numerically stabilized.
    pub fn softmax_rows(&self) -> DenseMatrix {
        let mut out = self.clone();
        out.softmax_rows_inplace();
        out
    }

    /// In-place row-wise softmax.
    pub fn softmax_rows_inplace(&mut self) {
        let cols = self.cols;
        for row in self.data.chunks_exact_mut(cols.max(1)) {
            let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            if sum > 0.0 {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
    }

    /// L2-normalizes every row (rows of zero norm are left untouched).
    pub fn l2_normalize_rows(&self) -> DenseMatrix {
        let mut out = self.clone();
        let cols = out.cols;
        for row in out.data.chunks_exact_mut(cols.max(1)) {
            let norm = row.iter().map(|v| v * v).sum::<f64>().sqrt();
            if norm > 0.0 {
                for v in row.iter_mut() {
                    *v /= norm;
                }
            }
        }
        out
    }

    /// Per-row sums.
    pub fn row_sums(&self) -> Vec<f64> {
        self.rows_iter().map(|r| r.iter().sum()).collect()
    }

    /// Per-column sums.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for row in self.rows_iter() {
            for (o, &v) in out.iter_mut().zip(row) {
                *o += v;
            }
        }
        out
    }

    /// Horizontal concatenation `[self | other]`.
    pub fn hstack(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.rows, other.rows, "hstack: row mismatch");
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        DenseMatrix {
            rows: self.rows,
            cols,
            data,
        }
    }

    /// Selects a subset of rows into a new matrix.
    pub fn select_rows(&self, idx: &[usize]) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(idx.len(), self.cols);
        for (i, &r) in idx.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// Index of the maximum entry in each row (ties broken toward the lower
    /// index). Returns an empty vector for zero-column matrices.
    pub fn argmax_rows(&self) -> Vec<usize> {
        if self.cols == 0 {
            return vec![0; self.rows];
        }
        self.rows_iter()
            .map(|row| {
                let mut best = 0;
                for (i, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// True when every entry is finite (no NaN/∞) — useful as a training
    /// sanity check.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

/// Writes `a * b` into `out` (shapes must already agree). The `i-k-j` loop
/// order keeps the inner loop streaming over contiguous rows of `b` and
/// `out`, which auto-vectorizes well.
pub(crate) fn matmul_into(a: &DenseMatrix, b: &DenseMatrix, out: &mut DenseMatrix) {
    debug_assert_eq!(a.cols, b.rows);
    debug_assert_eq!(out.rows, a.rows);
    debug_assert_eq!(out.cols, b.cols);
    for r in 0..a.rows {
        let a_row = a.row(r);
        let out_row = out.row_mut(r);
        for (k, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = b.row(k);
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = DenseMatrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = DenseMatrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_result() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = DenseMatrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, DenseMatrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = DenseMatrix::from_fn(5, 3, |r, c| (r * 3 + c) as f64 * 0.5 - 2.0);
        let b = DenseMatrix::from_fn(5, 4, |r, c| (r + c) as f64 * 0.25);
        let fast = a.matmul_tn(&b);
        let slow = a.transpose().matmul(&b);
        assert!(fast.sub(&slow).max_abs() < 1e-12);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = DenseMatrix::from_fn(4, 6, |r, c| (r as f64 - c as f64) * 0.3);
        let b = DenseMatrix::from_fn(5, 6, |r, c| (r * c) as f64 * 0.1 + 1.0);
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transpose());
        assert!(fast.sub(&slow).max_abs() < 1e-12);
    }

    #[test]
    fn transpose_twice_is_identity() {
        let a = DenseMatrix::from_fn(7, 11, |r, c| (r * 13 + c) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_are_positive() {
        let m =
            DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0], &[100.0, 100.0, 100.0]]);
        let s = m.softmax_rows();
        for row in s.rows_iter() {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
            assert!(row.iter().all(|&v| v > 0.0));
        }
        // Uniform logits give uniform probabilities.
        for &v in s.row(2) {
            assert!((v - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let m = DenseMatrix::from_rows(&[&[1e8, 1e8 + 1.0]]);
        let s = m.softmax_rows();
        assert!(s.all_finite());
        assert!((s.row(0).iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn row_and_col_sums() {
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.row_sums(), vec![3.0, 7.0]);
        assert_eq!(m.col_sums(), vec![4.0, 6.0]);
        assert_eq!(m.sum(), 10.0);
        assert!((m.mean() - 2.5).abs() < 1e-15);
    }

    #[test]
    fn trace_and_dot() {
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.trace(), 5.0);
        assert_eq!(m.dot(&m), 1.0 + 4.0 + 9.0 + 16.0);
    }

    #[test]
    fn argmax_rows_breaks_ties_low() {
        let m = DenseMatrix::from_rows(&[&[0.5, 0.5, 0.1], &[0.0, 1.0, 0.2]]);
        assert_eq!(m.argmax_rows(), vec![0, 1]);
    }

    #[test]
    fn select_rows_copies_expected_rows() {
        let m = DenseMatrix::from_fn(5, 2, |r, c| (r * 2 + c) as f64);
        let s = m.select_rows(&[4, 0]);
        assert_eq!(s, DenseMatrix::from_rows(&[&[8.0, 9.0], &[0.0, 1.0]]));
    }

    #[test]
    fn hstack_concatenates() {
        let a = DenseMatrix::from_rows(&[&[1.0], &[2.0]]);
        let b = DenseMatrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let h = a.hstack(&b);
        assert_eq!(
            h,
            DenseMatrix::from_rows(&[&[1.0, 3.0, 4.0], &[2.0, 5.0, 6.0]])
        );
    }

    #[test]
    fn l2_normalize_rows_unit_norm() {
        let m = DenseMatrix::from_rows(&[&[3.0, 4.0], &[0.0, 0.0]]);
        let n = m.l2_normalize_rows();
        assert!((n.get(0, 0) - 0.6).abs() < 1e-12);
        assert!((n.get(0, 1) - 0.8).abs() < 1e-12);
        // Zero rows are preserved, not NaN.
        assert_eq!(n.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = DenseMatrix::filled(2, 2, 1.0);
        let b = DenseMatrix::filled(2, 2, 2.0);
        a.axpy(0.5, &b);
        assert_eq!(a, DenseMatrix::filled(2, 2, 2.0));
        assert_eq!(a.scale(2.0), DenseMatrix::filled(2, 2, 4.0));
    }

    #[test]
    fn matvec_known() {
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
