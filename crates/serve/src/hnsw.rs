//! A from-scratch HNSW (Hierarchical Navigable Small World) approximate
//! nearest-neighbor index over the embedding matrix.
//!
//! Implements the essentials of Malkov & Yashunin (2016) on top of the
//! `aneci-linalg` vector kernels:
//!
//! * geometric level assignment with multiplier `1 / ln(M)`;
//! * greedy descent through the upper layers, beam search (`ef`) at layer 0;
//! * the *select-neighbors heuristic* (Algorithm 4) with
//!   `keep_pruned_connections`, which keeps the graph navigable on
//!   clustered data;
//! * `M` links per node on upper layers, `2M` on layer 0.
//!
//! Everything is deterministic: the level RNG is seeded, insertion order is
//! node order, and all orderings use `f64::total_cmp` with ascending-id
//! tie-breaks. Building the same matrix with the same config twice yields
//! byte-identical link structure and therefore identical search results.
//!
//! Construction is parallel: nodes are inserted in fixed batches. Each
//! batch's candidate searches run concurrently on the persistent pool
//! against the graph *frozen* at the batch boundary (read-only), then the
//! links are applied serially in node order. Because each node's candidates
//! depend only on the frozen graph — never on scheduling — the built graph
//! is bit-identical across thread counts (and to a single-threaded build),
//! though not to the old one-node-at-a-time build.
//!
//! For cosine similarity the index stores L2-normalized copies of the rows
//! (zero rows stay zero, matching the `vector::cosine` convention that the
//! similarity involving a zero vector is 0), so search reduces to
//! maximum-inner-product over normalized vectors.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use aneci_linalg::pool;
use aneci_linalg::rng::seeded_rng;
use aneci_linalg::vector;
use aneci_linalg::DenseMatrix;
use rand::rngs::StdRng;
use rand::Rng;

/// Nodes inserted per frozen-graph batch during construction. Larger batches
/// expose more parallelism but search a slightly staler graph; 32 keeps
/// recall on clustered data indistinguishable from sequential insertion.
const BUILD_BATCH: usize = 32;

use crate::store::{Metric, Scored};

/// Cached handles for `(serve.hnsw.hops, serve.hnsw.searches)`.
fn search_metrics() -> &'static (aneci_obs::Counter, aneci_obs::Counter) {
    static METRICS: std::sync::OnceLock<(aneci_obs::Counter, aneci_obs::Counter)> =
        std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        (
            aneci_obs::counter("serve.hnsw.hops"),
            aneci_obs::counter("serve.hnsw.searches"),
        )
    })
}

/// Construction parameters for [`HnswIndex`].
#[derive(Clone, Debug)]
pub struct HnswConfig {
    /// Max links per node on layers ≥ 1 (layer 0 allows `2 * m`).
    pub m: usize,
    /// Beam width while inserting.
    pub ef_construction: usize,
    /// Seed for the level-assignment RNG.
    pub seed: u64,
}

impl Default for HnswConfig {
    fn default() -> Self {
        Self {
            m: 16,
            ef_construction: 200,
            seed: 0,
        }
    }
}

/// Max-heap entry ordered by similarity, ascending-id tie-break (lower id
/// wins a tie, so heap order — and thus the index — is fully deterministic).
#[derive(Clone, Copy, Debug, PartialEq)]
struct Cand {
    sim: f64,
    id: u32,
}

impl Eq for Cand {}

impl Ord for Cand {
    fn cmp(&self, other: &Self) -> Ordering {
        self.sim.total_cmp(&other.sim).then(other.id.cmp(&self.id))
    }
}

impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The built index. Cloning is a deep copy (vectors + link lists) — the
/// snapshot-swap path clones the live index, mutates the clone off to the
/// side, and publishes it atomically.
#[derive(Clone)]
pub struct HnswIndex {
    /// Row-per-node vectors; L2-normalized copies when `metric == Cosine`.
    vectors: DenseMatrix,
    metric: Metric,
    /// `links[node][layer]` — neighbor ids of `node` at `layer`
    /// (present for `layer <= level(node)`).
    links: Vec<Vec<Vec<u32>>>,
    entry: u32,
    max_layer: usize,
    m: usize,
    /// Beam width for incremental inserts/updates (the build-time value).
    ef_construction: usize,
    /// Seed the level stream was started from; [`Self::compact`] redraws
    /// the whole stream from here so rebuilt levels are deterministic.
    seed: u64,
    /// Level RNG positioned after the last drawn level, so incremental
    /// inserts continue the same stream a bigger build would have consumed.
    level_rng: StdRng,
    /// Tombstones: `deleted[id]` nodes are filtered from every search
    /// result but stay in the graph for navigation until [`Self::compact`].
    deleted: Vec<bool>,
    /// Deleted nodes still wired into the graph. Searches over-provision
    /// their beam by this much so recall over live nodes is preserved;
    /// `compact` resets it to zero.
    ghosts: usize,
}

impl HnswIndex {
    /// Builds the index over `embedding` (one node per row), inserting nodes
    /// in row order. Candidate searches run batched on the pool (see module
    /// docs); the result is bit-identical across thread counts.
    pub fn build(embedding: &DenseMatrix, metric: Metric, config: &HnswConfig) -> Self {
        assert!(config.m >= 2, "HNSW needs at least 2 links per node");
        assert!(config.ef_construction >= 1);
        aneci_linalg::simd::record_dispatch();
        let mut vectors = embedding.clone();
        if metric == Metric::Cosine {
            for r in 0..vectors.rows() {
                vector::normalize_inplace(vectors.row_mut(r));
            }
        }
        let n = vectors.rows();
        let mut index = Self {
            vectors,
            metric,
            links: Vec::with_capacity(n),
            entry: 0,
            max_layer: 0,
            m: config.m,
            ef_construction: config.ef_construction,
            seed: config.seed,
            level_rng: seeded_rng(config.seed),
            deleted: vec![false; n],
            ghosts: 0,
        };
        if n == 0 {
            return index;
        }

        // Levels are drawn up front in node order — the same RNG stream the
        // old sequential build consumed, so a given seed assigns the same
        // levels either way, and incremental inserts continue it.
        let levels: Vec<usize> = (0..n).map(|_| index.draw_level()).collect();

        // The first node has no graph to search: it just becomes the entry.
        index.links.push(vec![Vec::new(); levels[0] + 1]);
        index.entry = 0;
        index.max_layer = levels[0];

        let mut next = 1;
        while next < n {
            let batch_end = (next + BUILD_BATCH).min(n);
            // Phase 1: candidate searches against the frozen graph. Grain 1
            // → one node per chunk; results come back in node order, and
            // each depends only on the frozen graph, never on scheduling.
            let found: Vec<Vec<Vec<Cand>>> =
                pool::parallel_map_chunks(batch_end - next, 1, |lo, _hi| {
                    let node = (next + lo) as u32;
                    index.search_candidates(node, levels[node as usize], config.ef_construction)
                });
            // Phase 2: apply links serially in node order.
            for (i, per_layer) in found.iter().enumerate() {
                let node = (next + i) as u32;
                index.apply_insert(node, levels[node as usize], per_layer);
            }
            next = batch_end;
        }
        index
    }

    /// Number of indexed node slots, tombstoned ones included.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Number of live (non-tombstoned) nodes.
    pub fn live(&self) -> usize {
        self.links.len() - self.deleted.iter().filter(|&&d| d).count()
    }

    /// Whether `id` is tombstoned.
    pub fn is_deleted(&self, id: usize) -> bool {
        self.deleted.get(id).copied().unwrap_or(false)
    }

    /// Tombstoned nodes still wired into the navigation graph (reset to
    /// zero by [`Self::compact`]). Searches widen their beam by this much,
    /// so a large ghost count is the signal to compact.
    pub fn ghosts(&self) -> usize {
        self.ghosts
    }

    /// The metric the index was built for.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// One geometric level draw from the stored stream.
    fn draw_level(&mut self) -> usize {
        let level_mult = 1.0 / (self.m as f64).ln();
        // u ∈ (0, 1]: never take ln(0).
        let u: f64 = 1.0 - self.level_rng.gen::<f64>();
        ((-u.ln() * level_mult).floor() as usize).min(16)
    }

    /// Similarity between a (pre-normalized, for cosine) query and a stored
    /// node. Both metrics reduce to a dot product here.
    #[inline]
    fn sim_to(&self, q: &[f64], node: u32) -> f64 {
        vector::dot(q, self.vectors.row(node as usize))
    }

    #[inline]
    fn sim_between(&self, a: u32, b: u32) -> f64 {
        vector::dot(self.vectors.row(a as usize), self.vectors.row(b as usize))
    }

    fn max_links(&self, layer: usize) -> usize {
        if layer == 0 {
            self.m * 2
        } else {
            self.m
        }
    }

    /// Read-only half of an insert: greedy descent plus per-layer beam
    /// searches for `node` against the current (frozen) graph. Entry `i` of
    /// the result holds the candidates for layer `level.min(max_layer) - i`.
    fn search_candidates(&self, node: u32, level: usize, ef_construction: usize) -> Vec<Vec<Cand>> {
        let q = self.vectors.row(node as usize);
        let mut ep = vec![Cand {
            sim: self.sim_to(q, self.entry),
            id: self.entry,
        }];

        // Construction hops are not query telemetry; discard the count.
        let mut hops = 0u64;

        // Greedy descent through layers above the node's top level.
        let mut layer = self.max_layer;
        while layer > level {
            ep = self.search_layer(q, &ep, 1, layer, &mut hops);
            layer -= 1;
        }

        // Beam search from min(level, max_layer) down to 0, chaining the
        // found set as the next layer's entry points.
        let top = level.min(self.max_layer);
        let mut per_layer = Vec::with_capacity(top + 1);
        let mut l = top;
        loop {
            let found = self.search_layer(q, &ep, ef_construction, l, &mut hops);
            ep = found.clone();
            per_layer.push(found);
            if l == 0 {
                break;
            }
            l -= 1;
        }
        per_layer
    }

    /// Mutating half of an insert: wires `node` into the graph from the
    /// candidate lists produced by [`Self::search_candidates`].
    fn apply_insert(&mut self, node: u32, level: usize, per_layer: &[Vec<Cand>]) {
        self.links.push(Vec::new());
        self.place(node, level, per_layer);
    }

    /// Wires `node` (whose `links` slot already exists) into the graph at
    /// `level`, replacing any links the slot previously held.
    fn place(&mut self, node: u32, level: usize, per_layer: &[Vec<Cand>]) {
        self.links[node as usize] = vec![Vec::new(); level + 1];
        let top = per_layer.len() - 1;
        for (i, found) in per_layer.iter().enumerate() {
            let l = top - i;
            // A node never links to itself (candidates can contain `node`
            // when re-wiring an existing id in `update`), and a link at
            // layer `l` needs both endpoints to exist there (a borrowed
            // search entry in `update` may live only on lower layers).
            let cands: Vec<Cand> = found
                .iter()
                .filter(|c| c.id != node && self.links[c.id as usize].len() > l)
                .copied()
                .collect();
            let chosen = self.select_neighbors(&cands, self.m);
            for &nb in &chosen {
                self.links[node as usize][l].push(nb);
                self.links[nb as usize][l].push(node);
                let cap = self.max_links(l);
                if self.links[nb as usize][l].len() > cap {
                    self.shrink_links(nb, l, cap);
                }
            }
        }

        if level > self.max_layer {
            self.entry = node;
            self.max_layer = level;
        }
    }

    /// Inserts one new vector, returning its assigned id (`self.len() - 1`
    /// before the call). The level comes from the same seeded stream the
    /// build consumed, so "build n, insert m" draws the levels a build of
    /// `n + m` rows would. Cost: one `ef_construction` beam search plus an
    /// O(n·d) vector-matrix copy.
    pub fn insert(&mut self, vector: &[f64]) -> usize {
        assert_eq!(
            vector.len(),
            self.vectors.cols(),
            "insert dimension mismatch"
        );
        let id = self.links.len() as u32;
        let (rows, cols) = (self.vectors.rows(), self.vectors.cols());
        let mut data = std::mem::replace(&mut self.vectors, DenseMatrix::zeros(0, 0)).into_vec();
        data.extend_from_slice(vector);
        self.vectors = DenseMatrix::from_vec(rows + 1, cols, data);
        if self.metric == Metric::Cosine {
            vector::normalize_inplace(self.vectors.row_mut(rows));
        }
        self.deleted.push(false);
        let level = self.draw_level();
        if id == 0 {
            self.links.push(vec![Vec::new(); level + 1]);
            self.entry = 0;
            self.max_layer = level;
            return 0;
        }
        let per_layer = self.search_candidates(id, level, self.ef_construction);
        self.apply_insert(id, level, &per_layer);
        id as usize
    }

    /// Tombstones `id`: it disappears from every search result immediately
    /// but stays wired into the graph for navigation until [`Self::compact`].
    /// Returns `false` when `id` is out of range or already deleted.
    pub fn remove(&mut self, id: usize) -> bool {
        if id >= self.links.len() || self.deleted[id] {
            return false;
        }
        self.deleted[id] = true;
        self.ghosts += 1;
        true
    }

    /// Replaces the vector of an existing id and re-wires it at its current
    /// level: old links are detached on both sides, then the node is
    /// re-inserted from a fresh candidate search. A tombstoned id is
    /// revived.
    pub fn update(&mut self, id: usize, vector: &[f64]) {
        assert!(id < self.links.len(), "update of unknown id {id}");
        assert_eq!(
            vector.len(),
            self.vectors.cols(),
            "update dimension mismatch"
        );
        if self.deleted[id] {
            self.deleted[id] = false;
            self.ghosts -= 1;
        }
        let node = id as u32;
        // Detach both directions.
        for layer in 0..self.links[id].len() {
            for nb in std::mem::take(&mut self.links[id][layer]) {
                self.links[nb as usize][layer].retain(|&x| x != node);
            }
        }
        self.vectors.row_mut(id).copy_from_slice(vector);
        if self.metric == Metric::Cosine {
            vector::normalize_inplace(self.vectors.row_mut(id));
        }
        if self.links.len() == 1 {
            return;
        }
        let level = self.links[id].len() - 1;
        // The detached node can't be its own search entry; borrow another
        // one for the candidate search if it is.
        let saved_entry = self.entry;
        if self.entry == node {
            if let Some(alt) = (0..self.links.len()).find(|&i| i != id && !self.deleted[i]) {
                self.entry = alt as u32;
            } else {
                return; // every other node is tombstoned: leave it detached
            }
        }
        let per_layer = self.search_candidates(node, level, self.ef_construction);
        self.place(node, level, &per_layer);
        self.entry = saved_entry;
    }

    /// Rebuilds the link structure over live nodes only, dropping every
    /// tombstone from the graph (ids stay stable; tombstoned slots keep
    /// their `deleted` mark and simply become unreachable). Levels are
    /// redrawn deterministically from the stored seed, so two indexes with
    /// the same (seed, live set) compact to identical graphs.
    pub fn compact(&mut self) {
        if self.ghosts == 0 {
            return;
        }
        let n = self.links.len();
        let mut rng = seeded_rng(self.seed);
        let level_mult = 1.0 / (self.m as f64).ln();
        let levels: Vec<usize> = (0..n)
            .map(|_| {
                let u: f64 = 1.0 - rng.gen::<f64>();
                ((-u.ln() * level_mult).floor() as usize).min(16)
            })
            .collect();
        self.level_rng = rng;
        self.links = vec![Vec::new(); n];
        self.max_layer = 0;
        self.ghosts = 0;
        let live: Vec<usize> = (0..n).filter(|&i| !self.deleted[i]).collect();
        let Some(&first) = live.first() else {
            self.entry = 0;
            return;
        };
        self.links[first] = vec![Vec::new(); levels[first] + 1];
        self.entry = first as u32;
        self.max_layer = levels[first];
        for &id in &live[1..] {
            let per_layer = self.search_candidates(id as u32, levels[id], self.ef_construction);
            self.place(id as u32, levels[id], &per_layer);
        }
    }

    /// Re-selects `node`'s links at `layer` down to `cap` with the
    /// diversity heuristic.
    fn shrink_links(&mut self, node: u32, layer: usize, cap: usize) {
        let mut cands: Vec<Cand> = self.links[node as usize][layer]
            .iter()
            .map(|&nb| Cand {
                sim: self.sim_between(node, nb),
                id: nb,
            })
            .collect();
        cands.sort_unstable_by(|a, b| b.cmp(a));
        let kept = self.select_neighbors(&cands, cap);
        self.links[node as usize][layer] = kept;
    }

    /// Algorithm 4: pick up to `m` diverse neighbors from `cands` (sorted by
    /// descending similarity to the query). A candidate is accepted only if
    /// it is closer to the query than to every already-accepted neighbor;
    /// leftover slots are refilled with the best rejected candidates
    /// (`keep_pruned_connections`).
    fn select_neighbors(&self, cands: &[Cand], m: usize) -> Vec<u32> {
        let mut selected: Vec<u32> = Vec::with_capacity(m);
        let mut pruned: Vec<u32> = Vec::new();
        for c in cands {
            if selected.len() >= m {
                break;
            }
            let diverse = selected.iter().all(|&s| self.sim_between(c.id, s) < c.sim);
            if diverse {
                selected.push(c.id);
            } else {
                pruned.push(c.id);
            }
        }
        for id in pruned {
            if selected.len() >= m {
                break;
            }
            selected.push(id);
        }
        selected
    }

    /// Beam search at one layer: returns up to `ef` best nodes, sorted by
    /// descending similarity (ascending-id tie-breaks). Each expanded
    /// frontier node counts as one hop in `hops`.
    fn search_layer(
        &self,
        q: &[f64],
        entries: &[Cand],
        ef: usize,
        layer: usize,
        hops: &mut u64,
    ) -> Vec<Cand> {
        let mut visited = vec![false; self.links.len()];
        // Max-heap of frontier nodes; min-heap (via Reverse) of best-so-far.
        let mut frontier: BinaryHeap<Cand> = BinaryHeap::new();
        let mut best: BinaryHeap<std::cmp::Reverse<Cand>> = BinaryHeap::new();
        for &e in entries {
            if !visited[e.id as usize] {
                visited[e.id as usize] = true;
                frontier.push(e);
                best.push(std::cmp::Reverse(e));
                if best.len() > ef {
                    best.pop();
                }
            }
        }

        while let Some(c) = frontier.pop() {
            let worst = best.peek().map(|r| r.0.sim).unwrap_or(f64::NEG_INFINITY);
            if best.len() >= ef && c.sim < worst {
                break;
            }
            *hops += 1;
            let neighbors = &self.links[c.id as usize];
            if layer >= neighbors.len() {
                continue;
            }
            for &nb in &neighbors[layer] {
                if visited[nb as usize] {
                    continue;
                }
                visited[nb as usize] = true;
                let sim = self.sim_to(q, nb);
                let worst = best.peek().map(|r| r.0.sim).unwrap_or(f64::NEG_INFINITY);
                if best.len() < ef || sim > worst {
                    let cand = Cand { sim, id: nb };
                    frontier.push(cand);
                    best.push(std::cmp::Reverse(cand));
                    if best.len() > ef {
                        best.pop();
                    }
                }
            }
        }

        let mut out: Vec<Cand> = best.into_iter().map(|r| r.0).collect();
        out.sort_unstable_by(|a, b| b.cmp(a));
        out
    }

    /// Approximate top-`k` search. `ef` is the layer-0 beam width (clamped
    /// up to `k`); larger `ef` trades latency for recall. `exclude` drops
    /// one id from the result — used for node self-queries.
    pub fn search(
        &self,
        query: &[f64],
        k: usize,
        ef: usize,
        exclude: Option<usize>,
    ) -> Vec<Scored> {
        if self.is_empty() || k == 0 {
            return Vec::new();
        }
        assert_eq!(query.len(), self.vectors.cols(), "query dimension mismatch");
        let mut q = query.to_vec();
        if self.metric == Metric::Cosine {
            vector::normalize_inplace(&mut q);
        }

        let mut hops = 0u64;
        let mut ep = vec![Cand {
            sim: self.sim_to(&q, self.entry),
            id: self.entry,
        }];
        for layer in (1..=self.max_layer).rev() {
            ep = self.search_layer(&q, &ep, 1, layer, &mut hops);
        }
        // One extra beam slot covers a possible excluded id; `ghosts` more
        // cover tombstones still wired into the graph, so filtering them
        // out below cannot cost live recall.
        let beam = ef.max(k) + usize::from(exclude.is_some()) + self.ghosts;
        let found = self.search_layer(&q, &ep, beam, 0, &mut hops);
        // Search is deterministic, and hop totals add commutatively, so
        // these counters stay in the deterministic snapshot view.
        search_metrics().0.add(hops);
        search_metrics().1.inc();
        found
            .into_iter()
            .filter(|c| Some(c.id as usize) != exclude && !self.deleted[c.id as usize])
            .take(k)
            .map(|c| (c.id as usize, c.sim))
            .collect()
    }
}

/// Fraction of `exact` ids recovered by `approx` — the recall@k both the
/// tests and `bench_report --serve` report.
pub fn recall_at_k(exact: &[Scored], approx: &[Scored]) -> f64 {
    if exact.is_empty() {
        return 1.0;
    }
    let hits = exact
        .iter()
        .filter(|(id, _)| approx.iter().any(|(a, _)| a == id))
        .count();
    hits as f64 / exact.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::EmbeddingStore;
    use aneci_linalg::rng::{seeded_rng, standard_normal};

    /// A clustered point cloud: `per_cluster` points around each of
    /// `centers` well-separated centroids — the regime ANN indexes exist for.
    fn clustered(centers: usize, per_cluster: usize, d: usize, seed: u64) -> DenseMatrix {
        let mut rng = seeded_rng(seed);
        let centroids: Vec<Vec<f64>> = (0..centers)
            .map(|_| (0..d).map(|_| 4.0 * standard_normal(&mut rng)).collect())
            .collect();
        DenseMatrix::from_fn(centers * per_cluster, d, |r, c| {
            centroids[r / per_cluster][c] + 0.5 * standard_normal(&mut rng)
        })
    }

    #[test]
    fn high_recall_on_clustered_data() {
        let data = clustered(8, 50, 16, 1);
        let store = EmbeddingStore::new(data.clone(), None);
        let index = HnswIndex::build(&data, Metric::Cosine, &HnswConfig::default());

        let mut total = 0.0;
        let queries = 40;
        for qi in 0..queries {
            let node = qi * 9 % data.rows();
            let exact = store.top_k_node(node, 10, Metric::Cosine);
            let approx = index.search(data.row(node), 10, 64, Some(node));
            total += recall_at_k(&exact, &approx);
        }
        let recall = total / queries as f64;
        assert!(recall >= 0.95, "recall@10 = {recall}");
    }

    #[test]
    fn deterministic_build_and_search() {
        let data = clustered(4, 30, 8, 2);
        let cfg = HnswConfig::default();
        let a = HnswIndex::build(&data, Metric::Cosine, &cfg);
        let b = HnswIndex::build(&data, Metric::Cosine, &cfg);
        assert_eq!(a.links, b.links, "same seed must give identical graphs");
        assert_eq!(a.entry, b.entry);
        for node in [0usize, 17, 63, 119] {
            assert_eq!(
                a.search(data.row(node), 5, 32, Some(node)),
                b.search(data.row(node), 5, 32, Some(node))
            );
        }
    }

    #[test]
    fn build_is_bit_identical_across_thread_counts() {
        pool::force_pool();
        let data = clustered(4, 40, 8, 7);
        let cfg = HnswConfig::default();
        pool::set_num_threads(1);
        let serial = HnswIndex::build(&data, Metric::Cosine, &cfg);
        pool::set_num_threads(4);
        let pooled = HnswIndex::build(&data, Metric::Cosine, &cfg);
        assert_eq!(serial.links, pooled.links);
        assert_eq!(serial.entry, pooled.entry);
        assert_eq!(serial.max_layer, pooled.max_layer);
    }

    #[test]
    fn dot_metric_and_scores_match_store_scoring() {
        let data = clustered(3, 20, 6, 3);
        let store = EmbeddingStore::new(data.clone(), None);
        let index = HnswIndex::build(&data, Metric::Dot, &HnswConfig::default());
        let hits = index.search(data.row(0), 5, 60, None);
        assert!(!hits.is_empty());
        // Every reported dot-product score is exact (ANN only approximates
        // *which* neighbors, never their scores).
        for &(id, score) in &hits {
            let exact = aneci_linalg::vector::dot(data.row(0), data.row(id));
            assert_eq!(score, exact);
        }
        // With a generous beam on a tiny set, top-1 matches the exact path.
        let exact_top = store.top_k(data.row(0), 1, Metric::Dot, None);
        assert_eq!(hits[0].0, exact_top[0].0);
    }

    #[test]
    fn tiny_and_degenerate_indexes() {
        let one = DenseMatrix::from_vec(1, 3, vec![1.0, 0.0, 0.0]);
        let idx = HnswIndex::build(&one, Metric::Cosine, &HnswConfig::default());
        assert_eq!(idx.len(), 1);
        let hits = idx.search(&[1.0, 0.0, 0.0], 5, 10, None);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 0);
        assert!(idx.search(&[1.0, 0.0, 0.0], 5, 10, Some(0)).is_empty());

        let empty = DenseMatrix::zeros(0, 3);
        let idx = HnswIndex::build(&empty, Metric::Cosine, &HnswConfig::default());
        assert!(idx.is_empty());
        assert!(idx.search(&[0.0; 3], 5, 10, None).is_empty());
    }

    #[test]
    fn incremental_insert_matches_batch_levels_and_keeps_recall() {
        let data = clustered(6, 40, 12, 4);
        let cfg = HnswConfig::default();
        // Build over the first 200 rows, insert the remaining 40.
        let head = DenseMatrix::from_fn(200, 12, |r, c| data.get(r, c));
        let mut index = HnswIndex::build(&head, Metric::Cosine, &cfg);
        for r in 200..data.rows() {
            let id = index.insert(data.row(r));
            assert_eq!(id, r);
        }
        assert_eq!(index.len(), data.rows());

        let store = EmbeddingStore::new(data.clone(), None);
        let mut total = 0.0;
        let queries = 40;
        for qi in 0..queries {
            let node = qi * 7 % data.rows();
            let exact = store.top_k_node(node, 10, Metric::Cosine);
            let approx = index.search(data.row(node), 10, 64, Some(node));
            total += recall_at_k(&exact, &approx);
        }
        let recall = total / queries as f64;
        assert!(recall >= 0.95, "post-insert recall@10 = {recall}");
    }

    #[test]
    fn remove_tombstones_and_compact_preserve_recall() {
        let data = clustered(6, 40, 12, 5);
        let cfg = HnswConfig::default();
        let mut index = HnswIndex::build(&data, Metric::Cosine, &cfg);
        // Delete 20% of the nodes.
        let removed: Vec<usize> = (0..data.rows()).filter(|i| i % 5 == 0).collect();
        for &id in &removed {
            assert!(index.remove(id));
            assert!(!index.remove(id), "double-remove must report false");
        }
        assert_eq!(index.ghosts(), removed.len());
        assert_eq!(index.live(), data.rows() - removed.len());

        // Exact reference over the live set only.
        let check = |index: &HnswIndex| {
            let store = EmbeddingStore::new(data.clone(), None);
            let mut total = 0.0;
            let queries = 30;
            for qi in 0..queries {
                let node = qi * 11 % data.rows();
                let exact: Vec<Scored> = store
                    .top_k_node(node, 10 + removed.len(), Metric::Cosine)
                    .into_iter()
                    .filter(|&(id, _)| !removed.contains(&id))
                    .take(10)
                    .collect();
                let approx = index.search(data.row(node), 10, 64, Some(node));
                assert!(
                    approx.iter().all(|&(id, _)| !removed.contains(&id)),
                    "tombstoned id in results"
                );
                total += recall_at_k(&exact, &approx);
            }
            total / queries as f64
        };
        let recall = check(&index);
        assert!(recall >= 0.95, "post-delete recall@10 = {recall}");

        index.compact();
        assert_eq!(index.ghosts(), 0);
        assert_eq!(index.live(), data.rows() - removed.len());
        let recall = check(&index);
        assert!(recall >= 0.95, "post-compact recall@10 = {recall}");

        // Compaction is deterministic in (seed, live set).
        let mut other = HnswIndex::build(&data, Metric::Cosine, &cfg);
        for &id in &removed {
            other.remove(id);
        }
        other.compact();
        assert_eq!(index.links, other.links);
        assert_eq!(index.entry, other.entry);
    }

    #[test]
    fn update_rewires_and_revives() {
        let data = clustered(4, 30, 8, 6);
        let mut index = HnswIndex::build(&data, Metric::Cosine, &HnswConfig::default());
        // Move node 5 exactly onto node 77's vector: it must become 77's
        // nearest neighbor.
        index.update(5, data.row(77));
        let hits = index.search(data.row(77), 3, 64, Some(77));
        assert_eq!(hits[0].0, 5, "updated node should be the top hit");
        assert!((hits[0].1 - 1.0).abs() < 1e-12);

        // A removed node revived by update serves again.
        index.remove(9);
        assert!(index
            .search(data.row(9), 120, 256, None)
            .iter()
            .all(|&(id, _)| id != 9));
        index.update(9, data.row(9));
        assert_eq!(index.ghosts(), 0);
        let hits = index.search(data.row(9), 1, 64, None);
        assert_eq!(hits[0].0, 9);
    }

    #[test]
    fn single_node_index_survives_incremental_ops() {
        let one = DenseMatrix::from_vec(1, 3, vec![1.0, 0.0, 0.0]);
        let mut idx = HnswIndex::build(&one, Metric::Cosine, &HnswConfig::default());
        idx.update(0, &[0.0, 1.0, 0.0]);
        let id = idx.insert(&[0.0, 0.9, 0.1]);
        assert_eq!(id, 1);
        let hits = idx.search(&[0.0, 1.0, 0.0], 2, 10, None);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0, 0);
        idx.remove(0);
        let hits = idx.search(&[0.0, 1.0, 0.0], 2, 10, None);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 1);
    }

    #[test]
    fn recall_helper_counts_overlap() {
        let exact = vec![(1usize, 0.9), (2, 0.8), (3, 0.7)];
        let approx = vec![(1usize, 0.9), (3, 0.7), (9, 0.1)];
        assert!((recall_at_k(&exact, &approx) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(recall_at_k(&[], &approx), 1.0);
    }
}
