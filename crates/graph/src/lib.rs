//! # aneci-graph
//!
//! Graph substrate for the AnECI reproduction:
//!
//! * [`attributed::AttributedGraph`] — the attributed network type
//!   (Definition 1), with validated symmetric/binary/hollow adjacency;
//! * [`proximity`] — the high-order proximity `Ã = f(Σ w_l A^l)` of
//!   Definition 3 plus the derived degrees `k̃` and mass `M̃`;
//! * [`generators`] — degree-corrected SBM generators parameterized to the
//!   paper's four benchmarks (Table II), our documented substitute for the
//!   unavailable dataset downloads;
//! * [`karate`] — the embedded Zachary karate club (real data, tests and
//!   examples);
//! * [`lfr`] — LFR-style power-law community benchmark generator;
//! * [`streaming`] — chunked planted-partition edge stream + direct CSR
//!   assembly for million-node synthetics that never materialize their
//!   edge list;
//! * [`stats`] — components, clustering, degree-tail diagnostics;
//! * [`io`] — JSON + edge-list persistence.

pub mod attributed;
pub mod delta;
pub mod generators;
pub mod io;
pub mod karate;
pub mod lfr;
pub mod proximity;
pub mod stats;
pub mod streaming;

pub use attributed::{AttributedGraph, Split};
pub use delta::{apply_to_csr, apply_to_features, DeltaReport, GraphDelta, GraphError};
pub use generators::{generate_sbm, sample_split, Benchmark, FeatureKind, SbmConfig};
pub use karate::karate_club;
pub use lfr::{generate_lfr, LfrConfig};
pub use proximity::{HighOrder, ProximityConfig};
pub use stats::{connected_components, degree_histogram, graph_stats, transitivity, GraphStats};
pub use streaming::{edge_chunks, generate_streamed, StreamedGraph, StreamingConfig};

#[cfg(test)]
mod proptests {
    use crate::attributed::AttributedGraph;
    use crate::proximity::{HighOrder, ProximityConfig};
    use aneci_linalg::DenseMatrix;
    use proptest::prelude::*;

    /// Strategy: a random undirected edge list over `n` nodes.
    fn edge_lists(n: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
        prop::collection::vec((0..n, 0..n), 0..40)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Every constructed graph satisfies the structural invariants.
        #[test]
        fn constructed_graphs_always_valid(edges in edge_lists(12)) {
            let g = AttributedGraph::from_edges(12, &edges, DenseMatrix::identity(12), None);
            prop_assert!(g.validate().is_ok());
        }

        /// Degree sum equals twice the edge count (handshake lemma).
        #[test]
        fn handshake_lemma(edges in edge_lists(10)) {
            let g = AttributedGraph::from_edges_plain(10, &edges, None);
            let deg_sum: usize = g.degrees().iter().sum();
            prop_assert_eq!(deg_sum, 2 * g.num_edges());
        }

        /// `with_edits` then reverse edits restores the original edge set.
        #[test]
        fn edits_are_reversible(
            edges in edge_lists(10),
            add in edge_lists(10),
        ) {
            let g = AttributedGraph::from_edges_plain(10, &edges, None);
            let additions: Vec<(usize, usize)> = add
                .iter()
                .copied()
                .filter(|&(u, v)| u != v && !g.has_edge(u, v))
                .collect();
            let g2 = g.with_edits(&additions, &[]);
            let g3 = g2.with_edits(&[], &additions);
            prop_assert_eq!(g3.edge_list(), g.edge_list());
        }

        /// High-order proximity is symmetric in its support whenever the
        /// base adjacency is (before row normalization).
        #[test]
        fn unnormalized_high_order_is_symmetric(edges in edge_lists(9)) {
            let g = AttributedGraph::from_edges_plain(9, &edges, None);
            let cfg = ProximityConfig {
                weights: vec![0.5, 0.5],
                row_normalize: false,
                top_k: None,
                self_loops: true,
            };
            let ho = HighOrder::build(g.adjacency(), &cfg);
            prop_assert!(ho.a_tilde.is_symmetric());
        }

        /// Row-normalized proximity has k̃_i ∈ {0, 1} and M̃ = #nonempty rows.
        #[test]
        fn normalized_proximity_mass(edges in edge_lists(9)) {
            let g = AttributedGraph::from_edges_plain(9, &edges, None);
            let ho = HighOrder::build(g.adjacency(), &ProximityConfig::uniform(2));
            for &k in &ho.k_tilde {
                prop_assert!(k.abs() < 1e-9 || (k - 1.0).abs() < 1e-9);
            }
            let nonempty = ho.k_tilde.iter().filter(|&&k| k > 0.5).count();
            prop_assert!((ho.m_tilde - nonempty as f64).abs() < 1e-9);
        }
    }
}
