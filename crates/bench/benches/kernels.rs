//! Kernel-level microbenchmarks, including the two design-choice ablations
//! DESIGN.md calls out:
//!
//! * **high-order proximity, exact vs top-k pruned** — pruning bounds the
//!   densification of `A^l` on hub-heavy graphs;
//! * **reconstruction loss, exact dense vs negative-sampled** — the
//!   `O(N²)` vs `O(nnz)` trade the model switches on automatically.

use aneci_autograd::Tape;
use aneci_graph::{generate_sbm, HighOrder, ProximityConfig, SbmConfig};
use aneci_linalg::rng::{gaussian_matrix, seeded_rng};
use aneci_linalg::{par, pool, DenseMatrix};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn bench_graph(n: usize) -> aneci_graph::AttributedGraph {
    let config = SbmConfig {
        num_nodes: n,
        num_classes: 5,
        target_edges: n * 2,
        homophily: 0.8,
        degree_exponent: Some(2.3),
        feature_dim: 64,
        features: aneci_graph::FeatureKind::BagOfWords {
            p_signal: 0.2,
            p_noise: 0.01,
        },
    };
    generate_sbm(&config, 42)
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let mut rng = seeded_rng(1);
    for &n in &[128usize, 512] {
        let a = gaussian_matrix(n, n, 1.0, &mut rng);
        let b = gaussian_matrix(n, n, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("serial", n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b)))
        });
        group.bench_with_input(BenchmarkId::new("parallel", n), &n, |bench, _| {
            bench.iter(|| black_box(par::matmul(&a, &b)))
        });
    }
    group.finish();
}

fn bench_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmm_dense");
    let mut rng = seeded_rng(2);
    for &n in &[1000usize, 4000] {
        let g = bench_graph(n);
        let s = g.norm_adjacency();
        let x = gaussian_matrix(n, 64, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(par::spmm_dense(&s, &x)))
        });
    }
    group.finish();
}

fn bench_sparse_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmm_sparse");
    for &n in &[1000usize, 4000] {
        let g = bench_graph(n);
        let a = g.adjacency().add_identity();
        group.bench_with_input(BenchmarkId::new("serial", n), &n, |bench, _| {
            pool::set_par_threshold(usize::MAX);
            bench.iter(|| black_box(a.spmm(&a)));
            pool::set_par_threshold(1 << 17);
        });
        group.bench_with_input(BenchmarkId::new("pooled", n), &n, |bench, _| {
            pool::set_par_threshold(1);
            bench.iter(|| black_box(a.spmm(&a)));
            pool::set_par_threshold(1 << 17);
        });
    }
    group.finish();
}

fn bench_high_order_proximity(c: &mut Criterion) {
    let mut group = c.benchmark_group("high_order_proximity");
    for &n in &[1000usize, 3000] {
        let g = bench_graph(n);
        for order in [2usize, 3] {
            group.bench_with_input(
                BenchmarkId::new(format!("exact_l{order}"), n),
                &n,
                |bench, _| {
                    let cfg = ProximityConfig::uniform(order);
                    bench.iter(|| black_box(HighOrder::build(g.adjacency(), &cfg)))
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("topk64_l{order}"), n),
                &n,
                |bench, _| {
                    let cfg = ProximityConfig::uniform(order).with_top_k(64);
                    bench.iter(|| black_box(HighOrder::build(g.adjacency(), &cfg)))
                },
            );
        }
    }
    group.finish();
}

fn bench_recon_loss(c: &mut Criterion) {
    let mut group = c.benchmark_group("recon_loss");
    group.sample_size(10);
    let mut rng = seeded_rng(3);
    for &n in &[400usize, 1000] {
        let g = bench_graph(n);
        let ho = HighOrder::build(g.adjacency(), &ProximityConfig::uniform(2));
        let p0 = gaussian_matrix(n, 8, 0.5, &mut rng).softmax_rows();
        let dense_target: Arc<DenseMatrix> = Arc::new(ho.a_tilde.to_dense());
        let pairs: Arc<[(u32, u32, f64)]> = ho
            .a_tilde
            .iter()
            .map(|(i, j, v)| (i as u32, j as u32, v))
            .collect::<Vec<_>>()
            .into();
        group.bench_with_input(BenchmarkId::new("exact_dense", n), &n, |bench, _| {
            bench.iter(|| {
                let mut t = Tape::new();
                let p = t.leaf(p0.clone());
                let loss = t.dense_recon_bce(p, &dense_target, 1.0);
                t.backward(loss);
                black_box(t.grad(p))
            })
        });
        group.bench_with_input(BenchmarkId::new("sampled_pairs", n), &n, |bench, _| {
            bench.iter(|| {
                let mut t = Tape::new();
                let p = t.leaf(p0.clone());
                let loss = t.pair_bce(p, &pairs);
                t.backward(loss);
                black_box(t.grad(p))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_spmm,
    bench_sparse_spmm,
    bench_high_order_proximity,
    bench_recon_loss
);
criterion_main!(benches);
