//! Parity and robustness guarantees of the shared training engine.
//!
//! The `Trainer` refactor moved every per-model epoch loop into one driver
//! (`aneci_autograd::train`). These tests pin down the three properties the
//! migration promised:
//!
//! 1. **Bit-exact trajectories** — [`AneciModel::train`] (Trainer-driven)
//!    reproduces [`AneciModel::train_reference`] (the pre-refactor
//!    hand-rolled loop, kept verbatim for exactly this comparison)
//!    bit-for-bit under every stop strategy.
//! 2. **Thread invariance** — trajectories do not depend on how many pool
//!    workers participate (`ANECI_NUM_THREADS` / `set_num_threads`).
//! 3. **Typed divergence** — models that previously trained through NaNs
//!    (Dominant, DONE) now surface a clean [`TrainError::Diverged`].

use std::sync::Mutex;

use aneci::autograd::train::TrainError;
use aneci::baselines::{Dominant, DominantConfig, Done, DoneConfig, Gae, GaeConfig};
use aneci::core::{AneciConfig, AneciModel, BatchStrategy, StopStrategy, TrainReport};
use aneci::graph::karate_club;
use aneci::linalg::pool;
use aneci::linalg::DenseMatrix;

/// The thread-invariance test mutates process-global pool configuration;
/// every test in this binary takes this lock so an A/B comparison never sees
/// the dispatch mode change between its two runs.
static POOL_CONFIG_LOCK: Mutex<()> = Mutex::new(());

fn quick_cfg(stop: StopStrategy, seed: u64) -> AneciConfig {
    AneciConfig {
        hidden_dim: 16,
        embed_dim: 4,
        epochs: 50,
        stop,
        seed,
        ..Default::default()
    }
}

/// Every field of the two reports must match exactly — no tolerance.
fn assert_reports_identical(new: &TrainReport, old: &TrainReport) {
    assert_eq!(new.losses, old.losses, "loss trajectories differ");
    assert_eq!(new.modularity, old.modularity, "modularity differs");
    assert_eq!(new.rigidity, old.rigidity, "rigidity differs");
    assert_eq!(new.val_scores, old.val_scores, "val scores differ");
    assert_eq!(new.best_epoch, old.best_epoch, "best epoch differs");
    assert_eq!(new.epochs_run, old.epochs_run, "epochs run differ");
}

#[test]
fn fixed_epochs_matches_reference_loop_bit_exactly() {
    let _guard = POOL_CONFIG_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let g = karate_club();
    let cfg = quick_cfg(StopStrategy::FixedEpochs, 42);

    let mut new = AneciModel::new(&g, &cfg);
    let new_report = new.train(None).unwrap();
    let mut old = AneciModel::new(&g, &cfg);
    let old_report = old.train_reference(None);

    assert_reports_identical(&new_report, &old_report);
    assert_eq!(new.embedding(), old.embedding(), "embeddings differ");
}

#[test]
fn early_stop_modularity_matches_reference_loop_bit_exactly() {
    let _guard = POOL_CONFIG_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let g = karate_club();
    let cfg = quick_cfg(StopStrategy::EarlyStopModularity { patience: 8 }, 7);

    let mut new = AneciModel::new(&g, &cfg);
    let new_report = new.train(None).unwrap();
    let mut old = AneciModel::new(&g, &cfg);
    let old_report = old.train_reference(None);

    assert_reports_identical(&new_report, &old_report);
    assert_eq!(new.embedding(), old.embedding(), "embeddings differ");
}

#[test]
fn validation_best_matches_reference_loop_bit_exactly() {
    let _guard = POOL_CONFIG_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let g = karate_club();
    let cfg = quick_cfg(StopStrategy::ValidationBest { eval_every: 10 }, 3);

    // A deterministic stand-in probe: spread of the first embedding column.
    let probe = |_epoch: usize, z: &DenseMatrix| -> f64 {
        let col: Vec<f64> = (0..z.rows()).map(|i| z.get(i, 0)).collect();
        let mean = col.iter().sum::<f64>() / col.len() as f64;
        col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
    };

    let mut new = AneciModel::new(&g, &cfg);
    let mut p1 = probe;
    let new_report = new.train(Some(&mut p1)).unwrap();
    let mut old = AneciModel::new(&g, &cfg);
    let mut p2 = probe;
    let old_report = old.train_reference(Some(&mut p2));

    assert_reports_identical(&new_report, &old_report);
    assert_eq!(new.embedding(), old.embedding(), "embeddings differ");
    assert!(
        !new_report.val_scores.is_empty(),
        "the probe should have run at least once"
    );
}

#[test]
fn minibatch_full_graph_matches_reference_loop_bit_exactly() {
    let _guard = POOL_CONFIG_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let g = karate_club();
    let cfg = quick_cfg(StopStrategy::FixedEpochs, 42);

    // One batch spanning the whole graph must execute the exact full-batch
    // op sequence: same operators, same tape order, same RNG streams.
    let mut mini = AneciModel::new(&g, &cfg);
    let mini_report = mini
        .train_minibatch(BatchStrategy::FullGraph, None)
        .unwrap();
    let mut old = AneciModel::new(&g, &cfg);
    let old_report = old.train_reference(None);

    assert_reports_identical(&mini_report, &old_report);
    assert_eq!(mini.embedding(), old.embedding(), "embeddings differ");
}

#[test]
fn minibatch_early_stop_matches_reference_loop_bit_exactly() {
    let _guard = POOL_CONFIG_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let g = karate_club();
    let cfg = quick_cfg(StopStrategy::EarlyStopModularity { patience: 8 }, 7);

    // With one full-coverage batch per epoch, the epoch-mean batch Q̃ that
    // mini-batch training monitors IS the full-batch Q̃ — so early stopping
    // fires at the same epoch and the kept best embedding matches.
    let mut mini = AneciModel::new(&g, &cfg);
    let mini_report = mini
        .train_minibatch(BatchStrategy::FullGraph, None)
        .unwrap();
    let mut old = AneciModel::new(&g, &cfg);
    let old_report = old.train_reference(None);

    assert_reports_identical(&mini_report, &old_report);
    assert_eq!(mini.embedding(), old.embedding(), "embeddings differ");
}

#[test]
fn training_is_invariant_to_kernel_thread_count() {
    let _guard = POOL_CONFIG_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let g = karate_club();
    let cfg = quick_cfg(StopStrategy::FixedEpochs, 11);
    let gae_cfg = GaeConfig {
        epochs: 30,
        seed: 11,
        ..Default::default()
    };

    // Serial dispatch (one thread) legitimately rounds reductions differently
    // from pooled dispatch: `DenseMatrix::sum`/`dot` use a strict
    // left-to-right sum serially but chunk-ordered partials when pooled. The
    // invariance contract under test is the pooled one: the chunk
    // decomposition — and therefore the training trajectory — depends only on
    // `(items, grain)`, never on how many workers participate. So compare two
    // pooled worker counts (force_pool also drops the par threshold to 1, so
    // karate-sized work genuinely takes the chunked paths).
    pool::force_pool();

    pool::set_num_threads(2);
    let two_aneci = {
        let mut m = AneciModel::new(&g, &cfg);
        m.train(None).unwrap().losses
    };
    let two_gae = Gae::fit(&g, &gae_cfg).losses;

    pool::set_num_threads(4);
    let four_aneci = {
        let mut m = AneciModel::new(&g, &cfg);
        m.train(None).unwrap().losses
    };
    let four_gae = Gae::fit(&g, &gae_cfg).losses;

    assert_eq!(two_aneci, four_aneci, "AnECI depends on thread count");
    assert_eq!(two_gae, four_gae, "GAE depends on thread count");
}

#[test]
fn dominant_divergence_is_a_typed_error() {
    let _guard = POOL_CONFIG_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let g = karate_club();
    let cfg = DominantConfig {
        lr: 1e200,
        epochs: 20,
        ..Default::default()
    };
    match Dominant::try_fit(&g, &cfg) {
        Err(TrainError::Diverged { epoch, loss }) => {
            assert!(epoch < 20, "diverged late: epoch {epoch}");
            assert!(!loss.is_finite(), "reported loss should be non-finite");
        }
        Err(other) => panic!("unexpected error: {other}"),
        Ok(_) => panic!("expected Dominant to diverge at lr = 1e200"),
    }
}

#[test]
fn done_divergence_is_a_typed_error() {
    let _guard = POOL_CONFIG_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let g = karate_club();
    let cfg = DoneConfig {
        lr: 1e200,
        rounds: 2,
        epochs_per_round: 15,
        ..Default::default()
    };
    match Done::try_fit(&g, &cfg) {
        Err(TrainError::Diverged { epoch, loss }) => {
            assert!(epoch < 15, "diverged late: epoch {epoch}");
            assert!(!loss.is_finite(), "reported loss should be non-finite");
        }
        Err(other) => panic!("unexpected error: {other}"),
        Ok(_) => panic!("expected DONE to diverge at lr = 1e200"),
    }
}
