//! Minimal offline stand-in for `rand` 0.8 — see `offline_shims/README.md`.
//!
//! API-compatible with the subset this workspace uses: `Rng::{gen,
//! gen_range, gen_bool}`, `rngs::StdRng`, `SeedableRng::{seed_from_u64,
//! from_seed}`. The generated stream is xoshiro256** (seeded through
//! SplitMix64), *not* the real `StdRng` ChaCha12 stream: seeded
//! experiments stay deterministic but produce different numbers than the
//! real crate.

use std::ops::{Range, RangeInclusive};

/// Core entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding interface (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    fn from_seed(seed: [u8; 32]) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 fill, like rand_core's default.
        let mut s = SplitMix64(state);
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_mut(8) {
            chunk.copy_from_slice(&s.next_u64().to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub mod rngs {
    /// xoshiro256** — small, fast, statistically solid. NOT the real
    /// `StdRng` (ChaCha12); streams differ from the real crate.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            r
        }
    }

    impl crate::SeedableRng for StdRng {
        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, lane) in s.iter_mut().enumerate() {
                *lane = u64::from_le_bytes(seed[i * 8..i * 8 + 8].try_into().unwrap());
            }
            if s == [0; 4] {
                s = [1, 2, 3, 4]; // xoshiro must not start all-zero
            }
            Self { s }
        }
    }
}

/// Types producible by `Rng::gen()`.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1), as rand 0.8 does.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by `Rng::gen_range()`.
pub trait SampleRange {
    type Output;
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

#[inline]
fn mul_shift(x: u64, span: u128) -> u128 {
    (x as u128 * span) >> 64
}

macro_rules! impl_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u128;
                let off = mul_shift(rng.next_u64(), span) as $wide;
                (self.start as $wide).wrapping_add(off) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u128 + 1;
                let off = mul_shift(rng.next_u64(), span) as $wide;
                (start as $wide).wrapping_add(off) as $t
            }
        }
    )*};
}
impl_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty f64 range");
        let u = f64::sample_standard(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty f32 range");
        let u = f32::sample_standard(rng);
        self.start + (self.end - self.start) * u
    }
}

/// The user-facing RNG interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_in(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3..10usize);
            assert!((3..10).contains(&x));
            let y = r.gen_range(-2.5..2.5f64);
            assert!((-2.5..2.5).contains(&y));
            let z = r.gen_range(0..=4u32);
            assert!(z <= 4);
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
