//! `aneci_serve` — load a `.aneci` checkpoint and answer JSONL queries.
//!
//! ```text
//! aneci_serve <checkpoint.aneci> [options] [< queries.jsonl]
//!
//!   --queries <file>   read queries from a file instead of stdin
//!   --ann              build the HNSW index; answer top-k with it
//!   --ef <n>           ANN beam width at layer 0 (default 64)
//!   --k <n>            default k for top-k queries (default 10)
//!   --metric <m>       default metric: cosine | dot (default cosine)
//!   --cache <n>        LRU response-cache capacity (default 1024, 0 = off)
//!   --threads <n>      worker threads for batch execution
//! ```
//!
//! Responses go to stdout (one JSON object per input line, in input order);
//! throughput, latency percentiles, and cache stats go to stderr.

use std::io::{BufWriter, Read, Write};
use std::process::ExitCode;
use std::time::Instant;

use aneci_core::model::AneciModel;
use aneci_serve::engine::{EngineConfig, QueryEngine};
use aneci_serve::store::{EmbeddingStore, Metric};

struct Args {
    checkpoint: String,
    queries: Option<String>,
    ann: bool,
    ef: usize,
    k: usize,
    metric: Metric,
    cache: usize,
    threads: Option<usize>,
}

fn usage() -> String {
    "usage: aneci_serve <checkpoint.aneci> [--queries FILE] [--ann] [--ef N] \
     [--k N] [--metric cosine|dot] [--cache N] [--threads N]"
        .to_string()
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        checkpoint: String::new(),
        queries: None,
        ann: false,
        ef: 64,
        k: 10,
        metric: Metric::Cosine,
        cache: 1024,
        threads: None,
    };
    let mut it = argv.iter();
    let mut positional = Vec::new();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value\n{}", usage()))
        };
        match arg.as_str() {
            "--queries" => args.queries = Some(value_of("--queries")?),
            "--ann" => args.ann = true,
            "--ef" => args.ef = parse_num(&value_of("--ef")?, "--ef")?,
            "--k" => args.k = parse_num(&value_of("--k")?, "--k")?,
            "--cache" => args.cache = parse_num(&value_of("--cache")?, "--cache")?,
            "--threads" => args.threads = Some(parse_num(&value_of("--threads")?, "--threads")?),
            "--metric" => {
                let m = value_of("--metric")?;
                args.metric = Metric::parse(&m)
                    .ok_or_else(|| format!("unknown metric {m:?} (cosine|dot)"))?;
            }
            "--help" | "-h" => return Err(usage()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other}\n{}", usage()))
            }
            other => positional.push(other.to_string()),
        }
    }
    match positional.len() {
        1 => args.checkpoint = positional.remove(0),
        0 => return Err(format!("missing checkpoint path\n{}", usage())),
        _ => return Err(format!("too many positional arguments\n{}", usage())),
    }
    Ok(args)
}

fn parse_num(s: &str, flag: &str) -> Result<usize, String> {
    s.parse::<usize>()
        .map_err(|_| format!("{flag} expects a non-negative integer, got {s:?}"))
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&argv)?;

    if let Some(t) = args.threads {
        aneci_linalg::pool::set_num_threads(t);
    }

    let t0 = Instant::now();
    let ckpt = AneciModel::load_checkpoint(&args.checkpoint)
        .map_err(|e| format!("loading {}: {e}", args.checkpoint))?;
    let store = EmbeddingStore::from_checkpoint(&ckpt);
    let n = store.num_nodes();
    let d = store.dim();
    eprintln!(
        "loaded {} ({n} nodes, dim {d}) in {:.1} ms",
        args.checkpoint,
        t0.elapsed().as_secs_f64() * 1e3
    );

    let t1 = Instant::now();
    let engine = QueryEngine::new(
        store,
        EngineConfig {
            default_k: args.k,
            default_metric: args.metric,
            use_ann: args.ann,
            ef_search: args.ef,
            cache_capacity: args.cache,
            ..EngineConfig::default()
        },
    );
    if args.ann {
        eprintln!(
            "built HNSW index in {:.1} ms",
            t1.elapsed().as_secs_f64() * 1e3
        );
    }

    let raw = match &args.queries {
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?,
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| format!("reading stdin: {e}"))?;
            buf
        }
    };
    let lines: Vec<&str> = raw.lines().filter(|l| !l.trim().is_empty()).collect();
    if lines.is_empty() {
        eprintln!("no queries");
        return Ok(());
    }

    // Batch execution; the engine records per-query latency into the
    // `serve.query_ns` histogram of the aneci-obs registry as it runs, so
    // percentiles come straight from telemetry instead of a second
    // hand-timed pass over the queries.
    let t2 = Instant::now();
    let responses = engine.run_batch(&lines);
    let batch_secs = t2.elapsed().as_secs_f64();

    let stdout = std::io::stdout();
    let mut out = BufWriter::new(stdout.lock());
    for r in &responses {
        writeln!(out, "{r}").map_err(|e| format!("writing stdout: {e}"))?;
    }
    out.flush().map_err(|e| format!("flushing stdout: {e}"))?;

    let (hits, misses) = engine.cache_stats();
    eprintln!(
        "{} queries in {:.1} ms — {:.0} q/s ({})",
        lines.len(),
        batch_secs * 1e3,
        lines.len() as f64 / batch_secs.max(1e-12),
        if args.ann { "ann" } else { "exact" },
    );
    let snap = aneci_obs::global().snapshot();
    if let Some(lat) = snap.histogram("serve.query_ns") {
        eprintln!(
            "latency p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms ({} recorded)",
            lat.p50() / 1e6,
            lat.p95() / 1e6,
            lat.p99() / 1e6,
            lat.count,
        );
    }
    if args.ann {
        if let (Some(hops), Some(searches)) = (
            snap.counter("serve.hnsw.hops"),
            snap.counter("serve.hnsw.searches"),
        ) {
            if searches > 0 {
                eprintln!(
                    "hnsw: {searches} searches, {:.1} hops/search",
                    hops as f64 / searches as f64
                );
            }
        }
    }
    if args.cache > 0 {
        eprintln!("cache: {hits} hits, {misses} misses");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
